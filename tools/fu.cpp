// fu — command-line driver for the featureusage library.
//
//   fu catalog [abbrev]         the 75 standards, or one standard's features
//   fu feature <full-name>      one feature's details
//   fu fetch <url> [--auth]     fetch a synthetic-web resource, print body
//   fu crawl <domain> [--blockers] [--auth]
//                               one monkey-testing pass; prints feature CSV
//   fu survey                   run the survey, print Tables 1-3 + headline
//   fu report <dir>             full artifact export (tables, figures, CSVs)
//   fu lists                    print the generated ad/tracking filter lists
//
// Scale via FU_SITES / FU_PASSES / FU_SEED (see README).
#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/report.h"
#include "blocker/extensions.h"
#include "core/featureusage.h"
#include "obs/delta.h"
#include "obs/folded.h"
#include "obs/json.h"
#include "obs/mem.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/server.h"
#include "obs/trace.h"
#include "obs/tracefile.h"
#include "sched/checkpoint.h"
#include "sched/progress.h"
#include "script/compiler.h"
#include "script/parser.h"
#include "service/daemon.h"

namespace {

using namespace fu;

int usage() {
  std::cerr <<
      "usage: fu <command> [args]\n"
      "  catalog [abbrev]      list standards / one standard's features\n"
      "  feature <full-name>   one feature's details\n"
      "  fetch <url> [--auth]  fetch a synthetic resource\n"
      "  crawl <domain> [--blockers] [--auth]\n"
      "  standard <abbrev>     survey-backed deep-dive for one standard\n"
      "  survey [flags]        run the survey, print the main tables\n"
      "  report <dir>          export every table/figure/CSV\n"
      "  serve [--port p] [--bind addr] [--threads n] [--cache-dir d]\n"
      "        [--stall-secs s] [--log]\n"
      "                        survey daemon: POST /surveys queues crawls\n"
      "                        onto one persistent worker pool; completed\n"
      "                        crawls keep their checkpoint shards in a\n"
      "                        keyed cache so analysis-only re-submissions\n"
      "                        never recrawl. Binding a non-loopback\n"
      "                        address requires FU_SERVE_TOKEN (bearer\n"
      "                        auth, checked on every endpoint)\n"
      "  compact <shard-dir>... <out-dir>\n"
      "                        merge checkpoint shard dirs (same survey\n"
      "                        key only; later dirs win) into one compact\n"
      "                        shard set under <out-dir>\n"
      "  watch <host:port|host:port/surveys/<id>|checkpoint-dir>\n"
      "        [--interval s] [--once]\n"
      "                        live dashboard for a survey started with\n"
      "                        --serve, or for one daemon survey by URL\n"
      "                        (FU_SERVE_TOKEN sent as bearer when set);\n"
      "                        exits 1 when /healthz reports a stall, 0\n"
      "                        when the survey finishes\n"
      "  trace <file> [--top n] [--json] [--write-baseline <f>]\n"
      "        [--check-baseline <f>] [--tolerance <frac>]\n"
      "                        summarize a trace written by survey\n"
      "                        (per-stage percentiles, slowest sites,\n"
      "                        scheduler balance); --json emits the\n"
      "                        percentiles as machine-readable JSON,\n"
      "                        --write-baseline saves them, and\n"
      "                        --check-baseline exits 1 when a stage\n"
      "                        regressed beyond the tolerance (default 0.5\n"
      "                        = +50%) — the CI latency gate\n"
      "  prof <folded> [<folded2>] [--top n] [--json] [--html <f>]\n"
      "                        summarize a folded-stack profile written by\n"
      "                        survey --profile-out or /profilez: totals,\n"
      "                        per-stage and per-standard CPU attribution,\n"
      "                        top frames by self/inclusive samples. Two\n"
      "                        files = diff mode (percentage-share deltas);\n"
      "                        --html renders the interactive flamegraph\n"
      "  mem <file> [<file2>] [--top n] [--json] [--html <f>]\n"
      "      [--write-baseline <f>] [--check-baseline <f>]\n"
      "      [--tolerance <frac>]\n"
      "                        summarize memory observability output. A\n"
      "                        folded BYTES profile (--memprofile-out) gets\n"
      "                        per-domain/stage/standard attribution and\n"
      "                        top frames; a /memz JSON document gets the\n"
      "                        per-domain current/high-water table. Two\n"
      "                        folded files = share diff; two JSON files =\n"
      "                        domain byte diff. --write-baseline saves a\n"
      "                        JSON document's peaks, --check-baseline\n"
      "                        exits 1 when a domain peak or RSS grew\n"
      "                        beyond the tolerance (default 0.5 = +50%)\n"
      "                        — the peak-RSS regression gate\n"
      "  disasm <script.js>    compile a MiniJS file and print its register\n"
      "                        bytecode, IC-slot annotations included\n"
      "                        ('-' reads stdin)\n"
      "  lists                 print the generated filter lists\n"
      "\n"
      "survey flags (values as '--flag v' or '--flag=v'):\n"
      "  --threads <n>         worker threads (default: hardware concurrency)\n"
      "  --progress            live progress to stderr (sites, inv/s, ETA)\n"
      "  --checkpoint-dir <d>  stream completed sites into shards under <d>\n"
      "  --checkpoint-secs <s> also cut a shard every <s> seconds of crawl\n"
      "                        (bounds the crash-loss window of slow runs)\n"
      "  --resume              resume from matching shards in the\n"
      "                        checkpoint dir instead of recrawling\n"
      "  --retries <n>         extra attempts for a site whose crawl throws\n"
      "  --trace-out <f>       write a Chrome trace_event JSON trace of the\n"
      "                        crawl (chrome://tracing, ui.perfetto.dev)\n"
      "  --trace-jsonl <f>     write the trace as compact JSONL instead\n"
      "  --trace-sample <n>    trace only 1-in-<n> site visits (always\n"
      "                        keeping any new slowest-so-far visit), so\n"
      "                        10k-site traces stay bounded\n"
      "  --metrics-out <f>     write the metrics-registry snapshot as JSON\n"
      "  --profile-out <f>     run the crawl under the sampling profiler and\n"
      "                        write the folded-stack profile to <f>, the\n"
      "                        flamegraph to <f>.html and the per-standard\n"
      "                        CPU attribution to <f>.standards.csv\n"
      "  --profile-hz <n>      profiler sampling rate (default 97; implies\n"
      "                        profiling with --profile-out profile.folded\n"
      "                        when no output path was given)\n"
      "  --memprofile-out <f>  run the crawl under the sampling allocation\n"
      "                        profiler and write the folded BYTES profile\n"
      "                        to <f>, the flamegraph to <f>.html, the\n"
      "                        per-standard bytes to <f>.standards.csv and\n"
      "                        the domain peak report to <f>.domains.json\n"
      "  --memprofile-rate <n> sample every <n>th tracked allocation\n"
      "                        (default 8)\n"
      "  --serve <port>        serve live metrics/progress over loopback\n"
      "                        HTTP while the survey runs (0 = ephemeral\n"
      "                        port, printed to stderr and written to\n"
      "                        <checkpoint-dir>/serve.port); endpoints:\n"
      "                        /metrics.json /metrics /progress.json\n"
      "                        /deltas.json?since=SEQ /healthz\n"
      "  --stall-secs <s>      /healthz stall window: 503 once no site\n"
      "                        completed for <s> seconds (default 30)\n"
      "\n"
      "environment:\n"
      "  FU_SITES / FU_PASSES / FU_SEED   survey scale (default 10000/5)\n"
      "  FU_THREADS            worker threads (same as --threads)\n"
      "  FU_FIG7=0             skip the two single-blocker configurations\n"
      "  FU_CACHE=0            disable the on-disk survey cache\n"
      "  FU_CACHE_DIR          cache directory (default ./fu_cache)\n"
      "  FU_RETRIES            extra crawl attempts (same as --retries)\n"
      "  FU_CHECKPOINT_DIR     shard directory (same as --checkpoint-dir)\n"
      "  FU_CHECKPOINT_SECS    time-based shard cadence (--checkpoint-secs)\n"
      "  FU_TRACE_SAMPLE       site-visit sampling rate (--trace-sample)\n"
      "  FU_TRACE_OUT / FU_TRACE_JSONL / FU_METRICS_OUT\n"
      "                        same as the --trace-out/--trace-jsonl/\n"
      "                        --metrics-out survey flags\n"
      "  FU_SERVE_PORT         live endpoint port (same as --serve)\n"
      "  FU_STALL_SECS         healthz stall window (same as --stall-secs)\n"
      "  FU_PROFILE_HZ / FU_PROFILE_OUT\n"
      "                        same as --profile-hz / --profile-out\n"
      "  FU_MEMPROFILE_OUT / FU_MEMPROFILE_RATE\n"
      "                        same as --memprofile-out / --memprofile-rate\n"
      "  FU_SESSION_SNAPSHOTS=0\n"
      "                        build every session from scratch instead of\n"
      "                        cloning the frozen per-catalog snapshot\n"
      "  FU_SERVE_LOG=1        per-request access log (same as serve --log)\n";
  return 2;
}

bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

int cmd_catalog(Reproduction& repro, int argc, char** argv) {
  const catalog::Catalog& cat = repro.catalog();
  if (argc > 0) {
    const catalog::StandardId sid = cat.standard_by_abbreviation(argv[0]);
    if (sid == catalog::kInvalidStandard) {
      std::cerr << "unknown standard: " << argv[0] << "\n";
      return 1;
    }
    const catalog::StandardSpec& spec = cat.standard(sid);
    std::cout << spec.name << " (" << spec.abbreviation << ")\n"
              << "  introduced:  "
              << cat.standard_implementation_date(sid).to_string() << "\n"
              << "  features:    " << spec.feature_count << "\n"
              << "  CVEs:        " << cat.cve_count(sid) << "\n\n";
    for (const catalog::FeatureId fid : cat.features_of(sid)) {
      const catalog::Feature& f = cat.feature(fid);
      std::cout << "  " << f.full_name
                << (f.kind == catalog::FeatureKind::kProperty ? "  [property]"
                                                              : "")
                << "  (Firefox " << f.first_version << ")\n";
    }
    return 0;
  }
  std::printf("%-8s %6s %5s  %s\n", "abbrev", "#feat", "CVEs", "name");
  for (std::size_t s = 0; s < cat.standard_count(); ++s) {
    const auto sid = static_cast<catalog::StandardId>(s);
    const catalog::StandardSpec& spec = cat.standard(sid);
    std::printf("%-8s %6d %5d  %s\n", spec.abbreviation.c_str(),
                spec.feature_count, cat.cve_count(sid), spec.name.c_str());
  }
  return 0;
}

int cmd_feature(Reproduction& repro, int argc, char** argv) {
  if (argc < 1) return usage();
  const catalog::Feature* f = repro.catalog().find_feature(argv[0]);
  if (f == nullptr) {
    std::cerr << "unknown feature: " << argv[0] << "\n";
    return 1;
  }
  const catalog::StandardSpec& spec = repro.catalog().standard(f->standard);
  std::cout << f->full_name << "\n"
            << "  standard:   " << spec.name << " (" << spec.abbreviation
            << ")\n"
            << "  kind:       "
            << (f->kind == catalog::FeatureKind::kMethod ? "method"
                                                         : "property")
            << "\n"
            << "  first in:   Firefox " << f->first_version << " ("
            << f->implemented.to_string() << ")\n";
  return 0;
}

int cmd_fetch(Reproduction& repro, int argc, char** argv) {
  if (argc < 1) return usage();
  const auto url = net::Url::parse(argv[0]);
  if (!url) {
    std::cerr << "bad url: " << argv[0] << "\n";
    return 1;
  }
  const bool auth = has_flag(argc, argv, "--auth");
  const auto res = repro.web().fetch(*url, auth);
  if (!res) {
    std::cerr << "no response (dead site, 404, or login required)\n";
    return 1;
  }
  std::cout << res->body;
  return 0;
}

int cmd_crawl(Reproduction& repro, int argc, char** argv) {
  if (argc < 1) return usage();
  const net::SitePlan* site = repro.web().site_by_host(argv[0]);
  if (site == nullptr) {
    std::cerr << "unknown domain: " << argv[0] << "\n";
    return 1;
  }
  crawler::CrawlConfig config;
  if (has_flag(argc, argv, "--blockers")) {
    config.browser.ad_blocker = blocker::make_ad_blocker(repro.web());
    config.browser.tracking_blocker =
        blocker::make_tracking_blocker(repro.web());
  }
  config.browser.authenticated = has_flag(argc, argv, "--auth");

  const crawler::SiteVisit visit =
      crawler::crawl_site(repro.web(), config, *site, repro.config().seed);
  std::cerr << "measured=" << visit.measured
            << " pages=" << visit.pages_visited
            << " invocations=" << visit.invocations
            << " scripts_blocked=" << visit.scripts_blocked << "\n";
  const catalog::Catalog& cat = repro.catalog();
  for (std::size_t f = 0; f < visit.features.size(); ++f) {
    if (!visit.features.test(f)) continue;
    const catalog::Feature& feature =
        cat.feature(static_cast<catalog::FeatureId>(f));
    std::cout << site->domain << "," << feature.full_name << ","
              << cat.standard(feature.standard).abbreviation << "\n";
  }
  return 0;
}

int cmd_standard(Reproduction& repro, int argc, char** argv) {
  if (argc < 1) return usage();
  const std::string detail =
      analysis::render_standard_detail(repro.analysis(), argv[0]);
  if (detail.empty()) {
    std::cerr << "unknown standard: " << argv[0] << "\n";
    return 1;
  }
  std::cout << detail;
  return 0;
}

// Fold `fu survey` flags into the config; returns false on a bad flag.
// Values are accepted as either "--flag value" or "--flag=value".
bool parse_survey_flags(ReproductionConfig& config, int argc, char** argv) {
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    std::optional<std::string> inline_value;
    if (arg.rfind("--", 0) == 0) {
      if (const std::size_t eq = arg.find('='); eq != std::string::npos) {
        inline_value = arg.substr(eq + 1);
        arg.resize(eq);
      }
    }
    const auto string_value = [&](std::string& out) {
      if (inline_value) {
        out = *inline_value;
        return true;
      }
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        return false;
      }
      out = argv[++i];
      return true;
    };
    // A numeric flag rejects a missing or non-numeric value outright —
    // atoi-style "abc -> 0" would silently launch a full-scale survey.
    const auto int_value = [&](int& out) {
      std::string text;
      if (!string_value(text)) return false;
      char* end = nullptr;
      const long parsed = std::strtol(text.c_str(), &end, 10);
      if (end == text.c_str() || *end != '\0' || parsed < 0) {
        std::cerr << arg << ": not a number: " << text << "\n";
        return false;
      }
      out = static_cast<int>(parsed);
      return true;
    };
    const auto double_value = [&](double& out) {
      std::string text;
      if (!string_value(text)) return false;
      char* end = nullptr;
      const double parsed = std::strtod(text.c_str(), &end);
      if (end == text.c_str() || *end != '\0' || parsed < 0) {
        std::cerr << arg << ": not a number: " << text << "\n";
        return false;
      }
      out = parsed;
      return true;
    };
    const auto boolean = [&](bool& out) {
      if (inline_value) {
        std::cerr << arg << " takes no value\n";
        return false;
      }
      out = true;
      return true;
    };
    if (arg == "--resume") {
      if (!boolean(config.resume)) return false;
    } else if (arg == "--progress") {
      if (!boolean(config.progress)) return false;
    } else if (arg == "--threads") {
      if (!int_value(config.threads)) return false;
    } else if (arg == "--retries") {
      if (!int_value(config.retries)) return false;
    } else if (arg == "--checkpoint-dir") {
      if (!string_value(config.checkpoint_dir)) return false;
    } else if (arg == "--checkpoint-secs") {
      if (!double_value(config.checkpoint_secs)) return false;
    } else if (arg == "--trace-sample") {
      if (!int_value(config.trace_sample)) return false;
    } else if (arg == "--trace-out") {
      if (!string_value(config.trace_out)) return false;
    } else if (arg == "--trace-jsonl") {
      if (!string_value(config.trace_jsonl)) return false;
    } else if (arg == "--metrics-out") {
      if (!string_value(config.metrics_out)) return false;
    } else if (arg == "--profile-out") {
      if (!string_value(config.profile_out)) return false;
    } else if (arg == "--profile-hz") {
      if (!double_value(config.profile_hz)) return false;
    } else if (arg == "--memprofile-out") {
      if (!string_value(config.memprofile_out)) return false;
    } else if (arg == "--memprofile-rate") {
      if (!int_value(config.memprofile_rate)) return false;
    } else if (arg == "--serve") {
      if (!int_value(config.serve_port)) return false;
    } else if (arg == "--stall-secs") {
      if (!double_value(config.stall_secs)) return false;
    } else {
      std::cerr << "unknown survey flag: " << arg << "\n";
      return false;
    }
  }
  // Resuming implies shards exist somewhere; default next to the cache.
  if (config.resume && config.checkpoint_dir.empty()) {
    config.checkpoint_dir = "fu_checkpoint";
  }
  return true;
}

bool write_text_file(const std::string& path, const std::string& text,
                     const char* what) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
  out.flush();
  if (!out) {
    std::cerr << "cannot write " << what << " to " << path << "\n";
    return false;
  }
  return true;
}

int cmd_survey(Reproduction& repro) {
  const ReproductionConfig& config = repro.config();
  const bool tracing =
      !config.trace_out.empty() || !config.trace_jsonl.empty();
  const bool profiling =
      !config.profile_out.empty() || config.profile_hz > 0;
  const std::string profile_out =
      config.profile_out.empty() ? "profile.folded" : config.profile_out;

  // Run the crawl first, under the tracer/profiler if one was requested, so
  // the observability files cover exactly the survey (not the analysis
  // pass).
  std::optional<obs::Tracer> tracer;
  if (tracing) {
    obs::Registry::global().reset();
    obs::set_trace_sampling(
        config.trace_sample > 1
            ? static_cast<std::uint64_t>(config.trace_sample)
            : 0);
    tracer.emplace();
    tracer->start();
  }
  std::optional<obs::Profiler> profiler;
  if (profiling) {
    profiler.emplace(config.profile_hz > 0 ? config.profile_hz : 97.0);
    profiler->start();
  }
  std::optional<obs::mem::MemProfiler> mem_profiler;
  if (!config.memprofile_out.empty()) {
    mem_profiler.emplace(
        config.memprofile_rate > 0
            ? static_cast<std::uint64_t>(config.memprofile_rate)
            : obs::mem::kDefaultSamplePeriod);
    mem_profiler->start();
  }
  const crawler::SurveyResults& survey = repro.survey();
  if (mem_profiler) {
    const obs::FoldedProfile profile = mem_profiler->stop();
    if (profile.total() == 0) {
      std::cerr << "note: memory profile is empty — the survey was served "
                   "from the on-disk cache or sampled no tracked allocation "
                   "(set FU_CACHE=0 to profile a real crawl)\n";
    }
    const std::string& out = config.memprofile_out;
    if (!write_text_file(out, profile.to_text(), "memory profile") ||
        !write_text_file(out + ".html", obs::flamegraph_html(profile, out),
                         "memory flamegraph") ||
        !write_text_file(out + ".standards.csv",
                         obs::mem::mem_standards_csv(profile),
                         "memory standards csv") ||
        !write_text_file(out + ".domains.json", obs::mem::memz_json(),
                         "memory domains")) {
      return 1;
    }
  }
  if (profiler) {
    const obs::FoldedProfile profile = profiler->stop();
    if (profile.total() == 0) {
      std::cerr << "note: profile is empty — the survey was served from the "
                   "on-disk cache or finished within one sample period (set "
                   "FU_CACHE=0 to profile a real crawl)\n";
    }
    if (!write_text_file(profile_out, profile.to_text(), "profile") ||
        !write_text_file(profile_out + ".html",
                         obs::flamegraph_html(profile, profile_out),
                         "flamegraph") ||
        !write_text_file(profile_out + ".standards.csv",
                         obs::standards_csv(profile), "standards csv")) {
      return 1;
    }
  }
  if (tracer) {
    const std::vector<obs::SpanRecord> records = tracer->stop();
    if (records.empty()) {
      std::cerr << "note: trace is empty — the survey was served from the "
                   "on-disk cache (set FU_CACHE=0 to trace a real crawl)\n";
    }
    if (tracer->dropped() > 0) {
      std::cerr << "note: " << tracer->dropped()
                << " span(s) dropped to ring-buffer overflow\n";
    }
    if (!config.trace_out.empty() &&
        !write_text_file(config.trace_out, obs::Tracer::chrome_json(records),
                         "trace")) {
      return 1;
    }
    if (!config.trace_jsonl.empty() &&
        !write_text_file(config.trace_jsonl, obs::Tracer::jsonl(records),
                         "trace")) {
      return 1;
    }
  }
  if (!config.metrics_out.empty() &&
      !write_text_file(config.metrics_out,
                       obs::Registry::global().snapshot().to_json(),
                       "metrics")) {
    return 1;
  }

  const analysis::Analysis& an = repro.analysis();
  std::cout << analysis::render_table1(survey) << "\n"
            << analysis::render_table3(survey) << "\n"
            << analysis::render_headline(an);
  const int failed = survey.sites_failed();
  if (failed > 0) {
    std::cerr << failed << " site(s) failed after "
              << (1 + config.retries)
              << " attempt(s); see failures.csv in fu report\n";
  }
  return 0;
}

int cmd_trace(int argc, char** argv) {
  obs::TraceSummaryOptions options;
  std::string path;
  std::string write_baseline;
  std::string check_baseline;
  double tolerance = 0.5;
  bool as_json = false;
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    std::string value;
    const std::size_t eq = arg.find('=');
    const bool takes_value = arg == "--top" || arg == "--write-baseline" ||
                             arg == "--check-baseline" || arg == "--tolerance";
    if (arg.rfind("--", 0) == 0 && eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg.resize(eq);
    } else if (takes_value && i + 1 < argc) {
      value = argv[++i];
    }
    if (arg == "--top") {
      char* end = nullptr;
      const long parsed = std::strtol(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0' || parsed <= 0) {
        std::cerr << "--top: not a positive number: " << value << "\n";
        return 2;
      }
      options.top_n = static_cast<std::size_t>(parsed);
    } else if (arg == "--tolerance") {
      char* end = nullptr;
      const double parsed = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0' || parsed < 0) {
        std::cerr << "--tolerance: not a number: " << value << "\n";
        return 2;
      }
      tolerance = parsed;
    } else if (arg == "--json") {
      as_json = true;
    } else if (arg == "--write-baseline") {
      write_baseline = value;
    } else if (arg == "--check-baseline") {
      check_baseline = value;
    } else if (path.empty() && arg.rfind("--", 0) != 0) {
      path = arg;
    } else {
      std::cerr << "unknown trace argument: " << argv[i] << "\n";
      return 2;
    }
  }
  if (path.empty()) return usage();

  std::vector<obs::ParsedSpan> spans;
  std::string error;
  if (!obs::load_trace_file(path, spans, &error)) {
    std::cerr << "fu trace: " << path << ": " << error << "\n";
    return 1;
  }

  const std::vector<obs::StageStats> stats = obs::trace_stage_stats(spans);
  if (!write_baseline.empty() &&
      !write_text_file(write_baseline, obs::stage_stats_json(stats),
                       "baseline")) {
    return 1;
  }
  if (!check_baseline.empty()) {
    std::ifstream in(check_baseline, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (!in) {
      std::cerr << "fu trace: cannot read baseline " << check_baseline
                << "\n";
      return 1;
    }
    std::vector<obs::StageStats> baseline;
    if (!obs::parse_stage_stats_json(buffer.str(), baseline, &error)) {
      std::cerr << "fu trace: " << check_baseline << ": " << error << "\n";
      return 1;
    }
    const obs::RegressionReport report =
        obs::check_stage_regression(baseline, stats, tolerance);
    std::cout << "latency gate (tolerance +" << tolerance * 100 << "%):\n"
              << report.text;
    if (report.regressed) {
      std::cerr << "fu trace: stage latency regressed beyond tolerance\n";
      return 1;
    }
    return 0;
  }
  if (as_json) {
    std::cout << obs::stage_stats_json(stats);
    return 0;
  }
  std::cout << obs::render_trace_summary(spans, options);
  return 0;
}

// -------------------------------------------------------------- fu prof --

int cmd_prof(int argc, char** argv) {
  obs::ProfSummaryOptions options;
  std::vector<std::string> paths;
  std::string html_out;
  bool as_json = false;
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    std::string value;
    const std::size_t eq = arg.find('=');
    const bool takes_value = arg == "--top" || arg == "--html";
    if (arg.rfind("--", 0) == 0 && eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg.resize(eq);
    } else if (takes_value && i + 1 < argc) {
      value = argv[++i];
    }
    if (arg == "--top") {
      char* end = nullptr;
      const long parsed = std::strtol(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0' || parsed <= 0) {
        std::cerr << "--top: not a positive number: " << value << "\n";
        return 2;
      }
      options.top = static_cast<std::size_t>(parsed);
    } else if (arg == "--json") {
      as_json = true;
    } else if (arg == "--html") {
      html_out = value;
    } else if (arg.rfind("--", 0) != 0 && paths.size() < 2) {
      paths.push_back(arg);
    } else {
      std::cerr << "unknown prof argument: " << argv[i] << "\n";
      return 2;
    }
  }
  if (paths.empty()) return usage();

  const auto load = [](const std::string& path,
                       std::optional<obs::FoldedProfile>& out) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (!in) {
      std::cerr << "fu prof: cannot read " << path << "\n";
      return false;
    }
    try {
      out = obs::FoldedProfile::parse(buffer.str());
    } catch (const std::exception& error) {
      std::cerr << "fu prof: " << path << ": " << error.what() << "\n";
      return false;
    }
    return true;
  };
  std::optional<obs::FoldedProfile> first;
  if (!load(paths.front(), first)) return 1;

  if (paths.size() == 2) {  // diff mode: shares of <folded2> vs <folded>
    std::optional<obs::FoldedProfile> second;
    if (!load(paths.back(), second)) return 1;
    std::cout << obs::render_prof_diff(*first, *second, options);
    return 0;
  }
  if (!html_out.empty() &&
      !write_text_file(html_out, obs::flamegraph_html(*first, paths.front()),
                       "flamegraph")) {
    return 1;
  }
  if (as_json) {
    std::cout << obs::prof_summary_json(*first, options.top);
    return 0;
  }
  std::cout << obs::render_prof_summary(*first, options);
  return 0;
}

// --------------------------------------------------------------- fu mem --

bool read_file_text(const char* what, const std::string& path,
                    std::string& out) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in) {
    std::cerr << "fu " << what << ": cannot read " << path << "\n";
    return false;
  }
  out = buffer.str();
  return true;
}

// A /memz (or .domains.json) document starts with '{'; anything else is
// treated as a folded BYTES profile.
bool looks_like_json(const std::string& text) {
  const std::size_t first = text.find_first_not_of(" \t\r\n");
  return first != std::string::npos && text[first] == '{';
}

// Human table for one memz/domains JSON document: domain, current bytes,
// high water, plus the RSS lines when present.
int render_memz_doc(const std::string& text) {
  obs::JsonValue doc;
  std::string error;
  if (!obs::json_parse(text, doc, &error)) {
    std::cerr << "fu mem: " << error << "\n";
    return 1;
  }
  const obs::JsonValue* domains = doc.find("domains");
  if (domains == nullptr) domains = &doc;  // bare domains object
  if (!domains->is_object()) {
    std::cerr << "fu mem: no domains object in document\n";
    return 1;
  }
  std::printf("%-16s %12s %12s\n", "domain", "current", "high water");
  for (const auto& [name, cell] : domains->object) {
    const auto current =
        static_cast<std::int64_t>(cell.number_or("current", 0));
    const auto high = static_cast<std::int64_t>(
        cell.number_or("high_water", cell.is_number() ? cell.number : 0));
    std::printf("%-16s %12s %12s\n", name.c_str(),
                obs::mem::format_bytes(current).c_str(),
                obs::mem::format_bytes(high).c_str());
  }
  if (const obs::JsonValue* rss = doc.find("rss_bytes")) {
    std::printf("%-16s %12s %12s\n", "rss",
                obs::mem::format_bytes(
                    static_cast<std::int64_t>(rss->number))
                    .c_str(),
                obs::mem::format_bytes(static_cast<std::int64_t>(
                                           doc.number_or("rss_peak_bytes",
                                                         rss->number)))
                    .c_str());
  }
  return 0;
}

int cmd_mem(int argc, char** argv) {
  obs::ProfSummaryOptions options;
  std::vector<std::string> paths;
  std::string html_out;
  std::string write_baseline;
  std::string check_baseline;
  double tolerance = 0.5;
  bool as_json = false;
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    std::string value;
    const std::size_t eq = arg.find('=');
    const bool takes_value = arg == "--top" || arg == "--html" ||
                             arg == "--write-baseline" ||
                             arg == "--check-baseline" || arg == "--tolerance";
    if (arg.rfind("--", 0) == 0 && eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg.resize(eq);
    } else if (takes_value && i + 1 < argc) {
      value = argv[++i];
    }
    if (arg == "--top") {
      char* end = nullptr;
      const long parsed = std::strtol(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0' || parsed <= 0) {
        std::cerr << "--top: not a positive number: " << value << "\n";
        return 2;
      }
      options.top = static_cast<std::size_t>(parsed);
    } else if (arg == "--tolerance") {
      char* end = nullptr;
      const double parsed = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0' || parsed < 0) {
        std::cerr << "--tolerance: not a number: " << value << "\n";
        return 2;
      }
      tolerance = parsed;
    } else if (arg == "--json") {
      as_json = true;
    } else if (arg == "--html") {
      html_out = value;
    } else if (arg == "--write-baseline") {
      write_baseline = value;
    } else if (arg == "--check-baseline") {
      check_baseline = value;
    } else if (arg.rfind("--", 0) != 0 && paths.size() < 2) {
      paths.push_back(arg);
    } else {
      std::cerr << "unknown mem argument: " << argv[i] << "\n";
      return 2;
    }
  }
  if (paths.empty()) return usage();

  std::string first;
  if (!read_file_text("mem", paths.front(), first)) return 1;

  // Baseline modes operate on a memz/domains JSON document.
  if (!write_baseline.empty()) {
    if (!looks_like_json(first)) {
      std::cerr << "fu mem: --write-baseline needs a /memz JSON document, "
                   "not a folded profile\n";
      return 2;
    }
    std::string baseline;
    std::string error;
    if (!obs::mem::baseline_from_json(first, baseline, &error)) {
      std::cerr << "fu mem: " << paths.front() << ": " << error << "\n";
      return 1;
    }
    if (!write_text_file(write_baseline, baseline, "mem baseline")) return 1;
    return 0;
  }
  if (!check_baseline.empty()) {
    if (!looks_like_json(first)) {
      std::cerr << "fu mem: --check-baseline needs a /memz JSON document, "
                   "not a folded profile\n";
      return 2;
    }
    std::string baseline;
    if (!read_file_text("mem", check_baseline, baseline)) return 1;
    const obs::mem::BaselineReport report =
        obs::mem::check_baseline(baseline, first, tolerance);
    std::cout << "memory gate (tolerance +" << tolerance * 100 << "%):\n"
              << report.text;
    if (report.regressed) {
      std::cerr << "fu mem: memory peak regressed beyond tolerance\n";
      return 1;
    }
    return 0;
  }

  if (paths.size() == 2) {  // diff mode
    std::string second;
    if (!read_file_text("mem", paths.back(), second)) return 1;
    if (looks_like_json(first) != looks_like_json(second)) {
      std::cerr << "fu mem: cannot diff a folded profile against a JSON "
                   "document\n";
      return 2;
    }
    if (looks_like_json(first)) {
      std::cout << obs::mem::render_domains_diff(first, second);
      return 0;
    }
    try {
      const obs::FoldedProfile a = obs::FoldedProfile::parse(first);
      const obs::FoldedProfile b = obs::FoldedProfile::parse(second);
      std::cout << obs::render_prof_diff(a, b, options);
    } catch (const std::exception& error) {
      std::cerr << "fu mem: " << error.what() << "\n";
      return 1;
    }
    return 0;
  }

  if (looks_like_json(first)) return render_memz_doc(first);

  std::optional<obs::FoldedProfile> profile;
  try {
    profile = obs::FoldedProfile::parse(first);
  } catch (const std::exception& error) {
    std::cerr << "fu mem: " << paths.front() << ": " << error.what() << "\n";
    return 1;
  }
  if (!html_out.empty() &&
      !write_text_file(html_out,
                       obs::flamegraph_html(*profile, paths.front()),
                       "memory flamegraph")) {
    return 1;
  }
  if (as_json) {
    std::cout << obs::prof_summary_json(*profile, options.top);
    return 0;
  }
  std::cout << obs::mem::render_mem_summary(*profile, options.top);
  return 0;
}

int cmd_report(Reproduction& repro, int argc, char** argv) {
  if (argc < 1) return usage();
  const int files = analysis::write_report(argv[0], repro.analysis());
  // Final progress summary — the post-hoc equivalent of /progress.json, so
  // live and archived views of a run agree on the failure/stall tally.
  const crawler::SurveyResults& survey = repro.survey();
  sched::ProgressMeter::Snapshot summary;
  summary.done = summary.total = survey.sites.size();
  summary.failed = static_cast<std::size_t>(survey.sites_failed());
  summary.units = survey.total_invocations();
  summary.stall_events =
      obs::Registry::global().counter("sched.stalls").value();
  if (!write_text_file(std::string(argv[0]) + "/progress.json",
                       sched::progress_json(summary), "progress summary")) {
    return 1;
  }
  std::cout << "wrote " << (files + 1) << " files to " << argv[0] << "\n";
  return 0;
}

// ------------------------------------------------------------- fu serve --

volatile std::sig_atomic_t g_serve_stop = 0;

void serve_signal(int) { g_serve_stop = 1; }

int cmd_serve(int argc, char** argv) {
  service::DaemonOptions options;
  if (const char* token = std::getenv("FU_SERVE_TOKEN")) {
    options.auth_token = token;
  }
  if (const char* log = std::getenv("FU_SERVE_LOG")) {
    options.access_log = *log != '\0' && std::strcmp(log, "0") != 0;
  }
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    const auto int_value = [&](int& out) {
      const char* text = value();
      if (text == nullptr) return false;
      char* end = nullptr;
      const long parsed = std::strtol(text, &end, 10);
      if (end == text || *end != '\0' || parsed < 0) {
        std::cerr << arg << ": not a number: " << text << "\n";
        return false;
      }
      out = static_cast<int>(parsed);
      return true;
    };
    if (arg == "--port") {
      if (!int_value(options.port)) return 2;
    } else if (arg == "--threads") {
      if (!int_value(options.threads)) return 2;
    } else if (arg == "--log") {
      options.access_log = true;
    } else if (arg == "--bind") {
      const char* text = value();
      if (text == nullptr) return 2;
      options.bind_address = text;
    } else if (arg == "--cache-dir") {
      const char* text = value();
      if (text == nullptr) return 2;
      options.cache_dir = text;
    } else if (arg == "--stall-secs") {
      const char* text = value();
      if (text == nullptr) return 2;
      char* end = nullptr;
      options.stall_secs = std::strtod(text, &end);
      if (end == text || *end != '\0' || options.stall_secs < 0) {
        std::cerr << arg << ": not a number: " << text << "\n";
        return 2;
      }
    } else {
      std::cerr << "unknown serve flag: " << arg << "\n";
      return 2;
    }
  }

  service::Daemon daemon(options);
  if (!daemon.ok()) {
    std::cerr << "fu serve: " << daemon.error() << "\n";
    return 1;
  }
  std::cerr << "fu serve: listening on " << options.bind_address << ":"
            << daemon.port() << " (cache: " << options.cache_dir
            << (options.auth_token.empty() ? ", no auth"
                                           : ", bearer auth on")
            << ")\nfu serve: POST /surveys to submit; ctrl-c for a clean "
               "shutdown (in-flight crawls checkpoint and resume)\n";
  std::signal(SIGINT, serve_signal);
  std::signal(SIGTERM, serve_signal);
  while (g_serve_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
  std::cerr << "fu serve: shutting down\n";
  return 0;  // ~Daemon drains the server and cancels in-flight work
}

// ----------------------------------------------------------- fu compact --

int cmd_compact(int argc, char** argv) {
  std::vector<std::string> args;
  for (int i = 0; i < argc; ++i) {
    if (argv[i][0] == '-') {
      std::cerr << "unknown compact argument: " << argv[i] << "\n";
      return 2;
    }
    args.emplace_back(argv[i]);
  }
  if (args.size() < 2) {
    std::cerr << "fu compact: need at least one shard dir and an output "
                 "dir\n";
    return usage();
  }
  const std::string out_dir = args.back();
  args.pop_back();
  std::string error;
  if (!sched::compact_shards(args, out_dir, &error)) {
    std::cerr << "fu compact: " << error << "\n";
    return 1;
  }
  std::cout << "compacted " << args.size() << " dir(s) into " << out_dir
            << "\n";
  return 0;
}

// ------------------------------------------------------------- fu watch --

// Rebuild a progress snapshot from a /progress.json body so the dashboard
// reuses format_progress (one copy of the ETA/rate rendering, satellite of
// the shared-snapshot refactor).
sched::ProgressMeter::Snapshot progress_from_json(const obs::JsonValue& v) {
  sched::ProgressMeter::Snapshot s;
  s.done = static_cast<std::size_t>(v.number_or("done", 0));
  s.skipped = static_cast<std::size_t>(v.number_or("skipped", 0));
  s.failed = static_cast<std::size_t>(v.number_or("failed", 0));
  s.total = static_cast<std::size_t>(v.number_or("total", 0));
  s.units = static_cast<std::uint64_t>(v.number_or("units", 0));
  s.elapsed_seconds = v.number_or("elapsed_seconds", 0);
  s.jobs_per_second = v.number_or("jobs_per_second", 0);
  s.units_per_second = v.number_or("units_per_second", 0);
  s.eta_seconds = v.number_or("eta_seconds", 0);
  s.seconds_since_last_done = v.number_or("seconds_since_last_done", 0);
  s.stall_window_seconds = v.number_or("stall_window_seconds", 0);
  if (const obs::JsonValue* stalled = v.find("stalled")) {
    s.stalled = stalled->type == obs::JsonValue::Type::kBool &&
                stalled->boolean;
  }
  s.stall_events = static_cast<std::uint64_t>(v.number_or("stall_events", 0));
  if (const obs::JsonValue* workers = v.find("workers");
      workers != nullptr && workers->is_array()) {
    for (const obs::JsonValue& w : workers->array) {
      s.workers.push_back(
          {static_cast<std::size_t>(w.number_or("queue_depth", 0)),
           static_cast<std::uint64_t>(w.number_or("steals", 0)),
           static_cast<std::uint64_t>(w.number_or("jobs_stolen", 0))});
    }
  }
  if (const obs::JsonValue* sites = v.find("in_flight");
      sites != nullptr && sites->is_array()) {
    for (const obs::JsonValue& site : sites->array) {
      s.in_flight.push_back(
          {site.string_or("site", "?"), site.number_or("seconds", 0)});
    }
  }
  return s;
}

int cmd_watch(int argc, char** argv) {
  std::string target;
  double interval = 1.0;
  bool once = false;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--once") {
      once = true;
    } else if (arg == "--interval" && i + 1 < argc) {
      interval = std::strtod(argv[++i], nullptr);
      if (interval <= 0) interval = 1.0;
    } else if (target.empty() && arg.rfind("--", 0) != 0) {
      target = arg;
    } else {
      std::cerr << "unknown watch argument: " << arg << "\n";
      return 2;
    }
  }
  if (target.empty()) return usage();

  // Resolve host:port (optionally with a /surveys/<id> path scoping the
  // dashboard to one daemon survey), or a checkpoint dir holding
  // serve.port. The split only happens when the part before the first '/'
  // really parses as host:port, so directory targets — which contain
  // slashes too — are never misread as URLs.
  std::string host = "127.0.0.1";
  int port = -1;
  std::string base;  // path prefix for per-survey endpoints ("" = root)
  std::string authority = target;
  std::string url_path;
  if (const std::size_t slash = target.find('/');
      slash != std::string::npos) {
    authority = target.substr(0, slash);
    url_path = target.substr(slash);
  }
  if (const std::size_t colon = authority.rfind(':');
      colon != std::string::npos) {
    char* end = nullptr;
    const long parsed = std::strtol(authority.c_str() + colon + 1, &end, 10);
    if (end != authority.c_str() + colon + 1 && *end == '\0' && parsed > 0 &&
        parsed < 65536) {
      host = authority.substr(0, colon);
      if (host.empty() || host == "localhost") host = "127.0.0.1";
      port = static_cast<int>(parsed);
      base = url_path;
      while (!base.empty() && base.back() == '/') base.pop_back();
    }
  }
  // A daemon with auth enabled rejects unauthenticated reads too; send the
  // operator's token on every poll when one is configured.
  std::string bearer;
  if (const char* token = std::getenv("FU_SERVE_TOKEN")) bearer = token;
  if (port < 0) {
    std::ifstream in(target + "/serve.port");
    if (!(in >> port) || port <= 0) {
      std::cerr << "fu watch: " << target
                << " is neither host:port nor a checkpoint dir with a "
                   "serve.port file (a finished survey removes the file "
                   "when its server shuts down)\n";
      return 2;
    }
  }

  // Build identity, fetched once on connect: git describe, build type and
  // sanitizers, so a dashboard screenshot pins down exactly what ran. Kept
  // in the header of every repaint (the screen clears each interval).
  std::string build_line;
  {
    int status = 0;
    std::string body;
    if (obs::http_get(host, port, "/buildz", status, body, nullptr, 5.0,
                      bearer) &&
        status == 200) {
      obs::JsonValue build;
      if (obs::json_parse(body, build)) {
        build_line = "build " + build.string_or("git", "?") + " (" +
                     build.string_or("build_type", "?") + ")";
        if (const obs::JsonValue* sans = build.find("sanitizers");
            sans != nullptr && sans->is_array() && !sans->array.empty()) {
          build_line += " sanitizers:";
          for (const obs::JsonValue& s : sans->array) {
            build_line += " " + (s.is_string() ? s.string : "?");
          }
        }
        std::cout << build_line << "\n";
      }
    }
  }

  // Stage latency distributions accumulate across the delta intervals this
  // watcher has seen — p50/p95 of the run while we watched.
  std::map<std::string,
           std::pair<std::vector<std::uint64_t>, std::vector<std::uint64_t>>>
      stages;  // name -> (bounds, summed counts)
  std::uint64_t last_seq = 0;
  // Once we have successfully polled, a later connection failure means the
  // survey process went away — the endpoint drains only after results are
  // final — which is the run ending, not a stall: report it as such (exit 0)
  // so scripts keyed on the exit status do not page for a finished run.
  bool polled_ok = false;
  std::size_t last_done = 0;
  std::size_t last_total = 0;

  for (;;) {
    int status = 0;
    std::string body;
    std::string error;
    if (!obs::http_get(host, port, base + "/progress.json", status, body,
                       &error, 5.0, bearer)) {
      if (polled_ok) {
        std::cout << "\nsurvey endpoint gone — run ended (last seen "
                  << last_done << "/" << last_total << " sites done)\n";
        return 0;
      }
      std::cerr << "fu watch: " << host << ":" << port << ": " << error
                << "\n";
      return 1;
    }
    obs::JsonValue progress;
    if (status != 200 || !obs::json_parse(body, progress)) {
      std::cerr << "fu watch: /progress.json: HTTP " << status << "\n";
      return 1;
    }
    const sched::ProgressMeter::Snapshot snap = progress_from_json(progress);
    polled_ok = true;
    last_done = snap.done;
    last_total = snap.total;

    bool stalled = false;
    if (obs::http_get(host, port, "/healthz", status, body, &error, 5.0,
                      bearer)) {
      stalled = status == 503;
    }

    // One-line memory readout: RSS plus the fattest domains right now.
    std::string mem_line;
    if (obs::http_get(host, port, "/memz", status, body, &error, 5.0,
                      bearer) &&
        status == 200) {
      obs::JsonValue memz;
      if (obs::json_parse(body, memz)) {
        mem_line =
            "memory: rss " +
            obs::mem::format_bytes(
                static_cast<std::int64_t>(memz.number_or("rss_bytes", 0))) +
            " (peak " +
            obs::mem::format_bytes(static_cast<std::int64_t>(
                memz.number_or("rss_peak_bytes", 0))) +
            ")";
        if (const obs::JsonValue* domains = memz.find("domains");
            domains != nullptr && domains->is_object()) {
          std::vector<std::pair<std::string, std::int64_t>> rows;
          for (const auto& [name, cell] : domains->object) {
            const auto current =
                static_cast<std::int64_t>(cell.number_or("current", 0));
            if (current > 0) rows.emplace_back(name, current);
          }
          std::sort(rows.begin(), rows.end(),
                    [](const auto& a, const auto& b) {
                      return a.second > b.second;
                    });
          std::size_t shown = 0;
          for (const auto& [name, current] : rows) {
            if (++shown > 4) break;
            mem_line +=
                "  " + name + " " + obs::mem::format_bytes(current);
          }
        }
      }
    }

    if (obs::http_get(host, port,
                      "/deltas.json?since=" + std::to_string(last_seq),
                      status, body, &error, 5.0, bearer) &&
        status == 200) {
      obs::JsonValue deltas;
      if (obs::json_parse(body, deltas)) {
        last_seq =
            static_cast<std::uint64_t>(deltas.number_or("latest_seq", 0));
        if (const obs::JsonValue* list = deltas.find("deltas");
            list != nullptr && list->is_array()) {
          for (const obs::JsonValue& interval : list->array) {
            const obs::JsonValue* hists = interval.find("histograms");
            if (hists == nullptr || !hists->is_object()) continue;
            for (const auto& [name, hist] : hists->object) {
              obs::Histogram::Snapshot parsed;
              if (!obs::histogram_from_json(hist, parsed)) continue;
              auto& [bounds, counts] = stages[name];
              if (bounds.empty()) {
                bounds = parsed.bounds;
                counts.assign(parsed.counts.size(), 0);
              }
              if (counts.size() != parsed.counts.size()) continue;
              for (std::size_t b = 0; b < counts.size(); ++b) {
                counts[b] += parsed.counts[b];
              }
            }
          }
        }
      }
    }

    // ---- render one screen ----
    if (!once) std::cout << "\033[H\033[2J";
    std::cout << "fu watch  " << host << ":" << port << "\n";
    if (!build_line.empty()) std::cout << build_line << "\n";
    std::cout << "\n" << sched::format_progress(snap) << "\n";
    if (!snap.workers.empty()) {
      std::size_t queued = 0;
      std::uint64_t steals = 0;
      for (const auto& worker : snap.workers) {
        queued += worker.queue_depth;
        steals += worker.steals;
      }
      std::cout << snap.workers.size() << " workers, " << queued
                << " sites queued, " << steals << " steals\n";
    }
    if (!mem_line.empty()) std::cout << mem_line << "\n";
    if (!stages.empty()) {
      std::cout << "\nstage latency while watching (p50 / p95):\n";
      for (const auto& [name, stage] : stages) {
        std::uint64_t n = 0;
        for (const std::uint64_t c : stage.second) n += c;
        if (n == 0) continue;
        std::printf("  %-28s %9.0fus %9.0fus  (%llu)\n", name.c_str(),
                    obs::delta_percentile(stage.first, stage.second, 50),
                    obs::delta_percentile(stage.first, stage.second, 95),
                    static_cast<unsigned long long>(n));
      }
    }
    if (!snap.in_flight.empty()) {
      std::cout << "\nslowest in-flight sites:\n";
      std::size_t shown = 0;
      for (const auto& site : snap.in_flight) {
        if (++shown > 5) break;
        std::printf("  %-32s %6.1fs\n", site.label.c_str(), site.seconds);
      }
    }
    if (snap.failed > 0) {
      std::cout << "\n" << snap.failed << " site(s) failed so far\n";
    }
    if (stalled) {
      std::cout << "\nSTALLED: no site completed in "
                << snap.seconds_since_last_done << "s (window "
                << snap.stall_window_seconds << "s)\n";
      return 1;
    }
    if (snap.total > 0 && snap.done >= snap.total) {
      std::cout << "\nsurvey complete\n";
      return 0;
    }
    if (once) return 0;
    std::this_thread::sleep_for(std::chrono::duration<double>(interval));
  }
}

int cmd_lists(Reproduction& repro) {
  std::cout << blocker::ad_list_text(repro.web()) << "\n"
            << blocker::tracking_list_text(repro.web());
  return 0;
}

int cmd_disasm(int argc, char** argv) {
  if (argc < 1) return usage();
  const std::string path = argv[0];
  std::string source;
  if (path == "-") {
    std::ostringstream buf;
    buf << std::cin.rdbuf();
    source = buf.str();
  } else {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "error: cannot open " << path << "\n";
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    source = buf.str();
  }
  try {
    script::AtomTable atoms;
    const script::Program program = script::parse_program(source, &atoms);
    std::cout << script::disassemble_program(program, atoms);
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  char** rest = argv + 2;
  const int nrest = argc - 2;
  // `fu trace`, `fu prof` and `fu watch` only read a file / poll a socket;
  // they need no reproduction pipeline.
  if (command == "trace") return cmd_trace(nrest, rest);
  if (command == "prof") return cmd_prof(nrest, rest);
  if (command == "mem") return cmd_mem(nrest, rest);
  if (command == "watch") return cmd_watch(nrest, rest);
  // `fu serve` builds catalogs per request seed and `fu compact` only
  // touches shard files; neither needs the whole reproduction either.
  if (command == "serve") return cmd_serve(nrest, rest);
  if (command == "compact") return cmd_compact(nrest, rest);
  // `fu disasm` runs the parser and bytecode compiler directly.
  if (command == "disasm") return cmd_disasm(nrest, rest);
  // FU_SESSION_SNAPSHOTS=0 rebuilds every session from scratch instead of
  // cloning the frozen snapshot — the control arm of the mem-diff CI step.
  if (const char* snaps = std::getenv("FU_SESSION_SNAPSHOTS")) {
    browser::set_session_snapshots_enabled(*snaps != '\0' &&
                                           std::strcmp(snaps, "0") != 0);
  }
  ReproductionConfig config = ReproductionConfig::from_env();
  if (command == "survey" && !parse_survey_flags(config, nrest, rest)) {
    return usage();
  }
  Reproduction repro(config);
  try {
    if (command == "catalog") return cmd_catalog(repro, nrest, rest);
    if (command == "feature") return cmd_feature(repro, nrest, rest);
    if (command == "fetch") return cmd_fetch(repro, nrest, rest);
    if (command == "crawl") return cmd_crawl(repro, nrest, rest);
    if (command == "standard") return cmd_standard(repro, nrest, rest);
    if (command == "survey") return cmd_survey(repro);
    if (command == "report") return cmd_report(repro, nrest, rest);
    if (command == "lists") return cmd_lists(repro);
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
  return usage();
}
