// fu — command-line driver for the featureusage library.
//
//   fu catalog [abbrev]         the 75 standards, or one standard's features
//   fu feature <full-name>      one feature's details
//   fu fetch <url> [--auth]     fetch a synthetic-web resource, print body
//   fu crawl <domain> [--blockers] [--auth]
//                               one monkey-testing pass; prints feature CSV
//   fu survey                   run the survey, print Tables 1-3 + headline
//   fu report <dir>             full artifact export (tables, figures, CSVs)
//   fu lists                    print the generated ad/tracking filter lists
//
// Scale via FU_SITES / FU_PASSES / FU_SEED (see README).
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#include "analysis/report.h"
#include "blocker/extensions.h"
#include "core/featureusage.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/tracefile.h"

namespace {

using namespace fu;

int usage() {
  std::cerr <<
      "usage: fu <command> [args]\n"
      "  catalog [abbrev]      list standards / one standard's features\n"
      "  feature <full-name>   one feature's details\n"
      "  fetch <url> [--auth]  fetch a synthetic resource\n"
      "  crawl <domain> [--blockers] [--auth]\n"
      "  standard <abbrev>     survey-backed deep-dive for one standard\n"
      "  survey [flags]        run the survey, print the main tables\n"
      "  report <dir>          export every table/figure/CSV\n"
      "  trace <file> [--top n] [--json] [--write-baseline <f>]\n"
      "        [--check-baseline <f>] [--tolerance <frac>]\n"
      "                        summarize a trace written by survey\n"
      "                        (per-stage percentiles, slowest sites,\n"
      "                        scheduler balance); --json emits the\n"
      "                        percentiles as machine-readable JSON,\n"
      "                        --write-baseline saves them, and\n"
      "                        --check-baseline exits 1 when a stage\n"
      "                        regressed beyond the tolerance (default 0.5\n"
      "                        = +50%) — the CI latency gate\n"
      "  lists                 print the generated filter lists\n"
      "\n"
      "survey flags (values as '--flag v' or '--flag=v'):\n"
      "  --threads <n>         worker threads (default: hardware concurrency)\n"
      "  --progress            live progress to stderr (sites, inv/s, ETA)\n"
      "  --checkpoint-dir <d>  stream completed sites into shards under <d>\n"
      "  --checkpoint-secs <s> also cut a shard every <s> seconds of crawl\n"
      "                        (bounds the crash-loss window of slow runs)\n"
      "  --resume              resume from matching shards in the\n"
      "                        checkpoint dir instead of recrawling\n"
      "  --retries <n>         extra attempts for a site whose crawl throws\n"
      "  --trace-out <f>       write a Chrome trace_event JSON trace of the\n"
      "                        crawl (chrome://tracing, ui.perfetto.dev)\n"
      "  --trace-jsonl <f>     write the trace as compact JSONL instead\n"
      "  --trace-sample <n>    trace only 1-in-<n> site visits (always\n"
      "                        keeping any new slowest-so-far visit), so\n"
      "                        10k-site traces stay bounded\n"
      "  --metrics-out <f>     write the metrics-registry snapshot as JSON\n"
      "\n"
      "environment:\n"
      "  FU_SITES / FU_PASSES / FU_SEED   survey scale (default 10000/5)\n"
      "  FU_THREADS            worker threads (same as --threads)\n"
      "  FU_FIG7=0             skip the two single-blocker configurations\n"
      "  FU_CACHE=0            disable the on-disk survey cache\n"
      "  FU_CACHE_DIR          cache directory (default ./fu_cache)\n"
      "  FU_RETRIES            extra crawl attempts (same as --retries)\n"
      "  FU_CHECKPOINT_DIR     shard directory (same as --checkpoint-dir)\n"
      "  FU_CHECKPOINT_SECS    time-based shard cadence (--checkpoint-secs)\n"
      "  FU_TRACE_SAMPLE       site-visit sampling rate (--trace-sample)\n"
      "  FU_TRACE_OUT / FU_TRACE_JSONL / FU_METRICS_OUT\n"
      "                        same as the --trace-out/--trace-jsonl/\n"
      "                        --metrics-out survey flags\n";
  return 2;
}

bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

int cmd_catalog(Reproduction& repro, int argc, char** argv) {
  const catalog::Catalog& cat = repro.catalog();
  if (argc > 0) {
    const catalog::StandardId sid = cat.standard_by_abbreviation(argv[0]);
    if (sid == catalog::kInvalidStandard) {
      std::cerr << "unknown standard: " << argv[0] << "\n";
      return 1;
    }
    const catalog::StandardSpec& spec = cat.standard(sid);
    std::cout << spec.name << " (" << spec.abbreviation << ")\n"
              << "  introduced:  "
              << cat.standard_implementation_date(sid).to_string() << "\n"
              << "  features:    " << spec.feature_count << "\n"
              << "  CVEs:        " << cat.cve_count(sid) << "\n\n";
    for (const catalog::FeatureId fid : cat.features_of(sid)) {
      const catalog::Feature& f = cat.feature(fid);
      std::cout << "  " << f.full_name
                << (f.kind == catalog::FeatureKind::kProperty ? "  [property]"
                                                              : "")
                << "  (Firefox " << f.first_version << ")\n";
    }
    return 0;
  }
  std::printf("%-8s %6s %5s  %s\n", "abbrev", "#feat", "CVEs", "name");
  for (std::size_t s = 0; s < cat.standard_count(); ++s) {
    const auto sid = static_cast<catalog::StandardId>(s);
    const catalog::StandardSpec& spec = cat.standard(sid);
    std::printf("%-8s %6d %5d  %s\n", spec.abbreviation.c_str(),
                spec.feature_count, cat.cve_count(sid), spec.name.c_str());
  }
  return 0;
}

int cmd_feature(Reproduction& repro, int argc, char** argv) {
  if (argc < 1) return usage();
  const catalog::Feature* f = repro.catalog().find_feature(argv[0]);
  if (f == nullptr) {
    std::cerr << "unknown feature: " << argv[0] << "\n";
    return 1;
  }
  const catalog::StandardSpec& spec = repro.catalog().standard(f->standard);
  std::cout << f->full_name << "\n"
            << "  standard:   " << spec.name << " (" << spec.abbreviation
            << ")\n"
            << "  kind:       "
            << (f->kind == catalog::FeatureKind::kMethod ? "method"
                                                         : "property")
            << "\n"
            << "  first in:   Firefox " << f->first_version << " ("
            << f->implemented.to_string() << ")\n";
  return 0;
}

int cmd_fetch(Reproduction& repro, int argc, char** argv) {
  if (argc < 1) return usage();
  const auto url = net::Url::parse(argv[0]);
  if (!url) {
    std::cerr << "bad url: " << argv[0] << "\n";
    return 1;
  }
  const bool auth = has_flag(argc, argv, "--auth");
  const auto res = repro.web().fetch(*url, auth);
  if (!res) {
    std::cerr << "no response (dead site, 404, or login required)\n";
    return 1;
  }
  std::cout << res->body;
  return 0;
}

int cmd_crawl(Reproduction& repro, int argc, char** argv) {
  if (argc < 1) return usage();
  const net::SitePlan* site = repro.web().site_by_host(argv[0]);
  if (site == nullptr) {
    std::cerr << "unknown domain: " << argv[0] << "\n";
    return 1;
  }
  crawler::CrawlConfig config;
  if (has_flag(argc, argv, "--blockers")) {
    config.browser.ad_blocker = blocker::make_ad_blocker(repro.web());
    config.browser.tracking_blocker =
        blocker::make_tracking_blocker(repro.web());
  }
  config.browser.authenticated = has_flag(argc, argv, "--auth");

  const crawler::SiteVisit visit =
      crawler::crawl_site(repro.web(), config, *site, repro.config().seed);
  std::cerr << "measured=" << visit.measured
            << " pages=" << visit.pages_visited
            << " invocations=" << visit.invocations
            << " scripts_blocked=" << visit.scripts_blocked << "\n";
  const catalog::Catalog& cat = repro.catalog();
  for (std::size_t f = 0; f < visit.features.size(); ++f) {
    if (!visit.features.test(f)) continue;
    const catalog::Feature& feature =
        cat.feature(static_cast<catalog::FeatureId>(f));
    std::cout << site->domain << "," << feature.full_name << ","
              << cat.standard(feature.standard).abbreviation << "\n";
  }
  return 0;
}

int cmd_standard(Reproduction& repro, int argc, char** argv) {
  if (argc < 1) return usage();
  const std::string detail =
      analysis::render_standard_detail(repro.analysis(), argv[0]);
  if (detail.empty()) {
    std::cerr << "unknown standard: " << argv[0] << "\n";
    return 1;
  }
  std::cout << detail;
  return 0;
}

// Fold `fu survey` flags into the config; returns false on a bad flag.
// Values are accepted as either "--flag value" or "--flag=value".
bool parse_survey_flags(ReproductionConfig& config, int argc, char** argv) {
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    std::optional<std::string> inline_value;
    if (arg.rfind("--", 0) == 0) {
      if (const std::size_t eq = arg.find('='); eq != std::string::npos) {
        inline_value = arg.substr(eq + 1);
        arg.resize(eq);
      }
    }
    const auto string_value = [&](std::string& out) {
      if (inline_value) {
        out = *inline_value;
        return true;
      }
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        return false;
      }
      out = argv[++i];
      return true;
    };
    // A numeric flag rejects a missing or non-numeric value outright —
    // atoi-style "abc -> 0" would silently launch a full-scale survey.
    const auto int_value = [&](int& out) {
      std::string text;
      if (!string_value(text)) return false;
      char* end = nullptr;
      const long parsed = std::strtol(text.c_str(), &end, 10);
      if (end == text.c_str() || *end != '\0' || parsed < 0) {
        std::cerr << arg << ": not a number: " << text << "\n";
        return false;
      }
      out = static_cast<int>(parsed);
      return true;
    };
    const auto double_value = [&](double& out) {
      std::string text;
      if (!string_value(text)) return false;
      char* end = nullptr;
      const double parsed = std::strtod(text.c_str(), &end);
      if (end == text.c_str() || *end != '\0' || parsed < 0) {
        std::cerr << arg << ": not a number: " << text << "\n";
        return false;
      }
      out = parsed;
      return true;
    };
    const auto boolean = [&](bool& out) {
      if (inline_value) {
        std::cerr << arg << " takes no value\n";
        return false;
      }
      out = true;
      return true;
    };
    if (arg == "--resume") {
      if (!boolean(config.resume)) return false;
    } else if (arg == "--progress") {
      if (!boolean(config.progress)) return false;
    } else if (arg == "--threads") {
      if (!int_value(config.threads)) return false;
    } else if (arg == "--retries") {
      if (!int_value(config.retries)) return false;
    } else if (arg == "--checkpoint-dir") {
      if (!string_value(config.checkpoint_dir)) return false;
    } else if (arg == "--checkpoint-secs") {
      if (!double_value(config.checkpoint_secs)) return false;
    } else if (arg == "--trace-sample") {
      if (!int_value(config.trace_sample)) return false;
    } else if (arg == "--trace-out") {
      if (!string_value(config.trace_out)) return false;
    } else if (arg == "--trace-jsonl") {
      if (!string_value(config.trace_jsonl)) return false;
    } else if (arg == "--metrics-out") {
      if (!string_value(config.metrics_out)) return false;
    } else {
      std::cerr << "unknown survey flag: " << arg << "\n";
      return false;
    }
  }
  // Resuming implies shards exist somewhere; default next to the cache.
  if (config.resume && config.checkpoint_dir.empty()) {
    config.checkpoint_dir = "fu_checkpoint";
  }
  return true;
}

bool write_text_file(const std::string& path, const std::string& text,
                     const char* what) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
  out.flush();
  if (!out) {
    std::cerr << "cannot write " << what << " to " << path << "\n";
    return false;
  }
  return true;
}

int cmd_survey(Reproduction& repro) {
  const ReproductionConfig& config = repro.config();
  const bool tracing =
      !config.trace_out.empty() || !config.trace_jsonl.empty();

  // Run the crawl first, under the tracer if one was requested, so the
  // observability files cover exactly the survey (not the analysis pass).
  std::optional<obs::Tracer> tracer;
  if (tracing) {
    obs::Registry::global().reset();
    obs::set_trace_sampling(
        config.trace_sample > 1
            ? static_cast<std::uint64_t>(config.trace_sample)
            : 0);
    tracer.emplace();
    tracer->start();
  }
  const crawler::SurveyResults& survey = repro.survey();
  if (tracer) {
    const std::vector<obs::SpanRecord> records = tracer->stop();
    if (records.empty()) {
      std::cerr << "note: trace is empty — the survey was served from the "
                   "on-disk cache (set FU_CACHE=0 to trace a real crawl)\n";
    }
    if (tracer->dropped() > 0) {
      std::cerr << "note: " << tracer->dropped()
                << " span(s) dropped to ring-buffer overflow\n";
    }
    if (!config.trace_out.empty() &&
        !write_text_file(config.trace_out, obs::Tracer::chrome_json(records),
                         "trace")) {
      return 1;
    }
    if (!config.trace_jsonl.empty() &&
        !write_text_file(config.trace_jsonl, obs::Tracer::jsonl(records),
                         "trace")) {
      return 1;
    }
  }
  if (!config.metrics_out.empty() &&
      !write_text_file(config.metrics_out,
                       obs::Registry::global().snapshot().to_json(),
                       "metrics")) {
    return 1;
  }

  const analysis::Analysis& an = repro.analysis();
  std::cout << analysis::render_table1(survey) << "\n"
            << analysis::render_table3(survey) << "\n"
            << analysis::render_headline(an);
  const int failed = survey.sites_failed();
  if (failed > 0) {
    std::cerr << failed << " site(s) failed after "
              << (1 + config.retries)
              << " attempt(s); see failures.csv in fu report\n";
  }
  return 0;
}

int cmd_trace(int argc, char** argv) {
  obs::TraceSummaryOptions options;
  std::string path;
  std::string write_baseline;
  std::string check_baseline;
  double tolerance = 0.5;
  bool as_json = false;
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    std::string value;
    const std::size_t eq = arg.find('=');
    const bool takes_value = arg == "--top" || arg == "--write-baseline" ||
                             arg == "--check-baseline" || arg == "--tolerance";
    if (arg.rfind("--", 0) == 0 && eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg.resize(eq);
    } else if (takes_value && i + 1 < argc) {
      value = argv[++i];
    }
    if (arg == "--top") {
      char* end = nullptr;
      const long parsed = std::strtol(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0' || parsed <= 0) {
        std::cerr << "--top: not a positive number: " << value << "\n";
        return 2;
      }
      options.top_n = static_cast<std::size_t>(parsed);
    } else if (arg == "--tolerance") {
      char* end = nullptr;
      const double parsed = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0' || parsed < 0) {
        std::cerr << "--tolerance: not a number: " << value << "\n";
        return 2;
      }
      tolerance = parsed;
    } else if (arg == "--json") {
      as_json = true;
    } else if (arg == "--write-baseline") {
      write_baseline = value;
    } else if (arg == "--check-baseline") {
      check_baseline = value;
    } else if (path.empty() && arg.rfind("--", 0) != 0) {
      path = arg;
    } else {
      std::cerr << "unknown trace argument: " << argv[i] << "\n";
      return 2;
    }
  }
  if (path.empty()) return usage();

  std::vector<obs::ParsedSpan> spans;
  std::string error;
  if (!obs::load_trace_file(path, spans, &error)) {
    std::cerr << "fu trace: " << path << ": " << error << "\n";
    return 1;
  }

  const std::vector<obs::StageStats> stats = obs::trace_stage_stats(spans);
  if (!write_baseline.empty() &&
      !write_text_file(write_baseline, obs::stage_stats_json(stats),
                       "baseline")) {
    return 1;
  }
  if (!check_baseline.empty()) {
    std::ifstream in(check_baseline, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (!in) {
      std::cerr << "fu trace: cannot read baseline " << check_baseline
                << "\n";
      return 1;
    }
    std::vector<obs::StageStats> baseline;
    if (!obs::parse_stage_stats_json(buffer.str(), baseline, &error)) {
      std::cerr << "fu trace: " << check_baseline << ": " << error << "\n";
      return 1;
    }
    const obs::RegressionReport report =
        obs::check_stage_regression(baseline, stats, tolerance);
    std::cout << "latency gate (tolerance +" << tolerance * 100 << "%):\n"
              << report.text;
    if (report.regressed) {
      std::cerr << "fu trace: stage latency regressed beyond tolerance\n";
      return 1;
    }
    return 0;
  }
  if (as_json) {
    std::cout << obs::stage_stats_json(stats);
    return 0;
  }
  std::cout << obs::render_trace_summary(spans, options);
  return 0;
}

int cmd_report(Reproduction& repro, int argc, char** argv) {
  if (argc < 1) return usage();
  const int files = analysis::write_report(argv[0], repro.analysis());
  std::cout << "wrote " << files << " files to " << argv[0] << "\n";
  return 0;
}

int cmd_lists(Reproduction& repro) {
  std::cout << blocker::ad_list_text(repro.web()) << "\n"
            << blocker::tracking_list_text(repro.web());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  char** rest = argv + 2;
  const int nrest = argc - 2;
  // `fu trace` only reads a file; it needs no reproduction pipeline.
  if (command == "trace") return cmd_trace(nrest, rest);
  ReproductionConfig config = ReproductionConfig::from_env();
  if (command == "survey" && !parse_survey_flags(config, nrest, rest)) {
    return usage();
  }
  Reproduction repro(config);
  try {
    if (command == "catalog") return cmd_catalog(repro, nrest, rest);
    if (command == "feature") return cmd_feature(repro, nrest, rest);
    if (command == "fetch") return cmd_fetch(repro, nrest, rest);
    if (command == "crawl") return cmd_crawl(repro, nrest, rest);
    if (command == "standard") return cmd_standard(repro, nrest, rest);
    if (command == "survey") return cmd_survey(repro);
    if (command == "report") return cmd_report(repro, nrest, rest);
    if (command == "lists") return cmd_lists(repro);
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
  return usage();
}
