// The two blocking extensions the study installs (§3.6, §4.3.2):
//   * an AdBlock-Plus-style ad blocker driven by a crowdsourced-looking list
//     of ad-network domains and ad-path patterns, plus element hiding;
//   * a Ghostery-style tracking blocker driven by a curated tracker-domain
//     list.
// List text is generated from the synthetic web's third-party pools, then
// parsed by the filter engine — the lists are real inputs, not shortcuts:
// blocking decisions always go through FilterList::should_block.
#pragma once

#include <memory>
#include <string>

#include "blocker/filter.h"
#include "net/web.h"

namespace fu::blocker {

// Raw list text, in ABP filter syntax.
std::string ad_list_text(const net::SyntheticWeb& web);
std::string tracking_list_text(const net::SyntheticWeb& web);

// A browser extension that can veto resource loads. The measuring browser
// consults every installed extension before fetching (like ABP/Ghostery
// hooking the request pipeline).
class BlockingExtension {
 public:
  BlockingExtension(std::string name, FilterList list)
      : name_(std::move(name)), list_(std::move(list)) {}

  const std::string& name() const noexcept { return name_; }
  const FilterList& list() const noexcept { return list_; }

  bool should_block(const net::Url& url, const RequestContext& ctx) const {
    return list_.should_block(url, ctx);
  }

 private:
  std::string name_;
  FilterList list_;
};

// Factory helpers ("install AdBlock Plus / Ghostery").
std::shared_ptr<const BlockingExtension> make_ad_blocker(
    const net::SyntheticWeb& web);
std::shared_ptr<const BlockingExtension> make_tracking_blocker(
    const net::SyntheticWeb& web);

}  // namespace fu::blocker
