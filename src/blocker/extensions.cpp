#include "blocker/extensions.h"

namespace fu::blocker {

std::string ad_list_text(const net::SyntheticWeb& web) {
  std::string text;
  text += "! Synthetic ad list (AdBlock Plus syntax)\n";
  text += "! Domain rules for known ad networks\n";
  for (const std::string& host : web.ad_hosts()) {
    text += "||" + host + "^$third-party\n";
  }
  // Ad networks that double as trackers are on both lists.
  for (const std::string& host : web.dual_hosts()) {
    text += "||" + host + "^$third-party\n";
  }
  text += "! Generic ad-path rules\n";
  text += "/adtag/*$script\n";
  text += "*/sync/tag.js$script,third-party\n";
  text += "! Cosmetic rules\n";
  text += "##.ad-slot\n";
  text += "##.sponsored-banner\n";
  return text;
}

std::string tracking_list_text(const net::SyntheticWeb& web) {
  std::string text;
  text += "! Synthetic tracking-protection list (Ghostery-style)\n";
  for (const std::string& host : web.tracker_hosts()) {
    text += "||" + host + "^\n";
  }
  for (const std::string& host : web.dual_hosts()) {
    text += "||" + host + "^\n";
  }
  text += "! Generic tracking endpoints\n";
  text += "/collect/t.js$script\n";
  text += "*/beacon?*\n";
  return text;
}

std::shared_ptr<const BlockingExtension> make_ad_blocker(
    const net::SyntheticWeb& web) {
  return std::make_shared<const BlockingExtension>(
      "AdBlockPlus", FilterList::parse(ad_list_text(web), "ad-list"));
}

std::shared_ptr<const BlockingExtension> make_tracking_blocker(
    const net::SyntheticWeb& web) {
  return std::make_shared<const BlockingExtension>(
      "Ghostery", FilterList::parse(tracking_list_text(web), "tracking-list"));
}

}  // namespace fu::blocker
