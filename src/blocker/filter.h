// AdBlock-Plus-style filter engine (§3.6).
//
// Supports the rule grammar subset that real ad and tracking lists lean on:
//   ||example.com^          domain anchor (host or any subdomain)
//   |http://exact-prefix    start anchor
//   /adtag/*  *banner*      substring patterns with '*' wildcards
//   rule$third-party        option: only third-party requests
//   rule$script             option: only script resources
//   rule$domain=a.com|~b.com  option: limit by the page's site
//   @@rule                  exception (whitelist) rule
//   example.com##.ad-slot   element hiding (cosmetic) rules
//   ! comment
//
// The '^' separator matches a URL boundary (end, '/', '?', ':') as in ABP.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/url.h"

namespace fu::blocker {

enum class ResourceType { kDocument, kScript, kSubdocument, kImage, kOther };

// Context for a match decision.
struct RequestContext {
  std::string page_domain;  // registrable domain of the top page
  bool third_party = false;
  ResourceType type = ResourceType::kOther;
};

struct FilterRule {
  enum class Anchor { kNone, kDomain, kStart };

  std::string raw;                 // original text, for diagnostics
  Anchor anchor = Anchor::kNone;
  std::string pattern;             // anchor-specific meaning
  bool exception = false;          // @@ rule
  bool opt_third_party = false;
  bool opt_script = false;
  std::vector<std::string> opt_domains;      // empty = all
  std::vector<std::string> opt_not_domains;

  bool matches(const net::Url& url, const RequestContext& ctx) const;
};

struct HidingRule {
  std::vector<std::string> domains;  // empty = global
  std::string selector;              // ".class" or "#id"
};

// One parsed list (e.g. "the ad list" or "the tracking list").
class FilterList {
 public:
  static FilterList parse(std::string_view text, std::string name);

  const std::string& name() const noexcept { return name_; }
  const std::vector<FilterRule>& rules() const noexcept { return rules_; }
  const std::vector<HidingRule>& hiding_rules() const noexcept {
    return hiding_; }

  // Blocking decision: any blocking rule matches and no exception does.
  bool should_block(const net::Url& url, const RequestContext& ctx) const;

  // Selectors to hide on a page of the given site.
  std::vector<std::string> hiding_selectors_for(
      std::string_view page_domain) const;

  std::size_t size() const noexcept { return rules_.size(); }

 private:
  std::string name_;
  std::vector<FilterRule> rules_;
  std::vector<HidingRule> hiding_;
};

// Parse a single filter line; nullopt for comments/blank/hiding lines.
std::optional<FilterRule> parse_rule(std::string_view line);

}  // namespace fu::blocker
