#include "blocker/filter.h"

#include <algorithm>
#include <cctype>

#include "support/strings.h"

namespace fu::blocker {

namespace {

bool is_separator(char c) {
  // ABP '^': anything that is not alphanumeric, '-', '.', '%', or '_'
  return !(std::isalnum(static_cast<unsigned char>(c)) || c == '-' ||
           c == '.' || c == '%' || c == '_');
}

// Wildcard match where '*' spans any run and '^' matches one separator char
// or the end of the string.
bool pattern_match_at(std::string_view pattern, std::string_view text,
                      std::size_t text_pos) {
  std::size_t p = 0, t = text_pos;
  std::size_t star = std::string_view::npos, mark = 0;
  while (t <= text.size()) {
    if (p == pattern.size()) return true;  // pattern consumed
    const char pc = pattern[p];
    if (t < text.size() && (pc == text[t] || (pc == '^' && is_separator(text[t])))) {
      ++p;
      ++t;
    } else if (t == text.size() && pc == '^') {
      ++p;  // '^' matches end of URL
    } else if (pc == '*') {
      star = p++;
      mark = t;
    } else if (star != std::string_view::npos && mark < text.size()) {
      p = star + 1;
      t = ++mark;
    } else {
      return false;
    }
  }
  return p == pattern.size();
}

// Substring search with wildcards: try every start offset.
bool pattern_search(std::string_view pattern, std::string_view text) {
  if (pattern.empty()) return true;
  for (std::size_t start = 0; start <= text.size(); ++start) {
    if (pattern_match_at(pattern, text, start)) return true;
    // minor optimization: a leading '*' already spans all offsets
    if (pattern.front() == '*') break;
  }
  return false;
}

bool domain_in(const std::vector<std::string>& domains,
               std::string_view domain) {
  return std::any_of(domains.begin(), domains.end(),
                     [domain](const std::string& d) { return d == domain; });
}

}  // namespace

bool FilterRule::matches(const net::Url& url, const RequestContext& ctx) const {
  if (opt_third_party && !ctx.third_party) return false;
  if (opt_script && ctx.type != ResourceType::kScript) return false;
  if (!opt_domains.empty() && !domain_in(opt_domains, ctx.page_domain)) {
    return false;
  }
  if (!opt_not_domains.empty() && domain_in(opt_not_domains, ctx.page_domain)) {
    return false;
  }

  const std::string spec = url.spec();
  switch (anchor) {
    case Anchor::kDomain: {
      // "||host/path..." — split at the first separator-ish char
      std::string_view pat = pattern;
      std::size_t host_end = 0;
      while (host_end < pat.size() && !is_separator(pat[host_end]) ) ++host_end;
      const std::string_view host_pat = pat.substr(0, host_end);
      const std::string_view rest = pat.substr(host_end);
      if (!net::host_matches_domain(url.host(), host_pat)) return false;
      if (rest.empty() || rest == "^") return true;
      // match the remainder against path+query starting at the path
      std::string tail = url.path();
      if (!url.query().empty()) tail += "?" + url.query();
      return pattern_match_at(rest, tail, 0) || pattern_search(rest, tail);
    }
    case Anchor::kStart:
      return pattern_match_at(pattern, spec, 0);
    case Anchor::kNone:
      return pattern_search(pattern, spec);
  }
  return false;
}

std::optional<FilterRule> parse_rule(std::string_view line) {
  line = support::trim(line);
  if (line.empty() || line.front() == '!') return std::nullopt;
  if (line.find("##") != std::string_view::npos) return std::nullopt;  // hiding

  FilterRule rule;
  rule.raw = std::string(line);
  if (support::starts_with(line, "@@")) {
    rule.exception = true;
    line.remove_prefix(2);
  }

  // split off options
  const std::size_t dollar = line.rfind('$');
  if (dollar != std::string_view::npos && dollar != 0) {
    const std::string_view opts = line.substr(dollar + 1);
    line = line.substr(0, dollar);
    for (const std::string& opt : support::split_nonempty(opts, ',')) {
      if (opt == "third-party") {
        rule.opt_third_party = true;
      } else if (opt == "script") {
        rule.opt_script = true;
      } else if (support::starts_with(opt, "domain=")) {
        for (const std::string& d :
             support::split_nonempty(opt.substr(7), '|')) {
          if (!d.empty() && d.front() == '~') {
            rule.opt_not_domains.push_back(d.substr(1));
          } else {
            rule.opt_domains.push_back(d);
          }
        }
      }
      // unknown options are ignored (fail-open, like a tolerant parser)
    }
  }

  if (support::starts_with(line, "||")) {
    rule.anchor = FilterRule::Anchor::kDomain;
    rule.pattern = std::string(line.substr(2));
  } else if (support::starts_with(line, "|")) {
    rule.anchor = FilterRule::Anchor::kStart;
    rule.pattern = std::string(line.substr(1));
  } else {
    rule.anchor = FilterRule::Anchor::kNone;
    rule.pattern = std::string(line);
  }
  if (rule.pattern.empty()) return std::nullopt;
  return rule;
}

FilterList FilterList::parse(std::string_view text, std::string name) {
  FilterList list;
  list.name_ = std::move(name);
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i != text.size() && text[i] != '\n') continue;
    std::string_view line = text.substr(start, i - start);
    start = i + 1;
    line = support::trim(line);
    if (line.empty()) continue;

    const std::size_t hide = line.find("##");
    if (hide != std::string_view::npos && line.front() != '!') {
      HidingRule h;
      const std::string_view domains = line.substr(0, hide);
      h.selector = std::string(line.substr(hide + 2));
      if (!domains.empty()) {
        for (const std::string& d : support::split_nonempty(domains, ',')) {
          h.domains.push_back(d);
        }
      }
      if (!h.selector.empty()) list.hiding_.push_back(std::move(h));
      continue;
    }
    if (auto rule = parse_rule(line)) list.rules_.push_back(std::move(*rule));
  }
  return list;
}

bool FilterList::should_block(const net::Url& url,
                              const RequestContext& ctx) const {
  bool blocked = false;
  for (const FilterRule& rule : rules_) {
    if (rule.exception || blocked) continue;
    if (rule.matches(url, ctx)) blocked = true;
  }
  if (!blocked) return false;
  for (const FilterRule& rule : rules_) {
    if (rule.exception && rule.matches(url, ctx)) return false;
  }
  return true;
}

std::vector<std::string> FilterList::hiding_selectors_for(
    std::string_view page_domain) const {
  std::vector<std::string> out;
  for (const HidingRule& h : hiding_) {
    if (h.domains.empty() ||
        std::any_of(h.domains.begin(), h.domains.end(),
                    [page_domain](const std::string& d) {
                      return d == page_domain;
                    })) {
      out.push_back(h.selector);
    }
  }
  return out;
}

}  // namespace fu::blocker
