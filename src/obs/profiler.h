// Continuous profiling: a dependency-free cooperative sampling profiler.
//
// Worker threads maintain a per-thread *frame stack* — a fixed-capacity
// array of atomic words, one per open frame — describing what the thread is
// doing right now: pipeline stage (TraceSpan scopes push these), the MiniJS
// function being interpreted, or the instrumented feature shim a call landed
// in. A Profiler, once started, runs a dedicated sampler thread that at a
// configurable Hz snapshots every registered stack and aggregates identical
// stacks into counts; stop() resolves the packed frames into labels and
// returns a folded-stack profile (see folded.h) whose every line reads
//
//   worker-3;site-visit;execute;script:example0.com/app.js;fn:render;std:DOM/Document.createElement 17
//
// Frames are pushed only while a profiler is live: the disabled path of
// every hook is a single relaxed atomic load and a branch (bench_prof_overhead
// asserts this stays in the ~1 ns class of a disabled TraceSpan). A profiler
// started mid-run therefore misses frames opened before start() until those
// scopes unwind — at crawl granularity (stages are µs..ms) a 1 s sample
// window sees full stacks almost immediately.
//
// Sampling is cooperative and lock-free on the worker side: a push/pop is a
// couple of relaxed/release stores to the thread's own stack, and the
// sampler reads those words with acquire/relaxed loads. A sample taken
// mid-update can mix a just-popped frame with its replacement — harmless for
// a statistical profile, and every access is atomic, so the scheme is clean
// under ThreadSanitizer. Profiling never reads or perturbs survey state:
// results are bit-identical with profiling on or off (engine_identity_test
// enforces this).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/folded.h"

namespace fu::obs {

// What a frame word describes; packed into the high bits of the word.
enum class FrameKind : std::uint8_t {
  kStage = 0,    // pipeline stage span (id = interned label)
  kScript = 1,   // MiniJS program or function (id = interned label)
  kFeature = 2,  // instrumented feature shim (id = catalog FeatureId index)
};

namespace prof {

namespace internal {
// Count of live frame-recording leases, not a bool: the CPU Profiler and
// the allocation profiler (obs/mem.h) each take one, so frames keep being
// recorded while either is sampling.
extern std::atomic<std::uint32_t> g_enabled;
void enable_frames();
void disable_frames();
struct ThreadStack;
ThreadStack* acquire_stack();
}  // namespace internal

// The single branch every disabled-profiling hot path pays.
inline bool enabled() noexcept {
  return internal::g_enabled.load(std::memory_order_relaxed) != 0;
}

// Interns `label` into the process-wide label table; returns its stable
// non-zero id. Ids are never recycled, so callers may cache them for the
// process lifetime. Takes a lock — call only when enabled() (or from cold
// setup paths).
std::uint32_t intern_label(std::string_view label);

// intern_label specialised for string literals: keyed on the pointer, the
// common lookup is a short lock-free scan. Stage spans use this.
std::uint32_t intern_static(const char* label);

// Names this thread's stack in profile output (e.g. "worker-3"); unnamed
// threads render as "thread-N" in registration order. Cheap; callable any
// time, including with no profiler live.
void set_thread_label(std::string_view label);

// Push/pop a frame on this thread's stack. Pops must pair with pushes —
// use ProfFrame unless a scope object is impossible. Beyond the stack
// capacity (128 frames) pushes keep counting but stop recording; samples of
// an overflowed stack show the first 128 frames.
void push(FrameKind kind, std::uint32_t id);
void pop();

// Labels for FrameKind::kFeature frames, indexed by catalog FeatureId.
// `label` is what the frame renders as in folded stacks (the crawler uses
// "std:<abbrev>/<feature>" so per-standard attribution survives in plain
// folded text); `standard` feeds profile_standards.csv. run_survey installs
// the table for its catalog before crawling; a missing or short table
// renders frames as "feature:<id>".
struct FeatureLabel {
  std::string label;
  std::string standard;
};
void set_feature_table(std::vector<FeatureLabel> table);

namespace internal {

inline constexpr std::uint32_t kMaxFrames = 128;  // == ThreadStack::kCapacity

// A copy of one thread's live frame stack, taken by the owning thread
// itself (plain relaxed loads — no cross-thread synchronization needed).
// The allocation profiler captures one of these per sampled allocation.
struct RawStack {
  std::uint32_t thread_label = 0;
  std::uint32_t thread_index = 0;
  std::uint32_t depth = 0;
  std::array<std::uint64_t, kMaxFrames> frames{};
};
void capture_own_stack(RawStack& out);

// Snapshots for batch frame resolution (what Profiler::stop() uses).
std::vector<std::string> label_table_copy();
std::shared_ptr<const std::vector<FeatureLabel>> feature_table();

// Renders "thread;frame;frame" text from packed frame words using the
// given table snapshots — the one resolution path both profilers share.
std::string resolve_stack_text(const std::vector<std::string>& labels,
                               const std::vector<FeatureLabel>* features,
                               std::uint32_t thread_label,
                               std::uint32_t thread_index,
                               const std::uint64_t* frames,
                               std::uint32_t depth);

}  // namespace internal

}  // namespace prof

// RAII frame scope. Remembers whether it pushed, so a profiler starting or
// stopping mid-scope never unbalances the stack.
class ProfFrame {
 public:
  ProfFrame(FrameKind kind, std::uint32_t id) {
    if (prof::enabled()) {
      pushed_ = true;
      prof::push(kind, id);
    }
  }
  ~ProfFrame() {
    if (pushed_) prof::pop();
  }
  ProfFrame(const ProfFrame&) = delete;
  ProfFrame& operator=(const ProfFrame&) = delete;

 private:
  bool pushed_ = false;
};

// Stage-frame scope for string-literal span names; TraceSpan and
// SampledSiteSpan embed one so every pipeline span doubles as a profiler
// frame (the point of "reusing the TraceSpan scopes": tracing and profiling
// see the same stage structure). Disabled cost: one relaxed load + branch.
class StageFrame {
 public:
  explicit StageFrame(const char* name) {
    if (prof::enabled()) {
      pushed_ = true;
      prof::push(FrameKind::kStage, prof::intern_static(name));
    }
  }
  ~StageFrame() {
    if (pushed_) prof::pop();
  }
  StageFrame(const StageFrame&) = delete;
  StageFrame& operator=(const StageFrame&) = delete;

 private:
  bool pushed_ = false;
};

class Profiler {
 public:
  // `hz` is the sampling rate, clamped to [1, 1000]. 97 (prime, so it does
  // not beat against millisecond-periodic work) is a good default.
  explicit Profiler(double hz = 97.0);
  ~Profiler();  // stops if still running

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  // Install as the process-wide profiler and start the sampler thread. Only
  // one profiler may be live; a second start() throws std::logic_error
  // (the /profilez endpoint turns that into 409 Conflict).
  void start();
  bool active() const noexcept;

  // Stop sampling, join the sampler thread and resolve the aggregate into
  // a folded profile. Idempotent: a second stop() returns the same profile.
  FoldedProfile stop();

  // Total samples recorded so far (live; readable while sampling).
  std::uint64_t samples() const noexcept;

  double hz() const noexcept { return hz_; }

 private:
  void sampler_loop();

  double hz_;
  std::thread thread_;
  std::atomic<bool> stop_flag_{false};
  std::atomic<std::uint64_t> sample_count_{0};
  struct Agg;  // sampler-thread-private aggregation
  std::unique_ptr<Agg> agg_;
  FoldedProfile result_;
  bool started_ = false;
  bool stopped_ = false;
};

// Convenience for /profilez: sample the process for `seconds` at `hz` and
// return the folded profile. Blocks the calling thread for the duration.
// Throws std::logic_error if another profiler is already live.
FoldedProfile profile_for(double seconds, double hz);

}  // namespace fu::obs
