#include "obs/delta.h"

#include <algorithm>
#include <cstdio>

namespace fu::obs {

namespace {

const std::string& entry_name(
    const std::pair<std::string, std::uint64_t>& counter) {
  return counter.first;
}
const std::string& entry_name(const Histogram::Snapshot& hist) {
  return hist.name;
}

// Registry snapshots iterate std::map, so each section arrives sorted by
// name — diffing is a two-pointer walk. Entries present only in `prev`
// (impossible today: handles are never unregistered) simply drop out.
template <typename Entry, typename Fn>
void walk_matched(const std::vector<Entry>& cur, const std::vector<Entry>& prev,
                  const Fn& fn) {
  std::size_t p = 0;
  for (const Entry& entry : cur) {
    const std::string& name = entry_name(entry);
    while (p < prev.size() && entry_name(prev[p]) < name) ++p;
    const Entry* match =
        p < prev.size() && entry_name(prev[p]) == name ? &prev[p] : nullptr;
    fn(entry, match);
  }
}

}  // namespace

DeltaRing::DeltaRing(std::size_t capacity)
    : capacity_(capacity > 0 ? capacity : 1) {}

void DeltaRing::prime(MetricsSnapshot baseline, double now_seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  prev_ = std::move(baseline);
  prev_time_ = now_seconds;
  primed_ = true;
}

std::uint64_t DeltaRing::record(const MetricsSnapshot& snap,
                                double now_seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!primed_) {
    // Self-priming first call: establish the baseline, emit no interval.
    prev_ = snap;
    prev_time_ = now_seconds;
    primed_ = true;
    return 0;
  }

  DeltaInterval interval;
  interval.seq = next_seq_++;
  interval.t0 = prev_time_;
  interval.t1 = now_seconds;

  walk_matched(snap.counters, prev_.counters,
               [&](const std::pair<std::string, std::uint64_t>& cur,
                   const std::pair<std::string, std::uint64_t>* prev) {
                 const std::uint64_t before = prev != nullptr ? prev->second : 0;
                 if (cur.second > before) {
                   interval.counters.emplace_back(cur.first,
                                                  cur.second - before);
                 }
               });

  // Gauges are levels, not rates: report the value as of the interval end.
  interval.gauges = snap.gauges;

  walk_matched(snap.histograms, prev_.histograms,
               [&](const Histogram::Snapshot& cur,
                   const Histogram::Snapshot* prev) {
                 const std::uint64_t before = prev != nullptr ? prev->count : 0;
                 if (cur.count <= before) return;
                 DeltaInterval::HistogramDelta delta;
                 delta.name = cur.name;
                 delta.count = cur.count - before;
                 delta.sum = cur.sum - (prev != nullptr ? prev->sum : 0);
                 delta.bounds = cur.bounds;
                 delta.counts = cur.counts;
                 if (prev != nullptr &&
                     prev->counts.size() == delta.counts.size()) {
                   for (std::size_t b = 0; b < delta.counts.size(); ++b) {
                     delta.counts[b] -= prev->counts[b];
                   }
                 }
                 interval.histograms.push_back(std::move(delta));
               });

  intervals_.push_back(std::move(interval));
  while (intervals_.size() > capacity_) intervals_.pop_front();
  prev_ = snap;
  prev_time_ = now_seconds;
  return next_seq_ - 1;
}

std::vector<DeltaInterval> DeltaRing::since(std::uint64_t seq) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<DeltaInterval> out;
  for (const DeltaInterval& interval : intervals_) {
    if (interval.seq > seq) out.push_back(interval);
  }
  return out;
}

std::uint64_t DeltaRing::latest_seq() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_seq_ - 1;
}

std::string DeltaRing::to_json(std::uint64_t since) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"latest_seq\": " + std::to_string(next_seq_ - 1);
  // A client asking for everything after `since` deserves to know when the
  // front of that range has been evicted: seq `since + 1` is gone whenever
  // it is older than the oldest retained interval (or the ring is empty but
  // intervals have been emitted). Without the flag, a slow poller silently
  // loses rate data and its cumulative plots drift.
  const std::uint64_t oldest =
      intervals_.empty() ? next_seq_ : intervals_.front().seq;
  if (since + 1 < oldest && next_seq_ > 1) {
    out += ", \"truncated\": true, \"oldest_seq\": " +
           std::to_string(intervals_.empty() ? 0 : oldest);
  }
  out += ", \"deltas\": [";
  bool first_interval = true;
  for (const DeltaInterval& interval : intervals_) {
    if (interval.seq <= since) continue;
    if (!first_interval) out += ",";
    first_interval = false;
    char head[96];
    std::snprintf(head, sizeof head, "\n  {\"seq\": %llu, \"t0\": %.3f, "
                  "\"t1\": %.3f, \"counters\": {",
                  static_cast<unsigned long long>(interval.seq), interval.t0,
                  interval.t1);
    out += head;
    bool first = true;
    for (const auto& [name, delta] : interval.counters) {
      if (!first) out += ", ";
      first = false;
      out += json_quote(name) + ": " + std::to_string(delta);
    }
    out += "}, \"gauges\": {";
    first = true;
    for (const MetricsSnapshot::GaugeValue& gauge : interval.gauges) {
      if (!first) out += ", ";
      first = false;
      out += json_quote(gauge.name) +
             ": {\"value\": " + std::to_string(gauge.value) +
             ", \"max\": " + std::to_string(gauge.max) + "}";
    }
    out += "}, \"histograms\": {";
    first = true;
    for (const DeltaInterval::HistogramDelta& hist : interval.histograms) {
      if (!first) out += ", ";
      first = false;
      out += json_quote(hist.name) +
             ": {\"count\": " + std::to_string(hist.count) +
             ", \"sum\": " + std::to_string(hist.sum) + ", \"bounds\": [";
      for (const std::uint64_t bound : hist.bounds) {
        out += std::to_string(bound) + ", ";
      }
      out += "\"+inf\"], \"counts\": [";
      for (std::size_t b = 0; b < hist.counts.size(); ++b) {
        if (b > 0) out += ", ";
        out += std::to_string(hist.counts[b]);
      }
      out += "]}";
    }
    out += "}}";
  }
  out += "\n]}\n";
  return out;
}

double delta_percentile(const std::vector<std::uint64_t>& bounds,
                        const std::vector<std::uint64_t>& counts, double p) {
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) total += c;
  if (total == 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  const double target = p / 100.0 * static_cast<double>(total);
  double cumulative = 0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    const double in_bucket = static_cast<double>(counts[b]);
    if (cumulative + in_bucket < target || in_bucket == 0) {
      cumulative += in_bucket;
      continue;
    }
    const double lo = b == 0 ? 0.0 : static_cast<double>(bounds[b - 1]);
    const double hi =
        b < bounds.size()
            ? static_cast<double>(bounds[b])
            : (bounds.empty() ? 0.0 : 2.0 * static_cast<double>(bounds.back()));
    const double fraction = (target - cumulative) / in_bucket;
    return lo + (std::max(hi, lo) - lo) * fraction;
  }
  return bounds.empty() ? 0.0 : static_cast<double>(bounds.back());
}

}  // namespace fu::obs
