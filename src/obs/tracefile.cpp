#include "obs/tracefile.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "obs/json.h"
#include "support/stats.h"

namespace fu::obs {

namespace {

bool set_error(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
  return false;
}

}  // namespace

bool parse_chrome_trace(std::string_view text, std::vector<ParsedSpan>& out,
                        std::string* error) {
  JsonValue root;
  std::string json_error;
  if (!json_parse(text, root, &json_error)) {
    return set_error(error, "invalid JSON: " + json_error);
  }
  const JsonValue* events = root.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    return set_error(error, "missing traceEvents array");
  }

  // Per-thread stack of open begins; E events must match LIFO.
  struct OpenSpan {
    std::string name;
    std::uint64_t ts_us = 0;
    std::string arg;
  };
  std::map<int, std::vector<OpenSpan>> open;

  for (const JsonValue& event : events->array) {
    if (!event.is_object()) return set_error(error, "event is not an object");
    const std::string phase = event.string_or("ph", "");
    if (phase == "M") continue;  // metadata (thread names)
    const int tid = static_cast<int>(event.number_or("tid", 0));
    const std::string name = event.string_or("name", "");
    const auto ts = static_cast<std::uint64_t>(event.number_or("ts", 0));
    std::string arg;
    if (const JsonValue* args = event.find("args"); args != nullptr) {
      arg = args->string_or("arg", "");
    }
    if (phase == "B") {
      open[tid].push_back({name, ts, std::move(arg)});
    } else if (phase == "E") {
      std::vector<OpenSpan>& stack = open[tid];
      if (stack.empty()) {
        return set_error(error, "end without begin: '" + name + "' on tid " +
                                    std::to_string(tid));
      }
      if (stack.back().name != name) {
        return set_error(error, "misnested span: end '" + name +
                                    "' while '" + stack.back().name +
                                    "' is open on tid " + std::to_string(tid));
      }
      ParsedSpan span;
      span.name = name;
      span.tid = tid;
      span.depth = static_cast<int>(stack.size()) - 1;
      span.ts_us = stack.back().ts_us;
      span.dur_us = ts > span.ts_us ? ts - span.ts_us : 0;
      span.arg = std::move(stack.back().arg);
      stack.pop_back();
      out.push_back(std::move(span));
    } else if (phase == "i" || phase == "I") {
      ParsedSpan span;
      span.name = name;
      span.tid = tid;
      span.depth = static_cast<int>(open[tid].size());
      span.ts_us = ts;
      span.instant = true;
      span.arg = std::move(arg);
      out.push_back(std::move(span));
    } else if (phase == "X") {  // complete events, for foreign traces
      ParsedSpan span;
      span.name = name;
      span.tid = tid;
      span.ts_us = ts;
      span.dur_us = static_cast<std::uint64_t>(event.number_or("dur", 0));
      span.arg = std::move(arg);
      out.push_back(std::move(span));
    } else {
      return set_error(error, "unsupported phase '" + phase + "'");
    }
  }
  for (const auto& [tid, stack] : open) {
    if (!stack.empty()) {
      return set_error(error, "begin without end: '" + stack.back().name +
                                  "' on tid " + std::to_string(tid));
    }
  }
  return true;
}

bool parse_trace_jsonl(std::string_view text, std::vector<ParsedSpan>& out,
                       std::string* error) {
  std::size_t line_number = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find('\n', pos);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(pos, end - pos);
    pos = end + 1;
    ++line_number;
    if (line.find_first_not_of(" \t\r") == std::string_view::npos) continue;

    JsonValue value;
    std::string json_error;
    if (!json_parse(line, value, &json_error)) {
      return set_error(error, "line " + std::to_string(line_number) + ": " +
                                  json_error);
    }
    if (!value.is_object() || value.find("name") == nullptr) {
      return set_error(error, "line " + std::to_string(line_number) +
                                  ": not a span object");
    }
    ParsedSpan span;
    span.name = value.string_or("name", "");
    span.tid = static_cast<int>(value.number_or("tid", 0));
    span.depth = static_cast<int>(value.number_or("depth", 0));
    span.ts_us = static_cast<std::uint64_t>(value.number_or("ts", 0));
    span.dur_us = static_cast<std::uint64_t>(value.number_or("dur", 0));
    const JsonValue* instant = value.find("instant");
    span.instant = instant != nullptr && instant->boolean;
    span.arg = value.string_or("arg", "");
    out.push_back(std::move(span));
  }
  return true;
}

bool load_trace_file(const std::string& path, std::vector<ParsedSpan>& out,
                     std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return set_error(error, "cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  const std::size_t first = text.find_first_not_of(" \t\r\n");
  if (first == std::string::npos) return set_error(error, "empty trace file");
  if (text[first] == '{' &&
      text.find("\"traceEvents\"") != std::string::npos) {
    return parse_chrome_trace(text, out, error);
  }
  return parse_trace_jsonl(text, out, error);
}

std::string render_trace_summary(const std::vector<ParsedSpan>& spans,
                                 const TraceSummaryOptions& options) {
  std::ostringstream out;
  std::size_t span_count = 0;
  for (const ParsedSpan& span : spans) span_count += span.instant ? 0 : 1;
  out << "trace: " << span_count << " spans, "
      << spans.size() - span_count << " instants\n\n";

  // --- per-stage latency ------------------------------------------------
  std::map<std::string, std::vector<double>> by_stage;
  for (const ParsedSpan& span : spans) {
    if (!span.instant) {
      by_stage[span.name].push_back(static_cast<double>(span.dur_us));
    }
  }
  out << "per-stage latency (µs):\n";
  char row[160];
  std::snprintf(row, sizeof row, "  %-18s %9s %10s %10s %10s %10s\n", "stage",
                "count", "p50", "p95", "p99", "max");
  out << row;
  for (const auto& [stage, durations] : by_stage) {
    std::snprintf(row, sizeof row,
                  "  %-18s %9zu %10.0f %10.0f %10.0f %10.0f\n", stage.c_str(),
                  durations.size(), support::percentile(durations, 50),
                  support::percentile(durations, 95),
                  support::percentile(durations, 99),
                  *std::max_element(durations.begin(), durations.end()));
    out << row;
  }

  // --- slowest sites ----------------------------------------------------
  std::vector<const ParsedSpan*> sites;
  for (const ParsedSpan& span : spans) {
    if (!span.instant && span.name == options.site_span) {
      sites.push_back(&span);
    }
  }
  if (!sites.empty()) {
    std::sort(sites.begin(), sites.end(),
              [](const ParsedSpan* a, const ParsedSpan* b) {
                return a->dur_us > b->dur_us;
              });
    out << "\nslowest sites:\n";
    const std::size_t show = std::min(options.top_n, sites.size());
    for (std::size_t i = 0; i < show; ++i) {
      std::snprintf(row, sizeof row, "  %2zu. %-32s %10llu µs  (tid %d)\n",
                    i + 1,
                    sites[i]->arg.empty() ? "?" : sites[i]->arg.c_str(),
                    static_cast<unsigned long long>(sites[i]->dur_us),
                    sites[i]->tid);
      out << row;
    }
  }

  // --- scheduler balance ------------------------------------------------
  // Busy time per thread = top-level span time (depth 0), so nested stages
  // are not double-counted.
  std::map<int, std::pair<std::uint64_t, std::size_t>> by_tid;  // busy, spans
  for (const ParsedSpan& span : spans) {
    if (span.instant) continue;
    auto& [busy, count] = by_tid[span.tid];
    if (span.depth == 0) busy += span.dur_us;
    ++count;
  }
  if (!by_tid.empty()) {
    out << "\nscheduler balance (top-level busy µs per thread):\n";
    std::uint64_t min_busy = ~std::uint64_t{0};
    std::uint64_t max_busy = 0;
    for (const auto& [tid, stats] : by_tid) {
      std::snprintf(row, sizeof row, "  tid %-4d %12llu µs  %8zu spans\n",
                    tid, static_cast<unsigned long long>(stats.first),
                    stats.second);
      out << row;
      min_busy = std::min(min_busy, stats.first);
      max_busy = std::max(max_busy, stats.first);
    }
    if (by_tid.size() > 1 && max_busy > 0) {
      std::snprintf(row, sizeof row,
                    "  balance: min/max busy = %.2f (1.00 = perfectly even)\n",
                    static_cast<double>(min_busy) /
                        static_cast<double>(max_busy));
      out << row;
    }
  }
  return out.str();
}

// ------------------------------------------------------- regression gate --

std::vector<StageStats> trace_stage_stats(
    const std::vector<ParsedSpan>& spans) {
  std::map<std::string, std::vector<double>> by_stage;
  for (const ParsedSpan& span : spans) {
    if (!span.instant) {
      by_stage[span.name].push_back(static_cast<double>(span.dur_us));
    }
  }
  std::vector<StageStats> stats;
  stats.reserve(by_stage.size());
  for (const auto& [stage, durations] : by_stage) {
    StageStats s;
    s.name = stage;
    s.count = durations.size();
    s.p50_us = support::percentile(durations, 50);
    s.p95_us = support::percentile(durations, 95);
    s.p99_us = support::percentile(durations, 99);
    stats.push_back(std::move(s));
  }
  return stats;  // std::map iteration order = sorted by name
}

std::string stage_stats_json(const std::vector<StageStats>& stats) {
  std::ostringstream out;
  out << "{\"stages\": [\n";
  for (std::size_t i = 0; i < stats.size(); ++i) {
    const StageStats& s = stats[i];
    char row[256];
    std::snprintf(row, sizeof row,
                  "  {\"name\": \"%s\", \"count\": %zu, \"p50_us\": %.1f, "
                  "\"p95_us\": %.1f, \"p99_us\": %.1f}%s\n",
                  s.name.c_str(), s.count, s.p50_us, s.p95_us, s.p99_us,
                  i + 1 < stats.size() ? "," : "");
    out << row;
  }
  out << "]}\n";
  return out.str();
}

bool parse_stage_stats_json(std::string_view text,
                            std::vector<StageStats>& out, std::string* error) {
  JsonValue root;
  std::string json_error;
  if (!json_parse(text, root, &json_error)) {
    return set_error(error, "invalid JSON: " + json_error);
  }
  const JsonValue* stages = root.find("stages");
  if (stages == nullptr || !stages->is_array()) {
    return set_error(error, "missing stages array");
  }
  for (const JsonValue& stage : stages->array) {
    if (!stage.is_object() || stage.find("name") == nullptr) {
      return set_error(error, "stage entry without a name");
    }
    StageStats s;
    s.name = stage.string_or("name", "");
    s.count = static_cast<std::size_t>(stage.number_or("count", 0));
    s.p50_us = stage.number_or("p50_us", 0);
    s.p95_us = stage.number_or("p95_us", 0);
    s.p99_us = stage.number_or("p99_us", 0);
    out.push_back(std::move(s));
  }
  return true;
}

RegressionReport check_stage_regression(
    const std::vector<StageStats>& baseline,
    const std::vector<StageStats>& current, double tolerance) {
  // Jitter floor (µs): sub-50µs movement is scheduler noise at any scale.
  constexpr double kFloorUs = 50.0;
  RegressionReport report;
  std::ostringstream out;

  std::map<std::string, const StageStats*> by_name;
  for (const StageStats& s : current) by_name[s.name] = &s;
  std::map<std::string, bool> seen;

  for (const StageStats& base : baseline) {
    const auto it = by_name.find(base.name);
    if (it == by_name.end()) {
      out << "  " << base.name << ": missing from current trace (skipped)\n";
      continue;
    }
    seen[base.name] = true;
    const StageStats& cur = *it->second;
    const auto check = [&](const char* which, double base_us,
                           double cur_us) -> bool {
      const double limit = base_us * (1.0 + tolerance) + kFloorUs;
      if (cur_us <= limit) return true;
      char row[256];
      std::snprintf(row, sizeof row,
                    "  %s %s: %.0fµs -> %.0fµs (limit %.0fµs)  REGRESSED\n",
                    base.name.c_str(), which, base_us, cur_us, limit);
      out << row;
      return false;
    };
    bool ok = true;
    ok &= check("p50", base.p50_us, cur.p50_us);
    ok &= check("p95", base.p95_us, cur.p95_us);
    ok &= check("p99", base.p99_us, cur.p99_us);
    if (ok) {
      char row[256];
      std::snprintf(row, sizeof row,
                    "  %s: p50 %.0f/%.0f p95 %.0f/%.0f p99 %.0f/%.0f µs "
                    "(current/baseline)  ok\n",
                    base.name.c_str(), cur.p50_us, base.p50_us, cur.p95_us,
                    base.p95_us, cur.p99_us, base.p99_us);
      out << row;
    } else {
      report.regressed = true;
    }
  }
  for (const StageStats& cur : current) {
    if (!seen.count(cur.name)) {
      out << "  " << cur.name << ": not in baseline (skipped)\n";
    }
  }
  report.text = out.str();
  return report;
}

}  // namespace fu::obs
