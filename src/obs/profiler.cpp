#include "obs/profiler.h"

#include <array>
#include <chrono>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

namespace fu::obs {
namespace prof {
namespace internal {

std::atomic<std::uint32_t> g_enabled{0};

void enable_frames() { g_enabled.fetch_add(1, std::memory_order_relaxed); }
void disable_frames() { g_enabled.fetch_sub(1, std::memory_order_relaxed); }

// A thread's live frame stack. Writers (the owning thread) use relaxed
// stores for frame words and a release store for depth; the sampler pairs
// that with an acquire load of depth, so the frames below the depth it read
// are visible. Stacks are allocated once and recycled through a free list
// when their thread exits — the sampler may keep a pointer to a stack whose
// thread is gone, which is safe because stacks are never freed.
struct ThreadStack {
  static constexpr std::uint32_t kCapacity = 128;
  std::atomic<std::uint32_t> depth{0};
  std::array<std::atomic<std::uint64_t>, kCapacity> frames{};
  std::atomic<std::uint32_t> label{0};  // interned thread label; 0 = unnamed
  std::uint32_t index = 0;              // registration order
};

struct Registry {
  std::mutex mutex;
  std::vector<ThreadStack*> stacks;  // every stack ever created
  std::vector<ThreadStack*> free;    // stacks whose owner thread exited
};

Registry& registry() {
  static Registry* r = new Registry;  // leaked: outlives thread destructors
  return *r;
}

struct LabelTable {
  std::mutex mutex;
  std::vector<std::string> labels{""};  // id 0 reserved = invalid
  std::unordered_map<std::string, std::uint32_t> index;
};

LabelTable& label_table() {
  static LabelTable* t = new LabelTable;
  return *t;
}

namespace {

ThreadStack* checkout_stack() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  if (!reg.free.empty()) {
    ThreadStack* stack = reg.free.back();
    reg.free.pop_back();
    return stack;
  }
  auto* stack = new ThreadStack;
  stack->index = static_cast<std::uint32_t>(reg.stacks.size());
  reg.stacks.push_back(stack);
  return stack;
}

// Owns this thread's registration; the destructor returns the (cleared)
// stack to the free list for the next thread.
struct StackHandle {
  ThreadStack* stack = checkout_stack();
  ~StackHandle() {
    stack->depth.store(0, std::memory_order_release);
    stack->label.store(0, std::memory_order_relaxed);
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    reg.free.push_back(stack);
  }
};

// Pointer-keyed cache for string-literal labels: a lock-free scan of an
// append-only array covers the steady state (the pipeline has ~a dozen
// distinct stage names).
struct StaticSlot {
  std::atomic<const char*> ptr{nullptr};
  std::atomic<std::uint32_t> id{0};
};
constexpr std::size_t kStaticSlots = 64;
StaticSlot g_static_slots[kStaticSlots];

std::mutex g_feature_mutex;
std::shared_ptr<const std::vector<FeatureLabel>> g_features;

}  // namespace

ThreadStack* acquire_stack() {
  thread_local StackHandle handle;
  return handle.stack;
}

std::uint64_t pack(FrameKind kind, std::uint32_t id) {
  return (static_cast<std::uint64_t>(kind) << 32) | id;
}

std::shared_ptr<const std::vector<FeatureLabel>> feature_table() {
  std::lock_guard<std::mutex> lock(g_feature_mutex);
  return g_features;
}

void capture_own_stack(RawStack& out) {
  static_assert(kMaxFrames == ThreadStack::kCapacity);
  ThreadStack* stack = acquire_stack();
  out.thread_label = stack->label.load(std::memory_order_relaxed);
  out.thread_index = stack->index;
  std::uint32_t depth = stack->depth.load(std::memory_order_relaxed);
  if (depth > ThreadStack::kCapacity) depth = ThreadStack::kCapacity;
  out.depth = depth;
  for (std::uint32_t i = 0; i < depth; ++i) {
    out.frames[i] = stack->frames[i].load(std::memory_order_relaxed);
  }
}

std::vector<std::string> label_table_copy() {
  auto& table = label_table();
  std::lock_guard<std::mutex> lock(table.mutex);
  return table.labels;
}

std::string resolve_stack_text(const std::vector<std::string>& labels,
                               const std::vector<FeatureLabel>* features,
                               std::uint32_t thread_label,
                               std::uint32_t thread_index,
                               const std::uint64_t* frames,
                               std::uint32_t depth) {
  auto label_of = [&labels](std::uint32_t id) -> std::string {
    if (id < labels.size() && !labels[id].empty()) return labels[id];
    return "label:" + std::to_string(id);
  };
  std::string stack = thread_label != 0
                          ? label_of(thread_label)
                          : "thread-" + std::to_string(thread_index);
  for (std::uint32_t i = 0; i < depth; ++i) {
    auto kind = static_cast<FrameKind>(frames[i] >> 32);
    auto id = static_cast<std::uint32_t>(frames[i]);
    stack += ';';
    if (kind == FrameKind::kFeature) {
      if (features && id < features->size()) {
        stack += (*features)[id].label;
      } else {
        stack += "feature:" + std::to_string(id);
      }
    } else {
      stack += label_of(id);
    }
  }
  return stack;
}

}  // namespace internal

std::uint32_t intern_label(std::string_view label) {
  auto& table = internal::label_table();
  std::lock_guard<std::mutex> lock(table.mutex);
  auto it = table.index.find(std::string(label));
  if (it != table.index.end()) return it->second;
  auto id = static_cast<std::uint32_t>(table.labels.size());
  table.labels.emplace_back(label);
  table.index.emplace(table.labels.back(), id);
  return id;
}

std::uint32_t intern_static(const char* label) {
  using internal::g_static_slots;
  using internal::kStaticSlots;
  for (std::size_t i = 0; i < kStaticSlots; ++i) {
    const char* have = g_static_slots[i].ptr.load(std::memory_order_acquire);
    if (have == label) {
      return g_static_slots[i].id.load(std::memory_order_relaxed);
    }
    if (have == nullptr) {
      std::uint32_t id = intern_label(label);
      // Publish the id before the pointer other threads key on. Losing the
      // CAS means another literal claimed the slot — try the next one.
      g_static_slots[i].id.store(id, std::memory_order_relaxed);
      const char* expected = nullptr;
      if (g_static_slots[i].ptr.compare_exchange_strong(
              expected, label, std::memory_order_release,
              std::memory_order_acquire)) {
        return id;
      }
      if (expected == label) return id;
    }
  }
  return intern_label(label);  // slot array full: correct, just slower
}

void set_thread_label(std::string_view label) {
  internal::acquire_stack()->label.store(intern_label(label),
                                         std::memory_order_relaxed);
}

void push(FrameKind kind, std::uint32_t id) {
  internal::ThreadStack* stack = internal::acquire_stack();
  std::uint32_t depth = stack->depth.load(std::memory_order_relaxed);
  if (depth < internal::ThreadStack::kCapacity) {
    stack->frames[depth].store(internal::pack(kind, id),
                               std::memory_order_relaxed);
  }
  stack->depth.store(depth + 1, std::memory_order_release);
}

void pop() {
  internal::ThreadStack* stack = internal::acquire_stack();
  std::uint32_t depth = stack->depth.load(std::memory_order_relaxed);
  if (depth > 0) stack->depth.store(depth - 1, std::memory_order_release);
}

void set_feature_table(std::vector<FeatureLabel> table) {
  auto shared =
      std::make_shared<const std::vector<FeatureLabel>>(std::move(table));
  std::lock_guard<std::mutex> lock(internal::g_feature_mutex);
  internal::g_features = std::move(shared);
}

}  // namespace prof

namespace {

// One live profiler at a time; /profilez and --profile-out contend for it.
std::atomic<Profiler*> g_profiler{nullptr};

struct SampleKey {
  std::uint32_t thread_label = 0;
  std::uint32_t thread_index = 0;
  std::vector<std::uint64_t> frames;

  bool operator==(const SampleKey& other) const {
    return thread_label == other.thread_label &&
           thread_index == other.thread_index && frames == other.frames;
  }
};

struct SampleKeyHash {
  std::size_t operator()(const SampleKey& key) const noexcept {
    std::uint64_t h = 1469598103934665603ULL;
    auto mix = [&h](std::uint64_t v) {
      h ^= v;
      h *= 1099511628211ULL;
    };
    mix(key.thread_label);
    mix(key.thread_index);
    for (std::uint64_t frame : key.frames) mix(frame);
    return static_cast<std::size_t>(h);
  }
};

}  // namespace

struct Profiler::Agg {
  std::unordered_map<SampleKey, std::uint64_t, SampleKeyHash> counts;
};

Profiler::Profiler(double hz) : hz_(hz), agg_(new Agg) {
  if (hz_ < 1.0) hz_ = 1.0;
  if (hz_ > 1000.0) hz_ = 1000.0;
}

Profiler::~Profiler() {
  if (started_ && !stopped_) stop();
}

void Profiler::start() {
  if (started_) throw std::logic_error("Profiler::start() called twice");
  Profiler* expected = nullptr;
  if (!g_profiler.compare_exchange_strong(expected, this)) {
    throw std::logic_error("another Profiler is already live");
  }
  started_ = true;
  stop_flag_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { sampler_loop(); });
  prof::internal::enable_frames();
}

bool Profiler::active() const noexcept {
  return g_profiler.load(std::memory_order_relaxed) == this;
}

void Profiler::sampler_loop() {
  using clock = std::chrono::steady_clock;
  const auto period = std::chrono::duration_cast<clock::duration>(
      std::chrono::duration<double>(1.0 / hz_));
  auto next = clock::now() + period;
  SampleKey key;
  while (!stop_flag_.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_until(next);
    next += period;
    if (clock::now() > next + 50 * period) next = clock::now();  // fell behind

    auto& reg = prof::internal::registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    for (prof::internal::ThreadStack* stack : reg.stacks) {
      std::uint32_t depth = stack->depth.load(std::memory_order_acquire);
      if (depth == 0) continue;  // idle thread: no open frames, no sample
      if (depth > prof::internal::ThreadStack::kCapacity) {
        depth = prof::internal::ThreadStack::kCapacity;
      }
      key.thread_label = stack->label.load(std::memory_order_relaxed);
      key.thread_index = stack->index;
      key.frames.assign(depth, 0);
      for (std::uint32_t i = 0; i < depth; ++i) {
        key.frames[i] = stack->frames[i].load(std::memory_order_relaxed);
      }
      ++agg_->counts[key];
      sample_count_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

FoldedProfile Profiler::stop() {
  if (!started_) throw std::logic_error("Profiler::stop() before start()");
  if (stopped_) return result_;
  prof::internal::disable_frames();
  stop_flag_.store(true, std::memory_order_relaxed);
  thread_.join();
  g_profiler.store(nullptr, std::memory_order_relaxed);
  stopped_ = true;

  // Resolve packed frames into text once, after sampling ends.
  std::vector<std::string> labels = prof::internal::label_table_copy();
  auto features = prof::internal::feature_table();
  for (const auto& [key, count] : agg_->counts) {
    result_.add(prof::internal::resolve_stack_text(
                    labels, features ? features.get() : nullptr,
                    key.thread_label, key.thread_index, key.frames.data(),
                    static_cast<std::uint32_t>(key.frames.size())),
                count);
  }
  return result_;
}

std::uint64_t Profiler::samples() const noexcept {
  return sample_count_.load(std::memory_order_relaxed);
}

FoldedProfile profile_for(double seconds, double hz) {
  if (seconds < 0.05) seconds = 0.05;
  Profiler profiler(hz);
  profiler.start();
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  return profiler.stop();
}

}  // namespace fu::obs
