#include "obs/mem.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/profiler.h"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace fu::obs::mem {

namespace internal {

std::array<DomainCell, kDomainCount> g_domains;
std::atomic<bool> g_profiling{false};

}  // namespace internal

namespace {

// Process-lifetime RSS peak, fed by every publish_metrics() sample.
std::atomic<std::int64_t> g_rss_peak{0};

// The live allocation profiler and its stop() drain barrier: a recorder
// increments g_inflight before loading g_profiler, so once stop() clears
// the pointer and sees g_inflight reach zero, no thread can still be
// inside record() — later loaders observe nullptr.
std::atomic<MemProfiler*> g_profiler{nullptr};
std::atomic<std::uint32_t> g_inflight{0};

constexpr const char* kDomainNames[kDomainCount] = {
    "script-heap", "atoms", "snapshot", "shards",
    "sched",       "trace", "net-corpus",
};

// Gauge suffix: domain name with '-' flattened to '_' ("mem.script_heap_bytes").
std::string gauge_name(std::size_t index) {
  std::string name = "mem.";
  for (const char* p = kDomainNames[index]; *p != '\0'; ++p) {
    name += (*p == '-') ? '_' : *p;
  }
  name += "_bytes";
  return name;
}

}  // namespace

const char* domain_name(Domain domain) noexcept {
  const auto index = static_cast<std::size_t>(domain);
  return index < kDomainCount ? kDomainNames[index] : "unknown";
}

std::int64_t current_bytes(Domain domain) noexcept {
  return internal::g_domains[static_cast<std::size_t>(domain)].current.load(
      std::memory_order_relaxed);
}

std::int64_t high_water_bytes(Domain domain) noexcept {
  const auto& cell = internal::g_domains[static_cast<std::size_t>(domain)];
  // High water can lag a concurrent add between the two loads; never report
  // it below current.
  return std::max(cell.high_water.load(std::memory_order_relaxed),
                  cell.current.load(std::memory_order_relaxed));
}

void reset_high_water() noexcept {
  for (auto& cell : internal::g_domains) {
    cell.high_water.store(cell.current.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
  }
  const std::int64_t rss = self_rss_bytes();
  g_rss_peak.store(rss > 0 ? rss : 0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------- RSS ----

std::int64_t self_rss_bytes() noexcept {
#if defined(__unix__) || defined(__APPLE__)
  std::FILE* statm = std::fopen("/proc/self/statm", "r");
  if (statm == nullptr) return -1;
  long long total_pages = 0;
  long long resident_pages = 0;
  const int fields = std::fscanf(statm, "%lld %lld", &total_pages,
                                 &resident_pages);
  std::fclose(statm);
  if (fields != 2) return -1;
  const long page = sysconf(_SC_PAGESIZE);
  return static_cast<std::int64_t>(resident_pages) *
         static_cast<std::int64_t>(page > 0 ? page : 4096);
#else
  return -1;
#endif
}

std::int64_t rss_peak_bytes() noexcept {
  return g_rss_peak.load(std::memory_order_relaxed);
}

namespace {

// Sample RSS and fold it into the peak, returning the sample — callers that
// report both values must use one sample for both, or a growth between two
// samples makes rss_bytes exceed rss_peak_bytes.
std::int64_t sample_rss() noexcept {
  const std::int64_t rss = self_rss_bytes();
  if (rss < 0) return rss;
  std::int64_t peak = g_rss_peak.load(std::memory_order_relaxed);
  while (rss > peak && !g_rss_peak.compare_exchange_weak(
                           peak, rss, std::memory_order_relaxed)) {
  }
  return rss;
}

}  // namespace

void publish_metrics() {
  struct Gauges {
    Gauge& rss;
    std::array<Gauge*, kDomainCount> domains;
  };
  static Gauges gauges = [] {
    Gauges g{Registry::global().gauge("mem.rss_bytes"), {}};
    for (std::size_t i = 0; i < kDomainCount; ++i) {
      g.domains[i] = &Registry::global().gauge(gauge_name(i));
    }
    return g;
  }();
  for (std::size_t i = 0; i < kDomainCount; ++i) {
    const auto domain = static_cast<Domain>(i);
    gauges.domains[i]->set(current_bytes(domain));
    gauges.domains[i]->record_max(high_water_bytes(domain));
  }
  const std::int64_t rss = sample_rss();
  if (rss < 0) return;
  gauges.rss.set(rss);
  gauges.rss.record_max(rss_peak_bytes());
}

std::string domains_json() {
  std::string out = "{";
  for (std::size_t i = 0; i < kDomainCount; ++i) {
    const auto domain = static_cast<Domain>(i);
    if (i != 0) out += ", ";
    out += json_quote(kDomainNames[i]);
    out += ": {\"current\": " + std::to_string(current_bytes(domain));
    out += ", \"high_water\": " + std::to_string(high_water_bytes(domain));
    out += "}";
  }
  out += "}";
  return out;
}

std::string memz_json() {
  publish_metrics();
  const std::int64_t rss = sample_rss();
  std::string out = "{\"domains\": " + domains_json();
  out += ", \"rss_bytes\": " + std::to_string(rss);
  out += ", \"rss_peak_bytes\": " + std::to_string(rss_peak_bytes());
  out += "}\n";
  return out;
}

// ------------------------------------------- sampling allocation profiler

namespace internal {

void profile_allocation(Domain domain, std::size_t bytes) noexcept {
  g_inflight.fetch_add(1, std::memory_order_acquire);
  MemProfiler* profiler = g_profiler.load(std::memory_order_acquire);
  if (profiler != nullptr) profiler->record(domain, bytes);
  g_inflight.fetch_sub(1, std::memory_order_release);
}

}  // namespace internal

namespace {

struct AllocKey {
  std::uint32_t thread_label = 0;
  std::uint32_t thread_index = 0;
  Domain domain = Domain::kScriptHeap;
  std::vector<std::uint64_t> frames;

  bool operator==(const AllocKey& other) const {
    return thread_label == other.thread_label &&
           thread_index == other.thread_index && domain == other.domain &&
           frames == other.frames;
  }
};

struct AllocKeyHash {
  std::size_t operator()(const AllocKey& key) const noexcept {
    std::uint64_t h = 1469598103934665603ULL;
    auto mix = [&h](std::uint64_t v) {
      h ^= v;
      h *= 1099511628211ULL;
    };
    mix(key.thread_label);
    mix(key.thread_index);
    mix(static_cast<std::uint64_t>(key.domain));
    for (std::uint64_t frame : key.frames) mix(frame);
    return static_cast<std::size_t>(h);
  }
};

}  // namespace

struct MemProfiler::Agg {
  std::mutex mutex;
  std::unordered_map<AllocKey, std::uint64_t, AllocKeyHash> bytes;
};

MemProfiler::MemProfiler(std::uint64_t sample_period)
    : period_(sample_period < 1 ? 1 : sample_period),
      countdown_(period_),
      agg_(new Agg) {}

MemProfiler::~MemProfiler() {
  if (started_ && !stopped_) stop();
}

void MemProfiler::start() {
  if (started_) throw std::logic_error("MemProfiler::start() called twice");
  MemProfiler* expected = nullptr;
  if (!g_profiler.compare_exchange_strong(expected, this)) {
    throw std::logic_error("another MemProfiler is already live");
  }
  started_ = true;
  countdown_.store(period_, std::memory_order_relaxed);
  // Frames first, then the profiling flag: once a recorder can fire, the
  // stacks it captures are being maintained.
  prof::internal::enable_frames();
  internal::g_profiling.store(true, std::memory_order_release);
}

bool MemProfiler::active() const noexcept {
  return g_profiler.load(std::memory_order_relaxed) == this;
}

void MemProfiler::record(Domain domain, std::size_t bytes) noexcept {
  // Shared countdown: the Nth tracked allocation process-wide takes a
  // sample of its own thread's stack, weighted to estimate all N.
  if (countdown_.fetch_sub(1, std::memory_order_relaxed) != 1) return;
  countdown_.store(period_, std::memory_order_relaxed);
  sample_count_.fetch_add(1, std::memory_order_relaxed);

  prof::internal::RawStack raw;
  prof::internal::capture_own_stack(raw);
  AllocKey key;
  key.thread_label = raw.thread_label;
  key.thread_index = raw.thread_index;
  key.domain = domain;
  key.frames.assign(raw.frames.begin(), raw.frames.begin() + raw.depth);
  const std::uint64_t estimated = static_cast<std::uint64_t>(bytes) * period_;
  std::lock_guard<std::mutex> lock(agg_->mutex);
  agg_->bytes[key] += estimated;
}

FoldedProfile MemProfiler::stop() {
  if (!started_) throw std::logic_error("MemProfiler::stop() before start()");
  if (stopped_) return result_;
  internal::g_profiling.store(false, std::memory_order_relaxed);
  g_profiler.store(nullptr, std::memory_order_release);
  // Drain recorders that loaded the profiler pointer before it cleared.
  while (g_inflight.load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
  prof::internal::disable_frames();
  stopped_ = true;

  std::vector<std::string> labels = prof::internal::label_table_copy();
  auto features = prof::internal::feature_table();
  std::lock_guard<std::mutex> lock(agg_->mutex);
  for (const auto& [key, estimated] : agg_->bytes) {
    std::string stack = prof::internal::resolve_stack_text(
        labels, features ? features.get() : nullptr, key.thread_label,
        key.thread_index, key.frames.data(),
        static_cast<std::uint32_t>(key.frames.size()));
    stack += ";mem:";
    stack += domain_name(key.domain);
    result_.add(stack, estimated);
  }
  return result_;
}

std::uint64_t MemProfiler::samples() const noexcept {
  return sample_count_.load(std::memory_order_relaxed);
}

// ------------------------------------------------------- mem summaries ---

std::string format_bytes(std::int64_t bytes) {
  const bool negative = bytes < 0;
  const double magnitude = negative ? -static_cast<double>(bytes)
                                    : static_cast<double>(bytes);
  const char* unit = "B";
  double scaled = magnitude;
  if (magnitude >= 1024.0 * 1024.0 * 1024.0) {
    unit = "GiB";
    scaled = magnitude / (1024.0 * 1024.0 * 1024.0);
  } else if (magnitude >= 1024.0 * 1024.0) {
    unit = "MiB";
    scaled = magnitude / (1024.0 * 1024.0);
  } else if (magnitude >= 1024.0) {
    unit = "KiB";
    scaled = magnitude / 1024.0;
  }
  char buffer[64];
  if (unit[0] == 'B') {
    std::snprintf(buffer, sizeof(buffer), "%s%lld B", negative ? "-" : "",
                  static_cast<long long>(magnitude));
  } else {
    std::snprintf(buffer, sizeof(buffer), "%s%.1f %s", negative ? "-" : "",
                  scaled, unit);
  }
  return buffer;
}

namespace {

std::vector<std::string_view> split_frames(std::string_view stack) {
  std::vector<std::string_view> frames;
  std::size_t begin = 0;
  while (begin <= stack.size()) {
    std::size_t end = stack.find(';', begin);
    if (end == std::string_view::npos) end = stack.size();
    frames.push_back(stack.substr(begin, end - begin));
    begin = end + 1;
  }
  return frames;
}

bool is_mem_frame(std::string_view frame) {
  return frame.size() > 4 && frame.substr(0, 4) == "mem:";
}

struct Share {
  std::string name;
  std::uint64_t bytes = 0;
};

std::vector<Share> sorted_shares(const std::map<std::string, std::uint64_t>& m,
                                 std::size_t top) {
  std::vector<Share> shares;
  shares.reserve(m.size());
  for (const auto& [name, bytes] : m) shares.push_back({name, bytes});
  std::sort(shares.begin(), shares.end(), [](const Share& a, const Share& b) {
    if (a.bytes != b.bytes) return a.bytes > b.bytes;
    return a.name < b.name;
  });
  if (shares.size() > top) shares.resize(top);
  return shares;
}

void render_share_section(std::string& out, const char* title,
                          const std::map<std::string, std::uint64_t>& m,
                          std::uint64_t total, std::size_t top) {
  out += title;
  out += "\n";
  for (const Share& share : sorted_shares(m, top)) {
    const double pct = total > 0 ? 100.0 * share.bytes / total : 0.0;
    char line[256];
    std::snprintf(line, sizeof(line), "  %-44s %12s %6.1f%%\n",
                  share.name.c_str(), format_bytes(share.bytes).c_str(), pct);
    out += line;
  }
}

}  // namespace

std::string render_mem_summary(const FoldedProfile& profile, std::size_t top) {
  const std::uint64_t total = profile.total();
  std::map<std::string, std::uint64_t> by_domain;
  std::map<std::string, std::uint64_t> by_stage;
  std::map<std::string, std::uint64_t> by_self;
  for (const auto& [stack, bytes] : profile.stacks) {
    const auto frames = split_frames(stack);
    std::string domain = "(untracked)";
    std::string stage = "(no stage)";
    std::string self = frames.empty() ? std::string("(empty)")
                                      : std::string(frames.front());
    for (std::size_t i = 0; i < frames.size(); ++i) {
      const std::string_view frame = frames[i];
      if (is_mem_frame(frame)) {
        domain = std::string(frame.substr(4));
        continue;
      }
      if (i > 0 &&
          classify_frame(frame, false) == FrameClass::kStage) {
        stage = std::string(frame);
      }
      self = std::string(frame);  // deepest non-mem frame
    }
    by_domain[domain] += bytes;
    by_stage[stage] += bytes;
    by_self[self] += bytes;
  }

  std::string out = "allocation profile: " + format_bytes(
                        static_cast<std::int64_t>(total)) +
                    " estimated across " +
                    std::to_string(profile.stacks.size()) +
                    " unique stacks\n\n";
  render_share_section(out, "by domain", by_domain, total, top);
  out += "\n";
  render_share_section(out, "by stage", by_stage, total, top);
  out += "\n";
  std::map<std::string, std::uint64_t> by_standard;
  for (const StandardShare& share : standards_breakdown(profile)) {
    by_standard[share.standard] = share.samples;
  }
  render_share_section(out, "by standard", by_standard, total, top);
  out += "\n";
  render_share_section(out, "top frames (self bytes)", by_self, total, top);
  return out;
}

std::string mem_standards_csv(const FoldedProfile& profile) {
  std::string out = "standard,bytes,pct\n";
  for (const StandardShare& share : standards_breakdown(profile)) {
    char line[256];
    std::snprintf(line, sizeof(line), "%s,%llu,%.2f\n",
                  share.standard.c_str(),
                  static_cast<unsigned long long>(share.samples), share.pct);
    out += line;
  }
  return out;
}

// ------------------------------------------------------- baseline gate ---

namespace {

struct DomainStats {
  // domain -> {current, high_water}
  std::map<std::string, std::pair<std::int64_t, std::int64_t>> domains;
  std::int64_t rss_bytes = -1;
  std::int64_t rss_peak_bytes = -1;
};

// Reads a /memz document, a bare domains object, or a baseline document
// (domain -> number == high water).
bool parse_domain_stats(const std::string& json, DomainStats& out,
                        std::string* error) {
  JsonValue root;
  if (!json_parse(json, root, error)) return false;
  if (!root.is_object()) {
    if (error != nullptr) *error = "top-level value is not an object";
    return false;
  }
  const JsonValue* domains = root.find("domains");
  if (domains == nullptr) domains = &root;
  if (!domains->is_object()) {
    if (error != nullptr) *error = "\"domains\" is not an object";
    return false;
  }
  for (const auto& [name, value] : domains->object) {
    if (value.is_number()) {
      const auto peak = static_cast<std::int64_t>(value.number);
      out.domains[name] = {peak, peak};
    } else if (value.is_object()) {
      const auto current =
          static_cast<std::int64_t>(value.number_or("current", 0));
      const auto high =
          static_cast<std::int64_t>(value.number_or("high_water", 0));
      out.domains[name] = {current, std::max(current, high)};
    }
  }
  out.rss_bytes = static_cast<std::int64_t>(root.number_or("rss_bytes", -1));
  out.rss_peak_bytes =
      static_cast<std::int64_t>(root.number_or("rss_peak_bytes", -1));
  if (out.rss_peak_bytes < 0) out.rss_peak_bytes = out.rss_bytes;
  return true;
}

}  // namespace

std::string render_domains_diff(const std::string& before_json,
                                const std::string& after_json) {
  DomainStats before, after;
  std::string error;
  if (!parse_domain_stats(before_json, before, &error)) {
    return "error: cannot parse before document: " + error + "\n";
  }
  if (!parse_domain_stats(after_json, after, &error)) {
    return "error: cannot parse after document: " + error + "\n";
  }
  struct Row {
    std::string name;
    std::int64_t current_delta = 0;
    std::int64_t high_delta = 0;
  };
  std::vector<Row> rows;
  std::map<std::string, bool> names;
  for (const auto& [name, _] : before.domains) names[name] = true;
  for (const auto& [name, _] : after.domains) names[name] = true;
  for (const auto& [name, _] : names) {
    const auto b = before.domains.count(name) ? before.domains[name]
                                              : std::pair<std::int64_t,
                                                          std::int64_t>{0, 0};
    const auto a = after.domains.count(name) ? after.domains[name]
                                             : std::pair<std::int64_t,
                                                         std::int64_t>{0, 0};
    rows.push_back({name, a.first - b.first, a.second - b.second});
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    const std::int64_t am = a.high_delta < 0 ? -a.high_delta : a.high_delta;
    const std::int64_t bm = b.high_delta < 0 ? -b.high_delta : b.high_delta;
    if (am != bm) return am > bm;
    return a.name < b.name;
  });
  std::string out = "domain residency diff (after - before)\n";
  char line[256];
  std::snprintf(line, sizeof(line), "  %-14s %14s %14s\n", "domain",
                "current", "high water");
  out += line;
  for (const Row& row : rows) {
    std::snprintf(line, sizeof(line), "  %-14s %14s %14s\n", row.name.c_str(),
                  format_bytes(row.current_delta).c_str(),
                  format_bytes(row.high_delta).c_str());
    out += line;
  }
  if (before.rss_peak_bytes >= 0 && after.rss_peak_bytes >= 0) {
    std::snprintf(line, sizeof(line), "  %-14s %14s %14s\n", "rss",
                  format_bytes(after.rss_bytes - before.rss_bytes).c_str(),
                  format_bytes(after.rss_peak_bytes - before.rss_peak_bytes)
                      .c_str());
    out += line;
  }
  return out;
}

bool baseline_from_json(const std::string& json, std::string& out,
                        std::string* error) {
  DomainStats stats;
  if (!parse_domain_stats(json, stats, error)) return false;
  out = "{\"domains\": {";
  bool first = true;
  for (const auto& [name, values] : stats.domains) {
    if (!first) out += ", ";
    first = false;
    out += json_quote(name) + ": " + std::to_string(values.second);
  }
  out += "}, \"rss_peak_bytes\": ";
  out += std::to_string(stats.rss_peak_bytes >= 0 ? stats.rss_peak_bytes : 0);
  out += "}\n";
  return true;
}

BaselineReport check_baseline(const std::string& baseline_json,
                              const std::string& current_json,
                              double tolerance) {
  constexpr std::int64_t kDomainFloor = 1 << 20;   // 1 MiB
  constexpr std::int64_t kRssFloor = 64 << 20;     // 64 MiB
  BaselineReport report;
  DomainStats baseline, current;
  std::string error;
  if (!parse_domain_stats(baseline_json, baseline, &error)) {
    report.regressed = true;
    report.text = "error: cannot parse baseline: " + error + "\n";
    return report;
  }
  if (!parse_domain_stats(current_json, current, &error)) {
    report.regressed = true;
    report.text = "error: cannot parse current document: " + error + "\n";
    return report;
  }
  auto check_one = [&](const std::string& name, std::int64_t base,
                       std::int64_t now, std::int64_t floor) {
    const auto limit = static_cast<std::int64_t>(
        static_cast<double>(base) * (1.0 + tolerance) +
        static_cast<double>(floor));
    const bool ok = now <= limit;
    if (!ok) report.regressed = true;
    char line[256];
    std::snprintf(line, sizeof(line),
                  "%s %-14s peak %s vs baseline %s (limit %s)\n",
                  ok ? "ok        " : "REGRESSION", name.c_str(),
                  format_bytes(now).c_str(), format_bytes(base).c_str(),
                  format_bytes(limit).c_str());
    report.text += line;
  };
  for (const auto& [name, values] : baseline.domains) {
    const std::int64_t now = current.domains.count(name)
                                 ? current.domains[name].second
                                 : 0;
    check_one(name, values.second, now, kDomainFloor);
  }
  for (const auto& [name, values] : current.domains) {
    if (baseline.domains.count(name)) continue;
    check_one(name, 0, values.second, kDomainFloor);
  }
  if (baseline.rss_peak_bytes >= 0 && current.rss_peak_bytes >= 0) {
    check_one("rss", baseline.rss_peak_bytes, current.rss_peak_bytes,
              kRssFloor);
  }
  return report;
}

}  // namespace fu::obs::mem
