#include "obs/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>

namespace fu::obs {

namespace {

#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

// Send all of `data`, swallowing EPIPE (the client hung up; their loss).
void send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) return;
    sent += static_cast<std::size_t>(n);
  }
}

std::string http_response(int status, const char* reason,
                          const char* content_type, const std::string& body) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " + reason +
                    "\r\nContent-Type: " + content_type +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

// "since=42" out of "/deltas.json?since=42" (0 when absent or malformed —
// malformed just means "send everything", which is safe).
std::uint64_t parse_since(const std::string& query) {
  const std::size_t key = query.find("since=");
  if (key == std::string::npos) return 0;
  return std::strtoull(query.c_str() + key + 6, nullptr, 10);
}

void set_socket_timeout(int fd, double seconds) {
  timeval tv;
  tv.tv_sec = static_cast<long>(seconds);
  tv.tv_usec = static_cast<long>((seconds - static_cast<double>(tv.tv_sec)) *
                                 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)), ring_(options_.delta_capacity) {
  if (options_.registry == nullptr) options_.registry = &Registry::global();

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    error_ = "socket: " + std::string(std::strerror(errno));
    return;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    error_ = "bad bind address: " + options_.bind_address;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
          0 ||
      ::listen(listen_fd_, 16) != 0) {
    error_ = "bind/listen: " + std::string(std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  }

  if (!options_.port_file.empty()) {
    std::ofstream out(options_.port_file, std::ios::trunc);
    out << port_ << "\n";
  }

  thread_ = std::thread([this] { serve_loop(); });
}

Server::~Server() {
  stop_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    // Best-effort: a stale serve.port would send `fu watch <checkpoint-dir>`
    // to a dead port after the run ends; its absence tells tooling the
    // server shut down cleanly (a crash leaves the file behind).
    if (!options_.port_file.empty()) std::remove(options_.port_file.c_str());
  }
}

void Server::serve_loop() {
  const auto start = std::chrono::steady_clock::now();
  const auto now_seconds = [&start] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };
  ring_.prime(options_.registry->snapshot(), now_seconds());
  double last_tick = 0;
  const double interval = options_.delta_interval_seconds > 0
                              ? options_.delta_interval_seconds
                              : 1.0;

  while (!stop_.load(std::memory_order_relaxed)) {
    // Short poll timeout so shutdown and delta ticks stay responsive even
    // with no traffic.
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 50);

    const double now = now_seconds();
    if (now - last_tick >= interval) {
      ring_.record(options_.registry->snapshot(), now);
      last_tick = now;
    }

    if (ready <= 0 || (pfd.revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    // Connections are served one at a time on this thread, so a stalled
    // client must not hold it: 1s socket timeouts plus a 2s whole-request
    // deadline in handle_connection bound how late the next delta tick or
    // the shutdown join can be.
    set_socket_timeout(fd, 1.0);
    handle_connection(fd);
    ::close(fd);
  }
}

void Server::handle_connection(int fd) {
  // Read until the end of the request head (we ignore headers and bodies; a
  // GET has none worth reading) or a small cap — this is an operator
  // endpoint, not a general web server. The deadline caps slow-drip clients
  // that would otherwise dodge the per-recv timeout one byte at a time.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  std::string request;
  char buf[1024];
  while (request.size() < 8192 &&
         request.find("\r\n\r\n") == std::string::npos &&
         std::chrono::steady_clock::now() < deadline) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    request.append(buf, static_cast<std::size_t>(n));
  }
  const std::size_t eol = request.find("\r\n");
  const std::string request_line =
      eol == std::string::npos ? request : request.substr(0, eol);
  requests_.fetch_add(1, std::memory_order_relaxed);
  send_all(fd, respond(request_line));
}

std::string Server::respond(const std::string& request_line) {
  // "GET /path?query HTTP/1.1"
  const std::size_t sp1 = request_line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string::npos ? std::string::npos
                               : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    return http_response(400, "Bad Request", "text/plain",
                         "malformed request line\n");
  }
  const std::string method = request_line.substr(0, sp1);
  std::string target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (method != "GET") {
    return http_response(405, "Method Not Allowed", "text/plain",
                         "only GET is served here\n");
  }
  std::string query;
  if (const std::size_t q = target.find('?'); q != std::string::npos) {
    query = target.substr(q + 1);
    target.resize(q);
  }

  if (target == "/metrics.json") {
    return http_response(200, "OK", "application/json",
                         options_.registry->snapshot().to_json());
  }
  if (target == "/metrics") {
    return http_response(200, "OK", "text/plain; version=0.0.4",
                         options_.registry->snapshot().to_prometheus());
  }
  if (target == "/progress.json") {
    if (!options_.progress_json) {
      return http_response(404, "Not Found", "text/plain",
                           "no progress source attached\n");
    }
    return http_response(200, "OK", "application/json",
                         options_.progress_json());
  }
  if (target == "/deltas.json") {
    return http_response(200, "OK", "application/json",
                         ring_.to_json(parse_since(query)));
  }
  if (target == "/healthz") {
    HealthStatus health;
    if (options_.health) health = options_.health();
    return health.ok
               ? http_response(200, "OK", "application/json", health.body)
               : http_response(503, "Service Unavailable", "application/json",
                               health.body);
  }
  return http_response(404, "Not Found", "text/plain",
                       "unknown path; try /metrics.json /metrics "
                       "/progress.json /deltas.json /healthz\n");
}

bool http_get(const std::string& host, int port, const std::string& path,
              int& status, std::string& body, std::string* error,
              double timeout_seconds) {
  const auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = what + ": " + std::strerror(errno);
    return false;
  };
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return fail("socket");
  set_socket_timeout(fd, timeout_seconds);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  const std::string node = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, node.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    if (error != nullptr) *error = "bad host (IPv4 literal expected): " + host;
    return false;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const bool ok = false;
    fail("connect");
    ::close(fd);
    return ok;
  }

  const std::string request = "GET " + path + " HTTP/1.1\r\nHost: " + host +
                              "\r\nConnection: close\r\n\r\n";
  send_all(fd, request);

  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);

  // "HTTP/1.1 200 OK\r\n...\r\n\r\n<body>"
  if (response.rfind("HTTP/1.", 0) != 0 || response.size() < 12) {
    if (error != nullptr) *error = "short or non-HTTP response";
    return false;
  }
  status = std::atoi(response.c_str() + 9);
  const std::size_t head_end = response.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    if (error != nullptr) *error = "truncated response head";
    return false;
  }
  body = response.substr(head_end + 4);
  return true;
}

}  // namespace fu::obs
