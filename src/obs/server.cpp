#include "obs/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string_view>

#include "obs/mem.h"
#include "obs/profiler.h"

namespace fu::obs {

namespace {

#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

// Send all of `data`, swallowing EPIPE (the client hung up; their loss).
void send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) return;
    sent += static_cast<std::size_t>(n);
  }
}

const char* reason_for(int status) {
  switch (status) {
    case 200: return "OK";
    case 201: return "Created";
    case 202: return "Accepted";
    case 400: return "Bad Request";
    case 401: return "Unauthorized";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 503: return "Service Unavailable";
    default: return "Response";
  }
}

std::string serialize_response(const HttpResponse& response) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    reason_for(response.status) +
                    "\r\nContent-Type: " + response.content_type +
                    "\r\nContent-Length: " + std::to_string(
                        response.body.size()) +
                    "\r\nConnection: close\r\n\r\n";
  out += response.body;
  return out;
}

// Case-insensitive lookup of one header's value in a request head ("" when
// absent). Good enough for the two headers we care about; this is not a
// general HTTP parser.
std::string header_value(const std::string& head, std::string_view name) {
  std::size_t line = head.find("\r\n");
  while (line != std::string::npos && line + 2 < head.size()) {
    const std::size_t start = line + 2;
    const std::size_t end = head.find("\r\n", start);
    const std::string_view text(head.data() + start,
                                (end == std::string::npos ? head.size() : end) -
                                    start);
    if (text.size() > name.size() && text[name.size()] == ':') {
      bool matches = true;
      for (std::size_t i = 0; i < name.size(); ++i) {
        if (std::tolower(static_cast<unsigned char>(text[i])) !=
            std::tolower(static_cast<unsigned char>(name[i]))) {
          matches = false;
          break;
        }
      }
      if (matches) {
        std::size_t value = name.size() + 1;
        while (value < text.size() && text[value] == ' ') ++value;
        return std::string(text.substr(value));
      }
    }
    line = end;
  }
  return {};
}

// "since=42" out of "/deltas.json?since=42" (0 when absent or malformed —
// malformed just means "send everything", which is safe).
std::uint64_t parse_since(const std::string& query) {
  const std::size_t key = query.find("since=");
  if (key == std::string::npos) return 0;
  return std::strtoull(query.c_str() + key + 6, nullptr, 10);
}

void set_socket_timeout(int fd, double seconds) {
  timeval tv;
  tv.tv_sec = static_cast<long>(seconds);
  tv.tv_usec = static_cast<long>((seconds - static_cast<double>(tv.tv_sec)) *
                                 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

}  // namespace

// "seconds=2.5" out of "/profilez?seconds=2.5&hz=199"; fallback when the
// key is absent or malformed.
double query_double(const std::string& query, const std::string& key,
                    double fallback) {
  const std::size_t at = query.find(key + "=");
  if (at != 0 && (at == std::string::npos || query[at - 1] != '&')) {
    return fallback;
  }
  const char* start = query.c_str() + at + key.size() + 1;
  char* end = nullptr;
  const double value = std::strtod(start, &end);
  return end == start ? fallback : value;
}

Server::Server(ServerOptions options)
    : options_(std::move(options)), ring_(options_.delta_capacity) {
  if (options_.registry == nullptr) options_.registry = &Registry::global();

  // Remote-serving guard: everything outside 127.0.0.0/8 is reachable by
  // other hosts, so it must not start without a token to check.
  if (options_.bind_address.rfind("127.", 0) != 0 &&
      options_.auth_token.empty()) {
    error_ = "refusing to bind " + options_.bind_address +
             " without an auth token (set FU_SERVE_TOKEN)";
    return;
  }

  // Caller routes mount first so a daemon can shadow a built-in if it must;
  // the observability endpoints every fu server shares come after.
  if (options_.routes) options_.routes(router_);
  router_.handle("GET", "/metrics.json", [this](HttpRequest&) {
    return json_response(200, options_.registry->snapshot().to_json());
  });
  router_.handle("GET", "/metrics", [this](HttpRequest&) {
    HttpResponse response =
        text_response(200, options_.registry->snapshot().to_prometheus());
    response.content_type = "text/plain; version=0.0.4";
    return response;
  });
  router_.handle("GET", "/progress.json", [this](HttpRequest&) {
    if (!options_.progress_json) {
      return text_response(404, "no progress source attached\n");
    }
    return json_response(200, options_.progress_json());
  });
  router_.handle("GET", "/deltas.json", [this](HttpRequest& request) {
    return json_response(200, ring_.to_json(parse_since(request.query)));
  });
  router_.handle("GET", "/healthz", [this](HttpRequest&) {
    HealthStatus health;
    if (options_.health) health = options_.health();
    return json_response(health.ok ? 200 : 503, health.body);
  });
  router_.handle("GET", "/buildz", [this](HttpRequest&) {
    return json_response(200, build_info_json(options_.build_extra));
  });
  router_.handle("GET", "/memz", [](HttpRequest&) {
    return json_response(200, mem::memz_json());
  });
  router_.handle("GET", "/profilez", [](HttpRequest& request) {
    double seconds = query_double(request.query, "seconds", 1.0);
    if (seconds > 30.0) seconds = 30.0;  // serving is serial: bound the hold
    const double hz = query_double(request.query, "hz", 97.0);
    try {
      return text_response(200, profile_for(seconds, hz).to_text());
    } catch (const std::logic_error& e) {
      return text_response(409, std::string(e.what()) + "\n");
    }
  });

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    error_ = "socket: " + std::string(std::strerror(errno));
    return;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    error_ = "bad bind address: " + options_.bind_address;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
          0 ||
      ::listen(listen_fd_, 16) != 0) {
    error_ = "bind/listen: " + std::string(std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  }

  if (!options_.port_file.empty()) {
    std::ofstream out(options_.port_file, std::ios::trunc);
    out << port_ << "\n";
  }

  thread_ = std::thread([this] { serve_loop(); });
}

Server::~Server() {
  stop_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    // Best-effort: a stale serve.port would send `fu watch <checkpoint-dir>`
    // to a dead port after the run ends; its absence tells tooling the
    // server shut down cleanly (a crash leaves the file behind).
    if (!options_.port_file.empty()) std::remove(options_.port_file.c_str());
  }
}

void Server::serve_loop() {
  const auto start = std::chrono::steady_clock::now();
  const auto now_seconds = [&start] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };
  ring_.prime(options_.registry->snapshot(), now_seconds());
  double last_tick = 0;
  const double interval = options_.delta_interval_seconds > 0
                              ? options_.delta_interval_seconds
                              : 1.0;

  while (!stop_.load(std::memory_order_relaxed)) {
    // Short poll timeout so shutdown and delta ticks stay responsive even
    // with no traffic.
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 50);

    const double now = now_seconds();
    if (now - last_tick >= interval) {
      // Background RSS/domain poll: publishing before the snapshot puts
      // mem.rss_bytes (and the domain gauges) into this delta interval, so
      // /deltas.json, /metrics.json and /metrics carry them without /memz.
      mem::publish_metrics();
      ring_.record(options_.registry->snapshot(), now);
      last_tick = now;
    }

    if (ready <= 0 || (pfd.revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    // Connections are served one at a time on this thread, so a stalled
    // client must not hold it: 1s socket timeouts plus a 2s whole-request
    // deadline in handle_connection bound how late the next delta tick or
    // the shutdown join can be.
    set_socket_timeout(fd, 1.0);
    handle_connection(fd);
    ::close(fd);
  }
}

void Server::handle_connection(int fd) {
  // Read the request head, then exactly Content-Length body bytes, both
  // under one cap and one deadline — this is an operator endpoint, not a
  // general web server. The deadline caps slow-drip clients that would
  // otherwise dodge the per-recv timeout one byte at a time.
  const auto accepted = std::chrono::steady_clock::now();
  // Every exit path sends through this, so the access log sees refused
  // requests (400/401/413) as well as routed ones.
  const auto send_logged = [&](const HttpResponse& response,
                               const std::string& method,
                               const std::string& path) {
    send_all(fd, serialize_response(response));
    if (options_.access_log) {
      AccessLogEntry entry;
      entry.method = method;
      entry.path = path;
      entry.status = response.status;
      entry.duration_us = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - accepted)
              .count());
      options_.access_log(entry);
    }
  };
  const auto deadline = accepted + std::chrono::seconds(2);
  const std::size_t cap = options_.max_request_bytes > 0
                              ? options_.max_request_bytes
                              : 64 * 1024;
  std::string raw;
  char buf[4096];
  std::size_t head_end = std::string::npos;
  while (raw.size() <= cap && std::chrono::steady_clock::now() < deadline) {
    head_end = raw.find("\r\n\r\n");
    if (head_end != std::string::npos) break;
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    raw.append(buf, static_cast<std::size_t>(n));
  }
  requests_.fetch_add(1, std::memory_order_relaxed);
  if (head_end == std::string::npos) {
    send_logged(raw.size() > cap
                    ? text_response(413, "request head too large\n")
                    : text_response(400, "truncated request\n"),
                "-", "-");
    return;
  }

  const std::string head = raw.substr(0, head_end + 2);
  std::string body = raw.substr(head_end + 4);
  const std::string length_text = header_value(head, "content-length");
  std::size_t content_length = 0;
  if (!length_text.empty()) {
    char* end = nullptr;
    const unsigned long long parsed =
        std::strtoull(length_text.c_str(), &end, 10);
    if (end == length_text.c_str() || *end != '\0') {
      send_logged(text_response(400, "bad content-length\n"), "-", "-");
      return;
    }
    content_length = static_cast<std::size_t>(parsed);
  }
  if (head.size() + content_length > cap) {
    send_logged(text_response(413, "request body too large\n"), "-", "-");
    return;
  }
  while (body.size() < content_length &&
         std::chrono::steady_clock::now() < deadline) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    body.append(buf, static_cast<std::size_t>(n));
  }
  if (body.size() < content_length) {
    send_logged(text_response(400, "truncated request body\n"), "-", "-");
    return;
  }
  body.resize(content_length);  // ignore pipelined bytes beyond the body

  // "GET /path?query HTTP/1.1"
  const std::size_t eol = head.find("\r\n");
  const std::string request_line = head.substr(0, eol);
  const std::size_t sp1 = request_line.find(' ');
  const std::size_t sp2 = sp1 == std::string::npos
                              ? std::string::npos
                              : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    send_logged(text_response(400, "malformed request line\n"), "-", "-");
    return;
  }
  HttpRequest request;
  request.method = request_line.substr(0, sp1);
  request.path = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  request.body = std::move(body);
  if (const std::size_t q = request.path.find('?'); q != std::string::npos) {
    request.query = request.path.substr(q + 1);
    request.path.resize(q);
  }

  std::string bearer = header_value(head, "authorization");
  if (bearer.rfind("Bearer ", 0) == 0) {
    bearer = bearer.substr(7);
  } else {
    bearer.clear();
  }
  send_logged(respond(request, bearer), request.method, request.path);
}

std::string access_log_line(const AccessLogEntry& entry) {
  return "{\"method\": " + json_quote(entry.method) +
         ", \"path\": " + json_quote(entry.path) +
         ", \"status\": " + std::to_string(entry.status) +
         ", \"duration_us\": " + std::to_string(entry.duration_us) + "}";
}

std::function<void(const AccessLogEntry&)> stderr_access_logger() {
  return [](const AccessLogEntry& entry) {
    const std::string line = access_log_line(entry) + "\n";
    std::fwrite(line.data(), 1, line.size(), stderr);
  };
}

#ifndef FU_GIT_DESCRIBE
#define FU_GIT_DESCRIBE "unknown"
#endif
#ifndef FU_BUILD_TYPE
#define FU_BUILD_TYPE "unspecified"
#endif
#ifndef FU_CXX_FLAGS
#define FU_CXX_FLAGS ""
#endif

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define FU_HAS_TSAN 1
#endif
#if __has_feature(address_sanitizer)
#define FU_HAS_ASAN 1
#endif
#endif
#if defined(__SANITIZE_THREAD__)
#define FU_HAS_TSAN 1
#endif
#if defined(__SANITIZE_ADDRESS__)
#define FU_HAS_ASAN 1
#endif

std::string build_info_json(
    const std::vector<std::pair<std::string, std::string>>& extra) {
  std::string sanitizers = "[";
  const char* separator = "";
#ifdef FU_HAS_TSAN
  sanitizers += std::string(separator) + "\"thread\"";
  separator = ", ";
#endif
#ifdef FU_HAS_ASAN
  sanitizers += std::string(separator) + "\"address\"";
  separator = ", ";
#endif
  // UBSan defines no feature macro; fall back to the flags it was built
  // with (baked in at configure time).
  if (std::string_view(FU_CXX_FLAGS).find("undefined") !=
      std::string_view::npos) {
    sanitizers += std::string(separator) + "\"undefined\"";
  }
  sanitizers += "]";

  std::string out = "{\"git\": " + json_quote(FU_GIT_DESCRIBE) +
                    ", \"build_type\": " + json_quote(FU_BUILD_TYPE) +
                    ", \"compiler\": " + json_quote(__VERSION__) +
                    ", \"cxx_flags\": " + json_quote(FU_CXX_FLAGS) +
                    ", \"sanitizers\": " + sanitizers;
  for (const auto& [key, value] : extra) {
    out += ", " + json_quote(key) + ": " + json_quote(value);
  }
  out += "}\n";
  return out;
}

HttpResponse Server::respond(HttpRequest& request, const std::string& bearer) {
  // Auth gates *everything*, the read-only built-ins included: an endpoint
  // that leaks which sites a fleet is crawling is not harmless.
  if (!options_.auth_token.empty() && bearer != options_.auth_token) {
    return text_response(401, "missing or wrong bearer token\n");
  }
  return router_.dispatch(request);
}

namespace {

bool http_request(const std::string& method, const std::string& host,
                  int port, const std::string& path,
                  const std::string& request_body, int& status,
                  std::string& body, std::string* error,
                  double timeout_seconds, const std::string& bearer) {
  const auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = what + ": " + std::strerror(errno);
    return false;
  };
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return fail("socket");
  set_socket_timeout(fd, timeout_seconds);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  const std::string node = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, node.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    if (error != nullptr) *error = "bad host (IPv4 literal expected): " + host;
    return false;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const bool ok = false;
    fail("connect");
    ::close(fd);
    return ok;
  }

  std::string request = method + " " + path + " HTTP/1.1\r\nHost: " + host +
                        "\r\nConnection: close\r\n";
  if (!bearer.empty()) request += "Authorization: Bearer " + bearer + "\r\n";
  if (!request_body.empty() || method == "POST") {
    request += "Content-Type: application/json\r\nContent-Length: " +
               std::to_string(request_body.size()) + "\r\n";
  }
  request += "\r\n" + request_body;
  send_all(fd, request);

  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);

  // "HTTP/1.1 200 OK\r\n...\r\n\r\n<body>"
  if (response.rfind("HTTP/1.", 0) != 0 || response.size() < 12) {
    if (error != nullptr) *error = "short or non-HTTP response";
    return false;
  }
  status = std::atoi(response.c_str() + 9);
  const std::size_t head_end = response.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    if (error != nullptr) *error = "truncated response head";
    return false;
  }
  body = response.substr(head_end + 4);
  return true;
}

}  // namespace

bool http_get(const std::string& host, int port, const std::string& path,
              int& status, std::string& body, std::string* error,
              double timeout_seconds, const std::string& bearer) {
  return http_request("GET", host, port, path, {}, status, body, error,
                      timeout_seconds, bearer);
}

bool http_post(const std::string& host, int port, const std::string& path,
               const std::string& request_body, int& status, std::string& body,
               std::string* error, double timeout_seconds,
               const std::string& bearer) {
  return http_request("POST", host, port, path, request_body, status, body,
                      error, timeout_seconds, bearer);
}

}  // namespace fu::obs
