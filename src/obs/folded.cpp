#include "obs/folded.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <unordered_map>

#include "obs/metrics.h"  // json_quote

namespace fu::obs {
namespace {

std::string pct_str(double pct) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f%%", pct);
  return buf;
}

double pct_of(std::uint64_t part, std::uint64_t total) {
  return total == 0 ? 0.0 : 100.0 * static_cast<double>(part) /
                                static_cast<double>(total);
}

std::vector<std::string_view> split_frames(std::string_view stack) {
  std::vector<std::string_view> frames;
  std::size_t start = 0;
  while (start <= stack.size()) {
    std::size_t semi = stack.find(';', start);
    if (semi == std::string_view::npos) semi = stack.size();
    frames.push_back(stack.substr(start, semi - start));
    start = semi + 1;
  }
  return frames;
}

// Ranked (name -> samples) rows, ties broken by name for determinism.
struct Row {
  std::string name;
  std::uint64_t samples = 0;
};

std::vector<Row> ranked(std::unordered_map<std::string, std::uint64_t>& by) {
  std::vector<Row> rows;
  rows.reserve(by.size());
  for (auto& [name, samples] : by) rows.push_back({name, samples});
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    if (a.samples != b.samples) return a.samples > b.samples;
    return a.name < b.name;
  });
  return rows;
}

struct Breakdown {
  std::unordered_map<std::string, std::uint64_t> stages;
  std::unordered_map<std::string, std::uint64_t> standards;
  std::unordered_map<std::string, std::uint64_t> self;
  std::unordered_map<std::string, std::uint64_t> inclusive;
  std::uint64_t total = 0;
};

// One pass over the profile computing every axis the renderers need. A
// sample charges: its deepest stage frame (or "(no-stage)"), the standard
// of its deepest "std:" frame (or "(engine)"), its leaf frame for self
// time, and every distinct frame on the stack for inclusive time.
Breakdown breakdown(const FoldedProfile& profile) {
  Breakdown b;
  std::vector<std::string_view> distinct;
  for (const auto& [stack, samples] : profile.stacks) {
    b.total += samples;
    auto frames = split_frames(stack);
    std::string_view stage = "(no-stage)";
    std::string_view standard = "(engine)";
    for (std::size_t i = 0; i < frames.size(); ++i) {
      switch (classify_frame(frames[i], i == 0)) {
        case FrameClass::kStage:
          stage = frames[i];
          break;
        case FrameClass::kStandard: {
          std::string_view body = frames[i].substr(4);  // past "std:"
          standard = body.substr(0, body.find('/'));
          break;
        }
        default:
          break;
      }
    }
    // Session setup runs no page script, so its samples carry no "std:"
    // frame; without this they would drown the "(engine)" catch-all in the
    // standards CSV. Attribute them to their own bucket instead.
    if (standard == "(engine)" &&
        (stage == "session-clone" || stage == "session-snapshot-build")) {
      standard = "(session-setup)";
    }
    b.stages[std::string(stage)] += samples;
    b.standards[std::string(standard)] += samples;
    b.self[std::string(frames.back())] += samples;
    distinct.assign(frames.begin(), frames.end());
    std::sort(distinct.begin(), distinct.end());
    distinct.erase(std::unique(distinct.begin(), distinct.end()),
                   distinct.end());
    for (auto frame : distinct) b.inclusive[std::string(frame)] += samples;
  }
  return b;
}

void render_section(std::string& out, const char* title,
                    const std::vector<Row>& rows, std::uint64_t total,
                    std::size_t top) {
  out += title;
  out += '\n';
  for (std::size_t i = 0; i < rows.size() && i < top; ++i) {
    char line[256];
    std::snprintf(line, sizeof line, "  %-44s %10llu  %6s\n",
                  rows[i].name.c_str(),
                  static_cast<unsigned long long>(rows[i].samples),
                  pct_str(pct_of(rows[i].samples, total)).c_str());
    out += line;
  }
  if (rows.size() > top) {
    out += "  ... " + std::to_string(rows.size() - top) + " more\n";
  }
}

std::string json_rows(const std::vector<Row>& rows, std::uint64_t total,
                      std::size_t top, const char* name_key) {
  std::string out = "[";
  for (std::size_t i = 0; i < rows.size() && i < top; ++i) {
    if (i > 0) out += ", ";
    char pct[32];
    std::snprintf(pct, sizeof pct, "%.3f", pct_of(rows[i].samples, total));
    out += std::string("{\"") + name_key +
           "\": " + json_quote(rows[i].name) +
           ", \"samples\": " + std::to_string(rows[i].samples) +
           ", \"pct\": " + pct + "}";
  }
  out += "]";
  return out;
}

}  // namespace

std::uint64_t FoldedProfile::total() const {
  std::uint64_t sum = 0;
  for (const auto& [stack, samples] : stacks) sum += samples;
  return sum;
}

void FoldedProfile::add(std::string_view stack, std::uint64_t samples) {
  stacks[std::string(stack)] += samples;
}

std::string FoldedProfile::to_text() const {
  std::string out;
  for (const auto& [stack, samples] : stacks) {
    out += stack;
    out += ' ';
    out += std::to_string(samples);
    out += '\n';
  }
  return out;
}

FoldedProfile FoldedProfile::parse(std::string_view text) {
  FoldedProfile profile;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    if (line.empty()) continue;
    auto fail = [&](const char* what) {
      throw std::runtime_error("folded line " + std::to_string(line_no) +
                               ": " + what);
    };
    std::size_t space = line.rfind(' ');
    if (space == std::string_view::npos || space == 0) {
      fail("expected 'stack count'");
    }
    std::string_view count_text = line.substr(space + 1);
    if (count_text.empty()) fail("missing sample count");
    std::uint64_t count = 0;
    for (char c : count_text) {
      if (c < '0' || c > '9') fail("sample count is not an integer");
      count = count * 10 + static_cast<std::uint64_t>(c - '0');
    }
    std::string_view stack = line.substr(0, space);
    if (stack.empty()) fail("empty stack");
    profile.add(stack, count);
  }
  return profile;
}

FrameClass classify_frame(std::string_view frame, bool first) {
  if (first) return FrameClass::kThread;
  if (frame.rfind("std:", 0) == 0) return FrameClass::kStandard;
  if (frame.rfind("script:", 0) == 0) return FrameClass::kScript;
  if (frame.rfind("fn:", 0) == 0) return FrameClass::kFunction;
  return FrameClass::kStage;
}

std::vector<StandardShare> standards_breakdown(const FoldedProfile& profile) {
  Breakdown b = breakdown(profile);
  std::vector<StandardShare> shares;
  for (const Row& row : ranked(b.standards)) {
    shares.push_back({row.name, row.samples, pct_of(row.samples, b.total)});
  }
  return shares;
}

std::string standards_csv(const FoldedProfile& profile) {
  std::string out = "standard,samples,pct\n";
  for (const StandardShare& share : standards_breakdown(profile)) {
    char line[160];
    std::snprintf(line, sizeof line, "%s,%llu,%.3f\n",
                  share.standard.c_str(),
                  static_cast<unsigned long long>(share.samples), share.pct);
    out += line;
  }
  return out;
}

std::string render_prof_summary(const FoldedProfile& profile,
                                const ProfSummaryOptions& options) {
  Breakdown b = breakdown(profile);
  std::string out;
  out += "samples: " + std::to_string(b.total) +
         "   unique stacks: " + std::to_string(profile.stacks.size()) + "\n\n";
  render_section(out, "by stage", ranked(b.stages), b.total, options.top);
  out += '\n';
  render_section(out, "by standard (shim attribution)", ranked(b.standards),
                 b.total, options.top);
  out += '\n';
  render_section(out, "top frames (self)", ranked(b.self), b.total,
                 options.top);
  out += '\n';
  render_section(out, "top frames (inclusive)", ranked(b.inclusive), b.total,
                 options.top);
  return out;
}

std::string prof_summary_json(const FoldedProfile& profile, std::size_t top) {
  Breakdown b = breakdown(profile);
  std::string out = "{\"total\": " + std::to_string(b.total) + ",\n";
  out += "\"stages\": {";
  bool fst = true;
  for (const Row& row : ranked(b.stages)) {
    if (!fst) out += ", ";
    fst = false;
    out += json_quote(row.name) + ": " + std::to_string(row.samples);
  }
  out += "},\n\"standards\": " +
         json_rows(ranked(b.standards), b.total, top, "standard") + ",\n";
  out += "\"self\": " + json_rows(ranked(b.self), b.total, top, "frame") +
         ",\n";
  out += "\"inclusive\": " +
         json_rows(ranked(b.inclusive), b.total, top, "frame") + "}\n";
  return out;
}

std::string render_prof_diff(const FoldedProfile& before,
                             const FoldedProfile& after,
                             const ProfSummaryOptions& options) {
  Breakdown a = breakdown(before);
  Breakdown b = breakdown(after);

  struct Delta {
    std::string name;
    double before_pct = 0, after_pct = 0;
  };
  auto deltas = [](const std::unordered_map<std::string, std::uint64_t>& lhs,
                   std::uint64_t lhs_total,
                   const std::unordered_map<std::string, std::uint64_t>& rhs,
                   std::uint64_t rhs_total) {
    std::unordered_map<std::string, Delta> merged;
    for (const auto& [name, samples] : lhs) {
      merged[name].name = name;
      merged[name].before_pct = pct_of(samples, lhs_total);
    }
    for (const auto& [name, samples] : rhs) {
      merged[name].name = name;
      merged[name].after_pct = pct_of(samples, rhs_total);
    }
    std::vector<Delta> rows;
    rows.reserve(merged.size());
    for (auto& [name, delta] : merged) rows.push_back(delta);
    std::sort(rows.begin(), rows.end(), [](const Delta& x, const Delta& y) {
      double dx = std::abs(x.after_pct - x.before_pct);
      double dy = std::abs(y.after_pct - y.before_pct);
      if (dx != dy) return dx > dy;
      return x.name < y.name;
    });
    return rows;
  };
  auto render = [&](std::string& out, const char* title,
                    const std::vector<Delta>& rows) {
    out += title;
    out += '\n';
    for (std::size_t i = 0; i < rows.size() && i < options.top; ++i) {
      char line[256];
      std::snprintf(line, sizeof line, "  %-44s %6s -> %6s  (%+.1fpp)\n",
                    rows[i].name.c_str(), pct_str(rows[i].before_pct).c_str(),
                    pct_str(rows[i].after_pct).c_str(),
                    rows[i].after_pct - rows[i].before_pct);
      out += line;
    }
  };

  std::string out;
  out += "diff: " + std::to_string(a.total) + " -> " +
         std::to_string(b.total) + " samples (shares in %)\n\n";
  render(out, "by stage", deltas(a.stages, a.total, b.stages, b.total));
  out += '\n';
  render(out, "by standard",
         deltas(a.standards, a.total, b.standards, b.total));
  out += '\n';
  render(out, "top frame movers (self)",
         deltas(a.self, a.total, b.self, b.total));
  return out;
}

std::string flamegraph_html(const FoldedProfile& profile,
                            std::string_view title) {
  // Merge the stacks into a tree, then emit it as one nested JSON literal
  // the inline script lays out. Children sorted by name for determinism.
  struct Node {
    std::map<std::string, Node> children;
    std::uint64_t self = 0;
  };
  Node root;
  for (const auto& [stack, samples] : profile.stacks) {
    Node* node = &root;
    std::size_t start = 0;
    while (start <= stack.size()) {
      std::size_t semi = stack.find(';', start);
      if (semi == std::string::npos) semi = stack.size();
      node = &node->children[stack.substr(start, semi - start)];
      start = semi + 1;
    }
    node->self += samples;
  }

  std::string data;
  auto emit = [&](auto&& self_fn, const std::string& name,
                  const Node& node) -> std::uint64_t {
    data += "{\"n\":" + json_quote(name) + ",\"s\":" +
            std::to_string(node.self) + ",\"c\":[";
    std::uint64_t total = node.self;
    bool fst = true;
    for (const auto& [child_name, child] : node.children) {
      if (!fst) data += ",";
      fst = false;
      total += self_fn(self_fn, child_name, child);
    }
    // Patch the node's total in after its children are known: emit it as a
    // trailing member instead of reserving space.
    data += "],\"t\":" + std::to_string(total) + "}";
    return total;
  };
  emit(emit, "all", root);

  std::string html;
  html += "<!doctype html><html><head><meta charset=\"utf-8\"><title>";
  for (char c : title) {
    if (c == '<' || c == '>' || c == '&') {
      html += ' ';
    } else {
      html += c;
    }
  }
  html +=
      "</title><style>\n"
      "body{font:12px monospace;margin:12px;background:#1b1b1f;color:#ddd}\n"
      "#fg div{position:absolute;box-sizing:border-box;height:17px;"
      "overflow:hidden;white-space:nowrap;border:1px solid #1b1b1f;"
      "border-radius:2px;padding:1px 3px;cursor:pointer;color:#222}\n"
      "#fg{position:relative}\n"
      "#tip{position:fixed;background:#000;color:#fff;padding:3px 6px;"
      "border-radius:3px;display:none;pointer-events:none}\n"
      "</style></head><body>\n";
  html += "<h3>" ;
  for (char c : title) {
    if (c == '<' || c == '>' || c == '&') {
      html += ' ';
    } else {
      html += c;
    }
  }
  html += " — click a frame to zoom, click 'all' to reset</h3>\n";
  html += "<div id=\"fg\"></div><div id=\"tip\"></div>\n<script>\n";
  html += "const data = " + data + ";\n";
  html += R"JS(
const fg = document.getElementById('fg');
const tip = document.getElementById('tip');
let zoom = data;
function color(name) {
  let h = 0;
  for (let i = 0; i < name.length; i++) h = (h * 31 + name.charCodeAt(i)) >>> 0;
  if (name.startsWith('std:')) return `hsl(${h % 50 + 180},60%,65%)`;
  if (name.startsWith('fn:') || name.startsWith('script:'))
    return `hsl(${h % 50 + 80},55%,62%)`;
  return `hsl(${h % 35},75%,64%)`;
}
function depth(node) {
  let d = 1;
  for (const c of node.c) d = Math.max(d, 1 + depth(c));
  return d;
}
function render() {
  fg.innerHTML = '';
  const width = fg.clientWidth || 1200;
  const rows = depth(zoom);
  fg.style.height = rows * 17 + 'px';
  function walk(node, x, level, scale) {
    const w = node.t * scale;
    if (w < 1) return;
    const div = document.createElement('div');
    div.style.left = x + 'px';
    div.style.top = (rows - 1 - level) * 17 + 'px';
    div.style.width = w + 'px';
    div.style.background = color(node.n);
    div.textContent = w > 30 ? node.n : '';
    const pct = (100 * node.t / data.t).toFixed(1);
    div.onmousemove = e => {
      tip.style.display = 'block';
      tip.style.left = (e.clientX + 12) + 'px';
      tip.style.top = (e.clientY + 12) + 'px';
      tip.textContent = `${node.n} — ${node.t} samples (${pct}% of all)`;
    };
    div.onmouseout = () => tip.style.display = 'none';
    div.onclick = () => { zoom = node; render(); };
    fg.appendChild(div);
    let cx = x + node.s * scale;
    for (const c of node.c) { walk(c, cx, level + 1, scale); cx += c.t * scale; }
  }
  walk(zoom, 0, 0, (fg.clientWidth || 1200) / Math.max(zoom.t, 1));
}
window.onresize = render;
render();
)JS";
  html += "</script></body></html>\n";
  return html;
}

}  // namespace fu::obs
