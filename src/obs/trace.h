// Structured tracing: RAII spans into per-thread ring buffers.
//
// A Tracer, once started, becomes the process-wide trace sink. Worker
// threads record TraceSpan scopes (site-visit -> fetch -> parse -> execute
// -> monkey-pass -> checkpoint-flush) with a monotonic clock; each thread
// appends to its own fixed-capacity ring buffer, so recording never takes a
// lock after a thread's first event. stop() drains every buffer into a flat
// span list that renders as Chrome trace_event JSON (load it in
// chrome://tracing or https://ui.perfetto.dev) or as a compact JSONL stream.
//
// Tracing compiles in always and is zero-cost when disabled: constructing a
// TraceSpan with no active tracer is a single relaxed atomic load and a
// branch. Tracing never reads or perturbs survey state — results are
// bit-identical with tracing on or off (sched_test enforces this).
//
// Lifecycle contract: start() and stop() must not race with open spans —
// in practice, start before run_survey and stop after it returns (worker
// threads are joined inside). Ring overflow drops the *oldest* completed
// spans whole, so begin/end events always stay matched.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/profiler.h"

namespace fu::obs {

// One completed span (or instant event) as drained from a thread buffer.
struct SpanRecord {
  const char* name = "";       // static-string span name
  std::uint32_t tid = 0;       // dense thread id, registration order
  std::uint32_t depth = 0;     // nesting depth within its thread
  std::uint64_t start_us = 0;  // µs since the tracer started
  std::uint64_t dur_us = 0;    // 0 allowed (µs resolution)
  // Per-thread sequence numbers of the begin/end edges; they order events
  // unambiguously even when microsecond timestamps tie.
  std::uint64_t begin_seq = 0;
  std::uint64_t end_seq = 0;
  bool instant = false;
  std::string arg;             // optional annotation (e.g. the site domain)
};

namespace internal {
struct TracerImpl;
struct ThreadBuffer;
// Active-tracer sink; null when tracing is disabled.
extern std::atomic<TracerImpl*> g_active;
// This thread's buffer under the active tracer (registers on first use);
// null when tracing is disabled.
ThreadBuffer* acquire_buffer();
std::uint64_t begin_span(ThreadBuffer* buffer);  // returns start_us
void end_span(ThreadBuffer* buffer, const char* name, std::uint64_t start_us,
              std::string arg);
void instant_event(ThreadBuffer* buffer, const char* name, std::string arg);
}  // namespace internal

// The single branch every disabled-tracing hot path pays.
inline bool tracing_enabled() noexcept {
  return internal::g_active.load(std::memory_order_relaxed) != nullptr;
}

// RAII scope: records one span from construction to destruction. `arg` is
// copied only while tracing is live.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name)
      : buffer_(internal::acquire_buffer()), name_(name), stage_frame_(name) {
    if (buffer_ != nullptr) start_us_ = internal::begin_span(buffer_);
  }
  TraceSpan(const char* name, const std::string& arg)
      : buffer_(internal::acquire_buffer()), name_(name), stage_frame_(name) {
    if (buffer_ != nullptr) {
      arg_ = arg;
      start_us_ = internal::begin_span(buffer_);
    }
  }
  ~TraceSpan() {
    if (buffer_ != nullptr) {
      internal::end_span(buffer_, name_, start_us_, std::move(arg_));
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  internal::ThreadBuffer* buffer_;
  const char* name_;
  std::uint64_t start_us_ = 0;
  std::string arg_;
  // Every trace scope is also a profiler stage frame (see profiler.h); when
  // neither a tracer nor a profiler is live the extra cost is one relaxed
  // load.
  StageFrame stage_frame_;
};

// Zero-duration marker ("retry", "steal", ...). `arg` only evaluated cheaply;
// pass a prebuilt string only when tracing_enabled().
void trace_instant(const char* name, std::string arg = {});

// --------------------------------------------------------------- sampling --
//
// A 10k-site survey emits millions of spans; sampling caps the file while
// keeping what matters. With set_trace_sampling(n), only 1-in-n
// SampledSiteSpan scopes record normally — every TraceSpan nested inside an
// unsampled scope is suppressed with it. An unsampled visit is still timed,
// and if it turns out slower than every visit seen so far it is kept
// retroactively as a complete span (without children): the tail latencies
// that justify tracing at all are never sampled away. n <= 1 disables
// sampling. The sample counter and the slowest-so-far watermark reset at
// Tracer::start().
void set_trace_sampling(std::uint64_t n);
std::uint64_t trace_sampling() noexcept;

// Sampling-aware variant of TraceSpan for the per-site root span.
class SampledSiteSpan {
 public:
  SampledSiteSpan(const char* name, const std::string& arg);
  ~SampledSiteSpan();
  SampledSiteSpan(const SampledSiteSpan&) = delete;
  SampledSiteSpan& operator=(const SampledSiteSpan&) = delete;

 private:
  internal::ThreadBuffer* buffer_ = nullptr;  // null = tracing disabled
  const char* name_;
  std::string arg_;
  std::uint64_t start_us_ = 0;
  bool suppressed_ = false;
  // Profiling ignores trace sampling: an unsampled visit still profiles.
  StageFrame stage_frame_;
};

class Tracer {
 public:
  // Each thread keeps up to `events_per_thread` completed spans; beyond
  // that the oldest are overwritten (counted in dropped()).
  explicit Tracer(std::size_t events_per_thread = 1 << 16);
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Install as the process-wide sink. Only one tracer may be active; a
  // second start() while another tracer is live throws std::logic_error.
  void start();
  bool active() const noexcept;

  // Uninstall and drain every thread buffer. Records are sorted by
  // (tid, begin_seq) — i.e. per-thread program order. Idempotent: a second
  // stop() returns the same records.
  std::vector<SpanRecord> stop();

  // Completed spans lost to ring overflow (valid after stop()).
  std::uint64_t dropped() const noexcept;

  // Renderers for drained records.
  static std::string chrome_json(const std::vector<SpanRecord>& records);
  static std::string jsonl(const std::vector<SpanRecord>& records);

 private:
  std::unique_ptr<internal::TracerImpl> impl_;
  std::vector<SpanRecord> drained_;
  std::uint64_t dropped_ = 0;
  bool stopped_ = false;
};

}  // namespace fu::obs
