// Folded-stack profiles: the Brendan Gregg collapsed format and everything
// rendered from it.
//
// A folded profile is a bag of sampled call stacks, one line per unique
// stack, frames root-first joined with ';' and followed by a sample count:
//
//   worker-0;site-visit;execute;script:example3.com/app.js;fn:tick 42
//
// Frames carry their class in plain text, so a profile stays analyzable
// after a round-trip through a file or an HTTP response with no side table:
// the first frame names the thread, "script:" prefixes a MiniJS program,
// "fn:" a MiniJS function, "std:" an instrumented feature shim (standard
// abbreviation before the '/'), and every other frame is a pipeline stage.
//
// This header is deliberately profiler-agnostic — `fu prof` uses it on any
// folded file, including ones produced by perf + stackcollapse.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace fu::obs {

struct FoldedProfile {
  // stack -> samples. An ordered map keeps to_text() deterministic.
  std::map<std::string, std::uint64_t> stacks;

  std::uint64_t total() const;
  void add(std::string_view stack, std::uint64_t samples);

  // One "stack count\n" line per entry, sorted by stack.
  std::string to_text() const;

  // Parses to_text() output (or any stackcollapse-style file). Blank lines
  // are skipped; a line without a trailing integer count, or with an empty
  // stack, throws std::runtime_error naming the line number.
  static FoldedProfile parse(std::string_view text);
};

// How a frame renders in summaries; derived from the frame text alone.
enum class FrameClass {
  kThread,    // first frame of a stack
  kStage,     // pipeline stage span ("site-visit", "execute", ...)
  kScript,    // "script:<site>/<resource>"
  kFunction,  // "fn:<name>"
  kStandard,  // "std:<abbrev>/<feature>" — instrumented shim
};
FrameClass classify_frame(std::string_view frame, bool first);

// Per-standard CPU attribution: each sample charges the standard of the
// deepest "std:" frame on its stack; samples that never passed through an
// instrumented shim charge "(engine)". Sorted by samples descending, then
// name; pct is of the profile total.
struct StandardShare {
  std::string standard;
  std::uint64_t samples = 0;
  double pct = 0;
};
std::vector<StandardShare> standards_breakdown(const FoldedProfile& profile);

// "standard,samples,pct\n" rows from standards_breakdown.
std::string standards_csv(const FoldedProfile& profile);

struct ProfSummaryOptions {
  std::size_t top = 12;  // rows per section
};

// Human summary: totals, per-stage and per-standard breakdowns, top frames
// by self and by inclusive samples.
std::string render_prof_summary(const FoldedProfile& profile,
                                const ProfSummaryOptions& options = {});

// The same numbers as JSON (stable shape; CI asserts against it):
// {"total": N, "stages": {...}, "standards": [{"standard","samples","pct"}],
//  "self": [{"frame","samples","pct"}], "inclusive": [...]}
std::string prof_summary_json(const FoldedProfile& profile,
                              std::size_t top = 12);

// Diff `after` against `before`, comparing percentage shares (totals may
// differ). Sections: per-stage, per-standard, and the top frame movers by
// absolute self-share delta.
std::string render_prof_diff(const FoldedProfile& before,
                             const FoldedProfile& after,
                             const ProfSummaryOptions& options = {});

// Self-contained interactive flamegraph (inline data + script, no external
// references): frame width ∝ samples, hover for counts, click to zoom.
std::string flamegraph_html(const FoldedProfile& profile,
                            std::string_view title);

}  // namespace fu::obs
