// Metrics registry: named Counter / Gauge / Histogram handles for the crawl
// pipeline.
//
// The survey is a long-running fan-out across worker threads, so hot-path
// recording must never serialize the workers: every metric is sharded into
// cache-line-sized cells and a thread picks its cell once (a thread-local
// slot), after which recording is a single relaxed atomic add. Snapshots
// merge the shards — they are read-mostly, rare, and allowed to race with
// recording (a snapshot is a consistent-enough view of monotonic counters,
// not a barrier).
//
// Handles are registered by name in a Registry and have stable addresses for
// the life of the registry, so instrumentation sites can cache a reference:
//
//   static obs::Counter& steals =
//       obs::Registry::global().counter("sched.steals");
//   steals.add();
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace fu::obs {

// Shard count per metric. Threads hash onto shards via a process-wide
// thread-local slot; collisions only cost an occasional shared cache line,
// never correctness.
inline constexpr std::size_t kMetricShards = 16;

// The slot this thread records into (assigned round-robin on first use).
std::size_t this_thread_shard() noexcept;

// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    cells_[this_thread_shard()].value.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept;
  void reset() noexcept;
  const std::string& name() const noexcept { return name_; }

 private:
  friend class Registry;
  explicit Counter(std::string name) : name_(std::move(name)) {}

  struct alignas(64) Cell {
    std::atomic<std::uint64_t> value{0};
  };
  std::array<Cell, kMetricShards> cells_;
  std::string name_;
};

// Last-set value plus the maximum ever set (the interesting half for things
// like deque depth, where the peak tells the balance story).
class Gauge {
 public:
  void set(std::int64_t v) noexcept;
  // Raise the max without touching the last-set value.
  void record_max(std::int64_t v) noexcept;
  std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  std::int64_t max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }
  void reset() noexcept;
  const std::string& name() const noexcept { return name_; }

 private:
  friend class Registry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}

  std::atomic<std::int64_t> value_{0};
  std::atomic<std::int64_t> max_{0};
  std::string name_;
};

// Fixed-bucket histogram over unsigned values (latencies in microseconds).
// `bounds` are ascending upper-inclusive bucket edges; an implicit overflow
// bucket catches everything above the last bound. Recording is a relaxed add
// into the caller's shard.
class Histogram {
 public:
  void record(std::uint64_t value) noexcept;

  // Which bucket `value` lands in: the first i with value <= bounds[i],
  // else bounds.size() (the overflow bucket). Exposed for tests.
  std::size_t bucket_for(std::uint64_t value) const noexcept;

  struct Snapshot {
    std::string name;
    std::vector<std::uint64_t> bounds;
    std::vector<std::uint64_t> counts;  // bounds.size() + 1, last = overflow
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = 0;  // smallest / largest recorded value (0 if empty)
    std::uint64_t max = 0;

    // Percentile estimate (p in [0,100]): linear interpolation inside the
    // bucket holding the target rank, clamped to the recorded min/max.
    double percentile(double p) const;
  };
  Snapshot snapshot() const;
  void reset() noexcept;
  const std::string& name() const noexcept { return name_; }

 private:
  friend class Registry;
  Histogram(std::string name, std::vector<std::uint64_t> bounds);

  struct alignas(64) Shard {
    std::vector<std::atomic<std::uint64_t>> buckets;
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
  };
  std::string name_;
  std::vector<std::uint64_t> bounds_;
  std::array<Shard, kMetricShards> shards_;
  std::atomic<std::uint64_t> min_{~std::uint64_t{0}};
  std::atomic<std::uint64_t> max_{0};
};

// Bucket helpers. `exponential_bounds(1, 2, 8)` -> 1,2,4,...,128.
std::vector<std::uint64_t> exponential_bounds(std::uint64_t first,
                                              double factor,
                                              std::size_t count);
// 1 µs .. ~67 s in powers of two — the default latency bucketing.
const std::vector<std::uint64_t>& default_latency_bounds_us();

// JSON-escape `text` and wrap it in double quotes. Metric names are plain
// identifiers, but every emitter in obs/ goes through this so none of them
// can produce invalid JSON regardless of input.
std::string json_quote(std::string_view text);

struct JsonValue;  // obs/json.h

// Point-in-time view of every registered metric; renders to JSON for
// `fu survey --metrics-out` and `/metrics.json`, or to Prometheus text
// exposition for `/metrics`.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  struct GaugeValue {
    std::string name;
    std::int64_t value = 0;
    std::int64_t max = 0;
  };
  std::vector<GaugeValue> gauges;
  std::vector<Histogram::Snapshot> histograms;

  // Histogram bounds are emitted with an explicit trailing "+inf" entry, so
  // bounds and counts have equal length and the overflow bucket is
  // self-describing. histogram_from_json() below reads both this form and
  // the historical implicit-overflow form.
  std::string to_json() const;
  // Prometheus text exposition (version 0.0.4): names sanitized to
  // [a-zA-Z0-9_] with a "fu_" prefix, counters as _total, histograms as
  // cumulative _bucket{le=...} series ending in le="+Inf".
  std::string to_prometheus() const;
};

// Read one histogram object (the value under "histograms" in to_json()
// output) back into a Snapshot. Tolerates both bound forms: a trailing
// "+inf" string entry is the overflow marker, its absence means the
// overflow bucket is implicit. Returns false when the object is not a
// histogram (missing counts, non-numeric bounds, count/size mismatch).
bool histogram_from_json(const JsonValue& value, Histogram::Snapshot& out);

class Registry {
 public:
  // The process-wide registry every instrumentation site records into.
  static Registry& global();

  // Find-or-create by name; returned references stay valid for the life of
  // the registry. `histogram` ignores `bounds` when the name already exists.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name,
                       std::vector<std::uint64_t> bounds =
                           default_latency_bounds_us());

  MetricsSnapshot snapshot() const;
  // Zero every value; handles stay registered and valid (tests/benches).
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

// Records elapsed wall time into `histogram` (µs) on destruction. When
// `enabled` is false the clock is never read — used to keep per-script
// timing off the hot path unless tracing is on.
class ScopedLatency {
 public:
  explicit ScopedLatency(Histogram& histogram, bool enabled = true)
      : histogram_(enabled ? &histogram : nullptr),
        start_(enabled ? std::chrono::steady_clock::now()
                       : std::chrono::steady_clock::time_point()) {}
  ~ScopedLatency() {
    if (histogram_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    histogram_->record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
            .count()));
  }
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace fu::obs
