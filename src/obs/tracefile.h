// Trace-file reader and reporter behind `fu trace <file>`.
//
// Loads either of the two formats `fu survey` emits — Chrome
// trace_event-format JSON (--trace-out) or the compact JSONL stream
// (--trace-jsonl) — validating structure as it goes: every begin event must
// have a matching end on the same thread, properly nested. The summary
// reports what an operator babysitting a long crawl wants first: per-stage
// latency percentiles, the slowest sites, and how evenly the scheduler kept
// the workers busy.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace fu::obs {

struct ParsedSpan {
  std::string name;
  int tid = 0;
  int depth = 0;
  std::uint64_t ts_us = 0;
  std::uint64_t dur_us = 0;
  bool instant = false;
  std::string arg;  // "arg" annotation (the site domain for site-visit)
};

// Chrome trace_event JSON: {"traceEvents": [...]} with B/E/i/M/X phases.
// Fails (with `error` set) on malformed JSON or unmatched/misnested
// begin/end pairs — which makes it double as the trace validator.
bool parse_chrome_trace(std::string_view text, std::vector<ParsedSpan>& out,
                        std::string* error = nullptr);

// One JSON object per line: {"name":..,"tid":..,"ts":..,"dur":..,...}.
bool parse_trace_jsonl(std::string_view text, std::vector<ParsedSpan>& out,
                       std::string* error = nullptr);

// Reads `path` and auto-detects the format (a leading '{' holding a
// "traceEvents" member is Chrome JSON; anything else is tried as JSONL).
bool load_trace_file(const std::string& path, std::vector<ParsedSpan>& out,
                     std::string* error = nullptr);

struct TraceSummaryOptions {
  std::size_t top_n = 10;             // slowest sites to list
  std::string site_span = "site-visit";  // stage that carries the site arg
};

// Per-stage p50/p95/p99 (µs), top-N slowest sites, scheduler balance.
std::string render_trace_summary(const std::vector<ParsedSpan>& spans,
                                 const TraceSummaryOptions& options = {});

// ------------------------------------------------------- regression gate --
//
// CI traces a small survey, reduces it to per-stage percentiles, and diffs
// those against a checked-in baseline: a stage whose latency grew beyond
// the tolerance fails the job before the regression reaches a real crawl.

struct StageStats {
  std::string name;
  std::size_t count = 0;
  double p50_us = 0;
  double p95_us = 0;
  double p99_us = 0;
};

// Duration percentiles of every non-instant span, grouped by name, sorted
// by name (deterministic output for baseline files).
std::vector<StageStats> trace_stage_stats(const std::vector<ParsedSpan>& spans);

// {"stages": [{"name":.., "count":.., "p50_us":.., ...}, ...]} — what
// `fu trace --write-baseline` persists and `--check-baseline` reads.
std::string stage_stats_json(const std::vector<StageStats>& stats);
bool parse_stage_stats_json(std::string_view text,
                            std::vector<StageStats>& out,
                            std::string* error = nullptr);

struct RegressionReport {
  bool regressed = false;
  std::string text;  // per-stage verdict lines, human-readable
};

// A stage regresses when a current percentile exceeds
// baseline * (1 + tolerance) + 50µs — the relative bound absorbs machine
// speed differences, the absolute floor keeps microsecond-scale stages from
// tripping on scheduler jitter. Stages present on only one side are
// reported but never fail (sampling or config changes legitimately add and
// remove stages).
RegressionReport check_stage_regression(
    const std::vector<StageStats>& baseline,
    const std::vector<StageStats>& current, double tolerance);

}  // namespace fu::obs
