// Memory observability: domain byte accounting, a sampling allocation
// profiler, and the /memz surface.
//
// Three layers, mirroring how PR 7 treats CPU time:
//
//   1. Domain accounting — one signed byte counter per allocation *domain*
//      (script-heap slabs, atom tables, snapshot images, checkpoint/shard
//      cache, scheduler deques, trace rings, net corpus). Instrumented
//      choke points call mem::add()/mem::sub(); the hot path is a single
//      relaxed fetch_add plus a high-water check that only writes when a
//      new peak is set (bench_mem_overhead asserts the bound). Accounting
//      is always on — there is no "enabled" flag to check, because the
//      counter *is* the cheap path.
//
//   2. Sampling allocation profiler — while a MemProfiler is live, every
//      Nth tracked allocation captures the calling thread's live
//      obs::Profiler frame stack, so bytes fold into the same
//      worker/stage/script fn/standard folded format the CPU profiler
//      emits (FoldedProfile, the flamegraph renderer and the standards
//      breakdown all reuse). Each sampled stack gains a "mem:<domain>"
//      leaf frame and is weighted by bytes x sample period — an unbiased
//      estimate of total bytes when allocation sizes are uncorrelated
//      with the sample phase. Disabled cost on top of the counter: one
//      relaxed load and a branch.
//
//   3. Surfacing — memz_json() renders per-domain current/high-water plus
//      self-measured RSS (/proc/self/statm) for GET /memz on both the
//      --serve endpoint and the daemon; publish_metrics() copies the same
//      numbers into registry gauges (mem.rss_bytes, mem.<domain>_bytes)
//      so /metrics.json, /metrics and /deltas.json carry them without a
//      /memz hit. Baseline helpers back the `fu mem
//      --write-baseline/--check-baseline` peak-RSS regression gate.
//
// Like tracing and CPU profiling, none of this may perturb survey results:
// accounting touches only its own atomics, and the profiler only *reads*
// thread stacks — engine results stay fingerprint-identical with accounting
// and profiling on or off (mem_test and engine_identity_test lock this).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "obs/folded.h"

namespace fu::obs::mem {

// Every tracked allocation domain. Keep kCount in sync; domain_name() is
// the stable spelling used in /memz, baselines and "mem:" profile frames.
enum class Domain : std::uint8_t {
  kScriptHeap = 0,  // Heap object slabs (per-session MiniJS heaps)
  kAtoms,           // AtomTable interned strings (all tables)
  kSnapshot,        // frozen per-catalog session images (PR 9 clone source)
  kShards,          // checkpoint writer buffers + loaded shard records
  kSched,           // scheduler deque residency (queued, not-yet-run jobs)
  kTrace,           // per-thread trace ring buffers
  kNetCorpus,       // eagerly materialized synthetic-web site plans
  kCount,
};
inline constexpr std::size_t kDomainCount =
    static_cast<std::size_t>(Domain::kCount);

const char* domain_name(Domain domain) noexcept;

namespace internal {

struct DomainCell {
  // Signed: a sub() racing ahead of the add() it pairs with (another
  // thread's view) may transiently dip below zero; totals are consistent
  // once scopes balance.
  std::atomic<std::int64_t> current{0};
  std::atomic<std::int64_t> high_water{0};
};
extern std::array<DomainCell, kDomainCount> g_domains;
extern std::atomic<bool> g_profiling;

// Slow path of add(): record a profiler sample for this allocation.
void profile_allocation(Domain domain, std::size_t bytes) noexcept;

}  // namespace internal

// Account `bytes` allocated (released) in `domain`. add() is the one hot
// path: a relaxed fetch_add, a relaxed high-water load (the CAS only runs
// on a fresh peak, rare in steady state), and a relaxed profiling-flag
// load. Safe from any thread, any time, including before main().
inline void add(Domain domain, std::size_t bytes) noexcept {
  auto& cell = internal::g_domains[static_cast<std::size_t>(domain)];
  const std::int64_t now =
      cell.current.fetch_add(static_cast<std::int64_t>(bytes),
                             std::memory_order_relaxed) +
      static_cast<std::int64_t>(bytes);
  std::int64_t peak = cell.high_water.load(std::memory_order_relaxed);
  while (now > peak && !cell.high_water.compare_exchange_weak(
                           peak, now, std::memory_order_relaxed)) {
  }
  // Zero-byte events (an empty heap re-tagging its domain) would fold into
  // meaningless zero-weight samples — skip them.
  if (bytes != 0 && internal::g_profiling.load(std::memory_order_relaxed)) {
    internal::profile_allocation(domain, bytes);
  }
}

inline void sub(Domain domain, std::size_t bytes) noexcept {
  internal::g_domains[static_cast<std::size_t>(domain)].current.fetch_sub(
      static_cast<std::int64_t>(bytes), std::memory_order_relaxed);
}

std::int64_t current_bytes(Domain domain) noexcept;
std::int64_t high_water_bytes(Domain domain) noexcept;

// Drop every domain's high-water mark back to its current value (and the
// RSS peak back to the current RSS sample). The daemon calls this before
// each crawl so per-survey job records report that survey's peaks, not the
// process lifetime's.
void reset_high_water() noexcept;

// RAII add/sub pair for scopes that materialize a transient block of bytes
// (warm shard loads). grow() may be called any number of times; the
// destructor returns everything accounted so far.
class ScopedBytes {
 public:
  explicit ScopedBytes(Domain domain, std::size_t bytes = 0)
      : domain_(domain) {
    if (bytes > 0) grow(bytes);
  }
  ~ScopedBytes() {
    if (bytes_ > 0) sub(domain_, bytes_);
  }
  void grow(std::size_t bytes) {
    add(domain_, bytes);
    bytes_ += bytes;
  }
  std::size_t bytes() const noexcept { return bytes_; }
  ScopedBytes(const ScopedBytes&) = delete;
  ScopedBytes& operator=(const ScopedBytes&) = delete;

 private:
  Domain domain_;
  std::size_t bytes_ = 0;
};

// ---------------------------------------------------------------- RSS ----

// Self-measured resident set size from /proc/self/statm (pages x page
// size); -1 where that file does not exist. Cheap enough to call per poll,
// not per allocation.
std::int64_t self_rss_bytes() noexcept;

// Peak of every self_rss_bytes() sample taken through publish_metrics() /
// memz_json() since process start (or the last reset_high_water()).
std::int64_t rss_peak_bytes() noexcept;

// Sample RSS and copy every domain counter into registry gauges:
// mem.rss_bytes plus mem.<domain>_bytes (value = current, max = high
// water). The live server calls this on its delta tick — the "background
// poller" — so /metrics.json, /metrics and /deltas.json all carry
// mem.rss_bytes without touching /memz; run_survey brackets the crawl with
// it so --metrics-out sees the gauges even with no server attached.
void publish_metrics();

// The /memz body: {"domains": {"script-heap": {"current": N,
// "high_water": N}, ...}, "rss_bytes": N, "rss_peak_bytes": N}. Samples
// RSS (and publishes gauges) on every render.
std::string memz_json();

// Just the domains object from memz_json() — what daemon job records store
// as the per-survey peak report.
std::string domains_json();

// ------------------------------------------- sampling allocation profiler

// Every Nth tracked allocation is sampled (N = sample period). Tracked
// allocations are coarse (a heap slab, an atom string, a shard record), so
// a small period keeps profiles dense without measurable cost.
inline constexpr std::uint64_t kDefaultSamplePeriod = 8;

// One live MemProfiler at a time, sharing none of the CPU Profiler's slot:
// both may run together (each holds its own frame-recording lease). start()
// enables prof frame recording so stage/script/std frames are captured;
// stop() resolves samples into a folded profile whose counts are estimated
// BYTES, each stack ending in a "mem:<domain>" leaf frame.
class MemProfiler {
 public:
  explicit MemProfiler(std::uint64_t sample_period = kDefaultSamplePeriod);
  ~MemProfiler();  // stops if still running

  MemProfiler(const MemProfiler&) = delete;
  MemProfiler& operator=(const MemProfiler&) = delete;

  // Throws std::logic_error when another MemProfiler is already live.
  void start();
  bool active() const noexcept;

  // Idempotent after the first call, like Profiler::stop().
  FoldedProfile stop();

  // Allocations sampled so far (live).
  std::uint64_t samples() const noexcept;

  std::uint64_t sample_period() const noexcept { return period_; }

 private:
  friend void internal::profile_allocation(Domain, std::size_t) noexcept;

  void record(Domain domain, std::size_t bytes) noexcept;

  std::uint64_t period_;
  std::atomic<std::uint64_t> countdown_;
  std::atomic<std::uint64_t> sample_count_{0};
  struct Agg;
  std::unique_ptr<Agg> agg_;
  FoldedProfile result_;
  bool started_ = false;
  bool stopped_ = false;
};

// ------------------------------------------------------- mem summaries ---

// Human summary of a folded BYTES profile (fu mem): total estimated bytes,
// per-domain ("mem:" leaf frames), per-stage and per-standard attribution,
// top frames by self bytes. `top` bounds rows per section.
std::string render_mem_summary(const FoldedProfile& profile,
                               std::size_t top = 12);

// "standard,bytes,pct\n" rows — the per-standard residency CSV written
// beside --memprofile-out.
std::string mem_standards_csv(const FoldedProfile& profile);

// "12.3 MiB"-style rendering, used by every mem report.
std::string format_bytes(std::int64_t bytes);

// ------------------------------------------------------- baseline gate ---

// Compare two memz/domains JSON documents (as written by
// --memprofile-out's .domains.json or GET /memz): per-domain current and
// high-water deltas, most-grown first. Backs `fu mem <a> <b>` diff mode.
std::string render_domains_diff(const std::string& before_json,
                                const std::string& after_json);

// Extract {"domains": {name: high_water}, "rss_peak_bytes": N} from a
// memz/domains JSON document — the baseline format `fu mem
// --write-baseline` stores under ci/. Returns false on a parse failure.
bool baseline_from_json(const std::string& json, std::string& out,
                        std::string* error = nullptr);

struct BaselineReport {
  bool regressed = false;
  std::string text;  // one line per domain: pass/fail with both numbers
};

// The peak-RSS regression gate: every domain peak (and rss_peak_bytes) in
// `current` must stay within baseline * (1 + tolerance) + floor. The floor
// (1 MiB per domain, 64 MiB for RSS) keeps byte-level noise in small
// domains from tripping a percentage gate, mirroring the trace gate's
// microsecond floor.
BaselineReport check_baseline(const std::string& baseline_json,
                              const std::string& current_json,
                              double tolerance);

}  // namespace fu::obs::mem
