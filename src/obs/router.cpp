#include "obs/router.h"

namespace fu::obs {

namespace {

std::vector<std::string> split_path(const std::string& path) {
  std::vector<std::string> segments;
  std::size_t begin = 0;
  while (begin <= path.size()) {
    const std::size_t end = path.find('/', begin);
    if (end == std::string::npos) {
      segments.push_back(path.substr(begin));
      break;
    }
    segments.push_back(path.substr(begin, end - begin));
    begin = end + 1;
  }
  // "/a/b" and "a/b" route identically; the empty leading segment from the
  // leading slash carries no information.
  if (!segments.empty() && segments.front().empty()) {
    segments.erase(segments.begin());
  }
  // A trailing slash is equally insignificant ("/surveys/" == "/surveys").
  if (segments.size() > 1 && segments.back().empty()) segments.pop_back();
  return segments;
}

bool is_param(const std::string& segment) {
  return segment.size() >= 2 && segment.front() == '<' &&
         segment.back() == '>';
}

}  // namespace

HttpResponse json_response(int status, std::string body) {
  return HttpResponse{status, "application/json", std::move(body)};
}

HttpResponse text_response(int status, std::string body) {
  return HttpResponse{status, "text/plain", std::move(body)};
}

void Router::handle(std::string method, std::string pattern, Handler handler) {
  Route route;
  route.method = std::move(method);
  route.segments = split_path(pattern);
  route.pattern = std::move(pattern);
  route.handler = std::move(handler);
  routes_.push_back(std::move(route));
}

bool Router::match(const Route& route, const std::string& path,
                   std::vector<std::string>& params) {
  const std::vector<std::string> segments = split_path(path);
  if (segments.size() != route.segments.size()) return false;
  params.clear();
  for (std::size_t i = 0; i < segments.size(); ++i) {
    if (is_param(route.segments[i])) {
      if (segments[i].empty()) return false;
      params.push_back(segments[i]);
    } else if (segments[i] != route.segments[i]) {
      return false;
    }
  }
  return true;
}

HttpResponse Router::dispatch(HttpRequest& request) const {
  bool path_known = false;
  std::string allowed;
  std::vector<std::string> params;
  for (const Route& route : routes_) {
    if (!match(route, request.path, params)) continue;
    if (route.method != request.method) {
      path_known = true;
      if (allowed.find(route.method) == std::string::npos) {
        allowed += allowed.empty() ? route.method : ", " + route.method;
      }
      continue;
    }
    request.params = std::move(params);
    return route.handler(request);
  }
  if (path_known) {
    return text_response(405, request.path + " allows: " + allowed + "\n");
  }
  std::string known;
  for (const Route& route : routes_) {
    if (known.find(route.pattern) != std::string::npos) continue;
    known += known.empty() ? route.pattern : " " + route.pattern;
  }
  return text_response(404, "unknown path; try: " + known + "\n");
}

}  // namespace fu::obs
