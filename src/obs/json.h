// Minimal JSON reader — just enough to load back the trace and metrics
// files this repo emits (`fu trace`, tests, CI validation). Full JSON value
// model, recursive descent, no streaming; inputs are at most a few MB.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace fu::obs {

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_object() const noexcept { return type == Type::kObject; }
  bool is_array() const noexcept { return type == Type::kArray; }
  bool is_string() const noexcept { return type == Type::kString; }
  bool is_number() const noexcept { return type == Type::kNumber; }

  // First object member named `key`, or null when absent / not an object.
  const JsonValue* find(std::string_view key) const noexcept;
  // Member lookup with defaults, for tolerant readers.
  double number_or(std::string_view key, double fallback) const noexcept;
  std::string string_or(std::string_view key,
                        const std::string& fallback) const;
};

// Parse one JSON document. Returns false (and sets `error` with an offset
// description) on malformed input; trailing non-whitespace is an error.
bool json_parse(std::string_view text, JsonValue& out,
                std::string* error = nullptr);

}  // namespace fu::obs
