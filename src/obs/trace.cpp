#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <stdexcept>

#include "obs/mem.h"

namespace fu::obs {

namespace internal {

struct ThreadBuffer {
  std::uint32_t tid = 0;
  std::uint64_t sequence = 0;  // per-thread edge counter (begin/end edges)
  std::uint64_t pushed = 0;    // completed records ever pushed
  std::size_t capacity = 0;
  std::chrono::steady_clock::time_point t0;
  std::vector<std::uint64_t> open_begin_seq;  // stack: spans close LIFO
  std::vector<SpanRecord> ring;
  std::size_t accounted = 0;  // ring bytes reported to mem::Domain::kTrace

  ~ThreadBuffer() { mem::sub(mem::Domain::kTrace, accounted); }

  // Ring slot storage only; span args/payloads are small and transient
  // compared to the preallocated record array.
  void account_ring() {
    const std::size_t bytes = ring.capacity() * sizeof(SpanRecord);
    if (bytes > accounted) {
      mem::add(mem::Domain::kTrace, bytes - accounted);
      accounted = bytes;
    }
  }

  std::uint64_t now_us() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
  }

  void push(SpanRecord record) {
    if (ring.size() < capacity) {
      ring.push_back(std::move(record));
      account_ring();
    } else {
      ring[pushed % capacity] = std::move(record);
    }
    ++pushed;
  }
};

struct TracerImpl {
  std::uint64_t epoch = 0;
  std::size_t capacity = 0;
  std::chrono::steady_clock::time_point start_time;
  std::mutex mutex;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
};

std::atomic<TracerImpl*> g_active{nullptr};

namespace {

std::atomic<std::uint64_t> g_epoch{1};

// Sampling state (see set_trace_sampling): rate, round-robin counter, and
// the slowest site-visit duration recorded so far.
std::atomic<std::uint64_t> g_sample_every{0};
std::atomic<std::uint64_t> g_sample_counter{0};
std::atomic<std::uint64_t> g_slowest_us{0};

// > 0 while this thread is inside an unsampled SampledSiteSpan; every
// nested TraceSpan / trace_instant then records nothing.
thread_local int t_suppress_depth = 0;

// Which tracer epoch this thread's cached buffer belongs to. A thread that
// outlives one tracer re-registers with the next.
struct TlsCache {
  std::uint64_t epoch = 0;
  ThreadBuffer* buffer = nullptr;
};
thread_local TlsCache t_cache;

// Raise the slowest-so-far watermark to `dur_us`; true when it was a new
// maximum (the caller's span outran everything recorded before it).
bool raise_slowest(std::uint64_t dur_us) {
  std::uint64_t prev = g_slowest_us.load(std::memory_order_relaxed);
  while (dur_us > prev) {
    if (g_slowest_us.compare_exchange_weak(prev, dur_us,
                                           std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

// Append an already-timed span as a balanced begin/end pair at the current
// nesting depth (used to keep an unsampled-but-slowest visit).
void complete_span(ThreadBuffer* buffer, const char* name,
                   std::uint64_t start_us, std::uint64_t dur_us,
                   std::string arg) {
  SpanRecord record;
  record.name = name;
  record.tid = buffer->tid;
  record.depth = static_cast<std::uint32_t>(buffer->open_begin_seq.size());
  record.begin_seq = ++buffer->sequence;
  record.end_seq = ++buffer->sequence;
  record.start_us = start_us;
  record.dur_us = dur_us;
  record.arg = std::move(arg);
  buffer->push(std::move(record));
}

}  // namespace

ThreadBuffer* acquire_buffer() {
  if (t_suppress_depth > 0) return nullptr;
  TracerImpl* impl = g_active.load(std::memory_order_acquire);
  if (impl == nullptr) return nullptr;
  if (t_cache.epoch != impl->epoch) {
    std::lock_guard<std::mutex> lock(impl->mutex);
    auto buffer = std::make_unique<ThreadBuffer>();
    buffer->tid = static_cast<std::uint32_t>(impl->buffers.size());
    buffer->capacity = impl->capacity;
    buffer->t0 = impl->start_time;
    buffer->ring.reserve(std::min<std::size_t>(impl->capacity, 1024));
    buffer->account_ring();
    t_cache.buffer = impl->buffers.emplace_back(std::move(buffer)).get();
    t_cache.epoch = impl->epoch;
  }
  return t_cache.buffer;
}

std::uint64_t begin_span(ThreadBuffer* buffer) {
  buffer->open_begin_seq.push_back(++buffer->sequence);
  return buffer->now_us();
}

void end_span(ThreadBuffer* buffer, const char* name, std::uint64_t start_us,
              std::string arg) {
  SpanRecord record;
  record.name = name;
  record.tid = buffer->tid;
  record.depth =
      static_cast<std::uint32_t>(buffer->open_begin_seq.size() - 1);
  record.begin_seq = buffer->open_begin_seq.back();
  buffer->open_begin_seq.pop_back();
  record.start_us = start_us;
  const std::uint64_t end_us = buffer->now_us();
  record.dur_us = end_us > start_us ? end_us - start_us : 0;
  record.end_seq = ++buffer->sequence;
  record.arg = std::move(arg);
  buffer->push(std::move(record));
}

void instant_event(ThreadBuffer* buffer, const char* name, std::string arg) {
  SpanRecord record;
  record.name = name;
  record.tid = buffer->tid;
  record.depth = static_cast<std::uint32_t>(buffer->open_begin_seq.size());
  record.start_us = buffer->now_us();
  record.begin_seq = record.end_seq = ++buffer->sequence;
  record.instant = true;
  record.arg = std::move(arg);
  buffer->push(std::move(record));
}

}  // namespace internal

void trace_instant(const char* name, std::string arg) {
  internal::ThreadBuffer* buffer = internal::acquire_buffer();
  if (buffer == nullptr) return;
  internal::instant_event(buffer, name, std::move(arg));
}

// ------------------------------------------------------------- sampling --

void set_trace_sampling(std::uint64_t n) {
  internal::g_sample_every.store(n, std::memory_order_relaxed);
}

std::uint64_t trace_sampling() noexcept {
  return internal::g_sample_every.load(std::memory_order_relaxed);
}

SampledSiteSpan::SampledSiteSpan(const char* name, const std::string& arg)
    : name_(name), stage_frame_(name) {
  internal::ThreadBuffer* buffer = internal::acquire_buffer();
  if (buffer == nullptr) return;
  buffer_ = buffer;
  arg_ = arg;
  const std::uint64_t n =
      internal::g_sample_every.load(std::memory_order_relaxed);
  if (n > 1 &&
      internal::g_sample_counter.fetch_add(1, std::memory_order_relaxed) %
              n !=
          0) {
    // Unsampled: time the visit but suppress its whole subtree.
    suppressed_ = true;
    start_us_ = buffer->now_us();
    ++internal::t_suppress_depth;
    return;
  }
  start_us_ = internal::begin_span(buffer);
}

SampledSiteSpan::~SampledSiteSpan() {
  if (buffer_ == nullptr) return;
  if (!suppressed_) {
    const std::uint64_t end_us = buffer_->now_us();
    internal::raise_slowest(end_us > start_us_ ? end_us - start_us_ : 0);
    internal::end_span(buffer_, name_, start_us_, std::move(arg_));
    return;
  }
  --internal::t_suppress_depth;
  const std::uint64_t end_us = buffer_->now_us();
  const std::uint64_t dur_us = end_us > start_us_ ? end_us - start_us_ : 0;
  // A new maximum must survive sampling — that outlier is the one an
  // operator goes looking for.
  if (internal::raise_slowest(dur_us)) {
    internal::complete_span(buffer_, name_, start_us_, dur_us,
                            std::move(arg_));
  }
}

// -------------------------------------------------------------- tracer --

Tracer::Tracer(std::size_t events_per_thread)
    : impl_(std::make_unique<internal::TracerImpl>()) {
  impl_->capacity = events_per_thread > 0 ? events_per_thread : 1;
}

Tracer::~Tracer() {
  internal::TracerImpl* expected = impl_.get();
  internal::g_active.compare_exchange_strong(expected, nullptr,
                                             std::memory_order_acq_rel);
}

void Tracer::start() {
  if (active()) return;
  impl_->epoch = internal::g_epoch.fetch_add(1, std::memory_order_relaxed) + 1;
  impl_->start_time = std::chrono::steady_clock::now();
  internal::g_sample_counter.store(0, std::memory_order_relaxed);
  internal::g_slowest_us.store(0, std::memory_order_relaxed);
  stopped_ = false;
  drained_.clear();
  dropped_ = 0;
  internal::TracerImpl* expected = nullptr;
  if (!internal::g_active.compare_exchange_strong(
          expected, impl_.get(), std::memory_order_release,
          std::memory_order_relaxed)) {
    throw std::logic_error("obs::Tracer::start: another tracer is active");
  }
}

bool Tracer::active() const noexcept {
  return internal::g_active.load(std::memory_order_relaxed) == impl_.get();
}

std::vector<SpanRecord> Tracer::stop() {
  internal::TracerImpl* expected = impl_.get();
  internal::g_active.compare_exchange_strong(expected, nullptr,
                                             std::memory_order_acq_rel);
  if (stopped_) return drained_;
  stopped_ = true;

  std::lock_guard<std::mutex> lock(impl_->mutex);
  drained_.clear();
  dropped_ = 0;
  for (const auto& buffer : impl_->buffers) {
    const std::size_t kept = buffer->ring.size();
    if (buffer->pushed > kept) dropped_ += buffer->pushed - kept;
    // Ring order: oldest surviving record first.
    const std::size_t head = kept > 0 ? buffer->pushed % kept : 0;
    for (std::size_t i = 0; i < kept; ++i) {
      drained_.push_back(buffer->ring[(head + i) % kept]);
    }
  }
  std::sort(drained_.begin(), drained_.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.tid != b.tid) return a.tid < b.tid;
              return a.begin_seq < b.begin_seq;
            });
  return drained_;
}

std::uint64_t Tracer::dropped() const noexcept { return dropped_; }

// ----------------------------------------------------------- rendering --

namespace {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += ' ';
        } else {
          out += c;
        }
    }
  }
  return out;
}

// One begin/end/instant edge of a span, for the Chrome event stream.
struct Edge {
  std::uint32_t tid = 0;
  std::uint64_t seq = 0;  // per-thread order, tie-proof
  char phase = 'B';       // 'B', 'E' or 'i'
  const SpanRecord* record = nullptr;
};

std::string chrome_event(const Edge& edge) {
  const SpanRecord& record = *edge.record;
  std::string out = "{\"name\": \"" + json_escape(record.name) +
                    "\", \"cat\": \"fu\", \"ph\": \"";
  out += edge.phase;
  out += "\", \"pid\": 1, \"tid\": " + std::to_string(record.tid) +
         ", \"ts\": " +
         std::to_string(edge.phase == 'E' ? record.start_us + record.dur_us
                                          : record.start_us);
  if (edge.phase == 'i') out += ", \"s\": \"t\"";
  if (edge.phase != 'E' && !record.arg.empty()) {
    out += ", \"args\": {\"arg\": \"" + json_escape(record.arg) + "\"}";
  }
  out += "}";
  return out;
}

}  // namespace

std::string Tracer::chrome_json(const std::vector<SpanRecord>& records) {
  // Expand spans into begin/end edges and order each thread's stream by its
  // edge sequence numbers — timestamps can tie at µs resolution, sequence
  // numbers cannot, so begins and ends always nest correctly.
  std::vector<Edge> edges;
  edges.reserve(records.size() * 2);
  for (const SpanRecord& record : records) {
    if (record.instant) {
      edges.push_back({record.tid, record.begin_seq, 'i', &record});
    } else {
      edges.push_back({record.tid, record.begin_seq, 'B', &record});
      edges.push_back({record.tid, record.end_seq, 'E', &record});
    }
  }
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    if (a.tid != b.tid) return a.tid < b.tid;
    return a.seq < b.seq;
  });

  std::string out = "{\"traceEvents\": [\n";
  // Thread-name metadata rows make Perfetto label the tracks.
  std::uint32_t max_tid = 0;
  for (const SpanRecord& record : records) {
    max_tid = std::max(max_tid, record.tid);
  }
  bool first = true;
  if (!records.empty()) {
    for (std::uint32_t t = 0; t <= max_tid; ++t) {
      out += first ? "" : ",\n";
      out += "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
             "\"tid\": " +
             std::to_string(t) + ", \"args\": {\"name\": \"worker-" +
             std::to_string(t) + "\"}}";
      first = false;
    }
  }
  for (const Edge& edge : edges) {
    out += first ? "" : ",\n";
    out += chrome_event(edge);
    first = false;
  }
  out += "\n]}\n";
  return out;
}

std::string Tracer::jsonl(const std::vector<SpanRecord>& records) {
  std::string out;
  for (const SpanRecord& record : records) {
    out += "{\"name\": \"" + json_escape(record.name) +
           "\", \"tid\": " + std::to_string(record.tid) +
           ", \"depth\": " + std::to_string(record.depth) +
           ", \"ts\": " + std::to_string(record.start_us) +
           ", \"dur\": " + std::to_string(record.dur_us);
    if (record.instant) out += ", \"instant\": true";
    if (!record.arg.empty()) {
      out += ", \"arg\": \"" + json_escape(record.arg) + "\"";
    }
    out += "}\n";
  }
  return out;
}

}  // namespace fu::obs
