#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "obs/json.h"

namespace fu::obs {

namespace {

// Minimal JSON string escaping for metric names (they are plain identifiers,
// but the emitter must not be able to produce invalid JSON regardless).
std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void atomic_max(std::atomic<std::uint64_t>& slot, std::uint64_t v) noexcept {
  std::uint64_t seen = slot.load(std::memory_order_relaxed);
  while (seen < v &&
         !slot.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<std::uint64_t>& slot, std::uint64_t v) noexcept {
  std::uint64_t seen = slot.load(std::memory_order_relaxed);
  while (seen > v &&
         !slot.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

std::string json_quote(std::string_view text) {
  return "\"" + json_escape(text) + "\"";
}

std::size_t this_thread_shard() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return slot;
}

// ------------------------------------------------------------- counter --

std::uint64_t Counter::value() const noexcept {
  std::uint64_t total = 0;
  for (const Cell& cell : cells_) {
    total += cell.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::reset() noexcept {
  for (Cell& cell : cells_) cell.value.store(0, std::memory_order_relaxed);
}

// --------------------------------------------------------------- gauge --

void Gauge::set(std::int64_t v) noexcept {
  value_.store(v, std::memory_order_relaxed);
  record_max(v);
}

void Gauge::record_max(std::int64_t v) noexcept {
  std::int64_t seen = max_.load(std::memory_order_relaxed);
  while (seen < v &&
         !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
}

void Gauge::reset() noexcept {
  value_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

// ----------------------------------------------------------- histogram --

Histogram::Histogram(std::string name, std::vector<std::uint64_t> bounds)
    : name_(std::move(name)), bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  for (Shard& shard : shards_) {
    shard.buckets = std::vector<std::atomic<std::uint64_t>>(bounds_.size() + 1);
  }
}

std::size_t Histogram::bucket_for(std::uint64_t value) const noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  return static_cast<std::size_t>(it - bounds_.begin());
}

void Histogram::record(std::uint64_t value) noexcept {
  Shard& shard = shards_[this_thread_shard()];
  shard.buckets[bucket_for(value)].fetch_add(1, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(value, std::memory_order_relaxed);
  atomic_min(min_, value);
  atomic_max(max_, value);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  snap.name = name_;
  snap.bounds = bounds_;
  snap.counts.assign(bounds_.size() + 1, 0);
  for (const Shard& shard : shards_) {
    for (std::size_t b = 0; b < shard.buckets.size(); ++b) {
      snap.counts[b] += shard.buckets[b].load(std::memory_order_relaxed);
    }
    snap.count += shard.count.load(std::memory_order_relaxed);
    snap.sum += shard.sum.load(std::memory_order_relaxed);
  }
  if (snap.count > 0) {
    snap.min = min_.load(std::memory_order_relaxed);
    snap.max = max_.load(std::memory_order_relaxed);
  }
  return snap;
}

void Histogram::reset() noexcept {
  for (Shard& shard : shards_) {
    for (auto& bucket : shard.buckets) {
      bucket.store(0, std::memory_order_relaxed);
    }
    shard.count.store(0, std::memory_order_relaxed);
    shard.sum.store(0, std::memory_order_relaxed);
  }
  min_.store(~std::uint64_t{0}, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

double Histogram::Snapshot::percentile(double p) const {
  if (count == 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  const double target = p / 100.0 * static_cast<double>(count);
  double cumulative = 0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    const double in_bucket = static_cast<double>(counts[b]);
    if (cumulative + in_bucket < target || in_bucket == 0) {
      cumulative += in_bucket;
      continue;
    }
    // Interpolate inside this bucket; edge buckets clamp to observed values.
    const double lo =
        b == 0 ? static_cast<double>(min)
               : static_cast<double>(bounds[b - 1]);
    const double hi = b < bounds.size() ? static_cast<double>(bounds[b])
                                        : static_cast<double>(max);
    const double fraction =
        in_bucket > 0 ? (target - cumulative) / in_bucket : 0.0;
    const double value = lo + (std::max(hi, lo) - lo) * fraction;
    return std::clamp(value, static_cast<double>(min),
                      static_cast<double>(max));
  }
  return static_cast<double>(max);
}

// ---------------------------------------------------------------- misc --

std::vector<std::uint64_t> exponential_bounds(std::uint64_t first,
                                              double factor,
                                              std::size_t count) {
  std::vector<std::uint64_t> bounds;
  bounds.reserve(count);
  double edge = static_cast<double>(first);
  for (std::size_t i = 0; i < count; ++i) {
    const auto rounded = static_cast<std::uint64_t>(std::llround(edge));
    if (bounds.empty() || rounded > bounds.back()) bounds.push_back(rounded);
    edge *= factor;
  }
  return bounds;
}

const std::vector<std::uint64_t>& default_latency_bounds_us() {
  static const std::vector<std::uint64_t> kBounds =
      exponential_bounds(1, 2.0, 27);
  return kBounds;
}

// ------------------------------------------------------------ snapshot --

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out += first ? "\n" : ",\n";
    out += "    \"" + json_escape(name) + "\": " + std::to_string(value);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"gauges\": {";
  first = true;
  for (const GaugeValue& gauge : gauges) {
    out += first ? "\n" : ",\n";
    out += "    \"" + json_escape(gauge.name) +
           "\": {\"value\": " + std::to_string(gauge.value) +
           ", \"max\": " + std::to_string(gauge.max) + "}";
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"histograms\": {";
  first = true;
  for (const Histogram::Snapshot& hist : histograms) {
    out += first ? "\n" : ",\n";
    out += "    \"" + json_escape(hist.name) + "\": {\"count\": " +
           std::to_string(hist.count) + ", \"sum\": " +
           std::to_string(hist.sum) + ", \"min\": " + std::to_string(hist.min) +
           ", \"max\": " + std::to_string(hist.max);
    char buf[96];
    std::snprintf(buf, sizeof buf,
                  ", \"p50\": %.1f, \"p95\": %.1f, \"p99\": %.1f",
                  hist.percentile(50), hist.percentile(95),
                  hist.percentile(99));
    out += buf;
    // The trailing "+inf" entry makes the overflow bucket explicit: bounds
    // and counts align one-to-one (histogram_from_json accepts both forms).
    out += ", \"bounds\": [";
    for (std::size_t i = 0; i < hist.bounds.size(); ++i) {
      out += std::to_string(hist.bounds[i]) + ", ";
    }
    out += "\"+inf\"], \"counts\": [";
    for (std::size_t i = 0; i < hist.counts.size(); ++i) {
      if (i > 0) out += ", ";
      out += std::to_string(hist.counts[i]);
    }
    out += "]}";
    first = false;
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

namespace {

// Prometheus metric names allow [a-zA-Z0-9_:]; ours are dotted identifiers
// ("sched.queue_wait_us"), so map everything else to '_' and prefix the
// exporter namespace.
std::string prometheus_name(std::string_view name) {
  std::string out = "fu_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

}  // namespace

std::string MetricsSnapshot::to_prometheus() const {
  std::string out;
  for (const auto& [name, value] : counters) {
    const std::string pname = prometheus_name(name) + "_total";
    out += "# TYPE " + pname + " counter\n";
    out += pname + " " + std::to_string(value) + "\n";
  }
  for (const GaugeValue& gauge : gauges) {
    const std::string pname = prometheus_name(gauge.name);
    out += "# TYPE " + pname + " gauge\n";
    out += pname + " " + std::to_string(gauge.value) + "\n";
    out += "# TYPE " + pname + "_max gauge\n";
    out += pname + "_max " + std::to_string(gauge.max) + "\n";
  }
  for (const Histogram::Snapshot& hist : histograms) {
    const std::string pname = prometheus_name(hist.name);
    out += "# TYPE " + pname + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < hist.counts.size(); ++b) {
      cumulative += hist.counts[b];
      const std::string le = b < hist.bounds.size()
                                 ? std::to_string(hist.bounds[b])
                                 : std::string("+Inf");
      out += pname + "_bucket{le=\"" + le + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += pname + "_sum " + std::to_string(hist.sum) + "\n";
    out += pname + "_count " + std::to_string(hist.count) + "\n";
  }
  return out;
}

bool histogram_from_json(const JsonValue& value, Histogram::Snapshot& out) {
  if (!value.is_object()) return false;
  const JsonValue* counts = value.find("counts");
  const JsonValue* bounds = value.find("bounds");
  if (counts == nullptr || !counts->is_array() || bounds == nullptr ||
      !bounds->is_array()) {
    return false;
  }
  out = Histogram::Snapshot{};
  for (const JsonValue& entry : bounds->array) {
    if (entry.is_number()) {
      out.bounds.push_back(static_cast<std::uint64_t>(entry.number));
      continue;
    }
    // Tolerate the explicit overflow marker (new form) in terminal
    // position; any other string is malformed.
    if (entry.is_string() && entry.string == "+inf" &&
        &entry == &bounds->array.back()) {
      continue;
    }
    return false;
  }
  for (const JsonValue& entry : counts->array) {
    if (!entry.is_number()) return false;
    out.counts.push_back(static_cast<std::uint64_t>(entry.number));
  }
  // Implicit or explicit, the overflow bucket must be present: counts is
  // always one longer than the numeric bounds.
  if (out.counts.size() != out.bounds.size() + 1) return false;
  out.count = static_cast<std::uint64_t>(value.number_or("count", 0));
  out.sum = static_cast<std::uint64_t>(value.number_or("sum", 0));
  out.min = static_cast<std::uint64_t>(value.number_or("min", 0));
  out.max = static_cast<std::uint64_t>(value.number_or("max", 0));
  return true;
}

// ------------------------------------------------------------ registry --

Registry& Registry::global() {
  static Registry* kRegistry = new Registry();  // never destroyed
  return *kRegistry;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  auto handle = std::unique_ptr<Counter>(new Counter(std::string(name)));
  return *counters_.emplace(std::string(name), std::move(handle))
              .first->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return *it->second;
  auto handle = std::unique_ptr<Gauge>(new Gauge(std::string(name)));
  return *gauges_.emplace(std::string(name), std::move(handle)).first->second;
}

Histogram& Registry::histogram(std::string_view name,
                               std::vector<std::uint64_t> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return *it->second;
  auto handle = std::unique_ptr<Histogram>(
      new Histogram(std::string(name), std::move(bounds)));
  return *histograms_.emplace(std::string(name), std::move(handle))
              .first->second;
}

MetricsSnapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace_back(name, counter->value());
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.push_back({name, gauge->value(), gauge->max()});
  }
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms.push_back(histogram->snapshot());
  }
  return snap;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, gauge] : gauges_) gauge->reset();
  for (auto& [name, histogram] : histograms_) histogram->reset();
}

}  // namespace fu::obs
