#include "obs/json.h"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace fu::obs {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  bool parse(JsonValue& out, std::string* error) {
    skip_ws();
    if (!value(out)) {
      fail("malformed value");
      if (error != nullptr) *error = error_;
      return false;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters");
      if (error != nullptr) *error = error_;
      return false;
    }
    return true;
  }

 private:
  void fail(const char* what) {
    if (!error_.empty()) return;  // keep the innermost description
    char buf[96];
    std::snprintf(buf, sizeof buf, "%s at offset %zu", what, pos_);
    error_ = buf;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool value(JsonValue& out) {
    if (++depth_ > 64) {  // nesting bound: the inputs are our own files
      fail("nesting too deep");
      return false;
    }
    skip_ws();
    bool ok = false;
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
    } else if (text_[pos_] == '{') {
      ok = object(out);
    } else if (text_[pos_] == '[') {
      ok = array(out);
    } else if (text_[pos_] == '"') {
      out.type = JsonValue::Type::kString;
      ok = string(out.string);
    } else if (literal("true")) {
      out.type = JsonValue::Type::kBool;
      out.boolean = true;
      ok = true;
    } else if (literal("false")) {
      out.type = JsonValue::Type::kBool;
      out.boolean = false;
      ok = true;
    } else if (literal("null")) {
      out.type = JsonValue::Type::kNull;
      ok = true;
    } else {
      ok = number(out);
    }
    --depth_;
    return ok;
  }

  bool number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) {
      fail("expected a value");
      return false;
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    double parsed = 0;
    const auto result =
        std::from_chars(token.data(), token.data() + token.size(), parsed);
    if (result.ec != std::errc() || result.ptr != token.data() + token.size()) {
      fail("bad number");
      return false;
    }
    out.type = JsonValue::Type::kNumber;
    out.number = parsed;
    return true;
  }

  bool string(std::string& out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      fail("expected string");
      return false;
    }
    ++pos_;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            fail("bad \\u escape");
            return false;
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape");
              return false;
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs unsupported —
          // our emitters never produce them).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default:
          fail("bad escape");
          return false;
      }
    }
    fail("unterminated string");
    return false;
  }

  bool array(JsonValue& out) {
    ++pos_;  // '['
    out.type = JsonValue::Type::kArray;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      JsonValue element;
      if (!value(element)) return false;
      out.array.push_back(std::move(element));
      skip_ws();
      if (pos_ >= text_.size()) {
        fail("unterminated array");
        return false;
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      fail("expected ',' or ']'");
      return false;
    }
  }

  bool object(JsonValue& out) {
    ++pos_;  // '{'
    out.type = JsonValue::Type::kObject;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      std::string key;
      if (!string(key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        fail("expected ':'");
        return false;
      }
      ++pos_;
      JsonValue member;
      if (!value(member)) return false;
      out.object.emplace_back(std::move(key), std::move(member));
      skip_ws();
      if (pos_ >= text_.size()) {
        fail("unterminated object");
        return false;
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      fail("expected ',' or '}'");
      return false;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  std::string error_;
};

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  if (type != Type::kObject) return nullptr;
  for (const auto& [name, member] : object) {
    if (name == key) return &member;
  }
  return nullptr;
}

double JsonValue::number_or(std::string_view key,
                            double fallback) const noexcept {
  const JsonValue* member = find(key);
  return member != nullptr && member->is_number() ? member->number : fallback;
}

std::string JsonValue::string_or(std::string_view key,
                                 const std::string& fallback) const {
  const JsonValue* member = find(key);
  return member != nullptr && member->is_string() ? member->string : fallback;
}

bool json_parse(std::string_view text, JsonValue& out, std::string* error) {
  out = JsonValue{};  // a reused output value must not accumulate members
  return Parser(text).parse(out, error);
}

}  // namespace fu::obs
