// HTTP routing core shared by every fu endpoint.
//
// PR 5's live-metrics server hardwired its five GET routes into the socket
// loop; the survey daemon needs the same socket loop but its own routes
// (including POST with a JSON body). The split: obs::Server owns sockets,
// timeouts and auth; this Router owns "which handler answers this request".
// One server core, any route table.
//
// Patterns are '/'-separated literals where a "<name>" segment matches any
// one non-empty segment and is delivered through HttpRequest::params in
// pattern order, so "/surveys/<id>/tables" serves every survey id with one
// handler. Dispatch is a linear scan — route tables here have a dozen
// entries, not thousands.
#pragma once

#include <functional>
#include <string>
#include <vector>

namespace fu::obs {

struct HttpRequest {
  std::string method;  // "GET", "POST", ... (upper-case as received)
  std::string path;    // target without the query string
  std::string query;   // raw query string, "" when absent
  std::string body;    // request body, "" when absent
  // Values captured by "<name>" pattern segments, in pattern order. Filled
  // by Router::dispatch before the handler runs.
  std::vector<std::string> params;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
};

// Shorthands for the two content types this repo serves.
HttpResponse json_response(int status, std::string body);
HttpResponse text_response(int status, std::string body);

class Router {
 public:
  using Handler = std::function<HttpResponse(HttpRequest&)>;

  // Register a route. Earlier registrations win on overlap, so mount the
  // most specific patterns first.
  void handle(std::string method, std::string pattern, Handler handler);

  // Route the request: the first route whose pattern matches the path and
  // whose method matches runs. A path that matches some pattern but with no
  // method match is 405 (with an Allow-style hint in the body); no pattern
  // match at all is 404 listing the registered patterns.
  HttpResponse dispatch(HttpRequest& request) const;

  bool empty() const noexcept { return routes_.empty(); }

 private:
  struct Route {
    std::string method;
    std::string pattern;                 // as registered, for the 404 list
    std::vector<std::string> segments;   // split pattern; "<x>" = wildcard
    Handler handler;
  };
  static bool match(const Route& route, const std::string& path,
                    std::vector<std::string>& params);

  std::vector<Route> routes_;
};

}  // namespace fu::obs
