// Rolling registry deltas for the live survey endpoint.
//
// The metrics registry holds monotonic totals; an operator watching a crawl
// wants *rates* — how many sites finished in the last second, where the
// per-stage latency distribution sits right now. DeltaRing turns periodic
// registry snapshots into a seq-numbered ring of per-interval diffs: the
// serving thread calls record() once per interval, clients poll
// `/deltas.json?since=SEQ` and receive only the intervals they have not seen
// yet, so a dashboard (`fu watch`) can plot rates with no client-side state
// beyond the last seq it was given.
//
// The ring is the only lock between the serving thread and request handling;
// the registry hot path (worker-side relaxed adds) never touches it.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace fu::obs {

// One interval's worth of registry change. Only entries that moved are kept
// (an idle interval is a timestamped empty diff).
struct DeltaInterval {
  std::uint64_t seq = 0;   // 1-based, strictly increasing
  double t0 = 0;           // interval start/end, seconds since serving began
  double t1 = 0;
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<MetricsSnapshot::GaugeValue> gauges;  // levels, not diffs
  struct HistogramDelta {
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::vector<std::uint64_t> bounds;  // upper-inclusive edges (no overflow)
    std::vector<std::uint64_t> counts;  // bounds.size() + 1, last = overflow
  };
  std::vector<HistogramDelta> histograms;
};

class DeltaRing {
 public:
  explicit DeltaRing(std::size_t capacity = 600);

  // Set the baseline the first record() diffs against (serving start).
  void prime(MetricsSnapshot baseline, double now_seconds);

  // Diff `snap` against the previous snapshot, append one interval, evict
  // the oldest past capacity. Returns the new interval's seq.
  std::uint64_t record(const MetricsSnapshot& snap, double now_seconds);

  // Intervals with seq > since, oldest first (empty when caught up).
  std::vector<DeltaInterval> since(std::uint64_t seq) const;
  std::uint64_t latest_seq() const;

  // The `/deltas.json?since=SEQ` body:
  //   {"latest_seq": N, "deltas": [{"seq":.., "t0":.., "t1":..,
  //    "counters": {...}, "gauges": {...}, "histograms": {...}}, ...]}
  // When seq `since + 1` has already been evicted from the ring the body
  // additionally carries `"truncated": true, "oldest_seq": M` (M = oldest
  // retained seq, 0 if nothing is retained) so pollers know they missed
  // intervals rather than silently receiving a gap.
  std::string to_json(std::uint64_t since) const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  MetricsSnapshot prev_;
  double prev_time_ = 0;
  bool primed_ = false;
  std::uint64_t next_seq_ = 1;
  std::deque<DeltaInterval> intervals_;
};

// Percentile estimate from one interval's (or an aggregate of intervals')
// histogram delta: linear interpolation inside the target bucket. Buckets
// are upper-inclusive edges as in Histogram; the overflow bucket is treated
// as extending to twice the last bound. Display-quality only — exact
// min/max are not recoverable from a diff.
double delta_percentile(const std::vector<std::uint64_t>& bounds,
                        const std::vector<std::uint64_t>& counts, double p);

}  // namespace fu::obs
