// Live operations endpoint: a tiny dependency-free HTTP/1.1 server on a
// dedicated thread, serving the metrics registry and crawl progress while a
// survey runs — and, through an injected Router, any additional routes a
// caller mounts (the `fu serve` survey daemon rides this same core).
//
// Built-in routes, always registered after any injected ones:
//
//   GET /metrics.json          live registry snapshot (same JSON as
//                              --metrics-out)
//   GET /metrics               Prometheus text exposition, same snapshot
//   GET /progress.json         crawl progress (injected callback)
//   GET /deltas.json?since=SEQ per-interval registry diffs newer than SEQ
//   GET /healthz               200 while workers advance, 503 on stall
//   GET /buildz                build identity: git describe, build type,
//                              sanitizers, caller extras (catalog hash)
//   GET /profilez?seconds=N&hz=H
//                              sample the process for N seconds (default 1,
//                              max 30) at H Hz and return the folded-stack
//                              profile as text/plain. Serving is serial, so
//                              the window also defers other requests and
//                              delta ticks by up to N seconds; 409 when a
//                              --profile-out profiler already owns sampling.
//
// Design constraints, in order: the crawl's hot path must not notice the
// server (it is strictly a registry *reader*; the only lock it ever takes
// is the delta ring's), and the whole thing must stay portable POSIX
// sockets with no third-party dependency. Throughput is a non-goal — one
// operator polling once a second — so connections are handled serially on
// the server thread, which doubles as the delta-ring ticker. Known
// limitation of that choice: while one client is being served nobody else
// is, and a stalled client defers the next delta tick; 1s socket timeouts
// plus a 2s per-request deadline cap the damage at a couple of seconds,
// acceptable for an operator endpoint.
//
// Remote serving: binding anything but loopback requires a bearer token
// (checked on *every* request, the read-only built-ins included) — the
// constructor refuses a non-loopback bind without one, so an unauthenticated
// daemon can never be exposed by accident.
//
// Layering: fu_sched links fu_obs, so this header cannot know about
// sched::ProgressMeter. Progress and health are injected as callbacks by
// the caller that owns both (crawler::run_survey).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>

#include <utility>
#include <vector>

#include "obs/delta.h"
#include "obs/metrics.h"
#include "obs/router.h"

namespace fu::obs {

// One served request, as handed to ServerOptions::access_log.
struct AccessLogEntry {
  std::string method;       // "-" when the request never parsed
  std::string path;
  int status = 0;
  std::uint64_t duration_us = 0;  // accept to last response byte queued
};

// Formats an entry as one JSON line, and a ready-made logger writing those
// lines to stderr (what `fu serve --log` / FU_SERVE_LOG install).
std::string access_log_line(const AccessLogEntry& entry);
std::function<void(const AccessLogEntry&)> stderr_access_logger();

// What /healthz reports: `ok` selects 200 vs 503, `body` is the JSON
// payload either way (so a 503 still explains itself).
struct HealthStatus {
  bool ok = true;
  std::string body = "{\"ok\": true}\n";
};

struct ServerOptions {
  // TCP port to bind; 0 asks the kernel for an ephemeral port (read it back
  // from Server::port()).
  int port = 0;
  // IPv4 literal to bind. Anything outside 127.0.0.0/8 requires auth_token;
  // the constructor refuses to start otherwise.
  std::string bind_address = "127.0.0.1";
  // Bearer-token auth: when non-empty, every request (built-in read-only
  // endpoints included) must carry "Authorization: Bearer <token>" or is
  // refused with 401 before any routing happens.
  std::string auth_token;
  // Caller-mounted routes, registered ahead of the built-in observability
  // endpoints (so a caller can even shadow them). Invoked once, from the
  // constructor.
  std::function<void(Router&)> routes;
  // Requests larger than this (head + declared body) are refused with 413;
  // operator endpoints have no business receiving megabytes.
  std::size_t max_request_bytes = 64 * 1024;
  // When set, the bound port is written here (decimal + newline) so
  // `fu watch <checkpoint-dir>` can find an ephemeral server. Removed again
  // (best-effort) on clean shutdown, so a lingering file means the process
  // died rather than finished.
  std::string port_file;
  // Cadence of delta-ring ticks; with the default capacity the ring holds
  // the last ~10 minutes of per-second diffs.
  double delta_interval_seconds = 1.0;
  std::size_t delta_capacity = 600;
  // /progress.json body; 404 when absent.
  std::function<std::string()> progress_json;
  // /healthz; always 200 when absent.
  std::function<HealthStatus()> health;
  // Registry to serve; null = Registry::global().
  Registry* registry = nullptr;
  // Structured per-request access log; null = off. Invoked on the serving
  // thread after the response is queued, for every request — including the
  // ones refused before routing (401/400/413 show up too).
  std::function<void(const AccessLogEntry&)> access_log;
  // Extra string members appended to the /buildz body, e.g.
  // {"catalog_fingerprint", "0x94f2..."}.
  std::vector<std::pair<std::string, std::string>> build_extra;
};

// The /buildz body: configure-time git describe and build type (baked in at
// compile time), compile-time sanitizer detection, compiler version, plus
// `extra` as string members.
std::string build_info_json(
    const std::vector<std::pair<std::string, std::string>>& extra = {});

// "key=1.5" out of a query string; `fallback` when absent or malformed.
// Shared by /profilez and the daemon's per-survey variant.
double query_double(const std::string& query, const std::string& key,
                    double fallback);

class Server {
 public:
  // Binds and starts the serving thread. On bind failure the server is
  // inert: ok() is false, error() says why, requests are never served.
  explicit Server(ServerOptions options);
  ~Server();  // stops the thread and closes the socket (drain on shutdown)

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  bool ok() const noexcept { return listen_fd_ >= 0; }
  const std::string& error() const noexcept { return error_; }
  // The bound port (the ephemeral one when options.port was 0); -1 if bind
  // failed.
  int port() const noexcept { return port_; }
  std::uint64_t requests_served() const noexcept {
    return requests_.load(std::memory_order_relaxed);
  }
  DeltaRing& deltas() noexcept { return ring_; }

 private:
  void serve_loop();
  void handle_connection(int fd);
  HttpResponse respond(HttpRequest& request, const std::string& bearer);

  ServerOptions options_;
  Router router_;
  DeltaRing ring_;
  int listen_fd_ = -1;
  int port_ = -1;
  std::string error_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> requests_{0};
  std::thread thread_;
};

// Minimal HTTP/1.1 GET client for `fu watch`, the tests, and CI probes.
// Returns false (with `error` set) on a transport failure; on success
// `status` holds the response code and `body` the payload. A non-empty
// `bearer` is sent as "Authorization: Bearer <bearer>".
bool http_get(const std::string& host, int port, const std::string& path,
              int& status, std::string& body, std::string* error = nullptr,
              double timeout_seconds = 5.0, const std::string& bearer = {});

// Same client, POSTing `request_body` as application/json — how surveys are
// submitted to the daemon from tests and `fu` tooling.
bool http_post(const std::string& host, int port, const std::string& path,
               const std::string& request_body, int& status, std::string& body,
               std::string* error = nullptr, double timeout_seconds = 5.0,
               const std::string& bearer = {});

}  // namespace fu::obs
