// Monkey testing (§4.3.1): the gremlins.js equivalent.
//
// A 30-second interaction window is simulated as a fixed budget of random
// actions against the loaded page: clicks on random clickable elements,
// scrolls, text input, and letting queued timers run. Clicks that land on
// links are *intercepted* — the browser does not navigate, but same-site
// targets are recorded as BFS candidates, exactly as the paper describes.
#pragma once

#include <vector>

#include "browser/session.h"
#include "net/url.h"
#include "support/rng.h"

namespace fu::crawler {

struct MonkeyConfig {
  int actions = 16;           // interaction steps per 30-second window
  double click_weight = 0.55;
  double scroll_weight = 0.20;
  double input_weight = 0.25;
};

// One interaction window against the session's current page. Returns the
// same-site navigation candidates intercepted from link clicks.
std::vector<net::Url> monkey_interact(browser::BrowserSession& session,
                                      support::Rng& rng,
                                      const MonkeyConfig& config = {});

// The "casual human reader" model used for external validation (§6.2):
// deliberate reading pauses (timers drain), steady scrolling, a few
// purposeful clicks, and a preference for the most prominent link.
std::vector<net::Url> human_interact(browser::BrowserSession& session,
                                     support::Rng& rng);

}  // namespace fu::crawler
