#include "crawler/monkey.h"

#include <array>

namespace fu::crawler {

namespace {

// Elements the monkey considers clickable, in document order.
std::vector<const dom::Element*> clickable_elements(
    const dom::Document* doc) {
  std::vector<const dom::Element*> out;
  if (doc == nullptr) return out;
  auto* mutable_doc = const_cast<dom::Document*>(doc);
  for (const char* tag : {"a", "button", "input"}) {
    for (dom::Element* el : mutable_doc->get_elements_by_tag(tag)) {
      out.push_back(el);
    }
  }
  return out;
}

}  // namespace

std::vector<net::Url> monkey_interact(browser::BrowserSession& session,
                                      support::Rng& rng,
                                      const MonkeyConfig& config) {
  std::vector<net::Url> candidates;
  std::vector<const dom::Element*> clickables =
      clickable_elements(session.current_dom());
  // Random click order, but each element at most once until the pool is
  // exhausted — random coordinates rarely land on the same element twice.
  rng.shuffle(clickables);
  std::size_t click_cursor = 0;

  for (int step = 0; step < config.actions; ++step) {
    const std::array<double, 3> weights = {
        config.click_weight, config.scroll_weight, config.input_weight};
    switch (rng.weighted_index(weights)) {
      case 0: {  // click something random
        if (!clickables.empty()) {
          const dom::Element* el =
              clickables[click_cursor++ % clickables.size()];
          if (el->tag() == "a" && el->has_attribute("href")) {
            // Intercept navigation; note same-site targets (§4.3.1).
            if (const auto url =
                    session.current_url().resolve(el->attribute("href"))) {
              if (net::same_site(*url, session.current_url())) {
                candidates.push_back(*url);
              }
            }
            break;
          }
        }
        session.fire_event("click");
        break;
      }
      case 1:
        session.fire_event("scroll");
        break;
      default:
        session.fire_event("input");
        break;
    }
    // Timers fire opportunistically during the window.
    if (rng.chance(0.2)) session.run_timers();
  }
  session.run_timers();  // whatever is still queued fires before we leave
  return candidates;
}

std::vector<net::Url> human_interact(browser::BrowserSession& session,
                                     support::Rng& rng) {
  std::vector<net::Url> candidates;

  // Reading: scroll through the page with pauses long enough for timers.
  for (int i = 0; i < 4; ++i) {
    session.fire_event("scroll");
    session.run_timers();
  }
  // Deliberate interaction: try the search box, click a button or two.
  session.fire_event("input");
  session.fire_event("click");
  if (rng.chance(0.5)) session.fire_event("click");
  // A human dwells far longer than the monkey's 30-second budget — the
  // long-delay timers automation never reaches fire here (§6.2).
  session.run_timers(/*dwell_budget_ms=*/90'000);

  // A human heads for the prominent links — the first few in the document.
  const std::vector<const dom::Element*> clickables =
      clickable_elements(session.current_dom());
  for (const dom::Element* el : clickables) {
    if (el->tag() != "a" || !el->has_attribute("href")) continue;
    if (const auto url =
            session.current_url().resolve(el->attribute("href"))) {
      if (net::same_site(*url, session.current_url())) {
        candidates.push_back(*url);
        if (candidates.size() >= 3) break;
      }
    }
  }
  return candidates;
}

}  // namespace fu::crawler
