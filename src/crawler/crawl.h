// Per-site crawl (§4.3.1): home page plus a breadth-first walk of the site,
// 13 pages in total (1 + 3 + 3×3), 30 seconds of monkey testing on each.
// URL selection prefers targets whose directory structure has not been seen
// before, to cover as many page *types* as possible.
#pragma once

#include <cstdint>

#include "browser/session.h"
#include "crawler/monkey.h"
#include "net/web.h"
#include "support/bitset.h"

namespace fu::crawler {

struct CrawlConfig {
  browser::BrowserConfig browser;
  MonkeyConfig monkey;
  int fanout = 3;  // URLs chosen per visited page
  int levels = 2;  // BFS depth below the home page
};

// What one pass over one site produced.
struct SiteVisit {
  bool home_loaded = false;
  // The §4.3.3 failure taxonomy: a site is measured unless it never
  // responded or its scripts all failed to execute.
  bool measured = false;
  support::DynamicBitset features;  // feature ids seen this pass
  std::uint64_t invocations = 0;
  int pages_visited = 0;
  int scripts_blocked = 0;
  int frames_blocked = 0;
  int scripts_failed = 0;
};

// One monkey-testing pass. When `session` is provided it is reused (its
// usage counters are reset first) — the survey runs the five passes of one
// configuration through one session, like five visits from one profile.
SiteVisit crawl_site(const net::SyntheticWeb& web, const CrawlConfig& config,
                     const net::SitePlan& site, std::uint64_t pass_seed,
                     browser::BrowserSession* session = nullptr);

// One "casual human" session (§6.2): home page plus two prominently linked
// pages, 90 seconds of reading-style interaction.
SiteVisit human_visit(const net::SyntheticWeb& web, const CrawlConfig& config,
                      const net::SitePlan& site, std::uint64_t pass_seed);

}  // namespace fu::crawler
