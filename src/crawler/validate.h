// Validation studies from §6 of the paper.
//
// Internal (§6.1, Table 3): how many *new* standards each additional
// measurement round discovers, averaged over sites — computed directly from
// the survey's per-pass default-configuration feature sets.
//
// External (§6.2, Figure 9): ~100 sites are sampled weighted by Alexa visit
// share; each is browsed by the "casual human" model, and the number of
// standards the human saw that five rounds of automation did not is
// histogrammed per domain.
#pragma once

#include <vector>

#include "crawler/survey.h"

namespace fu::crawler {

// Average number of new standards first seen in round r (index 0 = round 1).
// Round 1's value is the average number of standards seen at all.
std::vector<double> new_standards_per_round(const SurveyResults& results);

struct ExternalValidation {
  // One entry per evaluated domain: count of standards observed during
  // manual-model interaction but never by the automated passes.
  std::vector<int> new_standards_per_domain;
  int domains_evaluated = 0;
  // Fraction of domains where the human found nothing new (paper: 83.7%).
  double fraction_nothing_new() const;
};

ExternalValidation run_external_validation(const SurveyResults& results,
                                           int target_domains = 92,
                                           std::uint64_t seed = 0xe87e4a1ULL);

}  // namespace fu::crawler
