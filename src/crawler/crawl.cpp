#include "crawler/crawl.h"

#include <set>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace fu::crawler {

namespace {

// Traced wrapper around the monkey pass: the interaction phase is usually
// where a slow site spends its time, so it gets its own span nested under
// site-visit.
std::vector<net::Url> traced_monkey_interact(browser::BrowserSession& session,
                                             support::Rng& rng,
                                             const MonkeyConfig& config) {
  obs::TraceSpan span("monkey-pass");
  return monkey_interact(session, rng, config);
}

// Choose up to `fanout` candidates, preferring URLs whose directory has not
// been seen, never revisiting a URL.
std::vector<net::Url> select_targets(std::vector<net::Url> candidates,
                                     std::set<std::string>& seen_urls,
                                     std::set<std::string>& seen_dirs,
                                     int fanout, support::Rng& rng) {
  rng.shuffle(candidates);
  std::vector<net::Url> picked;

  const auto take_if = [&](bool want_unseen_dir) {
    for (const net::Url& url : candidates) {
      if (static_cast<int>(picked.size()) >= fanout) return;
      const std::string spec = url.spec();
      if (seen_urls.count(spec)) continue;
      const bool unseen = seen_dirs.count(url.directory()) == 0;
      if (unseen != want_unseen_dir) continue;
      picked.push_back(url);
      seen_urls.insert(spec);
      seen_dirs.insert(url.directory());
    }
  };
  take_if(true);   // first preference: new directory structure
  take_if(false);  // then anything unvisited
  return picked;
}

void absorb(SiteVisit& visit, const browser::PageLoadResult& result) {
  if (result.loaded) ++visit.pages_visited;
  visit.scripts_blocked += result.scripts_blocked;
  visit.frames_blocked += result.frames_blocked;
  visit.scripts_failed += result.scripts_failed;
}

void finish(SiteVisit& visit, const browser::BrowserSession& session) {
  const browser::UsageRecorder& usage = session.usage();
  visit.features = support::DynamicBitset(usage.feature_count());
  for (const catalog::FeatureId fid : usage.features_used()) {
    visit.features.set(fid);
  }
  visit.invocations = usage.total_invocations();
}

}  // namespace

SiteVisit crawl_site(const net::SyntheticWeb& web, const CrawlConfig& config,
                     const net::SitePlan& site, std::uint64_t pass_seed,
                     browser::BrowserSession* existing_session) {
  SiteVisit visit;
  visit.features =
      support::DynamicBitset(web.feature_catalog().features().size());

  std::optional<browser::BrowserSession> own_session;
  if (existing_session == nullptr) {
    own_session.emplace(web, config.browser, pass_seed);
  }
  browser::BrowserSession& session =
      existing_session != nullptr ? *existing_session : *own_session;
  session.reset_usage();
  support::Rng rng(pass_seed, "monkey:" + site.domain);

  const net::Url home = web.home_url(site);
  const browser::PageLoadResult home_result = session.load_page(home);
  visit.home_loaded = home_result.loaded;
  absorb(visit, home_result);
  if (!home_result.loaded) return visit;  // dead domain
  // A responding site whose every script failed (syntax errors) cannot be
  // measured — the paper drops such domains (§4.3.3).
  visit.measured = !home_result.all_scripts_failed;
  if (!visit.measured) {
    finish(visit, session);
    return visit;
  }

  std::set<std::string> seen_urls{home.spec()};
  std::set<std::string> seen_dirs{home.directory()};

  std::vector<net::Url> frontier = select_targets(
      traced_monkey_interact(session, rng, config.monkey), seen_urls,
      seen_dirs, config.fanout, rng);

  for (int level = 0; level < config.levels; ++level) {
    std::vector<net::Url> next;
    for (const net::Url& url : frontier) {
      const browser::PageLoadResult result = session.load_page(url);
      absorb(visit, result);
      if (!result.loaded) continue;
      std::vector<net::Url> candidates =
          traced_monkey_interact(session, rng, config.monkey);
      if (level + 1 < config.levels) {
        std::vector<net::Url> picked = select_targets(
            std::move(candidates), seen_urls, seen_dirs, config.fanout, rng);
        next.insert(next.end(), picked.begin(), picked.end());
      }
    }
    frontier = std::move(next);
  }

  finish(visit, session);
  return visit;
}

SiteVisit human_visit(const net::SyntheticWeb& web, const CrawlConfig& config,
                      const net::SitePlan& site, std::uint64_t pass_seed) {
  SiteVisit visit;
  visit.features =
      support::DynamicBitset(web.feature_catalog().features().size());

  browser::BrowserSession session(web, config.browser, pass_seed);
  support::Rng rng(pass_seed, "human:" + site.domain);

  const net::Url home = web.home_url(site);
  const browser::PageLoadResult home_result = session.load_page(home);
  visit.home_loaded = home_result.loaded;
  absorb(visit, home_result);
  if (!home_result.loaded) return visit;
  visit.measured = !home_result.all_scripts_failed;
  if (!visit.measured) {
    finish(visit, session);
    return visit;
  }

  // 30 seconds on the home page, then follow a prominent link, twice.
  std::vector<net::Url> prominent = human_interact(session, rng);
  std::set<std::string> visited{home.spec()};
  for (int hop = 0; hop < 2 && !prominent.empty(); ++hop) {
    net::Url target = prominent.front();
    for (const net::Url& url : prominent) {
      if (!visited.count(url.spec())) {
        target = url;
        break;
      }
    }
    if (visited.count(target.spec())) break;
    visited.insert(target.spec());
    const browser::PageLoadResult result = session.load_page(target);
    absorb(visit, result);
    if (!result.loaded) break;
    prominent = human_interact(session, rng);
  }

  finish(visit, session);
  return visit;
}

}  // namespace fu::crawler
