#include "crawler/survey.h"

#include <atomic>
#include <thread>

#include "blocker/extensions.h"
#include "support/rng.h"

namespace fu::crawler {

const char* to_string(BrowsingConfig config) {
  switch (config) {
    case BrowsingConfig::kDefault: return "default";
    case BrowsingConfig::kBlocking: return "blocking";
    case BrowsingConfig::kAdOnly: return "ad-only";
    case BrowsingConfig::kTrackingOnly: return "tracking-only";
  }
  return "?";
}

int SurveyResults::sites_measured() const {
  int n = 0;
  for (const SiteOutcome& s : sites) n += s.measured ? 1 : 0;
  return n;
}

std::uint64_t SurveyResults::total_invocations() const {
  std::uint64_t n = 0;
  for (const SiteOutcome& s : sites) n += s.invocations;
  return n;
}

std::uint64_t SurveyResults::total_pages_visited() const {
  std::uint64_t n = 0;
  for (const SiteOutcome& s : sites) n += static_cast<std::uint64_t>(
      s.pages_visited);
  return n;
}

std::uint64_t SurveyResults::interaction_seconds() const {
  return total_pages_visited() * 30;
}

SurveyResults run_survey(const net::SyntheticWeb& web,
                         const SurveyOptions& options) {
  const auto ad_blocker = blocker::make_ad_blocker(web);
  const auto tracking_blocker = blocker::make_tracking_blocker(web);

  const auto browser_config_for = [&](BrowsingConfig config) {
    browser::BrowserConfig bc;
    bc.fuel_per_script = options.fuel_per_script;
    switch (config) {
      case BrowsingConfig::kDefault:
        break;
      case BrowsingConfig::kBlocking:
        bc.ad_blocker = ad_blocker;
        bc.tracking_blocker = tracking_blocker;
        break;
      case BrowsingConfig::kAdOnly:
        bc.ad_blocker = ad_blocker;
        break;
      case BrowsingConfig::kTrackingOnly:
        bc.tracking_blocker = tracking_blocker;
        break;
    }
    return bc;
  };

  std::vector<BrowsingConfig> configs = {BrowsingConfig::kDefault,
                                         BrowsingConfig::kBlocking};
  if (options.include_ad_only) configs.push_back(BrowsingConfig::kAdOnly);
  if (options.include_tracking_only) {
    configs.push_back(BrowsingConfig::kTrackingOnly);
  }

  SurveyResults results;
  results.web = &web;
  results.passes = options.passes;
  results.has_ad_only = options.include_ad_only;
  results.has_tracking_only = options.include_tracking_only;
  results.sites.resize(web.sites().size());

  const std::size_t feature_count = web.feature_catalog().features().size();

  const auto survey_one_site = [&](std::size_t index) {
    const net::SitePlan& site = web.sites()[index];
    SiteOutcome& outcome = results.sites[index];
    for (auto& bits : outcome.features) {
      bits = support::DynamicBitset(feature_count);
    }

    // All sessions for this site share one resource/AST cache; each
    // configuration reuses one browser session across its passes.
    browser::SiteCache cache;

    for (const BrowsingConfig config : configs) {
      CrawlConfig crawl_config;
      crawl_config.browser = browser_config_for(config);
      crawl_config.browser.cache = &cache;
      crawl_config.monkey = options.monkey;

      const std::uint64_t session_seed =
          options.seed ^
          support::fnv1a(site.domain + "|" + to_string(config));
      browser::BrowserSession session(web, crawl_config.browser, session_seed);

      for (int pass = 0; pass < options.passes; ++pass) {
        const std::uint64_t pass_seed =
            options.seed ^
            support::fnv1a(site.domain + "|" + to_string(config) + "|" +
                           std::to_string(pass));
        const SiteVisit visit =
            crawl_site(web, crawl_config, site, pass_seed, &session);
        outcome.responded |= visit.home_loaded;
        if (config == BrowsingConfig::kDefault) {
          outcome.measured |= visit.measured;
          outcome.default_passes.push_back(visit.features);
        }
        outcome.features[static_cast<std::size_t>(config)] |= visit.features;
        outcome.invocations += visit.invocations;
        outcome.pages_visited += visit.pages_visited;
        outcome.scripts_blocked += visit.scripts_blocked;
      }
    }
  };

  unsigned thread_count = options.threads > 0
                              ? static_cast<unsigned>(options.threads)
                              : std::thread::hardware_concurrency();
  if (thread_count == 0) thread_count = 4;
  thread_count = std::min<unsigned>(
      thread_count, static_cast<unsigned>(web.sites().size()));

  if (thread_count <= 1) {
    for (std::size_t i = 0; i < web.sites().size(); ++i) survey_one_site(i);
    return results;
  }

  std::atomic<std::size_t> next{0};
  std::vector<std::thread> workers;
  workers.reserve(thread_count);
  for (unsigned t = 0; t < thread_count; ++t) {
    workers.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= web.sites().size()) return;
        survey_one_site(i);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  return results;
}

}  // namespace fu::crawler
