#include "crawler/survey.h"

#include <cstdio>
#include <iostream>
#include <memory>

#include "blocker/extensions.h"
#include "crawler/serialize.h"
#include "obs/mem.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/server.h"
#include "obs/trace.h"
#include "sched/checkpoint.h"
#include "sched/pool.h"
#include "sched/progress.h"
#include "sched/worksteal.h"
#include "support/rng.h"

namespace fu::crawler {

const char* to_string(BrowsingConfig config) {
  switch (config) {
    case BrowsingConfig::kDefault: return "default";
    case BrowsingConfig::kBlocking: return "blocking";
    case BrowsingConfig::kAdOnly: return "ad-only";
    case BrowsingConfig::kTrackingOnly: return "tracking-only";
  }
  return "?";
}

int SurveyResults::sites_measured() const {
  int n = 0;
  for (const SiteOutcome& s : sites) n += s.measured ? 1 : 0;
  return n;
}

int SurveyResults::sites_failed() const {
  int n = 0;
  for (const SiteOutcome& s : sites) n += s.failed ? 1 : 0;
  return n;
}

std::uint64_t SurveyResults::total_invocations() const {
  std::uint64_t n = 0;
  for (const SiteOutcome& s : sites) n += s.invocations;
  return n;
}

std::uint64_t SurveyResults::total_pages_visited() const {
  std::uint64_t n = 0;
  for (const SiteOutcome& s : sites) n += static_cast<std::uint64_t>(
      s.pages_visited);
  return n;
}

std::uint64_t SurveyResults::interaction_seconds() const {
  return total_pages_visited() * 30;
}

namespace {

// Streams completed outcomes into checkpoint shards and the progress meter
// as jobs finish. Runs on worker threads; the outcome it reads was written
// by the same worker that is reporting it, and the shard writer / meter are
// internally synchronized.
class SurveyObserver : public sched::Observer {
 public:
  SurveyObserver(const SurveyResults& results,
                 const std::vector<std::size_t>& pending,
                 sched::ShardWriter* writer, sched::ProgressMeter* progress)
      : results_(results),
        pending_(pending),
        writer_(writer),
        progress_(progress) {}

  void on_job_done(std::size_t job, bool ok, int /*attempts*/,
                   const std::string& /*error*/) override {
    const std::size_t site = pending_[job];
    const SiteOutcome& outcome = results_.sites[site];
    // Failed sites are deliberately not checkpointed: a resumed run should
    // retry them, not inherit the failure.
    if (ok && writer_ != nullptr) {
      writer_->add(site, encode_site_outcome(outcome));
    }
    if (progress_ != nullptr) {
      if (ok) {
        progress_->job_done(outcome.invocations);
      } else {
        progress_->job_failed();
      }
    }
  }

 private:
  const SurveyResults& results_;
  const std::vector<std::size_t>& pending_;
  sched::ShardWriter* writer_;
  sched::ProgressMeter* progress_;
};

}  // namespace

SurveyResults run_survey(const net::SyntheticWeb& web,
                         const SurveyOptions& options) {
  // Seed the mem.* gauges before the crawl so even a serverless run's
  // --metrics-out shows them; the live server re-publishes every tick.
  obs::mem::publish_metrics();
  const auto ad_blocker = blocker::make_ad_blocker(web);
  const auto tracking_blocker = blocker::make_tracking_blocker(web);

  // The progress meter backs both the --progress printer (caller-owned
  // meter) and the live endpoint; when only --serve asked for one, use a
  // local meter so /progress.json and /healthz still have a source.
  sched::ProgressMeter serve_meter;
  sched::ProgressMeter* const meter =
      options.progress != nullptr
          ? options.progress
          : (options.serve_port >= 0 ? &serve_meter : nullptr);

  const auto browser_config_for = [&](BrowsingConfig config) {
    browser::BrowserConfig bc;
    bc.fuel_per_script = options.fuel_per_script;
    switch (config) {
      case BrowsingConfig::kDefault:
        break;
      case BrowsingConfig::kBlocking:
        bc.ad_blocker = ad_blocker;
        bc.tracking_blocker = tracking_blocker;
        break;
      case BrowsingConfig::kAdOnly:
        bc.ad_blocker = ad_blocker;
        break;
      case BrowsingConfig::kTrackingOnly:
        bc.tracking_blocker = tracking_blocker;
        break;
    }
    return bc;
  };

  std::vector<BrowsingConfig> configs = {BrowsingConfig::kDefault,
                                         BrowsingConfig::kBlocking};
  if (options.include_ad_only) configs.push_back(BrowsingConfig::kAdOnly);
  if (options.include_tracking_only) {
    configs.push_back(BrowsingConfig::kTrackingOnly);
  }

  SurveyResults results;
  results.web = &web;
  results.passes = options.passes;
  results.has_ad_only = options.include_ad_only;
  results.has_tracking_only = options.include_tracking_only;
  results.sites.resize(web.sites().size());

  const std::size_t feature_count = web.feature_catalog().features().size();

  // Register this catalog's feature labels with the sampling profiler so
  // shim frames resolve to "std:<abbrev>/<feature>" and per-standard CPU
  // attribution works in any profile taken during (or across) this survey —
  // whether from --profile-out or a live /profilez window. Cheap (one
  // string per feature, once per survey) and side-effect free for results.
  {
    const catalog::Catalog& cat = web.feature_catalog();
    std::vector<obs::prof::FeatureLabel> labels;
    labels.reserve(cat.features().size());
    for (const catalog::Feature& f : cat.features()) {
      const std::string& abbrev = cat.standard(f.standard).abbreviation;
      labels.push_back({"std:" + abbrev + "/" + f.full_name, abbrev});
    }
    obs::prof::set_feature_table(std::move(labels));
  }

  // Build the shared per-catalog session snapshot before any workers spawn:
  // the canonical build runs once, here, instead of the first wave of
  // workers serializing behind the snapshot-registry mutex.
  browser::prewarm_session_snapshot(web.feature_catalog());

  const auto blank_outcome = [&] {
    SiteOutcome outcome;
    for (auto& bits : outcome.features) {
      bits = support::DynamicBitset(feature_count);
    }
    return outcome;
  };

  // `attempt` > 0 on retries; every attempt starts from a blank outcome so
  // a half-crawled failure never leaks into the retry's measurements.
  const auto survey_one_site = [&](std::size_t index, int attempt) {
    const net::SitePlan& site = web.sites()[index];
    sched::InFlightScope in_flight(meter, site.domain);

    // Observability only: spans/counters/timers read clocks and bump atomics
    // but never touch the RNG or the outcome, so results stay bit-identical
    // with tracing on or off (locked in by sched_test).
    // The root span is sampling-aware: under --trace-sample only 1-in-N
    // visits trace (plus any new slowest-so-far visit); the nested fetch/
    // parse/execute spans of unsampled visits are suppressed with it.
    obs::SampledSiteSpan visit_span("site-visit", site.domain);
    static obs::Histogram& visit_us =
        obs::Registry::global().histogram("crawler.site_visit_us");
    obs::ScopedLatency visit_latency(visit_us);
    static obs::Counter& crawled =
        obs::Registry::global().counter("crawler.sites_crawled");
    static obs::Counter& site_retries =
        obs::Registry::global().counter("crawler.site_retries");
    crawled.add();
    if (attempt > 0) {
      site_retries.add();
      if (obs::tracing_enabled()) obs::trace_instant("retry", site.domain);
    }

    if (options.fault_injection) options.fault_injection(index, attempt);

    SiteOutcome& outcome = results.sites[index];
    outcome = blank_outcome();

    const std::string retry_salt =
        (attempt > 0 && options.reseed_on_retry)
            ? "|retry" + std::to_string(attempt)
            : std::string();

    // All sessions for this site share one resource/AST cache; each
    // configuration reuses one browser session across its passes.
    browser::SiteCache cache;

    for (const BrowsingConfig config : configs) {
      CrawlConfig crawl_config;
      crawl_config.browser = browser_config_for(config);
      crawl_config.browser.cache = &cache;
      crawl_config.monkey = options.monkey;

      const std::uint64_t session_seed =
          options.seed ^
          support::fnv1a(site.domain + "|" + to_string(config) + retry_salt);
      browser::BrowserSession session(web, crawl_config.browser, session_seed);

      for (int pass = 0; pass < options.passes; ++pass) {
        const std::uint64_t pass_seed =
            options.seed ^
            support::fnv1a(site.domain + "|" + to_string(config) + "|" +
                           std::to_string(pass) + retry_salt);
        const SiteVisit visit =
            crawl_site(web, crawl_config, site, pass_seed, &session);
        outcome.responded |= visit.home_loaded;
        if (config == BrowsingConfig::kDefault) {
          outcome.measured |= visit.measured;
          outcome.default_passes.push_back(visit.features);
        }
        outcome.features[static_cast<std::size_t>(config)] |= visit.features;
        outcome.invocations += visit.invocations;
        outcome.pages_visited += visit.pages_visited;
        outcome.scripts_blocked += visit.scripts_blocked;
      }
    }
  };

  // --- checkpoint/resume -------------------------------------------------
  std::vector<char> restored(results.sites.size(), 0);
  std::unique_ptr<sched::ShardWriter> writer;
  if (!options.checkpoint_dir.empty()) {
    const std::string header =
        encode_survey_key(key_for(web, options));
    if (options.resume) {
      // Later shards win, so a site re-crawled after an earlier partial run
      // replays to its newest outcome.
      for (sched::ShardRecord& record :
           sched::load_shards(options.checkpoint_dir, header)) {
        if (record.index >= results.sites.size()) continue;
        SiteOutcome outcome;
        if (!decode_site_outcome(record.payload, outcome)) continue;
        results.sites[record.index] = std::move(outcome);
        restored[record.index] = 1;
      }
    }
    sched::FlushCadence cadence;
    cadence.records = options.checkpoint_every > 0
                          ? static_cast<std::size_t>(options.checkpoint_every)
                          : 64;
    cadence.seconds = options.checkpoint_secs;
    cadence.bytes = options.checkpoint_bytes;
    writer = std::make_unique<sched::ShardWriter>(options.checkpoint_dir,
                                                  header, cadence);
  }

  std::vector<std::size_t> pending;
  pending.reserve(results.sites.size());
  for (std::size_t i = 0; i < results.sites.size(); ++i) {
    if (!restored[i]) pending.push_back(i);
  }

  if (meter != nullptr) {
    meter->reset(results.sites.size());
    meter->set_stall_window(options.serve_stall_secs);
    for (std::size_t i = 0; i < results.sites.size(); ++i) {
      if (restored[i]) meter->job_skipped();
    }
  }

  // --- live endpoint -----------------------------------------------------
  // Started after checkpoint restore (so restored sites already count) and
  // before the first job; drained (destroyed) only after results are final,
  // so a watcher polling at crawl end still sees the finished state.
  std::unique_ptr<obs::Server> server;
  if (options.serve_port >= 0) {
    obs::ServerOptions server_options;
    server_options.port = options.serve_port;
    if (!options.checkpoint_dir.empty()) {
      server_options.port_file = options.checkpoint_dir + "/serve.port";
    }
    server_options.progress_json = [meter] {
      return sched::progress_json(meter->snapshot());
    };
    server_options.health = [meter] {
      const sched::ProgressMeter::Snapshot snap = meter->snapshot();
      return obs::HealthStatus{!snap.stalled, sched::health_json(snap)};
    };
    char fingerprint[32];
    std::snprintf(fingerprint, sizeof fingerprint, "0x%016llx",
                  static_cast<unsigned long long>(
                      catalog_fingerprint(web.feature_catalog())));
    server_options.build_extra.emplace_back("catalog_fingerprint",
                                            fingerprint);
    server = std::make_unique<obs::Server>(std::move(server_options));
    if (server->ok()) {
      std::cerr << "serving live metrics on http://127.0.0.1:"
                << server->port() << "/\n";
    } else {
      std::cerr << "warning: live endpoint disabled: " << server->error()
                << "\n";
    }
  }

  // --- schedule ----------------------------------------------------------
  SurveyObserver observer(results, pending, writer.get(), meter);
  const auto crawl_job = [&](std::size_t job, int attempt) {
    survey_one_site(pending[job], attempt);
  };
  const int max_attempts = options.max_attempts > 0 ? options.max_attempts : 1;

  sched::RunReport run;
  if (options.pool != nullptr &&
      options.scheduler_policy ==
          sched::SchedulerOptions::Policy::kWorkStealing) {
    // Daemon path: the caller's persistent pool carries this survey as one
    // batch, so queued surveys never drain/respawn the worker set.
    sched::BatchOptions batch;
    batch.max_attempts = max_attempts;
    batch.progress = meter;
    batch.cancel = options.cancel;
    run = options.pool->run(pending.size(), crawl_job, batch, &observer);
  } else {
    sched::SchedulerOptions sched_options;
    sched_options.threads = options.threads;
    sched_options.max_attempts = max_attempts;
    sched_options.policy = options.scheduler_policy;
    sched_options.progress = meter;
    sched_options.cancel = options.cancel;
    run = sched::run_jobs(pending.size(), crawl_job, sched_options, &observer);
  }

  // Fold contained failures into their outcomes: a site that threw on every
  // attempt reports as failed-with-reason, and the survey still completes.
  for (std::size_t job = 0; job < run.jobs.size(); ++job) {
    const sched::JobReport& report = run.jobs[job];
    SiteOutcome& outcome = results.sites[pending[job]];
    if (report.ok) {
      outcome.attempts = report.attempts;
    } else {
      outcome = blank_outcome();
      outcome.failed = true;
      outcome.attempts = report.attempts;
      outcome.error = report.error;
    }
  }

  if (writer) writer->flush();
  server.reset();  // drain: answer in-flight requests, then stop
  obs::mem::publish_metrics();  // final domain/RSS numbers for --metrics-out
  return results;
}

}  // namespace fu::crawler
