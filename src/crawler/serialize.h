// Survey result persistence.
//
// A full 10k-site survey takes minutes; every bench binary needs the same
// one. Results are written to a versioned binary file keyed by the exact
// run parameters (seed, site count, passes, configurations, catalog shape);
// a load only succeeds when every parameter matches, so a cache can never
// masquerade as a different experiment.
#pragma once

#include <optional>
#include <string>

#include "crawler/survey.h"

namespace fu::crawler {

// Bump whenever crawl/web-generation behaviour changes in a way the catalog
// fingerprint cannot see (new page structures, monkey strategy changes, ...)
// — stale caches must never masquerade as current results.
inline constexpr std::uint32_t kSurveyRevision = 5;

// Identity of a survey run; all fields must match for a cache hit.
struct SurveyKey {
  std::uint64_t seed = 0;
  std::uint32_t site_count = 0;
  std::uint32_t passes = 0;
  bool ad_only = false;
  bool tracking_only = false;
  std::uint32_t feature_count = 0;
  std::uint32_t standard_count = 0;
  // Hash over every feature's full name + calibration, so a cache produced
  // by a different catalog (e.g. an older build) can never be loaded.
  std::uint64_t catalog_fingerprint = 0;
  std::uint32_t revision = kSurveyRevision;
};

// Fingerprint of a catalog for SurveyKey.
std::uint64_t catalog_fingerprint(const catalog::Catalog& cat);

SurveyKey key_of(const SurveyResults& results, std::uint64_t seed);

// Key a run *before* it exists — what a scheduler needs to stamp its
// checkpoint shards and what the cache needs to probe for a hit.
SurveyKey key_for(const net::SyntheticWeb& web, const SurveyOptions& options);

// Canonical byte encodings shared between the whole-survey cache file and
// the sched checkpoint shards (the shard store is byte-oriented; these are
// its payloads and header).
std::string encode_survey_key(const SurveyKey& key);
std::string encode_site_outcome(const SiteOutcome& outcome);
// Strict decode: returns false on any truncation, trailing bytes, or
// implausible field, leaving `outcome` unspecified.
bool decode_site_outcome(const std::string& bytes, SiteOutcome& outcome);

// Write results to `path`. Returns false on I/O failure.
bool save_survey(const SurveyResults& results, std::uint64_t seed,
                 const std::string& path);

// Load results if the file exists and its key matches. The returned results
// point into `web` (which must be the identically-configured web).
std::optional<SurveyResults> load_survey(const net::SyntheticWeb& web,
                                         const SurveyKey& expected,
                                         const std::string& path);

// Canonical cache filename for a key, e.g.
// "survey_s10f3a7_n10000_p5_ft.bin".
std::string cache_filename(const SurveyKey& key);

// Rebuild full SurveyResults purely from the checkpoint shards in `dir` —
// the daemon's warm re-analysis path: tables for a request that differs
// only in analysis-layer parameters come straight from here, no crawl.
// Succeeds only when the shard header matches key_for(web, options) AND
// every site index is present (failed sites are never checkpointed, so a
// missing site means the crawl must run). The returned results point into
// `web`, exactly like a fresh run_survey over it — bit-identical by
// construction, locked in by tests.
std::optional<SurveyResults> results_from_shards(const net::SyntheticWeb& web,
                                                 const SurveyOptions& options,
                                                 const std::string& dir);

}  // namespace fu::crawler
