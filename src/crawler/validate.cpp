#include "crawler/validate.h"

#include <set>

#include "support/rng.h"

namespace fu::crawler {

namespace {

// Set of standards touched by a feature bitset.
std::set<catalog::StandardId> standards_of(const catalog::Catalog& cat,
                                           const support::DynamicBitset& bits) {
  std::set<catalog::StandardId> out;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits.test(i)) {
      out.insert(cat.feature(static_cast<catalog::FeatureId>(i)).standard);
    }
  }
  return out;
}

}  // namespace

std::vector<double> new_standards_per_round(const SurveyResults& results) {
  const catalog::Catalog& cat = results.web->feature_catalog();
  std::vector<double> sums(static_cast<std::size_t>(results.passes), 0.0);
  int measured = 0;

  for (const SiteOutcome& site : results.sites) {
    if (!site.measured || site.default_passes.empty()) continue;
    ++measured;
    std::set<catalog::StandardId> seen;
    for (std::size_t round = 0; round < site.default_passes.size(); ++round) {
      const std::set<catalog::StandardId> here =
          standards_of(cat, site.default_passes[round]);
      int fresh = 0;
      for (const catalog::StandardId sid : here) {
        if (seen.insert(sid).second) ++fresh;
      }
      if (round < sums.size()) sums[round] += fresh;
    }
  }
  if (measured > 0) {
    for (double& s : sums) s /= measured;
  }
  return sums;
}

double ExternalValidation::fraction_nothing_new() const {
  if (new_standards_per_domain.empty()) return 0;
  int zero = 0;
  for (const int n : new_standards_per_domain) zero += n == 0 ? 1 : 0;
  return static_cast<double>(zero) /
         static_cast<double>(new_standards_per_domain.size());
}

ExternalValidation run_external_validation(const SurveyResults& results,
                                           int target_domains,
                                           std::uint64_t seed) {
  const net::SyntheticWeb& web = *results.web;
  const catalog::Catalog& cat = web.feature_catalog();
  support::Rng rng(seed);

  // Visit-weighted sample without replacement (§6.2 weights choices by each
  // site's share of Alexa traffic).
  std::vector<double> weights;
  weights.reserve(web.sites().size());
  for (const net::SitePlan& site : web.sites()) {
    weights.push_back(site.visit_weight);
  }

  ExternalValidation out;
  std::set<std::size_t> chosen;
  int safety = target_domains * 200;
  while (static_cast<int>(chosen.size()) < target_domains && safety-- > 0) {
    const std::size_t pick = rng.weighted_index(weights);
    if (pick >= weights.size()) break;
    if (!results.sites[pick].measured) continue;  // omitted, like the paper's
    if (!chosen.insert(pick).second) continue;    // non-usable selections

    const net::SitePlan& site = web.sites()[pick];
    CrawlConfig config;  // stock browser, like the manual sessions
    const SiteVisit manual = human_visit(
        web, config, site, seed ^ support::fnv1a("manual:" + site.domain));

    const std::set<catalog::StandardId> automated = standards_of(
        cat, results.site_features(pick, BrowsingConfig::kDefault));
    const std::set<catalog::StandardId> human =
        standards_of(cat, manual.features);

    int fresh = 0;
    for (const catalog::StandardId sid : human) {
      if (!automated.count(sid)) ++fresh;
    }
    out.new_standards_per_domain.push_back(fresh);
  }
  out.domains_evaluated = static_cast<int>(out.new_standards_per_domain.size());
  return out;
}

}  // namespace fu::crawler
