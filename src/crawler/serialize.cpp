#include "crawler/serialize.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#include "sched/checkpoint.h"
#include "support/rng.h"

namespace fu::crawler {

namespace {

// Bumped 0003 -> 0004: SiteOutcome gained failed/attempts/error.
constexpr char kMagic[8] = {'F', 'U', 'S', 'V', '0', '0', '0', '4'};

void put_u64(std::ostream& out, std::uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out.write(buf, 8);
}

bool get_u64(std::istream& in, std::uint64_t& v) {
  char buf[8];
  if (!in.read(buf, 8)) return false;
  v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(buf[i]))
         << (8 * i);
  }
  return true;
}

void put_string(std::ostream& out, const std::string& s) {
  put_u64(out, s.size());
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

bool get_string(std::istream& in, std::string& s) {
  std::uint64_t size = 0;
  if (!get_u64(in, size)) return false;
  if (size > (1u << 20)) return false;  // no sane error string is a MB
  s.resize(size);
  return size == 0 ||
         static_cast<bool>(in.read(s.data(),
                                   static_cast<std::streamsize>(size)));
}

void put_bitset(std::ostream& out, const support::DynamicBitset& bits) {
  put_u64(out, bits.size());
  put_u64(out, bits.words().size());
  for (const std::uint64_t w : bits.words()) put_u64(out, w);
}

bool get_bitset(std::istream& in, support::DynamicBitset& bits) {
  std::uint64_t size = 0, words = 0;
  if (!get_u64(in, size) || !get_u64(in, words)) return false;
  if (words > (size + 63) / 64) return false;
  std::vector<std::uint64_t> data(words);
  for (std::uint64_t& w : data) {
    if (!get_u64(in, w)) return false;
  }
  bits.assign_words(size, std::move(data));
  return true;
}

void put_site_outcome(std::ostream& out, const SiteOutcome& site) {
  put_u64(out, (site.responded ? 1u : 0u) | (site.measured ? 2u : 0u) |
                   (site.failed ? 4u : 0u));
  put_u64(out, static_cast<std::uint64_t>(site.attempts));
  put_string(out, site.error);
  put_u64(out, site.invocations);
  put_u64(out, static_cast<std::uint64_t>(site.pages_visited));
  put_u64(out, static_cast<std::uint64_t>(site.scripts_blocked));
  for (const support::DynamicBitset& bits : site.features) {
    put_bitset(out, bits);
  }
  put_u64(out, site.default_passes.size());
  for (const support::DynamicBitset& bits : site.default_passes) {
    put_bitset(out, bits);
  }
}

bool get_site_outcome(std::istream& in, SiteOutcome& site) {
  std::uint64_t flags = 0, attempts = 0;
  std::uint64_t pages = 0, blocked = 0, pass_count = 0;
  if (!get_u64(in, flags) || !get_u64(in, attempts) ||
      !get_string(in, site.error) || !get_u64(in, site.invocations) ||
      !get_u64(in, pages) || !get_u64(in, blocked)) {
    return false;
  }
  site.responded = (flags & 1u) != 0;
  site.measured = (flags & 2u) != 0;
  site.failed = (flags & 4u) != 0;
  site.attempts = static_cast<int>(attempts);
  site.pages_visited = static_cast<int>(pages);
  site.scripts_blocked = static_cast<int>(blocked);
  for (support::DynamicBitset& bits : site.features) {
    if (!get_bitset(in, bits)) return false;
  }
  if (!get_u64(in, pass_count) || pass_count > 64) return false;
  site.default_passes.resize(pass_count);
  for (support::DynamicBitset& bits : site.default_passes) {
    if (!get_bitset(in, bits)) return false;
  }
  return true;
}

void put_key(std::ostream& out, const SurveyKey& key) {
  put_u64(out, key.seed);
  put_u64(out, key.site_count);
  put_u64(out, key.passes);
  put_u64(out, (key.ad_only ? 1u : 0u) | (key.tracking_only ? 2u : 0u));
  put_u64(out, key.feature_count);
  put_u64(out, key.standard_count);
  put_u64(out, key.catalog_fingerprint);
  put_u64(out, key.revision);
}

bool key_matches(std::istream& in, const SurveyKey& expected) {
  std::uint64_t seed, sites, passes, flags, features, standards, print, rev;
  if (!get_u64(in, seed) || !get_u64(in, sites) || !get_u64(in, passes) ||
      !get_u64(in, flags) || !get_u64(in, features) ||
      !get_u64(in, standards) || !get_u64(in, print) || !get_u64(in, rev)) {
    return false;
  }
  return seed == expected.seed && sites == expected.site_count &&
         passes == expected.passes &&
         (flags & 1u) == (expected.ad_only ? 1u : 0u) &&
         (flags & 2u) == (expected.tracking_only ? 2u : 0u) &&
         features == expected.feature_count &&
         standards == expected.standard_count &&
         print == expected.catalog_fingerprint &&
         rev == expected.revision;
}

}  // namespace

std::uint64_t catalog_fingerprint(const catalog::Catalog& cat) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  const auto mix = [&hash](std::uint64_t v) {
    hash ^= v;
    hash *= 0x100000001b3ULL;
  };
  for (const catalog::Feature& f : cat.features()) {
    mix(support::fnv1a(f.full_name));
    mix(static_cast<std::uint64_t>(f.target_sites));
    mix(static_cast<std::uint64_t>(f.blocked_only));
    mix(static_cast<std::uint64_t>(f.implemented.days_since_epoch()));
  }
  return hash;
}

SurveyKey key_of(const SurveyResults& results, std::uint64_t seed) {
  SurveyKey key;
  key.seed = seed;
  key.site_count = static_cast<std::uint32_t>(results.sites.size());
  key.passes = static_cast<std::uint32_t>(results.passes);
  key.ad_only = results.has_ad_only;
  key.tracking_only = results.has_tracking_only;
  key.feature_count = static_cast<std::uint32_t>(
      results.web->feature_catalog().features().size());
  key.standard_count = static_cast<std::uint32_t>(
      results.web->feature_catalog().standard_count());
  key.catalog_fingerprint = catalog_fingerprint(results.web->feature_catalog());
  return key;
}

SurveyKey key_for(const net::SyntheticWeb& web, const SurveyOptions& options) {
  SurveyKey key;
  key.seed = options.seed;
  key.site_count = static_cast<std::uint32_t>(web.sites().size());
  key.passes = static_cast<std::uint32_t>(options.passes);
  key.ad_only = options.include_ad_only;
  key.tracking_only = options.include_tracking_only;
  key.feature_count =
      static_cast<std::uint32_t>(web.feature_catalog().features().size());
  key.standard_count =
      static_cast<std::uint32_t>(web.feature_catalog().standard_count());
  key.catalog_fingerprint = catalog_fingerprint(web.feature_catalog());
  return key;
}

std::string encode_survey_key(const SurveyKey& key) {
  std::ostringstream out(std::ios::binary);
  put_key(out, key);
  return std::move(out).str();
}

std::string encode_site_outcome(const SiteOutcome& outcome) {
  std::ostringstream out(std::ios::binary);
  put_site_outcome(out, outcome);
  return std::move(out).str();
}

bool decode_site_outcome(const std::string& bytes, SiteOutcome& outcome) {
  std::istringstream in(bytes, std::ios::binary);
  if (!get_site_outcome(in, outcome)) return false;
  return in.peek() == std::istringstream::traits_type::eof();
}

std::string cache_filename(const SurveyKey& key) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "survey_s%llx_n%u_p%u_%c%c.bin",
                static_cast<unsigned long long>(key.seed), key.site_count,
                key.passes, key.ad_only ? 't' : 'f',
                key.tracking_only ? 't' : 'f');
  return buf;
}

bool save_survey(const SurveyResults& results, std::uint64_t seed,
                 const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(kMagic, sizeof kMagic);
  put_key(out, key_of(results, seed));

  put_u64(out, results.sites.size());
  for (const SiteOutcome& site : results.sites) {
    put_site_outcome(out, site);
  }
  return static_cast<bool>(out);
}

std::optional<SurveyResults> load_survey(const net::SyntheticWeb& web,
                                         const SurveyKey& expected,
                                         const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  char magic[sizeof kMagic];
  if (!in.read(magic, sizeof magic) ||
      std::memcmp(magic, kMagic, sizeof magic) != 0) {
    return std::nullopt;
  }
  if (!key_matches(in, expected)) return std::nullopt;

  SurveyResults results;
  results.web = &web;
  results.passes = static_cast<int>(expected.passes);
  results.has_ad_only = expected.ad_only;
  results.has_tracking_only = expected.tracking_only;

  std::uint64_t site_count = 0;
  if (!get_u64(in, site_count) || site_count != web.sites().size()) {
    return std::nullopt;
  }
  results.sites.resize(site_count);
  for (SiteOutcome& site : results.sites) {
    if (!get_site_outcome(in, site)) return std::nullopt;
  }
  return results;
}

std::optional<SurveyResults> results_from_shards(const net::SyntheticWeb& web,
                                                 const SurveyOptions& options,
                                                 const std::string& dir) {
  SurveyResults results;
  results.web = &web;
  results.passes = options.passes;
  results.has_ad_only = options.include_ad_only;
  results.has_tracking_only = options.include_tracking_only;
  results.sites.resize(web.sites().size());

  const std::string header = encode_survey_key(key_for(web, options));
  std::vector<char> present(results.sites.size(), 0);
  // Shard order is write order, so a duplicate index replays to its newest
  // outcome — same later-shard-wins rule as run_survey's resume path.
  for (sched::ShardRecord& record : sched::load_shards(dir, header)) {
    if (record.index >= results.sites.size()) continue;
    SiteOutcome outcome;
    if (!decode_site_outcome(record.payload, outcome)) continue;
    results.sites[record.index] = std::move(outcome);
    present[record.index] = 1;
  }
  for (const char got : present) {
    if (!got) return std::nullopt;
  }
  return results;
}

}  // namespace fu::crawler
