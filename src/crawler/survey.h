// Survey orchestration (§4.3.3): every site of the Alexa 10k is visited ten
// times — five passes with a stock browser and five with AdBlock Plus +
// Ghostery installed — plus (optionally) five passes each with only the ad
// blocker and only the tracking blocker, which Figure 7 needs. Sites are
// independent, so the survey fans out across worker threads; every pass is
// seeded from (survey seed, domain, configuration, pass index) and therefore
// reproducible regardless of scheduling.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "crawler/crawl.h"
#include "net/web.h"
#include "support/bitset.h"

namespace fu::crawler {

enum class BrowsingConfig : std::uint8_t {
  kDefault = 0,
  kBlocking = 1,      // AdBlock Plus + Ghostery
  kAdOnly = 2,        // AdBlock Plus alone
  kTrackingOnly = 3,  // Ghostery alone
};
inline constexpr std::array<BrowsingConfig, 4> kAllConfigs = {
    BrowsingConfig::kDefault, BrowsingConfig::kBlocking,
    BrowsingConfig::kAdOnly, BrowsingConfig::kTrackingOnly};

const char* to_string(BrowsingConfig config);

struct SurveyOptions {
  int passes = 5;
  bool include_ad_only = true;        // needed for Figure 7
  bool include_tracking_only = true;  // needed for Figure 7
  int threads = 0;                    // 0 = hardware concurrency
  std::uint64_t seed = 0x50e11edULL;
  MonkeyConfig monkey;
  std::uint64_t fuel_per_script = 200'000;
};

// Aggregated measurements for one site.
struct SiteOutcome {
  bool responded = false;
  bool measured = false;
  // Union of features seen across passes, per browsing configuration.
  std::array<support::DynamicBitset, 4> features;
  // Per-pass default-configuration feature sets (internal validation,
  // Table 3).
  std::vector<support::DynamicBitset> default_passes;
  std::uint64_t invocations = 0;
  int pages_visited = 0;
  int scripts_blocked = 0;
};

struct SurveyResults {
  const net::SyntheticWeb* web = nullptr;
  std::vector<SiteOutcome> sites;  // index = Alexa rank - 1
  int passes = 0;
  bool has_ad_only = false;
  bool has_tracking_only = false;

  int sites_measured() const;
  std::uint64_t total_invocations() const;
  std::uint64_t total_pages_visited() const;
  // "Total website interaction time": pages × 30 s, as in Table 1.
  std::uint64_t interaction_seconds() const;

  const support::DynamicBitset& site_features(std::size_t site,
                                              BrowsingConfig config) const {
    return sites[site].features[static_cast<std::size_t>(config)];
  }
};

// Run the survey over every site in the web.
SurveyResults run_survey(const net::SyntheticWeb& web,
                         const SurveyOptions& options = {});

}  // namespace fu::crawler
