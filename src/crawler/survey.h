// Survey orchestration (§4.3.3): every site of the Alexa 10k is visited ten
// times — five passes with a stock browser and five with AdBlock Plus +
// Ghostery installed — plus (optionally) five passes each with only the ad
// blocker and only the tracking blocker, which Figure 7 needs. Sites are
// independent, so the survey fans out across worker threads; every pass is
// seeded from (survey seed, domain, configuration, pass index) and therefore
// reproducible regardless of scheduling.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "crawler/crawl.h"
#include "net/web.h"
#include "sched/worksteal.h"
#include "support/bitset.h"

namespace fu::sched {
class Pool;
class ProgressMeter;
}

namespace fu::crawler {

enum class BrowsingConfig : std::uint8_t {
  kDefault = 0,
  kBlocking = 1,      // AdBlock Plus + Ghostery
  kAdOnly = 2,        // AdBlock Plus alone
  kTrackingOnly = 3,  // Ghostery alone
};
inline constexpr std::array<BrowsingConfig, 4> kAllConfigs = {
    BrowsingConfig::kDefault, BrowsingConfig::kBlocking,
    BrowsingConfig::kAdOnly, BrowsingConfig::kTrackingOnly};

const char* to_string(BrowsingConfig config);

struct SurveyOptions {
  int passes = 5;
  bool include_ad_only = true;        // needed for Figure 7
  bool include_tracking_only = true;  // needed for Figure 7
  int threads = 0;                    // 0 = hardware concurrency
  std::uint64_t seed = 0x50e11edULL;
  MonkeyConfig monkey;
  std::uint64_t fuel_per_script = 200'000;

  // Fault containment: a site crawl that throws is retried up to
  // `max_attempts` times total; the final failure is recorded in its
  // SiteOutcome instead of killing the survey. With `reseed_on_retry` each
  // retry mixes the attempt number into the pass seeds (a different walk
  // may dodge the fault); off by default so retries of transient faults
  // reproduce the exact run a clean pass would have produced.
  int max_attempts = 1;
  bool reseed_on_retry = false;

  // Checkpointing: when `checkpoint_dir` is set, completed SiteOutcomes
  // stream into shard files there (one shard per `checkpoint_every`
  // outcomes), keyed by this run's SurveyKey. With `resume`, matching
  // shards are loaded first and their sites are not recrawled — an
  // interrupted survey picks up where it stopped.
  //
  // `checkpoint_secs` / `checkpoint_bytes` (> 0 = enabled) additionally cut
  // a shard once that much time has passed since the first unflushed
  // outcome, or that many payload bytes have accumulated — whichever bound
  // trips first. A slow crawl then bounds its crash-loss window by time
  // while a fast one still batches by count (FU_CHECKPOINT_SECS).
  std::string checkpoint_dir;
  int checkpoint_every = 64;
  double checkpoint_secs = 0;
  std::size_t checkpoint_bytes = 0;
  bool resume = false;

  // Optional throughput observer (sites done, invocations/s, ETA); fed from
  // worker threads. Not owned.
  sched::ProgressMeter* progress = nullptr;

  // Live observation endpoint: >= 0 starts a loopback HTTP server on this
  // port for the duration of the crawl (0 = ephemeral; the bound port is
  // printed to stderr and written to <checkpoint_dir>/serve.port when
  // checkpointing). -1 = off. Serving is read-only — results are
  // bit-identical with it on or off (locked by engine_identity_test).
  int serve_port = -1;
  // /healthz flips to 503 once no site has completed for this many seconds.
  double serve_stall_secs = 30;

  // Scheduling policy. kStriped reproduces the seed's shared-atomic-counter
  // loop; it exists so bench_sched_throughput can race the two on identical
  // crawls. Results are bit-identical either way.
  sched::SchedulerOptions::Policy scheduler_policy =
      sched::SchedulerOptions::Policy::kWorkStealing;

  // Run on a caller-owned persistent pool instead of spawning workers for
  // this survey — how the daemon keeps one worker set across queued surveys.
  // Ignored under kStriped (the reference policy has no pool). `threads` is
  // ignored too: the pool's size rules. Not owned.
  sched::Pool* pool = nullptr;
  // Cooperative cancellation (see SchedulerOptions::cancel): once it flips,
  // sites not yet started are folded into results as failed with error
  // "cancelled". run_survey still returns normally.
  const std::atomic<bool>* cancel = nullptr;

  // Test seam: invoked at the start of every site-crawl attempt; a throw
  // here is contained exactly like a crawl fault. Null in production.
  std::function<void(std::size_t site_index, int attempt)> fault_injection;
};

// Aggregated measurements for one site.
struct SiteOutcome {
  bool responded = false;
  bool measured = false;
  // The crawl threw on every attempt; `error` is the last failure and the
  // other fields are reset to their empty state. Failed sites are reported
  // like unresponsive ones but keep the reason for the operator.
  bool failed = false;
  int attempts = 0;  // crawl attempts consumed (0 = never scheduled)
  std::string error;
  // Union of features seen across passes, per browsing configuration.
  std::array<support::DynamicBitset, 4> features;
  // Per-pass default-configuration feature sets (internal validation,
  // Table 3).
  std::vector<support::DynamicBitset> default_passes;
  std::uint64_t invocations = 0;
  int pages_visited = 0;
  int scripts_blocked = 0;

  // Bit-identical comparison (determinism and resume tests). `attempts` is
  // excluded: it records scheduling history, not measurement.
  friend bool operator==(const SiteOutcome& a, const SiteOutcome& b) {
    return a.responded == b.responded && a.measured == b.measured &&
           a.failed == b.failed && a.error == b.error &&
           a.features == b.features && a.default_passes == b.default_passes &&
           a.invocations == b.invocations &&
           a.pages_visited == b.pages_visited &&
           a.scripts_blocked == b.scripts_blocked;
  }
};

struct SurveyResults {
  const net::SyntheticWeb* web = nullptr;
  std::vector<SiteOutcome> sites;  // index = Alexa rank - 1
  int passes = 0;
  bool has_ad_only = false;
  bool has_tracking_only = false;

  int sites_measured() const;
  int sites_failed() const;
  std::uint64_t total_invocations() const;
  std::uint64_t total_pages_visited() const;
  // "Total website interaction time": pages × 30 s, as in Table 1.
  std::uint64_t interaction_seconds() const;

  const support::DynamicBitset& site_features(std::size_t site,
                                              BrowsingConfig config) const {
    return sites[site].features[static_cast<std::size_t>(config)];
  }
};

// Run the survey over every site in the web.
SurveyResults run_survey(const net::SyntheticWeb& web,
                         const SurveyOptions& options = {});

}  // namespace fu::crawler
