#include "net/scriptgen.h"

#include <array>
#include <map>
#include <string_view>

#include "catalog/names.h"

namespace fu::net {

namespace {

constexpr std::array<std::string_view, 6> kStringLiterals = {
    "\"main\"", "\"content\"", "\"x\"", "\"data-v\"", "\"on\"", "\"hero\""};

// Argument tuple for a synthesized call, varied by a deterministic counter.
std::string call_args(support::Rng& rng) {
  switch (rng.below(6)) {
    case 0: return "()";
    case 1: return "(" + std::string(kStringLiterals[rng.below(
                             kStringLiterals.size())]) + ")";
    case 2: return "(" + std::to_string(rng.below(16)) + ")";
    case 3: return "(" + std::to_string(rng.below(8)) + ", " +
                   std::to_string(rng.below(8)) + ")";
    case 4: return "(" + std::string(kStringLiterals[rng.below(
                             kStringLiterals.size())]) + ", " +
                   std::to_string(rng.below(4)) + ")";
    default: return "({ mode: \"auto\", retries: " +
                    std::to_string(1 + rng.below(3)) + " })";
  }
}

std::string property_value(support::Rng& rng) {
  switch (rng.below(4)) {
    case 0: return std::string(kStringLiterals[rng.below(kStringLiterals.size())]);
    case 1: return std::to_string(rng.below(100));
    case 2: return "true";
    default: return "\"v" + std::to_string(rng.below(1000)) + "\"";
  }
}

// Emits the statements that exercise the placement's features into `out`.
void feature_statements(const catalog::Catalog& cat,
                        const StandardPlacement& placement, int placement_index,
                        support::Rng& rng, std::string& out) {
  // Reuse one constructed instance per interface within the snippet.
  std::map<std::string, std::string> instance_vars;
  int var_serial = 0;

  for (const catalog::FeatureId fid : placement.features) {
    const catalog::Feature& f = cat.feature(fid);
    std::string access = catalog::global_access_path(f.interface_name);
    if (access.empty()) {
      auto it = instance_vars.find(f.interface_name);
      if (it == instance_vars.end()) {
        const std::string var = "obj" + std::to_string(placement_index) + "_" +
                                std::to_string(var_serial++);
        out += "var " + var + " = new " + f.interface_name + "();\n";
        it = instance_vars.emplace(f.interface_name, var).first;
      }
      access = it->second;
    }

    if (f.kind == catalog::FeatureKind::kProperty) {
      out += access + "." + f.member_name + " = " + property_value(rng) + ";\n";
      continue;
    }
    // Occasionally loop a call a few times — real pages call hot APIs
    // (createElement, getComputedStyle, ...) many times per load.
    if (rng.chance(0.15)) {
      const std::string loop_var =
          "i" + std::to_string(placement_index) + "_" +
          std::to_string(var_serial++);
      out += "for (var " + loop_var + " = 0; " + loop_var + " < " +
             std::to_string(2 + rng.below(2)) + "; " + loop_var + " = " +
             loop_var + " + 1) { " + access + "." + f.member_name +
             call_args(rng) + "; }\n";
    } else {
      out += access + "." + f.member_name + call_args(rng) + ";\n";
    }
  }
}

}  // namespace

std::string placement_snippet(const catalog::Catalog& catalog,
                              const StandardPlacement& placement,
                              int placement_index, support::Rng& rng) {
  std::string body;
  feature_statements(catalog, placement, placement_index, rng, body);

  // DOM0 registration chains any previous handler so that several gated
  // placements can share the one window.on<event> slot.
  const auto dom0 = [&](const char* event) {
    const std::string prev =
        "prev" + std::to_string(placement_index) + "_" + event;
    return "var " + prev + " = window.on" + event + ";\nwindow.on" + event +
           " = function () { if (" + prev + ") { " + prev + "(); }\n" + body +
           "};\n";
  };
  const auto modern = [&](const char* event) {
    return "window.addEventListener(\"" + std::string(event) +
           "\", function () {\n" + body + "});\n";
  };
  const auto gated = [&](const char* event) {
    return placement.dom0_handlers ? dom0(event) : modern(event);
  };

  switch (placement.trigger) {
    case Trigger::kImmediate:
      return body;
    case Trigger::kClick:
      return gated("click");
    case Trigger::kScroll:
      return gated("scroll");
    case Trigger::kInput:
      return gated("input");
    case Trigger::kTimer:
      return "window.setTimeout(function () {\n" + body + "}, " +
             std::to_string(200 + rng.below(2000)) + ");\n";
    case Trigger::kLongDwell:
      // beyond the 30-second monkey window; a 90-second human dwell fires it
      return "window.setTimeout(function () {\n" + body + "}, " +
             std::to_string(45'000 + rng.below(30'000)) + ");\n";
  }
  return body;
}

std::string filler_code(support::Rng& rng, int statement_count) {
  std::string out;
  const int serial = static_cast<int>(rng.below(10000));
  out += "function util" + std::to_string(serial) +
         "(a, b) { return a + b * 2; }\n";
  out += "var acc" + std::to_string(serial) + " = 0;\n";
  for (int i = 0; i < statement_count; ++i) {
    switch (rng.below(4)) {
      case 0:
        out += "acc" + std::to_string(serial) + " = util" +
               std::to_string(serial) + "(acc" + std::to_string(serial) +
               ", " + std::to_string(rng.below(9)) + ");\n";
        break;
      case 1:
        out += "for (var k" + std::to_string(i) + " = 0; k" +
               std::to_string(i) + " < " + std::to_string(2 + rng.below(2)) +
               "; k" + std::to_string(i) + " = k" + std::to_string(i) +
               " + 1) { acc" + std::to_string(serial) + " = acc" +
               std::to_string(serial) + " + k" + std::to_string(i) + "; }\n";
        break;
      case 2:
        out += "var label" + std::to_string(i) + " = \"s\" + " +
               std::to_string(rng.below(100)) + ";\n";
        break;
      default:
        out += "if (acc" + std::to_string(serial) + " > " +
               std::to_string(rng.below(50)) + ") { acc" +
               std::to_string(serial) + " = acc" + std::to_string(serial) +
               " - 1; }\n";
        break;
    }
  }
  return out;
}

std::string broken_script() {
  // Tokenizes but fails to parse: assignment with a missing right-hand side.
  return "var settings = { theme: \"light\" };\nvar boot = ;\n";
}

}  // namespace fu::net
