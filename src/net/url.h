// URL parsing and origin/registrable-domain logic.
//
// The crawler needs: same-site checks (BFS stays on the site, §4.3.1),
// third-party checks (blocker $third-party options), and path-segment
// structure (the crawl prefers URLs whose directory structure has not been
// seen before).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace fu::net {

class Url {
 public:
  Url() = default;

  // Parse an absolute URL: scheme://host[:port]/path[?query][#fragment].
  // Returns nullopt for anything unusable.
  static std::optional<Url> parse(std::string_view text);

  // Resolve `ref` (absolute, host-relative "/a/b", or document-relative
  // "a/b") against this URL.
  std::optional<Url> resolve(std::string_view ref) const;

  const std::string& scheme() const noexcept { return scheme_; }
  const std::string& host() const noexcept { return host_; }
  int port() const noexcept { return port_; }  // 0 = scheme default
  const std::string& path() const noexcept { return path_; }  // begins with /
  const std::string& query() const noexcept { return query_; }

  // Path split into segments, e.g. "/a/b/c.html" -> {"a","b","c.html"}.
  std::vector<std::string> path_segments() const;
  // Directory part of the path: "/a/b/c.html" -> "/a/b".
  std::string directory() const;

  std::string spec() const;  // canonical string form

  friend bool operator==(const Url& a, const Url& b) {
    return a.scheme_ == b.scheme_ && a.host_ == b.host_ && a.port_ == b.port_ &&
           a.path_ == b.path_ && a.query_ == b.query_;
  }

 private:
  std::string scheme_;
  std::string host_;
  int port_ = 0;
  std::string path_ = "/";
  std::string query_;
};

// Registrable domain ("example.co.uk" for "a.b.example.co.uk"): last two
// labels, or three when the penultimate label is a well-known second-level
// registry suffix (co/com/net/org/ac/gov + 2-letter TLD).
std::string registrable_domain(std::string_view host);

// Same registrable domain?
bool same_site(const Url& a, const Url& b);

// Host equality or subdomain-of relation against a registrable domain.
bool host_matches_domain(std::string_view host, std::string_view domain);

}  // namespace fu::net
