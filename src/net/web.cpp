#include "net/web.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "catalog/names.h"
#include "net/scriptgen.h"
#include "obs/mem.h"
#include "support/rng.h"
#include "support/strings.h"

namespace fu::net {

namespace {

using support::Rng;

constexpr std::string_view kAdScriptPath = "/adtag/tag.js";
constexpr std::string_view kTrackerScriptPath = "/collect/t.js";
constexpr std::string_view kDualScriptPath = "/sync/tag.js";
constexpr std::string_view kFramePath = "/frame.html";

std::map<std::string, std::string> parse_query(std::string_view query) {
  std::map<std::string, std::string> out;
  for (const std::string& pair : support::split_nonempty(query, '&')) {
    const auto eq = pair.find('=');
    if (eq == std::string::npos) {
      out[pair] = "";
    } else {
      out[pair.substr(0, eq)] = pair.substr(eq + 1);
    }
  }
  return out;
}

std::string site_domain(int rank) {
  char buf[40];
  constexpr std::array<const char*, 3> kTlds = {"com", "net", "org"};
  std::snprintf(buf, sizeof buf, "site%05d.%s", rank,
                kTlds[static_cast<std::size_t>(rank) % kTlds.size()]);
  return buf;
}

}  // namespace

double popularity_tilt(const catalog::StandardSpec& spec) {
  // The paper's Figure 5 singles out DOM4, DOM-PS, H-HI and TC as standards
  // whose share of page *views* clearly exceeds their share of *sites*.
  if (spec.abbreviation == "DOM4" || spec.abbreviation == "DOM-PS" ||
      spec.abbreviation == "H-HI" || spec.abbreviation == "TC") {
    return 0.7;
  }
  const std::uint64_t h = support::fnv1a(spec.abbreviation);
  return (static_cast<double>(h % 1000) / 1000.0 - 0.5) * 0.5;  // [-0.25,0.25)
}

SyntheticWeb::SyntheticWeb(const catalog::Catalog& catalog, Config config)
    : catalog_(&catalog), config_(config) {
  if (config_.site_count < 1) {
    throw std::invalid_argument("SyntheticWeb: need at least one site");
  }
  build_third_party_pools();
  build_sites();
}

SyntheticWeb::~SyntheticWeb() {
  obs::mem::sub(obs::mem::Domain::kNetCorpus, tracked_bytes_);
}

void SyntheticWeb::build_third_party_pools() {
  constexpr std::array<const char*, 7> kAdBrands = {
      "adserve", "bannerhub", "clickgrid", "popreach", "displaycast",
      "admixer", "promostack"};
  constexpr std::array<const char*, 6> kTrackerBrands = {
      "trackware", "statcount", "pixelsense", "audiencelab", "metricflow",
      "visitlog"};
  constexpr std::array<const char*, 4> kDualBrands = {"admetrica", "tagsync",
                                                      "reachprobe", "adinsight"};
  for (int k = 0; k < 28; ++k) {
    ad_hosts_.push_back(
        "cdn." + std::string(kAdBrands[static_cast<std::size_t>(k) %
                                       kAdBrands.size()]) +
        std::to_string(k) + ".com");
  }
  for (int k = 0; k < 22; ++k) {
    tracker_hosts_.push_back(
        "pixel." + std::string(kTrackerBrands[static_cast<std::size_t>(k) %
                                              kTrackerBrands.size()]) +
        std::to_string(k) + ".com");
  }
  for (int k = 0; k < 14; ++k) {
    dual_hosts_.push_back(
        "tags." + std::string(kDualBrands[static_cast<std::size_t>(k) %
                                          kDualBrands.size()]) +
        std::to_string(k) + ".com");
  }
  for (const auto& h : ad_hosts_) third_party_hosts_[h] = true;
  for (const auto& h : tracker_hosts_) third_party_hosts_[h] = true;
  for (const auto& h : dual_hosts_) third_party_hosts_[h] = true;
}

void SyntheticWeb::build_sites() {
  const support::Zipf zipf(static_cast<std::size_t>(config_.site_count),
                           config_.zipf_exponent);
  sites_.reserve(static_cast<std::size_t>(config_.site_count));
  for (int rank = 1; rank <= config_.site_count; ++rank) {
    SitePlan plan = plan_site(rank);
    plan.visit_weight = zipf.pmf(static_cast<std::size_t>(rank));
    by_domain_[plan.domain] = sites_.size();
    sites_.push_back(std::move(plan));
  }
  // Account the eagerly materialized corpus once it is fully built: the
  // plans themselves plus their string and placement storage (estimated —
  // no per-allocation hook exists inside std containers, nor needs to).
  std::size_t bytes = sites_.capacity() * sizeof(SitePlan);
  for (const SitePlan& site : sites_) {
    bytes += site.domain.capacity();
    bytes += site.placements.capacity() * sizeof(StandardPlacement);
    for (const StandardPlacement& placement : site.placements) {
      bytes += placement.features.capacity() * sizeof(catalog::FeatureId);
      bytes += placement.third_party_host.capacity();
    }
  }
  tracked_bytes_ = bytes;
  obs::mem::add(obs::mem::Domain::kNetCorpus, tracked_bytes_);
}

SitePlan SyntheticWeb::plan_site(int rank) {
  SitePlan plan;
  plan.rank = rank;
  plan.domain = site_domain(rank);
  plan.seed = config_.seed ^ support::fnv1a(plan.domain);
  Rng rng(config_.seed, plan.domain);

  if (rng.chance(config_.dead_fraction)) {
    plan.status = SiteStatus::kDead;
  } else if (rng.chance(config_.broken_fraction)) {
    plan.status = SiteStatus::kBrokenScripts;
  }
  // Enough sections that one 13-page crawl pass covers only part of the
  // site: repeated passes keep discovering section-bound functionality at
  // the decaying rate Table 3 reports.
  plan.sections = 6 + static_cast<int>(rng.below(9));           // 6..14
  plan.pages_per_section = 2 + static_cast<int>(rng.below(3));  // 2..4

  // Rank score in [-1, 1]; +1 for the most popular site. Used with the
  // per-standard tilt to make some standards skew toward high-traffic sites.
  const double score =
      1.0 - 2.0 * static_cast<double>(rank) /
                static_cast<double>(config_.site_count);

  const auto& specs = catalog_->standards();
  for (std::size_t sid = 0; sid < specs.size(); ++sid) {
    const catalog::StandardSpec& spec = specs[sid];
    if (spec.target_sites <= 0) continue;
    // Table 2's site counts are out of the *measured* population (9,733 of
    // 10,000 in the paper), so presence priors are scaled by the expected
    // measured fraction — dead/broken sites roll placements too but never
    // contribute measurements.
    const double measured_fraction =
        (1.0 - config_.dead_fraction) * (1.0 - config_.broken_fraction);
    double base =
        static_cast<double>(spec.target_sites) /
        (static_cast<double>(catalog::kAlexaSites) * measured_fraction);
    // Long-dwell placements (~3% of sitewide non-core usage) are invisible
    // to the 30-second automated crawl; inflate the prior so *measured*
    // popularity still lands on the Table-2 target.
    if (spec.target_sites < 8000) base = std::min(1.0, base * 1.018);
    // Tilt is damped by p(1-p) so the per-rank adjustment never clips at the
    // probability boundaries — clipping would bias the mean away from the
    // calibration target for very popular standards.
    const double adjusted = std::clamp(
        base + 0.8 * popularity_tilt(spec) * score * base * (1.0 - base), 0.0,
        1.0);
    if (!rng.chance(adjusted)) continue;

    StandardPlacement placement;
    placement.standard = static_cast<catalog::StandardId>(sid);
    placement.blockable = rng.chance(spec.block_rate);
    if (placement.blockable) {
      const bool ad = rng.chance(spec.ad_affinity);
      const bool tracker = rng.chance(spec.tracker_affinity);
      if (ad && tracker) {
        placement.script_class = ScriptClass::kAdAndTracker;
        placement.third_party_host =
            dual_hosts_[rng.below(dual_hosts_.size())];
      } else if (tracker) {
        placement.script_class = ScriptClass::kTracker;
        placement.third_party_host =
            tracker_hosts_[rng.below(tracker_hosts_.size())];
      } else if (ad) {
        placement.script_class = ScriptClass::kAd;
        placement.third_party_host = ad_hosts_[rng.below(ad_hosts_.size())];
      } else if (spec.ad_affinity >= spec.tracker_affinity) {
        placement.script_class = ScriptClass::kAd;
        placement.third_party_host = ad_hosts_[rng.below(ad_hosts_.size())];
      } else {
        placement.script_class = ScriptClass::kTracker;
        placement.third_party_host =
            tracker_hosts_[rng.below(tracker_hosts_.size())];
      }
      placement.framed = placement.script_class != ScriptClass::kTracker &&
                         rng.chance(0.3);
    }

    // Reach: the web's core standards are on every page; the long tail is
    // often buried in one section of the site, which is what makes repeated
    // crawl passes keep discovering new standards (Table 3).
    const bool core = spec.target_sites >= 8000;
    if (!core && rng.chance(0.45)) {
      placement.sitewide = false;
      placement.section = static_cast<int>(rng.below(
          static_cast<std::uint64_t>(plan.sections)));
    }
    // Trigger: most usage runs on load; some only on interaction. A thin
    // slice of sitewide, non-core usage hides behind a long dwell — the
    // §6.2 outliers where a patient human sees what the monkey cannot.
    if (!core && placement.sitewide && rng.chance(0.033)) {
      placement.trigger = Trigger::kLongDwell;
    } else {
      const double immediate_p = placement.sitewide ? 0.75 : 0.45;
      if (rng.chance(immediate_p)) {
        placement.trigger = Trigger::kImmediate;
      } else {
        constexpr std::array<Trigger, 4> kGated = {
            Trigger::kClick, Trigger::kScroll, Trigger::kInput,
            Trigger::kTimer};
        placement.trigger = kGated[rng.below(kGated.size())];
      }
    }

    // Feature selection within the standard.
    for (const catalog::FeatureId fid : catalog_->features_of(
             static_cast<catalog::StandardId>(sid))) {
      const catalog::Feature& f = catalog_->feature(fid);
      if (f.target_sites <= 0) continue;
      if (f.rank_in_standard == 0) {
        placement.features.push_back(fid);
        continue;
      }
      if (f.blocked_only) {
        if (placement.blockable &&
            rng.chance(std::min(
                1.0, f.conditional_use / std::max(0.05, spec.block_rate)))) {
          placement.features.push_back(fid);
        }
        continue;
      }
      if (rng.chance(f.conditional_use)) placement.features.push_back(fid);
    }
    plan.placements.push_back(std::move(placement));
  }

  // Closed-web content (§7.3): some sites keep application-like features —
  // workers, storage, crypto, media — behind a login. These placements are
  // unreachable for the open-web crawl and exist to support the closed-web
  // extension experiment.
  if (plan.status == SiteStatus::kOk &&
      rng.chance(config_.members_area_fraction)) {
    plan.has_members_area = true;
    plan.member_pages = 2 + static_cast<int>(rng.below(3));  // 2..4
    constexpr std::array<const char*, 12> kAppStandards = {
        "H-WW", "IDB", "WCR", "F",   "SW",  "MSR",
        "MCS",  "WN",  "FA",  "URL", "H-B", "EME"};
    for (const char* abbrev : kAppStandards) {
      if (!rng.chance(0.30)) continue;
      const catalog::StandardId sid =
          catalog_->standard_by_abbreviation(abbrev);
      if (sid == catalog::kInvalidStandard) continue;
      StandardPlacement placement;
      placement.standard = sid;
      placement.authenticated = true;
      placement.sitewide = false;
      placement.trigger =
          rng.chance(0.6) ? Trigger::kImmediate : Trigger::kClick;
      // members-area features: the standard's flagship plus a couple more,
      // regardless of open-web popularity (even never-used standards can
      // live here — that is the point of §7.3)
      const auto& fids = catalog_->features_of(sid);
      placement.features.push_back(fids.front());
      for (std::size_t i = 1; i < fids.size() && i < 6; ++i) {
        if (rng.chance(0.4)) placement.features.push_back(fids[i]);
      }
      plan.placements.push_back(std::move(placement));
    }
  }

  // Sites that use DOM Level 2 Events register handlers the modern way;
  // everyone else falls back to DOM0 assignment (uncountable, §4.2.3).
  const catalog::StandardId dom2e =
      catalog_->standard_by_abbreviation("DOM2-E");
  const bool has_dom2e =
      std::any_of(plan.placements.begin(), plan.placements.end(),
                  [dom2e](const StandardPlacement& p) {
                    return p.standard == dom2e;
                  });
  for (StandardPlacement& p : plan.placements) {
    p.dom0_handlers = !has_dom2e;
  }
  return plan;
}

const SitePlan* SyntheticWeb::site_by_host(std::string_view host) const {
  const std::string domain = registrable_domain(host);
  const auto it = by_domain_.find(domain);
  return it == by_domain_.end() ? nullptr : &sites_[it->second];
}

Url SyntheticWeb::home_url(const SitePlan& site) const {
  return *Url::parse("http://www." + site.domain + "/");
}

std::optional<Resource> SyntheticWeb::fetch(const Url& url,
                                            bool authenticated) const {
  // Third-party infrastructure?
  if (third_party_hosts_.find(url.host()) != third_party_hosts_.end()) {
    const auto params = parse_query(url.query());
    const auto site_it = params.find("site");
    const auto p_it = params.find("p");
    if (site_it == params.end() || p_it == params.end()) return std::nullopt;
    const SitePlan* site = site_by_host(site_it->second);
    if (site == nullptr) return std::nullopt;
    int placement = -1;
    try {
      placement = std::stoi(p_it->second);
    } catch (const std::exception&) {
      return std::nullopt;
    }
    if (placement < 0 ||
        placement >= static_cast<int>(site->placements.size())) {
      return std::nullopt;
    }
    if (url.path() == kFramePath) {
      return Resource{url, ResourceKind::kDocument,
                      frame_document(*site, placement)};
    }
    if (url.path() == kAdScriptPath || url.path() == kTrackerScriptPath ||
        url.path() == kDualScriptPath) {
      return Resource{url, ResourceKind::kScript,
                      third_party_script(*site, placement)};
    }
    return std::nullopt;
  }

  const SitePlan* site = site_by_host(url.host());
  if (site == nullptr) return std::nullopt;
  if (site->status == SiteStatus::kDead) return std::nullopt;

  const std::vector<std::string> segments = url.path_segments();
  // The members area: real content only with credentials.
  if (!segments.empty() && segments[0] == "account") {
    if (!site->has_members_area) return std::nullopt;
    if (!authenticated) {
      return Resource{url, ResourceKind::kDocument, login_wall(*site)};
    }
  }
  if (segments.size() == 2 && segments[0] == "js" &&
      segments[1] == "members.js") {
    if (!site->has_members_area || !authenticated) return std::nullopt;
    return Resource{url, ResourceKind::kScript, members_script(*site)};
  }
  if (segments.size() == 2 && segments[0] == "js" &&
      support::starts_with(segments[1], "app") &&
      support::ends_with(segments[1], ".js")) {
    const std::string slot_text =
        segments[1].substr(3, segments[1].size() - 6);
    try {
      const int slot = std::stoi(slot_text);
      if (slot < 0 || slot > site->sections) return std::nullopt;
      return Resource{url, ResourceKind::kScript,
                      first_party_script(*site, slot)};
    } catch (const std::exception&) {
      return std::nullopt;
    }
  }
  const std::string body = document_body(*site, url, authenticated);
  if (body.empty()) return std::nullopt;
  return Resource{url, ResourceKind::kDocument, body};
}

}  // namespace fu::net
