// Page and script synthesis for SyntheticWeb (the member functions that
// produce resource bodies). Everything is a pure function of the site plan
// and the URL, so repeated fetches are identical across passes.
#include <cstdio>

#include "net/scriptgen.h"
#include "net/web.h"
#include "support/rng.h"
#include "support/strings.h"

namespace fu::net {

namespace {

using support::Rng;

struct PageLocation {
  bool valid = false;
  int section = -1;  // -1 = home page
  int page = 0;
  int deep = -1;   // >=0 for third-level pages
  bool members = false;  // login-gated /account/ pages
};

PageLocation locate(const SitePlan& site, const Url& url) {
  PageLocation loc;
  const std::vector<std::string> segs = url.path_segments();
  if (segs.empty()) {
    loc.valid = true;
    return loc;  // home
  }
  // "/account/m{j}.html" — the members area
  if (segs[0] == "account") {
    if (!site.has_members_area || segs.size() != 2) return loc;
    if (!support::starts_with(segs[1], "m") ||
        !support::ends_with(segs[1], ".html")) {
      return loc;
    }
    try {
      loc.page = std::stoi(segs[1].substr(1, segs[1].size() - 6));
    } catch (const std::exception&) {
      return loc;
    }
    if (loc.page < 0 || loc.page >= site.member_pages) return loc;
    loc.members = true;
    loc.valid = true;
    return loc;
  }
  // "/s{i}/p{j}.html" or "/s{i}/p{j}/d{k}.html"
  if (segs.size() < 2 || segs.size() > 3) return loc;
  if (segs[0].size() < 2 || segs[0][0] != 's') return loc;
  try {
    loc.section = std::stoi(segs[0].substr(1));
  } catch (const std::exception&) {
    return loc;
  }
  if (loc.section < 0 || loc.section >= site.sections) return loc;

  std::string page_name = segs[1];
  if (segs.size() == 2) {
    if (!support::starts_with(page_name, "p") ||
        !support::ends_with(page_name, ".html")) {
      return loc;
    }
    page_name = page_name.substr(1, page_name.size() - 6);
  } else {
    if (!support::starts_with(page_name, "p")) return loc;
    page_name = page_name.substr(1);
  }
  try {
    loc.page = std::stoi(page_name);
  } catch (const std::exception&) {
    return loc;
  }
  if (loc.page < 0 || loc.page >= site.pages_per_section) return loc;

  if (segs.size() == 3) {
    const std::string& deep_name = segs[2];
    if (!support::starts_with(deep_name, "d") ||
        !support::ends_with(deep_name, ".html")) {
      return loc;
    }
    try {
      loc.deep = std::stoi(deep_name.substr(1, deep_name.size() - 6));
    } catch (const std::exception&) {
      return loc;
    }
    if (loc.deep < 0 || loc.deep > 1) return loc;
  }
  loc.valid = true;
  return loc;
}

bool placement_on_page(const StandardPlacement& p, const PageLocation& loc) {
  if (p.authenticated) return loc.members;
  if (loc.members) return p.sitewide;  // sitewide analytics run there too
  if (p.sitewide) return true;
  return loc.section == p.section;
}

std::string third_party_src(const SitePlan& site, const StandardPlacement& p,
                            std::size_t index, bool frame) {
  std::string_view path;
  if (frame) {
    path = "/frame.html";
  } else {
    switch (p.script_class) {
      case ScriptClass::kAd: path = "/adtag/tag.js"; break;
      case ScriptClass::kTracker: path = "/collect/t.js"; break;
      case ScriptClass::kAdAndTracker: path = "/sync/tag.js"; break;
      case ScriptClass::kFirstParty: path = "/"; break;
    }
  }
  return "http://" + p.third_party_host + std::string(path) +
         "?site=" + site.domain + "&p=" + std::to_string(index);
}

void append_links(std::string& html, const SitePlan& site,
                  const PageLocation& loc, Rng& rng) {
  html += "<nav>\n";
  if (loc.members) {
    html += "<a href=\"/\">Home</a>\n";
    for (int j = 0; j < site.member_pages; ++j) {
      if (j == loc.page) continue;
      html += "<a href=\"/account/m" + std::to_string(j) +
              ".html\">Member page " + std::to_string(j) + "</a>\n";
    }
    html += "</nav>\n";
    return;
  }
  if (loc.section < 0) {
    if (site.has_members_area) {
      html += "<a href=\"/account/m0.html\">Sign in</a>\n";
    }
    for (int i = 0; i < site.sections; ++i) {
      html += "<a href=\"/s" + std::to_string(i) +
              "/p0.html\">Section " + std::to_string(i) + "</a>\n";
    }
    if (site.pages_per_section > 1) {
      html += "<a href=\"/s0/p1.html\">Featured</a>\n";
    }
  } else if (loc.deep < 0) {
    html += "<a href=\"/\">Home</a>\n";
    for (int j = 0; j < site.pages_per_section; ++j) {
      if (j == loc.page) continue;
      html += "<a href=\"/s" + std::to_string(loc.section) + "/p" +
              std::to_string(j) + ".html\">Article " + std::to_string(j) +
              "</a>\n";
    }
    for (int k = 0; k <= 1; ++k) {
      html += "<a href=\"/s" + std::to_string(loc.section) + "/p" +
              std::to_string(loc.page) + "/d" + std::to_string(k) +
              ".html\">Read more " + std::to_string(k) + "</a>\n";
    }
    html += "<a href=\"/s" + std::to_string((loc.section + 1) % site.sections) +
            "/p0.html\">Related</a>\n";
  } else {
    html += "<a href=\"/\">Home</a>\n";
    html += "<a href=\"/s" + std::to_string(loc.section) + "/p" +
            std::to_string(loc.page) + ".html\">Back</a>\n";
  }
  // Offsite links the monkey will try to click (navigation is intercepted).
  for (int k = 0; k < 2; ++k) {
    html += "<a href=\"http://site" +
            std::to_string(1 + rng.below(9999)) + ".com/\">Partner " +
            std::to_string(k) + "</a>\n";
  }
  html += "</nav>\n";
}

}  // namespace

std::string SyntheticWeb::document_body(const SitePlan& site, const Url& url,
                                        bool authenticated) const {
  const PageLocation loc = locate(site, url);
  if (!loc.valid) return "";
  if (loc.members && !authenticated) return login_wall(site);
  Rng rng(site.seed, "page:" + url.path());
  const bool broken = site.status == SiteStatus::kBrokenScripts;

  std::string html = "<!doctype html>\n<html>\n<head>\n<title>" + site.domain +
                     " — page</title>\n";
  html += "<meta charset=\"utf-8\">\n";
  html += "<script src=\"/js/app0.js\"></script>\n";
  if (loc.members) {
    html += "<script src=\"/js/members.js\"></script>\n";
  } else if (loc.section >= 0) {
    html += "<script src=\"/js/app" + std::to_string(loc.section + 1) +
            ".js\"></script>\n";
  }
  if (!broken) {
    for (std::size_t i = 0; i < site.placements.size(); ++i) {
      const StandardPlacement& p = site.placements[i];
      if (!p.blockable || p.framed || !placement_on_page(p, loc)) continue;
      html += "<script src=\"" + third_party_src(site, p, i, false) +
              "\"></script>\n";
    }
  }
  // Broken sites (§4.3.3) fail in their inline bootstrap too — nothing on
  // the page executes.
  html += "<script>\n" + (broken ? broken_script() : filler_code(rng, 3)) +
          "</script>\n";
  html += "</head>\n<body>\n<h1>" + site.domain + "</h1>\n";
  append_links(html, site, loc, rng);

  const int paragraphs = 2 + static_cast<int>(rng.below(4));
  for (int i = 0; i < paragraphs; ++i) {
    html += "<p>Section content block " + std::to_string(i) +
            " with enough text to scroll past and read through.</p>\n";
  }
  html += "<button id=\"cta\">Subscribe</button>\n";
  html += "<button id=\"menu-toggle\">Menu</button>\n";
  html += "<form id=\"search-form\"><input id=\"q\" type=\"text\"></form>\n";
  html += "<img src=\"/img/banner" + std::to_string(rng.below(5)) +
          ".png\">\n";

  if (!broken) {
    for (std::size_t i = 0; i < site.placements.size(); ++i) {
      const StandardPlacement& p = site.placements[i];
      if (!p.blockable || !p.framed || !placement_on_page(p, loc)) continue;
      // real ad units carry the class names cosmetic filters target
      html += "<iframe class=\"ad-slot\" src=\"" +
              third_party_src(site, p, i, true) + "\"></iframe>\n";
    }
  }
  html += "</body>\n</html>\n";
  return html;
}

std::string SyntheticWeb::first_party_script(const SitePlan& site,
                                             int script_slot) const {
  if (site.status == SiteStatus::kBrokenScripts) return broken_script();
  Rng rng(site.seed, "fp" + std::to_string(script_slot));
  std::string out = filler_code(rng, 3 + static_cast<int>(rng.below(5)));
  for (std::size_t i = 0; i < site.placements.size(); ++i) {
    const StandardPlacement& p = site.placements[i];
    if (p.blockable || p.authenticated) continue;
    const bool wanted = script_slot == 0
                            ? p.sitewide
                            : (!p.sitewide && p.section == script_slot - 1);
    if (!wanted) continue;
    out += placement_snippet(*catalog_, p, static_cast<int>(i), rng);
  }
  out += filler_code(rng, 2);
  return out;
}

std::string SyntheticWeb::members_script(const SitePlan& site) const {
  if (site.status == SiteStatus::kBrokenScripts) return broken_script();
  Rng rng(site.seed, "members");
  std::string out = filler_code(rng, 2 + static_cast<int>(rng.below(3)));
  for (std::size_t i = 0; i < site.placements.size(); ++i) {
    const StandardPlacement& p = site.placements[i];
    if (!p.authenticated) continue;
    out += placement_snippet(*catalog_, p, static_cast<int>(i), rng);
  }
  return out;
}

std::string SyntheticWeb::login_wall(const SitePlan& site) const {
  // No scripts, no member links: the open-web crawl bounces off here.
  return "<!doctype html>\n<html>\n<head>\n<title>" + site.domain +
         " — sign in</title>\n</head>\n<body>\n"
         "<h1>Members only</h1>\n"
         "<form id=\"login\"><input id=\"user\" type=\"text\">"
         "<input id=\"pass\" type=\"text\"><button id=\"submit\">Sign in"
         "</button></form>\n<a href=\"/\">Back</a>\n</body>\n</html>\n";
}

std::string SyntheticWeb::third_party_script(const SitePlan& site,
                                             int placement) const {
  const StandardPlacement& p =
      site.placements[static_cast<std::size_t>(placement)];
  Rng rng(site.seed, "tp" + std::to_string(placement));
  std::string out = filler_code(rng, 2);
  out += placement_snippet(*catalog_, p, placement, rng);
  return out;
}

std::string SyntheticWeb::frame_document(const SitePlan& site,
                                         int placement) const {
  const StandardPlacement& p =
      site.placements[static_cast<std::size_t>(placement)];
  std::string html = "<!doctype html>\n<html>\n<head>\n";
  html += "<script src=\"" +
          third_party_src(site, p, static_cast<std::size_t>(placement),
                          false) +
          "\"></script>\n";
  html += "</head>\n<body>\n<p>sponsored content</p>\n</body>\n</html>\n";
  return html;
}

}  // namespace fu::net
