// The synthetic web: a deterministic, generated stand-in for the 2016
// Alexa 10k (§3.1, §4.3).
//
// Every site gets a *plan*: which standards it uses, whether each standard's
// usage lives in first-party code or in ad/tracker scripts (the channel that
// Table 2's block rates are calibrated from), which features of the standard
// appear, whether usage is sitewide or buried in one section of the site,
// and whether it runs immediately or only in response to user interaction.
// Page HTML and script source are synthesized lazily and purely from
// (seed, URL), so the whole web needs no storage and any fetch is
// reproducible in isolation.
//
// ~2.7% of sites are unmeasurable, mirroring the paper's 267 failed domains
// (§4.3.3): "dead" sites never respond; "broken" sites serve scripts with
// syntax errors that prevent all execution.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "catalog/catalog.h"
#include "net/url.h"

namespace fu::net {

enum class ResourceKind { kDocument, kScript };

struct Resource {
  Url url;
  ResourceKind kind = ResourceKind::kDocument;
  std::string body;
};

enum class SiteStatus { kOk, kDead, kBrokenScripts };

// Which script class hosts a standard's usage on a given site.
enum class ScriptClass : std::uint8_t {
  kFirstParty,    // site's own code; never blocked
  kAd,            // served from an ad network domain (AdBlock Plus blocks)
  kTracker,       // served from a tracker domain (Ghostery blocks)
  kAdAndTracker,  // ad network that also tracks (both lists block)
};

// How the usage is triggered during the 30-second interaction window.
enum class Trigger : std::uint8_t {
  kImmediate,  // top-level script code
  kClick,      // click handler
  kScroll,     // scroll handler
  kInput,      // text-input handler
  kTimer,      // setTimeout callback within the 30 s window
  // A timer beyond the monkey's 30-second budget: only a longer, human-style
  // dwell reaches it. These placements are what the paper's §6.2 outliers
  // are made of — functionality manual browsing sees but automation misses.
  kLongDwell,
};

struct StandardPlacement {
  catalog::StandardId standard = catalog::kInvalidStandard;
  bool blockable = false;
  ScriptClass script_class = ScriptClass::kFirstParty;
  Trigger trigger = Trigger::kImmediate;
  bool sitewide = true;
  int section = 0;          // when !sitewide: which L1 section hosts it
  // Closed-web placements (§7.3): usage that only exists behind a login.
  // The open-web crawl the paper performs can never observe these.
  bool authenticated = false;
  bool framed = false;      // blockable usage delivered inside an ad iframe
  // Handler-registration idiom for gated triggers: sites that use the DOM
  // Level 2 Events standard register via addEventListener; the rest use
  // legacy DOM0 assignment (window.onclick = fn), which the measuring
  // extension cannot count (§4.2.3).
  bool dom0_handlers = false;
  std::vector<catalog::FeatureId> features;
  std::string third_party_host;  // for blockable placements
};

struct SitePlan {
  int rank = 1;  // 1-based; 1 = most popular
  std::string domain;
  double visit_weight = 0;  // share of all web visits (sums to ~1)
  SiteStatus status = SiteStatus::kOk;
  int sections = 4;            // L1 branches under the home page
  int pages_per_section = 3;   // L2 pages in each branch
  bool has_members_area = false;  // login-gated subtree (§7.3)
  int member_pages = 0;
  std::uint64_t seed = 0;      // per-site stream
  std::vector<StandardPlacement> placements;
};

class SyntheticWeb {
 public:
  struct Config {
    int site_count = catalog::kAlexaSites;
    std::uint64_t seed = 0xa1e8a10ULL;
    double dead_fraction = 0.015;
    double broken_fraction = 0.012;
    double zipf_exponent = 0.95;  // Alexa visit-weight skew
    // Fraction of a rare-placement's discovery probability per crawl pass;
    // drives the Table-3 internal-validation decay.
    double deep_section_bias = 0.55;
    // Fraction of sites with a login-gated members area whose functionality
    // an open-web crawl cannot reach (§4.1, §7.3).
    double members_area_fraction = 0.35;
  };

  SyntheticWeb(const catalog::Catalog& catalog, Config config);
  ~SyntheticWeb();

  const Config& config() const noexcept { return config_; }
  const catalog::Catalog& feature_catalog() const noexcept { return *catalog_; }

  const std::vector<SitePlan>& sites() const noexcept { return sites_; }
  // Lookup by host ("www.rank0001-..." works); nullptr when unknown.
  const SitePlan* site_by_host(std::string_view host) const;

  // Synthesizes the resource at `url`; nullopt = network error / 404 / dead.
  // With `authenticated` the request carries valid site credentials —
  // login-gated pages serve their real content instead of the login wall.
  std::optional<Resource> fetch(const Url& url,
                                bool authenticated = false) const;

  // Third-party infrastructure, for building blocker lists.
  const std::vector<std::string>& ad_hosts() const noexcept { return ad_hosts_; }
  const std::vector<std::string>& tracker_hosts() const noexcept {
    return tracker_hosts_;
  }
  const std::vector<std::string>& dual_hosts() const noexcept {
    return dual_hosts_;
  }

  // Home-page URL for a site.
  Url home_url(const SitePlan& site) const;

 private:
  friend class PageSynthesizer;

  void build_third_party_pools();
  void build_sites();
  SitePlan plan_site(int rank);

  std::string document_body(const SitePlan& site, const Url& url,
                            bool authenticated) const;
  std::string first_party_script(const SitePlan& site, int script_slot) const;
  std::string members_script(const SitePlan& site) const;
  std::string login_wall(const SitePlan& site) const;
  std::string third_party_script(const SitePlan& site, int placement) const;
  std::string frame_document(const SitePlan& site, int placement) const;

  const catalog::Catalog* catalog_;
  Config config_;
  std::vector<SitePlan> sites_;
  std::map<std::string, std::size_t, std::less<>> by_domain_;
  std::vector<std::string> ad_hosts_;
  std::vector<std::string> tracker_hosts_;
  std::vector<std::string> dual_hosts_;
  std::map<std::string, bool, std::less<>> third_party_hosts_;  // host -> any
  // Estimated site-plan bytes reported to mem::Domain::kNetCorpus — the
  // number the 1M-site streaming refactor exists to shrink.
  std::size_t tracked_bytes_ = 0;
};

// Standard-vs-site-popularity tilt for Figure 5: positive values make the
// standard relatively more common on high-traffic sites. Hand-tilted for the
// four standards the paper labels; hash-derived jitter elsewhere.
double popularity_tilt(const catalog::StandardSpec& spec);

}  // namespace fu::net
