// MiniJS source synthesis for site scripts.
//
// Given a placement (one standard's usage on one site), emits JavaScript
// text that exercises exactly the placement's features: member calls through
// the ambient singleton when the interface has one (`navigator.sendBeacon(…)`),
// `new Interface()` instances otherwise, and property writes for watchable
// singleton properties. Usage that the plan gates behind interaction is
// wrapped in event-handler or timer registrations, which the monkey tester
// later fires. Filler code (closures, loops, string munging that touches no
// instrumented feature) pads scripts so that parsing and execution look like
// real pages rather than bare API call lists.
#pragma once

#include <string>

#include "catalog/catalog.h"
#include "net/web.h"
#include "support/rng.h"

namespace fu::net {

// Code exercising the placement's features, trigger wrapper included.
// `placement_index` seeds variable naming so concatenated snippets never
// collide.
std::string placement_snippet(const catalog::Catalog& catalog,
                              const StandardPlacement& placement,
                              int placement_index, support::Rng& rng);

// Feature-free padding: helper functions, loops, local state.
std::string filler_code(support::Rng& rng, int statement_count);

// A script whose syntax error prevents all execution (broken sites, §4.3.3).
std::string broken_script();

}  // namespace fu::net
