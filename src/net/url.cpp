#include "net/url.h"

#include <algorithm>
#include <cctype>

#include "support/strings.h"

namespace fu::net {

namespace {

bool valid_host_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '.' || c == '-';
}

}  // namespace

std::optional<Url> Url::parse(std::string_view text) {
  const std::size_t scheme_end = text.find("://");
  if (scheme_end == std::string_view::npos || scheme_end == 0) return std::nullopt;

  Url url;
  url.scheme_ = support::to_lower(text.substr(0, scheme_end));
  if (url.scheme_ != "http" && url.scheme_ != "https") return std::nullopt;

  std::string_view rest = text.substr(scheme_end + 3);
  // strip fragment
  if (const auto hash = rest.find('#'); hash != std::string_view::npos) {
    rest = rest.substr(0, hash);
  }
  std::size_t path_start = rest.find_first_of("/?");
  std::string_view authority =
      path_start == std::string_view::npos ? rest : rest.substr(0, path_start);
  if (authority.empty()) return std::nullopt;

  std::string_view host = authority;
  if (const auto colon = authority.rfind(':'); colon != std::string_view::npos) {
    host = authority.substr(0, colon);
    const std::string_view port_text = authority.substr(colon + 1);
    int port = 0;
    for (const char c : port_text) {
      if (!std::isdigit(static_cast<unsigned char>(c))) return std::nullopt;
      port = port * 10 + (c - '0');
      if (port > 65535) return std::nullopt;
    }
    url.port_ = port;
  }
  if (host.empty() ||
      !std::all_of(host.begin(), host.end(), valid_host_char)) {
    return std::nullopt;
  }
  url.host_ = support::to_lower(host);

  if (path_start == std::string_view::npos) {
    url.path_ = "/";
    return url;
  }
  std::string_view tail = rest.substr(path_start);
  if (const auto qmark = tail.find('?'); qmark != std::string_view::npos) {
    url.query_ = std::string(tail.substr(qmark + 1));
    tail = tail.substr(0, qmark);
  }
  url.path_ = tail.empty() || tail.front() != '/' ? "/" + std::string(tail)
                                                  : std::string(tail);
  return url;
}

std::optional<Url> Url::resolve(std::string_view ref) const {
  if (ref.empty()) return *this;
  if (ref.find("://") != std::string_view::npos) return parse(ref);
  Url out = *this;
  out.query_.clear();
  if (ref.front() == '/') {
    if (const auto q = ref.find('?'); q != std::string_view::npos) {
      out.query_ = std::string(ref.substr(q + 1));
      ref = ref.substr(0, q);
    }
    out.path_ = std::string(ref);
    return out;
  }
  // document-relative: replace last segment
  std::string base = directory();
  if (base.empty() || base.back() != '/') base.push_back('/');
  if (const auto q = ref.find('?'); q != std::string_view::npos) {
    out.query_ = std::string(ref.substr(q + 1));
    ref = ref.substr(0, q);
  }
  out.path_ = base + std::string(ref);
  return out;
}

std::vector<std::string> Url::path_segments() const {
  return support::split_nonempty(path_, '/');
}

std::string Url::directory() const {
  const auto slash = path_.rfind('/');
  if (slash == std::string::npos || slash == 0) return "/";
  return path_.substr(0, slash);
}

std::string Url::spec() const {
  std::string out = scheme_ + "://" + host_;
  if (port_ != 0) out += ":" + std::to_string(port_);
  out += path_;
  if (!query_.empty()) out += "?" + query_;
  return out;
}

std::string registrable_domain(std::string_view host) {
  const std::vector<std::string> labels =
      support::split_nonempty(host, '.');
  if (labels.size() <= 2) return std::string(host);

  const std::string& tld = labels.back();
  const std::string& second = labels[labels.size() - 2];
  const bool second_level_registry =
      tld.size() == 2 &&
      (second == "co" || second == "com" || second == "net" ||
       second == "org" || second == "ac" || second == "gov");
  const std::size_t keep = second_level_registry ? 3 : 2;
  if (labels.size() <= keep) return std::string(host);

  std::string out;
  for (std::size_t i = labels.size() - keep; i < labels.size(); ++i) {
    if (!out.empty()) out.push_back('.');
    out += labels[i];
  }
  return out;
}

bool same_site(const Url& a, const Url& b) {
  return registrable_domain(a.host()) == registrable_domain(b.host());
}

bool host_matches_domain(std::string_view host, std::string_view domain) {
  if (host == domain) return true;
  if (host.size() <= domain.size()) return false;
  return support::ends_with(host, domain) &&
         host[host.size() - domain.size() - 1] == '.';
}

}  // namespace fu::net
