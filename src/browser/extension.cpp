#include "browser/extension.h"

#include <map>

#include "obs/profiler.h"

namespace fu::browser {

namespace {

using script::Interpreter;
using script::ObjectRef;
using script::Value;

}  // namespace

MeasuringExtension::MeasuringExtension(const catalog::Catalog& catalog,
                                       UsageRecorder& recorder)
    : catalog_(&catalog), recorder_(&recorder) {
  for (const catalog::Feature& f : catalog_->features()) {
    if (f.kind == catalog::FeatureKind::kProperty) {
      watchable_properties_[f.interface_name].emplace(f.member_name, f.id);
    }
  }
}

void MeasuringExtension::inject(Interpreter& interp, DomBindings& bindings) {
  script::Heap& heap = interp.heap();

  for (const catalog::Feature& f : catalog_->features()) {
    if (f.kind != catalog::FeatureKind::kMethod) continue;
    const ObjectRef proto = bindings.prototype_of(f.interface_name);
    if (proto.null()) continue;
    Value* slot = heap.own_property(proto, f.member_name);
    if (slot == nullptr || !slot->is_object()) continue;

    // The original implementation is captured by value in the shim's
    // closure; nothing else references it afterwards, so page JavaScript
    // cannot recover the un-instrumented version (§4.2.1). Replacing the
    // slot *value* in place leaves the prototype's shape untouched, so
    // inline caches pointing at this slot keep hitting — and now read the
    // shim, which is exactly the §4.2.1 requirement.
    const Value original = *slot;
    UsageRecorder* recorder = recorder_;
    const catalog::FeatureId fid = f.id;
    *slot = Value(heap.make_function(
        [recorder, fid, original](Interpreter& in, const Value& self,
                                  std::span<const Value> args) {
          recorder->record(fid);
          // Profiler attribution point: time spent inside the original
          // implementation (and anything it calls back into) samples as
          // this feature's standard (see obs/profiler.h).
          obs::ProfFrame feature_frame(obs::FrameKind::kFeature, fid);
          return in.call_function(original, self, args);
        },
        "instrumented:" + f.full_name));
    ++methods_shimmed_;
  }

  // Property watches on every ambient singleton.
  for (const catalog::Catalog::InterfaceInfo& info : catalog_->interfaces()) {
    if (!info.singleton) continue;
    const ObjectRef obj = bindings.singleton_of(info.name);
    if (obj.null()) continue;
    watch_singleton(interp, obj, info.name);
  }
  // ... including the per-page document wrapper.
  watch_singleton(interp, bindings.document_wrapper(), "Document");
}

void MeasuringExtension::watch_singleton(Interpreter& interp, ObjectRef object,
                                         const std::string& interface_name) {
  if (object.null()) return;
  const auto map_it = watchable_properties_.find(interface_name);
  if (map_it == watchable_properties_.end()) return;

  UsageRecorder* recorder = recorder_;
  interp.heap().get(object).watch =
      [recorder, &watched = map_it->second](const std::string& name,
                                            const Value&) {
        const auto it = watched.find(name);
        if (it != watched.end()) recorder->record(it->second);
      };
  ++properties_watched_;
}

}  // namespace fu::browser
