#include "browser/extension.h"

#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "obs/profiler.h"

namespace fu::browser {

namespace detail {

struct CatalogShimData {
  // Parallel to catalog.features(): the shim's display name, precomputed —
  // building "instrumented:<name>" per feature per session adds up.
  std::vector<std::string> shim_names;
  // interface name -> (property name -> feature id) for the watch hooks.
  std::unordered_map<std::string,
                     std::unordered_map<std::string, catalog::FeatureId>>
      watchable;
};

namespace {

const CatalogShimData& shim_data_for(const catalog::Catalog& catalog) {
  // Keyed by catalog identity; entries are immutable once built, so the
  // lock covers only the registry probe. Sessions on survey worker threads
  // construct extensions concurrently.
  static std::mutex mu;
  static std::unordered_map<const catalog::Catalog*,
                            std::unique_ptr<CatalogShimData>>
      registry;
  std::lock_guard<std::mutex> lock(mu);
  std::unique_ptr<CatalogShimData>& slot = registry[&catalog];
  if (!slot) {
    slot = std::make_unique<CatalogShimData>();
    slot->shim_names.reserve(catalog.features().size());
    for (const catalog::Feature& f : catalog.features()) {
      slot->shim_names.push_back("instrumented:" + f.full_name);
      if (f.kind == catalog::FeatureKind::kProperty) {
        slot->watchable[f.interface_name].emplace(f.member_name, f.id);
      }
    }
  }
  return *slot;
}

}  // namespace

}  // namespace detail

namespace {

using script::Interpreter;
using script::ObjectRef;
using script::Value;

}  // namespace

MeasuringExtension::MeasuringExtension(const catalog::Catalog& catalog,
                                       UsageRecorder& recorder)
    : catalog_(&catalog),
      recorder_(&recorder),
      shims_(&detail::shim_data_for(catalog)) {}

void MeasuringExtension::inject(Interpreter& interp, DomBindings& bindings) {
  script::Heap& heap = interp.heap();
  // Shim closures reach the recorder through the interpreter's host context
  // instead of capturing it — that keeps them session-agnostic, so a frozen
  // snapshot image and all of its clones can share the shim Callables.
  interp.host().recorder = recorder_;

  const std::vector<catalog::Feature>& features = catalog_->features();
  const std::string* last_iface = nullptr;  // features come grouped
  ObjectRef proto;
  for (std::size_t idx = 0; idx < features.size(); ++idx) {
    const catalog::Feature& f = features[idx];
    if (f.kind != catalog::FeatureKind::kMethod) continue;
    if (last_iface == nullptr || *last_iface != f.interface_name) {
      proto = bindings.prototype_of(f.interface_name);
      last_iface = &f.interface_name;
    }
    if (proto.null()) continue;
    Value* slot = heap.own_property(proto, f.member_name);
    if (slot == nullptr || !slot->is_object()) continue;

    // The original implementation is captured by value in the shim's
    // closure; nothing else references it afterwards, so page JavaScript
    // cannot recover the un-instrumented version (§4.2.1). Replacing the
    // slot *value* in place leaves the prototype's shape untouched, so
    // inline caches pointing at this slot keep hitting — and now read the
    // shim, which is exactly the §4.2.1 requirement.
    const Value original = *slot;  // an ObjectRef: valid in every clone
    const catalog::FeatureId fid = f.id;
    *slot = Value(heap.make_function(
        [fid, original](Interpreter& in, const Value& self,
                        std::span<const Value> args) {
          static_cast<UsageRecorder*>(in.host().recorder)->record(fid);
          // Profiler attribution point: time spent inside the original
          // implementation (and anything it calls back into) samples as
          // this feature's standard (see obs/profiler.h).
          obs::ProfFrame feature_frame(obs::FrameKind::kFeature, fid);
          return in.call_function(original, self, args);
        },
        shims_->shim_names[idx]));
    ++methods_shimmed_;
  }

  // Property watches on every ambient singleton.
  for (const catalog::Catalog::InterfaceInfo& info : catalog_->interfaces()) {
    if (!info.singleton) continue;
    const ObjectRef obj = bindings.singleton_of(info.name);
    if (obj.null()) continue;
    watch_singleton(interp, obj, info.name);
  }
  // ... including the per-page document wrapper.
  watch_singleton(interp, bindings.document_wrapper(), "Document");
}

void MeasuringExtension::attach_clone(Interpreter& interp,
                                      DomBindings& bindings,
                                      int methods_shimmed) {
  interp.host().recorder = recorder_;
  methods_shimmed_ = methods_shimmed;
  // Re-run only the watch half of inject(): watch handlers close over this
  // session's recorder, so the heap clone dropped the image's and we attach
  // fresh ones. Same order as inject, so properties_watched_ matches a
  // rebuilt session exactly (the document wrapper is null here, as it was
  // at capture — begin_page creates it per page and re-watches it then).
  for (const catalog::Catalog::InterfaceInfo& info : catalog_->interfaces()) {
    if (!info.singleton) continue;
    const ObjectRef obj = bindings.singleton_of(info.name);
    if (obj.null()) continue;
    watch_singleton(interp, obj, info.name);
  }
  watch_singleton(interp, bindings.document_wrapper(), "Document");
}

void MeasuringExtension::watch_singleton(Interpreter& interp, ObjectRef object,
                                         const std::string& interface_name) {
  if (object.null()) return;
  const auto map_it = shims_->watchable.find(interface_name);
  if (map_it == shims_->watchable.end()) return;

  UsageRecorder* recorder = recorder_;
  interp.heap().get(object).watch =
      [recorder, &watched = map_it->second](const std::string& name,
                                            const Value&) {
        const auto it = watched.find(name);
        if (it != watched.end()) recorder->record(it->second);
      };
  ++properties_watched_;
}

}  // namespace fu::browser
