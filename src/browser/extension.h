// The measuring extension (§4.2): the paper's core instrument, reproduced
// against our engine.
//
// Method calls (§4.2.1) are counted by *shimming*: each instrumented method
// slot on an interface prototype is replaced by a wrapper function that
// records the invocation and then calls the original, which survives only
// inside the wrapper's closure — page code cannot reach around the shim.
//
// Property writes (§4.2.2) are counted with the engine's per-object watch
// hook, the stand-in for Firefox's non-standard Object.watch(). Watches can
// only be attached to objects that exist when the extension is injected, so
// — exactly like the paper — only writes to properties of the singleton
// objects (window, document, navigator, ...) are observable; writes on
// script-created objects go unseen.
//
// Injection order matters: bindings first, extension second, page scripts
// last ("inject at the beginning of <head>").
#pragma once

#include <string>

#include "browser/bindings.h"
#include "browser/recorder.h"
#include "catalog/catalog.h"
#include "script/interp.h"

namespace fu::browser {

namespace detail {
// Catalog-derived injection tables (shim display names, watchable property
// maps). Built once per catalog and shared by every session — sessions are
// constructed by the thousand per survey, and rebuilding these per session
// used to dominate injection time.
struct CatalogShimData;
}  // namespace detail

class MeasuringExtension {
 public:
  MeasuringExtension(const catalog::Catalog& catalog, UsageRecorder& recorder);

  // Install shims and watches into a freshly built environment. Call once
  // per browser session, after DomBindings construction.
  void inject(script::Interpreter& interp, DomBindings& bindings);

  // Snapshot-clone variant of inject(): the cloned heap already contains
  // every shim function (they are part of the frozen image, and their
  // closures reach the recorder through the interpreter's host context, set
  // here) — only the per-session watch handlers need re-attaching, since
  // cloning deliberately drops them. `methods_shimmed` is the count the
  // image's builder session recorded.
  void attach_clone(script::Interpreter& interp, DomBindings& bindings,
                    int methods_shimmed);

  // Re-attach the property watch to a new singleton instance (the document
  // wrapper is recreated on every navigation).
  void watch_singleton(script::Interpreter& interp, script::ObjectRef object,
                       const std::string& interface_name);

  // Number of method slots successfully shimmed / properties watched.
  int methods_shimmed() const noexcept { return methods_shimmed_; }
  int properties_watched() const noexcept { return properties_watched_; }

 private:
  const catalog::Catalog* catalog_;
  UsageRecorder* recorder_;
  const detail::CatalogShimData* shims_;  // shared, immutable after build
  int methods_shimmed_ = 0;
  int properties_watched_ = 0;
};

}  // namespace fu::browser
