// BrowserSession: one instrumented browser visiting one site.
//
// The session owns the script engine, the host bindings, the measuring
// extension and the usage recorder; pages are loaded one after another (the
// 13 pages of a crawl pass share the session, like tabs in one profile).
// Loading a page runs the fetch pipeline:
//
//   fetch document -> parse HTML -> begin_page (fresh document wrapper,
//   re-watch) -> walk the tree: external scripts are fetched *subject to the
//   installed blocking extensions*, inline scripts execute directly, iframes
//   recurse one level -> cosmetic filters apply -> links are collected.
//
// After the load the crawler interacts: fire_event() invokes registered
// handlers, run_timers() drains setTimeout callbacks.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "blocker/extensions.h"
#include "browser/bindings.h"
#include "browser/extension.h"
#include "browser/recorder.h"
#include "catalog/catalog.h"
#include "dom/node.h"
#include "net/web.h"
#include "script/interp.h"

namespace fu::browser {

namespace detail {
// A frozen, fully-injected session image: the script heap snapshot plus the
// bindings layout and extension bookkeeping needed to adopt it. Built once
// per catalog (see the registry in session.cpp), shared read-only by every
// session cloned from it.
struct SessionSnapshot;
}  // namespace detail

// Global toggle for snapshot-based session construction. On (the default),
// the first session per catalog builds and freezes a canonical image and all
// later sessions clone it; off, every session rebuilds from scratch. The two
// paths are observably identical (the engine-identity tests pin this) — the
// toggle exists so tests and benchmarks can compare them.
void set_session_snapshots_enabled(bool enabled) noexcept;
bool session_snapshots_enabled() noexcept;

// Build (or reuse) the shared per-catalog snapshot now, on the calling
// thread. The survey driver calls this before spawning its worker pool so
// the one-off canonical build doesn't serialize the first wave of workers
// behind the registry mutex. No-op when snapshots are disabled.
void prewarm_session_snapshot(const catalog::Catalog& catalog);

// Per-site cache shared by the (up to 20) sessions that crawl one site: the
// synthetic web regenerates identical bodies for a URL on every fetch, and
// scripts parse to identical ASTs, so both are memoized. Single-threaded use
// only (sites are the unit of parallelism).
struct SiteCache {
  std::map<std::string, std::optional<net::Resource>, std::less<>> resources;
  // nullptr entry = remembered syntax error.
  std::map<std::string, std::shared_ptr<const script::Program>, std::less<>>
      programs;
};

struct BrowserConfig {
  std::shared_ptr<const blocker::BlockingExtension> ad_blocker;
  std::shared_ptr<const blocker::BlockingExtension> tracking_blocker;
  std::uint64_t fuel_per_script = 200'000;
  int max_frames_per_page = 8;
  bool apply_cosmetic_rules = true;
  // Browse with valid site credentials: login-gated pages serve their real
  // content (the closed-web extension experiment, §7.3).
  bool authenticated = false;
  // Optional, non-owning; must outlive the session.
  SiteCache* cache = nullptr;
};

struct PageLoadResult {
  bool loaded = false;          // document fetched and parsed
  int scripts_total = 0;        // scripts attempted (external + inline)
  int scripts_failed = 0;       // syntax or runtime errors
  int scripts_blocked = 0;      // vetoed by a blocking extension
  int frames_loaded = 0;
  int frames_blocked = 0;
  int elements_hidden = 0;      // removed by cosmetic rules
  bool all_scripts_failed = false;  // the §4.3.3 "broken site" signature
};

class BrowserSession {
 public:
  BrowserSession(const net::SyntheticWeb& web, BrowserConfig config,
                 std::uint64_t seed);
  ~BrowserSession();

  BrowserSession(const BrowserSession&) = delete;
  BrowserSession& operator=(const BrowserSession&) = delete;

  // Navigate to a URL, run its scripts, collect links.
  PageLoadResult load_page(const net::Url& url);

  // Fire every registered handler for an event type ("click", "scroll",
  // "input"). Handler errors are swallowed and counted.
  void fire_event(const std::string& type);

  // Run (and clear) queued timer callbacks whose delay fits in the dwell
  // budget. The monkey's 30-second window fires ordinary timers; a longer
  // human-style dwell also reaches long-delay callbacks (§6.2 outliers).
  void run_timers(double dwell_budget_ms = 30'000);

  // Links discovered on the current page (absolute URLs).
  const std::vector<net::Url>& links() const noexcept { return links_; }

  const UsageRecorder& usage() const noexcept { return recorder_; }
  UsageRecorder& usage() noexcept { return recorder_; }

  // Zero the usage counters so one session can serve several measurement
  // passes (the engine, bindings and shims are reused; only counts reset).
  void reset_usage() { recorder_.reset(); }

  const dom::Document* current_dom() const noexcept { return dom_.get(); }
  const net::Url& current_url() const noexcept { return current_url_; }

  int pages_loaded() const noexcept { return pages_loaded_; }
  int handler_errors() const noexcept { return handler_errors_; }
  const MeasuringExtension& extension() const noexcept { return extension_; }

  // True when this session was instantiated by cloning a frozen snapshot
  // image rather than rebuilding the environment from the catalog.
  bool cloned_from_snapshot() const noexcept { return snapshot_ != nullptr; }

  script::Interpreter& interpreter() noexcept { return interp_; }
  DomBindings& bindings() noexcept { return bindings_; }

 private:
  bool blocked(const net::Url& url, blocker::ResourceType type);
  const std::optional<net::Resource>& cached_fetch(const net::Url& url);
  void run_script_body(const std::string& cache_key, const std::string& body,
                       PageLoadResult& result);
  void load_scripts_and_frames(dom::Node& root, PageLoadResult& result,
                               int frame_depth);
  void apply_cosmetic_rules(PageLoadResult& result);
  void collect_links();

  const net::SyntheticWeb* web_;
  BrowserConfig config_;
  // Shared ownership of the frozen image this session cloned (null on the
  // rebuild path). Declared before interp_: the interpreter is constructed
  // from the image, so the image must be resolved — and kept alive — first.
  std::shared_ptr<const detail::SessionSnapshot> snapshot_;
  script::Interpreter interp_;
  const catalog::Catalog& catalog_;
  UsageRecorder recorder_;
  DomBindings bindings_;
  MeasuringExtension extension_;

  std::unique_ptr<dom::Document> dom_;
  net::Url current_url_;
  std::string page_domain_;  // registrable domain of the visited site
  std::vector<net::Url> links_;
  // Parsed programs must outlive function values pages created from them.
  std::vector<std::shared_ptr<const script::Program>> retained_programs_;
  SiteCache local_cache_;  // used when config.cache is null
  // Blocking decisions are pure in (url, installed lists); memoized per
  // session (sessions are per-configuration, so the key is just the URL).
  std::map<std::string, bool, std::less<>> block_cache_;
  int pages_loaded_ = 0;
  int handler_errors_ = 0;
};

}  // namespace fu::browser
