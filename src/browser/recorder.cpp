#include "browser/recorder.h"

namespace fu::browser {

void UsageRecorder::write_csv(std::ostream& out, const catalog::Catalog& cat,
                              const std::string& config,
                              const std::string& domain) const {
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const catalog::Feature& f = cat.feature(static_cast<catalog::FeatureId>(i));
    out << config << ',' << domain << ',' << f.interface_name << '.'
        << f.member_name;
    if (f.kind == catalog::FeatureKind::kMethod) out << "()";
    out << ',' << counts_[i] << '\n';
  }
}

}  // namespace fu::browser
