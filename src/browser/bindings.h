// Host bindings: builds the JavaScript global environment a page sees.
//
// For every interface in the catalog we create a constructor function and a
// prototype object, and populate the prototype with one method slot per
// catalog method feature (plain natives that return inert values). Ambient
// singleton instances (window, document, navigator, crypto.subtle, ...) are
// created for every catalog::global_access_path. A handful of load-bearing
// natives get real behaviour: addEventListener registers handlers the monkey
// tester can fire, setTimeout queues timer callbacks, createElement /
// getElementById return live DOM wrappers.
//
// The bindings are built once per browser session and shared by the 13 pages
// of a crawl (like a real browser process); begin_page() swaps in a fresh
// document wrapper and clears page-local listener/timer state.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/catalog.h"
#include "dom/node.h"
#include "script/interp.h"

namespace fu::browser {

// Page-local host state, reset on navigation.
struct PageHooks {
  struct Timer {
    script::Value callback;
    double delay_ms = 0;
  };
  std::vector<std::pair<std::string, script::Value>> listeners;
  std::vector<Timer> timers;
  dom::Document* dom = nullptr;
};

// The name → ObjectRef tables a DomBindings builds while constructing the
// global environment. Snapshot cloning captures one of these next to the
// frozen heap image: because a cloned heap preserves object indices
// bit-for-bit, the same ObjectRefs resolve in every clone, and adopting a
// layout replaces re-running the whole build.
struct BindingsLayout {
  std::unordered_map<std::string, script::ObjectRef> prototypes;
  std::unordered_map<std::string, script::ObjectRef> singletons;
  script::ObjectRef window;
  script::ObjectRef event_target_proto;
};

class DomBindings {
 public:
  DomBindings(script::Interpreter& interp, const catalog::Catalog& catalog)
      : DomBindings(interp, catalog, nullptr) {}

  // `layout == nullptr` builds the environment from scratch. A non-null
  // layout is the adopt path for snapshot clones: the interpreter was cloned
  // from a frozen image that already contains every interface, singleton and
  // native the full build would have created; just take over the layout
  // tables. The document wrapper starts null, exactly as it is at capture
  // time (it is created per page by begin_page).
  DomBindings(script::Interpreter& interp, const catalog::Catalog& catalog,
              const BindingsLayout* layout);

  DomBindings(const DomBindings&) = delete;
  DomBindings& operator=(const DomBindings&) = delete;

  // Capture the layout tables for snapshot freezing.
  BindingsLayout layout() const {
    return BindingsLayout{prototypes_, singletons_, window_,
                          event_target_proto_};
  }

  // Prototype object of an interface; null ref if unknown.
  script::ObjectRef prototype_of(const std::string& interface_name) const;
  // Ambient instance of a singleton interface; null ref if none exists.
  script::ObjectRef singleton_of(const std::string& interface_name) const;

  script::ObjectRef window() const noexcept { return window_; }
  script::ObjectRef document_wrapper() const noexcept { return document_; }

  PageHooks& hooks() noexcept { return hooks_; }

  // Start a new page: reset hooks, build a fresh `document` wrapper bound to
  // `dom` and expose it. Returns the new wrapper so the measuring extension
  // can re-attach its property watch.
  script::ObjectRef begin_page(dom::Document& dom);

  // DOM element wrapper with the HTMLElement prototype.
  script::ObjectRef wrap_element(dom::Element& element);

 private:
  void build_interfaces();
  void build_singletons();
  void install_dom_natives();
  script::ObjectRef make_instance(const std::string& interface_name);

  script::Interpreter& interp_;
  const catalog::Catalog& catalog_;
  // Hot at session construction (one probe per catalog feature): hashed,
  // not ordered — nothing iterates these.
  std::unordered_map<std::string, script::ObjectRef> prototypes_;
  std::unordered_map<std::string, script::ObjectRef> singletons_;
  script::ObjectRef window_;
  script::ObjectRef document_;
  script::ObjectRef event_target_proto_;
  PageHooks hooks_;
};

}  // namespace fu::browser
