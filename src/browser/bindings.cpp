#include "browser/bindings.h"

#include <array>

#include "catalog/names.h"
#include "dom/selector.h"
#include "support/strings.h"

namespace fu::browser {

namespace {

using script::Heap;
using script::Interpreter;
using script::ObjectRef;
using script::Value;

// Inert native method: the default implementation behind every catalog
// method slot. Returns undefined; side effects exist only via the measuring
// extension's shims.
Value inert(Interpreter&, const Value&, std::span<const Value>) {
  return Value();
}

// The DOM natives installed below never capture their DomBindings — they
// fetch it from the running interpreter's host context at call time. That
// keeps every native Callable session-agnostic, which is what lets a frozen
// heap snapshot share them across all cloned sessions.
DomBindings* host_bindings(Interpreter& in) {
  return static_cast<DomBindings*>(in.host().bindings);
}

}  // namespace

DomBindings::DomBindings(Interpreter& interp, const catalog::Catalog& catalog,
                         const BindingsLayout* layout)
    : interp_(interp), catalog_(catalog) {
  interp_.host().bindings = this;
  if (layout != nullptr) {
    // Snapshot-clone adopt path: the cloned heap preserves object indices,
    // so the captured layout's ObjectRefs resolve unchanged here.
    prototypes_ = layout->prototypes;
    singletons_ = layout->singletons;
    window_ = layout->window;
    event_target_proto_ = layout->event_target_proto;
    return;
  }
  build_interfaces();
  build_singletons();
  install_dom_natives();
}

void DomBindings::build_interfaces() {
  Heap& heap = interp_.heap();

  // EventTarget's prototype is the root of every chain, so that
  // addEventListener & friends are reachable from any object the way they
  // are in a real DOM.
  event_target_proto_ = heap.make_object(ObjectRef(), "EventTargetPrototype");

  for (const catalog::Catalog::InterfaceInfo& info : catalog_.interfaces()) {
    ObjectRef proto;
    if (info.name == "EventTarget") {
      proto = event_target_proto_;
    } else {
      proto = heap.make_object(event_target_proto_, info.name + "Prototype");
    }
    prototypes_[info.name] = proto;

    const ObjectRef ctor = heap.make_function(inert, info.name);
    heap.define_property(ctor, "prototype", Value(proto));
    heap.define_property(proto, "constructor", Value(ctor));
    interp_.globals().define(info.name, Value(ctor));
  }

  // Populate prototypes with method slots. Features come grouped by
  // interface, so one lookup per run of equal names replaces one per
  // feature — this loop runs for every catalog method on every session.
  Heap& h = interp_.heap();
  const std::string* last_iface = nullptr;
  ObjectRef proto;
  for (const catalog::Feature& f : catalog_.features()) {
    if (f.kind != catalog::FeatureKind::kMethod) continue;
    if (last_iface == nullptr || *last_iface != f.interface_name) {
      proto = prototype_of(f.interface_name);
      last_iface = &f.interface_name;
    }
    h.define_property(proto, f.member_name,
                      Value(h.make_function(inert, f.full_name)));
  }
}

script::ObjectRef DomBindings::make_instance(const std::string& interface_name) {
  const ObjectRef proto = prototype_of(interface_name);
  return interp_.heap().make_object(proto, interface_name);
}

void DomBindings::build_singletons() {
  Heap& heap = interp_.heap();

  window_ = make_instance("Window");
  interp_.globals().define("window", Value(window_));
  // window.window === window, handy for generated code
  heap.define_property(window_, "window", Value(window_));

  constexpr std::array<const char*, 8> kSimpleSingletons = {
      "Navigator", "Screen",  "History", "Location",
      "Performance", "Crypto", "Console", "Storage"};
  constexpr std::array<const char*, 8> kGlobalNames = {
      "navigator", "screen", "history", "location",
      "performance", "crypto", "console", "localStorage"};
  for (std::size_t i = 0; i < kSimpleSingletons.size(); ++i) {
    const ObjectRef obj = make_instance(kSimpleSingletons[i]);
    singletons_[kSimpleSingletons[i]] = obj;
    interp_.globals().define(kGlobalNames[i], Value(obj));
    heap.define_property(window_, kGlobalNames[i], Value(obj));
  }
  singletons_["Window"] = window_;
  singletons_["LocalStorage"] = singletons_["Storage"];

  // Nested ambient instances.
  const auto nest = [&](const char* parent, const char* prop,
                        const char* iface) {
    const auto it = singletons_.find(parent);
    if (it == singletons_.end()) return;
    const ObjectRef child = make_instance(iface);
    singletons_[iface] = child;
    heap.define_property(it->second, prop, Value(child));
  };
  nest("Navigator", "plugins", "PluginArray");
  nest("Navigator", "mimeTypes", "MimeTypeArray");
  nest("Navigator", "geolocation", "Geolocation");
  nest("Navigator", "serviceWorker", "ServiceWorkerContainer");
  nest("Crypto", "subtle", "SubtleCrypto");
  nest("Performance", "timing", "PerformanceTiming");
  nest("Performance", "navigation", "PerformanceNavigation");
}

void DomBindings::install_dom_natives() {
  Heap& heap = interp_.heap();

  // addEventListener / removeEventListener: live handler registration on
  // the shared EventTarget prototype root. The measuring extension shims
  // over these, preserving behaviour while counting calls (§4.2.1). The
  // hooks are resolved through the interpreter's host context at call time
  // (see host_bindings above), never captured.
  heap.define_property(event_target_proto_, "addEventListener",
      Value(heap.make_function(
          [](Interpreter& in, const Value&, std::span<const Value> args) {
            PageHooks& hooks = host_bindings(in)->hooks();
            if (args.size() >= 2 && args[0].is_string() && args[1].is_object()) {
              hooks.listeners.emplace_back(args[0].as_string(), args[1]);
            }
            return Value();
          },
          "EventTarget.prototype.addEventListener")));
  heap.define_property(event_target_proto_, "removeEventListener",
      Value(heap.make_function(
          [](Interpreter& in, const Value&, std::span<const Value> args) {
            PageHooks& hooks = host_bindings(in)->hooks();
            if (args.size() >= 2 && args[0].is_string()) {
              std::erase_if(hooks.listeners,
                            [&](const std::pair<std::string, Value>& entry) {
                              return entry.first == args[0].as_string() &&
                                     entry.second == args[1];
                            });
            }
            return Value();
          },
          "EventTarget.prototype.removeEventListener")));

  // Timers: browser plumbing, not catalog features — uninstrumented.
  const ObjectRef window_proto = prototype_of("Window");
  const ObjectRef timer_target =
      window_proto.null() ? window_ : window_proto;
  heap.define_property(timer_target, "setTimeout", Value(heap.make_function(
      [](Interpreter& in, const Value&, std::span<const Value> args) {
        PageHooks& hooks = host_bindings(in)->hooks();
        if (!args.empty() && args[0].is_object()) {
          const double delay =
              args.size() > 1 ? args[1].to_number() : 0.0;
          hooks.timers.push_back({args[0], delay >= 0 ? delay : 0});
        }
        return Value(static_cast<double>(hooks.timers.size()));
      },
      "setTimeout")));
  heap.define_property(timer_target, "setInterval",
                       *heap.own_property(timer_target, "setTimeout"));
  heap.define_property(timer_target, "clearTimeout",
                       Value(heap.make_function(inert, "clearTimeout")));

  // Live DOM access: createElement / getElementById / querySelector return
  // real wrappers so example code can chain on them.
  const ObjectRef doc_proto = prototype_of("Document");
  if (!doc_proto.null()) {
    heap.define_property(doc_proto, "createElement", Value(heap.make_function(
        [](Interpreter& in, const Value&, std::span<const Value> args) {
          DomBindings* self = host_bindings(in);
          if (self->hooks_.dom == nullptr) return Value();
          const std::string tag =
              args.empty() ? "div" : args[0].to_display_string();
          return Value(self->wrap_element(*self->hooks_.dom->create_element(tag)));
        },
        "Document.prototype.createElement")));
    heap.define_property(doc_proto, "getElementById", Value(heap.make_function(
        [](Interpreter& in, const Value&, std::span<const Value> args) {
          DomBindings* self = host_bindings(in);
          if (self->hooks_.dom == nullptr || args.empty()) return Value();
          dom::Element* el =
              self->hooks_.dom->get_element_by_id(args[0].to_display_string());
          if (el == nullptr) return Value(script::Null{});
          return Value(self->wrap_element(*el));
        },
        "Document.prototype.getElementById")));
    heap.define_property(doc_proto, "querySelector", Value(heap.make_function(
        [](Interpreter& in, const Value&, std::span<const Value> args) {
          DomBindings* self = host_bindings(in);
          if (self->hooks_.dom == nullptr || args.empty()) return Value();
          const auto selector =
              dom::Selector::parse(args[0].to_display_string());
          if (!selector) return Value(script::Null{});
          dom::Element* el = selector->select_first(*self->hooks_.dom);
          if (el == nullptr) return Value(script::Null{});
          return Value(self->wrap_element(*el));
        },
        "Document.prototype.querySelector")));
    heap.define_property(doc_proto, "querySelectorAll",
        Value(heap.make_function(
            [](Interpreter& in, const Value&,
               std::span<const Value> args) {
              DomBindings* self = host_bindings(in);
              const ObjectRef list =
                  in.heap().make_object(ObjectRef(), "NodeList");
              std::size_t n = 0;
              if (self->hooks_.dom != nullptr && !args.empty()) {
                if (const auto selector =
                        dom::Selector::parse(args[0].to_display_string())) {
                  for (dom::Element* el :
                       selector->select_all(*self->hooks_.dom)) {
                    in.heap().define_property(
                        list, in.heap().atoms().intern_index(n++),
                        Value(self->wrap_element(*el)));
                  }
                }
              }
              in.heap().define_property(
                  list, in.heap().atoms().well_known().length,
                  Value(static_cast<double>(n)));
              return Value(list);
            },
            "Document.prototype.querySelectorAll")));
  }
}

script::ObjectRef DomBindings::begin_page(dom::Document& dom) {
  hooks_.listeners.clear();
  hooks_.timers.clear();
  hooks_.dom = &dom;

  // DOM0 handlers ("window.onclick = ...") die with the page they were
  // registered on; everything else on window persists for the session.
  Heap& heap = interp_.heap();
  script::JsObject& win = heap.get(window_);
  std::vector<script::Atom> dom0;
  for (const script::PropertySlots::Slot& slot : win.properties.slots()) {
    const std::string& name = heap.atoms().name(slot.atom);
    if (name.size() > 2 && name.compare(0, 2, "on") == 0) {
      dom0.push_back(slot.atom);
    }
  }
  for (const script::Atom atom : dom0) win.properties.erase(atom);

  document_ = make_instance("Document");
  interp_.globals().define("document", Value(document_));
  heap.define_property(window_, "document", Value(document_));
  return document_;
}

script::ObjectRef DomBindings::wrap_element(dom::Element& element) {
  ObjectRef proto = prototype_of("HTMLElement");
  if (proto.null()) proto = prototype_of("Element");
  const ObjectRef ref = interp_.heap().make_object(proto, "HTMLElement");
  interp_.heap().get(ref).host = &element;
  interp_.heap().define_property(ref, "tagName",
                                 Value(support::to_lower(element.tag())));
  if (!element.id().empty()) {
    interp_.heap().define_property(ref, "id", Value(element.id()));
  }
  return ref;
}

script::ObjectRef DomBindings::prototype_of(
    const std::string& interface_name) const {
  const auto it = prototypes_.find(interface_name);
  return it == prototypes_.end() ? ObjectRef() : it->second;
}

script::ObjectRef DomBindings::singleton_of(
    const std::string& interface_name) const {
  const auto it = singletons_.find(interface_name);
  return it == singletons_.end() ? ObjectRef() : it->second;
}

}  // namespace fu::browser
