// Usage recorder: the counting backend behind the measuring extension.
// One per browser session (site × configuration × pass); the crawler merges
// sessions into survey-level aggregates. Mirrors the CSV rows of Figure 2
// ("blocking,example.com,Node.cloneNode(),10").
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "catalog/catalog.h"

namespace fu::browser {

class UsageRecorder {
 public:
  explicit UsageRecorder(std::size_t feature_count)
      : counts_(feature_count, 0) {}

  void record(catalog::FeatureId fid) {
    ++counts_[fid];
    ++total_invocations_;
  }

  std::uint64_t count(catalog::FeatureId fid) const { return counts_.at(fid); }
  std::uint64_t total_invocations() const noexcept {
    return total_invocations_;
  }
  std::size_t feature_count() const noexcept { return counts_.size(); }

  bool used(catalog::FeatureId fid) const { return counts_.at(fid) > 0; }

  std::vector<catalog::FeatureId> features_used() const {
    std::vector<catalog::FeatureId> out;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      if (counts_[i] > 0) out.push_back(static_cast<catalog::FeatureId>(i));
    }
    return out;
  }

  void merge(const UsageRecorder& other) {
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      counts_[i] += other.counts_[i];
    }
    total_invocations_ += other.total_invocations_;
  }

  void reset() {
    counts_.assign(counts_.size(), 0);
    total_invocations_ = 0;
  }

  // Emit rows in the paper's format: <config>,<domain>,<feature>,<count>.
  void write_csv(std::ostream& out, const catalog::Catalog& cat,
                 const std::string& config, const std::string& domain) const;

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_invocations_ = 0;
};

}  // namespace fu::browser
