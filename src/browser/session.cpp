#include "browser/session.h"

#include <atomic>
#include <mutex>
#include <unordered_map>

#include "dom/html.h"
#include "dom/selector.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "script/parser.h"
#include "script/snapshot.h"
#include "support/rng.h"
#include "support/strings.h"

namespace fu::browser {

namespace detail {

struct SessionSnapshot {
  // The frozen script heap: builtins, interface prototypes, method slots,
  // shim functions, singletons — everything a fully-injected session holds
  // before its first page. Immutable after construction; concurrent clones
  // only read it.
  script::HeapSnapshot heap;
  // Name -> ObjectRef tables from the builder's DomBindings. Valid in every
  // clone because cloning preserves heap indices bit-for-bit.
  BindingsLayout layout;
  // Shim count the builder's extension recorded, adopted by each clone.
  int methods_shimmed = 0;

  SessionSnapshot(const script::Interpreter& source, BindingsLayout l,
                  int shimmed)
      : heap(source), layout(std::move(l)), methods_shimmed(shimmed) {}
};

}  // namespace detail

namespace {

using dom::Element;
using dom::Node;
using dom::NodeType;

// Browser-layer metrics. Page-level latency is always recorded (one clock
// read per page is noise); per-script execution latency needs a clock read
// per script, so it is sampled only while tracing is enabled.
struct BrowserMetrics {
  obs::Counter& pages_loaded;
  obs::Counter& scripts_executed;
  obs::Counter& scripts_failed;
  obs::Counter& scripts_blocked;
  obs::Counter& snapshot_builds;
  obs::Counter& snapshot_clones;
  obs::Histogram& page_load_us;
  obs::Histogram& script_exec_us;

  static BrowserMetrics& get() {
    static BrowserMetrics metrics{
        obs::Registry::global().counter("browser.pages_loaded"),
        obs::Registry::global().counter("browser.scripts_executed"),
        obs::Registry::global().counter("browser.scripts_failed"),
        obs::Registry::global().counter("browser.scripts_blocked"),
        obs::Registry::global().counter("session.snapshot_builds"),
        obs::Registry::global().counter("session.snapshot_clones"),
        obs::Registry::global().histogram("browser.page_load_us"),
        obs::Registry::global().histogram("browser.script_exec_us"),
    };
    return metrics;
  }
};

std::atomic<bool> g_session_snapshots_enabled{true};

// Canonical frozen image per catalog, built on first demand. Mirrors the
// CatalogShimData registry in extension.cpp: keyed by catalog identity,
// entries immutable once published, probed concurrently by survey worker
// threads. The build runs under the lock — it happens once per catalog per
// process, and serialising it guarantees exactly one canonical image.
std::shared_ptr<const detail::SessionSnapshot> snapshot_for(
    const catalog::Catalog& catalog) {
  static std::mutex mu;
  static std::unordered_map<const catalog::Catalog*,
                            std::shared_ptr<const detail::SessionSnapshot>>
      registry;
  std::lock_guard<std::mutex> lock(mu);
  std::shared_ptr<const detail::SessionSnapshot>& slot = registry[&catalog];
  if (!slot) {
    obs::StageFrame build_frame("session-snapshot-build");
    // Build one canonical throwaway session — default-seeded interpreter,
    // scratch recorder — run the full injection, then freeze the result.
    // Session construction is config-independent (blockers and fuel apply
    // after construction), so one image per catalog serves every survey
    // configuration. The scratch objects die here; the image holds no
    // pointers into them (shim closures reach per-session state through the
    // interpreter's host context, and watch handlers are not captured).
    script::Interpreter scratch;
    UsageRecorder scratch_recorder(catalog.features().size());
    DomBindings scratch_bindings(scratch, catalog);
    MeasuringExtension scratch_extension(catalog, scratch_recorder);
    scratch_extension.inject(scratch, scratch_bindings);
    slot = std::make_shared<detail::SessionSnapshot>(
        scratch, scratch_bindings.layout(),
        scratch_extension.methods_shimmed());
    BrowserMetrics::get().snapshot_builds.add();
  }
  return slot;
}

}  // namespace

void set_session_snapshots_enabled(bool enabled) noexcept {
  g_session_snapshots_enabled.store(enabled, std::memory_order_relaxed);
}

bool session_snapshots_enabled() noexcept {
  return g_session_snapshots_enabled.load(std::memory_order_relaxed);
}

void prewarm_session_snapshot(const catalog::Catalog& catalog) {
  if (session_snapshots_enabled()) snapshot_for(catalog);
}

BrowserSession::BrowserSession(const net::SyntheticWeb& web,
                               BrowserConfig config, std::uint64_t seed)
    : web_(&web),
      config_(std::move(config)),
      snapshot_(session_snapshots_enabled()
                    ? snapshot_for(web.feature_catalog())
                    : nullptr),
      interp_(snapshot_ != nullptr ? &snapshot_->heap : nullptr, seed),
      catalog_(web.feature_catalog()),
      recorder_(web.feature_catalog().features().size()),
      bindings_(interp_, web.feature_catalog(),
                snapshot_ != nullptr ? &snapshot_->layout : nullptr),
      extension_(web.feature_catalog(), recorder_) {
  interp_.set_fuel_per_run(config_.fuel_per_script);
  if (snapshot_ != nullptr) {
    // Clone path: the image already contains every binding and shim; only
    // the per-session watch handlers and host pointers need attaching.
    obs::StageFrame clone_frame("session-clone");
    extension_.attach_clone(interp_, bindings_, snapshot_->methods_shimmed);
    BrowserMetrics::get().snapshot_clones.add();
    return;
  }
  // §4.2: the extension's hooks go in before any page content runs.
  extension_.inject(interp_, bindings_);
}

BrowserSession::~BrowserSession() {
  // Final heap size of a finished session: `value` tracks the most recent
  // teardown, `max` the largest session this process ever built.
  static obs::Gauge& heap_bytes =
      obs::Registry::global().gauge("script.heap_bytes");
  const auto bytes =
      static_cast<std::int64_t>(interp_.heap().bytes_used());
  heap_bytes.set(bytes);
  heap_bytes.record_max(bytes);
}

bool BrowserSession::blocked(const net::Url& url,
                             blocker::ResourceType type) {
  if (!config_.ad_blocker && !config_.tracking_blocker) return false;
  const std::string key = url.spec();
  if (const auto it = block_cache_.find(key); it != block_cache_.end()) {
    return it->second;
  }
  blocker::RequestContext ctx;
  ctx.page_domain = page_domain_;
  ctx.third_party = net::registrable_domain(url.host()) != page_domain_;
  ctx.type = type;
  const bool verdict =
      (config_.ad_blocker && config_.ad_blocker->should_block(url, ctx)) ||
      (config_.tracking_blocker &&
       config_.tracking_blocker->should_block(url, ctx));
  block_cache_.emplace(key, verdict);
  return verdict;
}

const std::optional<net::Resource>& BrowserSession::cached_fetch(
    const net::Url& url) {
  SiteCache& cache = config_.cache != nullptr ? *config_.cache : local_cache_;
  // Authenticated and anonymous responses differ for gated pages; the key
  // carries the credential state so shared caches never cross the streams.
  const std::string key =
      (config_.authenticated ? "auth:" : "anon:") + url.spec();
  const auto it = cache.resources.find(key);
  if (it != cache.resources.end()) return it->second;
  return cache.resources
      .emplace(key, web_->fetch(url, config_.authenticated))
      .first->second;
}

PageLoadResult BrowserSession::load_page(const net::Url& url) {
  obs::ScopedLatency page_latency(BrowserMetrics::get().page_load_us);

  PageLoadResult result;
  const std::optional<net::Resource>* doc_slot;
  {
    obs::TraceSpan fetch_span("fetch");
    doc_slot = &cached_fetch(url);
  }
  const std::optional<net::Resource>& doc = *doc_slot;
  if (!doc || doc->kind != net::ResourceKind::kDocument) return result;

  current_url_ = url;
  page_domain_ = net::registrable_domain(url.host());
  {
    obs::TraceSpan parse_span("parse");
    dom_ = dom::parse_html(doc->body);
  }
  result.loaded = true;
  ++pages_loaded_;
  BrowserMetrics::get().pages_loaded.add();

  const script::ObjectRef doc_wrapper = bindings_.begin_page(*dom_);
  extension_.watch_singleton(interp_, doc_wrapper, "Document");

  load_scripts_and_frames(*dom_, result, /*frame_depth=*/0);
  if (config_.apply_cosmetic_rules) apply_cosmetic_rules(result);
  collect_links();

  result.all_scripts_failed =
      result.scripts_total > 0 && result.scripts_failed == result.scripts_total;
  return result;
}

void BrowserSession::run_script_body(const std::string& cache_key,
                                     const std::string& body,
                                     PageLoadResult& result) {
  ++result.scripts_total;
  SiteCache& cache = config_.cache != nullptr ? *config_.cache : local_cache_;

  std::shared_ptr<const script::Program> program;
  const auto it = cache.programs.find(cache_key);
  if (it != cache.programs.end()) {
    program = it->second;
  } else {
    try {
      // Parse against this interpreter's atom table so every name in the
      // tree is already an atom before first execution. Sessions that share
      // the cached program re-intern lazily through the per-site caches.
      program = std::make_shared<const script::Program>(
          script::parse_program(body, &interp_.heap().atoms()));
    } catch (const script::SyntaxError&) {
      program = nullptr;  // remembered as a permanent syntax error
    }
    cache.programs.emplace(cache_key, program);
  }
  if (program == nullptr) {
    ++result.scripts_failed;
    BrowserMetrics::get().scripts_failed.add();
    return;
  }
  try {
    {
      obs::TraceSpan exec_span("execute");
      obs::ScopedLatency exec_latency(BrowserMetrics::get().script_exec_us,
                                      obs::tracing_enabled());
      // Source-site profiler frame: MiniJS function frames sampled below
      // nest under "script:<site>/<resource>" (interned only while a
      // profiler is live; the cache key is exactly the resource spec).
      obs::ProfFrame script_frame(obs::FrameKind::kScript,
                                  obs::prof::enabled()
                                      ? obs::prof::intern_label("script:" +
                                                                cache_key)
                                      : 0);
      interp_.execute(*program);
    }
    BrowserMetrics::get().scripts_executed.add();
    retained_programs_.push_back(std::move(program));
  } catch (const script::ScriptError&) {
    ++result.scripts_failed;
    BrowserMetrics::get().scripts_failed.add();
  }
}

void BrowserSession::load_scripts_and_frames(Node& root,
                                             PageLoadResult& result,
                                             int frame_depth) {
  // Snapshot the elements first: script execution may mutate the tree.
  std::vector<Element*> elements;
  root.for_each([&elements](Node& node) {
    if (node.type() == NodeType::kElement) {
      elements.push_back(static_cast<Element*>(&node));
    }
  });

  for (Element* el : elements) {
    if (el->tag() == "script") {
      if (el->has_attribute("src")) {
        const auto resolved = current_url_.resolve(el->attribute("src"));
        if (!resolved) continue;
        if (blocked(*resolved, blocker::ResourceType::kScript)) {
          ++result.scripts_blocked;
          BrowserMetrics::get().scripts_blocked.add();
          continue;
        }
        const std::optional<net::Resource>& res = cached_fetch(*resolved);
        if (!res || res->kind != net::ResourceKind::kScript) continue;
        run_script_body(resolved->spec(), res->body, result);
      } else {
        const std::string inline_body = el->text_content();
        if (!support::trim(inline_body).empty()) {
          // Inline scripts are keyed by content hash: distinct pages embed
          // distinct filler, identical frames share one parse.
          run_script_body("inline:" + std::to_string(support::fnv1a(
                              inline_body)),
                          inline_body, result);
        }
      }
      continue;
    }
    if (el->tag() == "iframe" && frame_depth < 1 &&
        result.frames_loaded < config_.max_frames_per_page) {
      if (!el->has_attribute("src")) continue;
      const auto resolved = current_url_.resolve(el->attribute("src"));
      if (!resolved) continue;
      if (blocked(*resolved, blocker::ResourceType::kSubdocument)) {
        ++result.frames_blocked;
        continue;
      }
      const std::optional<net::Resource>& res = cached_fetch(*resolved);
      if (!res || res->kind != net::ResourceKind::kDocument) continue;
      ++result.frames_loaded;
      // The frame document's scripts execute in the page's context — the
      // extension counts their feature use toward the same site visit.
      const std::unique_ptr<dom::Document> frame_dom =
          dom::parse_html(res->body);
      const net::Url saved = current_url_;
      current_url_ = *resolved;  // frame-relative fetches resolve correctly
      load_scripts_and_frames(*frame_dom, result, frame_depth + 1);
      current_url_ = saved;
    }
  }
}

void BrowserSession::apply_cosmetic_rules(PageLoadResult& result) {
  std::vector<std::string> selectors;
  const auto gather = [&](const blocker::BlockingExtension* ext) {
    if (ext == nullptr) return;
    for (std::string& sel : ext->list().hiding_selectors_for(page_domain_)) {
      selectors.push_back(std::move(sel));
    }
  };
  gather(config_.ad_blocker.get());
  gather(config_.tracking_blocker.get());
  if (selectors.empty()) return;

  for (const std::string& text : selectors) {
    const auto selector = dom::Selector::parse(text);
    if (!selector) continue;  // tolerate malformed list entries
    for (Element* el : selector->select_all(*dom_)) {
      if (el->parent() != nullptr) {
        el->parent()->remove_child(el);
        ++result.elements_hidden;
      }
    }
  }
}

void BrowserSession::collect_links() {
  links_.clear();
  if (dom_ == nullptr) return;
  for (Element* a : dom_->get_elements_by_tag("a")) {
    if (!a->has_attribute("href")) continue;
    if (const auto url = current_url_.resolve(a->attribute("href"))) {
      links_.push_back(*url);
    }
  }
}

void BrowserSession::fire_event(const std::string& type) {
  // Snapshot: handlers may register more handlers.
  std::vector<script::Value> handlers;
  for (const auto& [event_type, fn] : bindings_.hooks().listeners) {
    if (event_type == type) handlers.push_back(fn);
  }
  for (const script::Value& fn : handlers) {
    try {
      interp_.call_function(fn, script::Value(bindings_.window()), {});
    } catch (const script::ScriptError&) {
      ++handler_errors_;
    }
  }
  // Legacy DOM0 handler on the window singleton (window.onclick = fn).
  const script::Value dom0 =
      interp_.heap().get_property(bindings_.window(), "on" + type);
  if (dom0.is_object() && interp_.heap().get(dom0.as_object()).callable) {
    try {
      interp_.call_function(dom0, script::Value(bindings_.window()), {});
    } catch (const script::ScriptError&) {
      ++handler_errors_;
    }
  }
}

void BrowserSession::run_timers(double dwell_budget_ms) {
  // Fire timers inside the budget; keep longer ones queued — a later,
  // longer dwell on the same page may still reach them.
  std::vector<PageHooks::Timer> due;
  std::vector<PageHooks::Timer> pending;
  for (PageHooks::Timer& timer : bindings_.hooks().timers) {
    if (timer.delay_ms <= dwell_budget_ms) {
      due.push_back(std::move(timer));
    } else {
      pending.push_back(std::move(timer));
    }
  }
  bindings_.hooks().timers = std::move(pending);
  for (const PageHooks::Timer& timer : due) {
    try {
      interp_.call_function(timer.callback, script::Value(bindings_.window()),
                            {});
    } catch (const script::ScriptError&) {
      ++handler_errors_;
    }
  }
}

}  // namespace fu::browser
