// Minimal calendar-date type for the release-timeline and CVE data.
// Internally a days-since-epoch count; supports Y-M-D construction,
// comparison, arithmetic in days and fractional-year rendering.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace fu::support {

class Date {
 public:
  constexpr Date() = default;

  // Construct from a calendar date (proleptic Gregorian). Validated.
  Date(int year, int month, int day);

  static constexpr Date from_days(std::int64_t days) noexcept {
    Date d;
    d.days_ = days;
    return d;
  }

  std::int64_t days_since_epoch() const noexcept { return days_; }

  int year() const noexcept;
  int month() const noexcept;
  int day() const noexcept;

  // Year plus fraction, e.g. 2013.5 for ~July 2013. Used as figure x-axis.
  double fractional_year() const noexcept;

  Date plus_days(std::int64_t n) const noexcept {
    return from_days(days_ + n);
  }

  std::string to_string() const;  // "2016-05-20"

  friend constexpr auto operator<=>(const Date&, const Date&) = default;

 private:
  // Days since 1970-01-01 (can be negative).
  std::int64_t days_ = 0;
};

// Days between two dates (b - a).
inline std::int64_t days_between(const Date& a, const Date& b) noexcept {
  return b.days_since_epoch() - a.days_since_epoch();
}

}  // namespace fu::support
