#include "support/csv.h"

namespace fu::support {

std::string csv_escape(std::string_view field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) *out_ << ',';
    *out_ << csv_escape(fields[i]);
  }
  *out_ << '\n';
}

std::vector<std::string> csv_parse_line(std::string_view line) {
  std::vector<std::string> fields;
  std::string cur;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur.push_back('"');
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cur.push_back(c);
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  fields.push_back(std::move(cur));
  return fields;
}

std::vector<std::vector<std::string>> csv_parse(std::string_view text) {
  std::vector<std::vector<std::string>> rows;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == '\n') {
      std::string_view line = text.substr(start, i - start);
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
      if (!line.empty()) rows.push_back(csv_parse_line(line));
      start = i + 1;
    }
  }
  return rows;
}

}  // namespace fu::support
