// Compact dynamic bitset for per-site feature sets (1,392 bits × 10k sites
// × passes — vector<bool> per pass would be wasteful and slow to union).
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace fu::support {

class DynamicBitset {
 public:
  DynamicBitset() = default;
  explicit DynamicBitset(std::size_t bits)
      : bits_(bits), words_((bits + 63) / 64, 0) {}

  std::size_t size() const noexcept { return bits_; }

  void set(std::size_t i) noexcept {
    words_[i >> 6] |= (std::uint64_t{1} << (i & 63));
  }
  void reset(std::size_t i) noexcept {
    words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }
  bool test(std::size_t i) const noexcept {
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  std::size_t count() const noexcept {
    std::size_t n = 0;
    for (const std::uint64_t w : words_) n += static_cast<std::size_t>(
        std::popcount(w));
    return n;
  }

  bool any() const noexcept {
    for (const std::uint64_t w : words_) {
      if (w != 0) return true;
    }
    return false;
  }

  DynamicBitset& operator|=(const DynamicBitset& other) noexcept {
    for (std::size_t i = 0; i < words_.size() && i < other.words_.size(); ++i) {
      words_[i] |= other.words_[i];
    }
    return *this;
  }

  DynamicBitset& operator&=(const DynamicBitset& other) noexcept {
    for (std::size_t i = 0; i < words_.size(); ++i) {
      words_[i] &= i < other.words_.size() ? other.words_[i] : 0;
    }
    return *this;
  }

  // this \ other
  DynamicBitset minus(const DynamicBitset& other) const {
    DynamicBitset out = *this;
    for (std::size_t i = 0; i < out.words_.size() && i < other.words_.size();
         ++i) {
      out.words_[i] &= ~other.words_[i];
    }
    return out;
  }

  friend bool operator==(const DynamicBitset& a, const DynamicBitset& b) {
    return a.bits_ == b.bits_ && a.words_ == b.words_;
  }

  // Raw word access, for serialization.
  const std::vector<std::uint64_t>& words() const noexcept { return words_; }
  void assign_words(std::size_t bits, std::vector<std::uint64_t> words) {
    bits_ = bits;
    words_ = std::move(words);
    words_.resize((bits + 63) / 64, 0);
  }

 private:
  std::size_t bits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace fu::support
