// Tiny CSV writer/reader. The crawler's usage recorder emits rows shaped like
// the paper's example ("blocking,example.com,Node.cloneNode(),10") and the
// analysis layer can persist/reload result tables.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace fu::support {

// Quote a field if it contains a comma, quote or newline (RFC 4180 style).
std::string csv_escape(std::string_view field);

class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  void write_row(const std::vector<std::string>& fields);

  // Variadic convenience: accepts strings and arithmetic values.
  template <typename... Fields>
  void row(const Fields&... fields) {
    std::vector<std::string> cells;
    cells.reserve(sizeof...(fields));
    (cells.push_back(to_cell(fields)), ...);
    write_row(cells);
  }

 private:
  static std::string to_cell(const std::string& s) { return s; }
  static std::string to_cell(std::string_view s) { return std::string(s); }
  static std::string to_cell(const char* s) { return s; }
  template <typename T>
  static std::string to_cell(const T& value) {
    return std::to_string(value);
  }

  std::ostream* out_;
};

// Parse one CSV line into fields, honouring quoted fields.
std::vector<std::string> csv_parse_line(std::string_view line);

// Parse a whole CSV document (no embedded newlines inside quotes supported,
// which is all we need for our own output).
std::vector<std::vector<std::string>> csv_parse(std::string_view text);

}  // namespace fu::support
