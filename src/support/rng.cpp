#include "support/rng.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fu::support {

Zipf::Zipf(std::size_t n, double exponent) {
  if (n == 0) throw std::invalid_argument("Zipf: n must be positive");
  cdf_.resize(n);
  double total = 0;
  for (std::size_t rank = 1; rank <= n; ++rank) {
    total += 1.0 / std::pow(static_cast<double>(rank), exponent);
    cdf_[rank - 1] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding
}

std::size_t Zipf::sample(Rng& rng) const noexcept {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin()) + 1;
}

double Zipf::pmf(std::size_t rank) const noexcept {
  if (rank == 0 || rank > cdf_.size()) return 0;
  if (rank == 1) return cdf_[0];
  return cdf_[rank - 1] - cdf_[rank - 2];
}

}  // namespace fu::support
