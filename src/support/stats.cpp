#include "support/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace fu::support {

void Summary::add(double x) noexcept {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  sum_sq_ += x * x;
}

double Summary::mean() const noexcept {
  return count_ == 0 ? 0 : sum_ / static_cast<double>(count_);
}

double Summary::variance() const noexcept {
  if (count_ == 0) return 0;
  const double m = mean();
  return sum_sq_ / static_cast<double>(count_) - m * m;
}

double Summary::stddev() const noexcept {
  return std::sqrt(std::max(0.0, variance()));
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) throw std::invalid_argument("percentile: empty sample");
  if (p < 0 || p > 100) throw std::invalid_argument("percentile: bad p");
  std::sort(values.begin(), values.end());
  const double pos = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1 - frac) + values[hi] * frac;
}

double cdf_at(const std::vector<double>& values, double threshold) {
  if (values.empty()) return 0;
  const auto n = static_cast<double>(
      std::count_if(values.begin(), values.end(),
                    [threshold](double v) { return v <= threshold; }));
  return n / static_cast<double>(values.size());
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (bins == 0 || hi <= lo) throw std::invalid_argument("Histogram: bad range");
}

void Histogram::add(double x) noexcept {
  const double span = hi_ - lo_;
  auto bin = static_cast<std::ptrdiff_t>((x - lo_) / span *
                                         static_cast<double>(counts_.size()));
  bin = std::clamp<std::ptrdiff_t>(
      bin, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

double Histogram::bin_low(std::size_t bin) const noexcept {
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_high(std::size_t bin) const noexcept {
  return bin_low(bin + 1);
}

double Histogram::bin_fraction(std::size_t bin) const {
  if (total_ == 0) return 0;
  return static_cast<double>(counts_.at(bin)) / static_cast<double>(total_);
}

double pearson(const std::vector<double>& xs, const std::vector<double>& ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return 0;
  const auto n = static_cast<double>(xs.size());
  const double mx = std::accumulate(xs.begin(), xs.end(), 0.0) / n;
  const double my = std::accumulate(ys.begin(), ys.end(), 0.0) / n;
  double sxy = 0, sxx = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0 || syy <= 0) return 0;
  return sxy / std::sqrt(sxx * syy);
}

namespace {
std::vector<double> ranks_of(std::vector<double> values) {
  std::vector<std::size_t> order(values.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&values](std::size_t a, std::size_t b) {
    return values[a] < values[b];
  });
  std::vector<double> ranks(values.size());
  std::size_t i = 0;
  while (i < order.size()) {
    // average ranks across ties
    std::size_t j = i;
    while (j + 1 < order.size() && values[order[j + 1]] == values[order[i]]) ++j;
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2 + 1;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = avg;
    i = j + 1;
  }
  return ranks;
}
}  // namespace

double spearman(std::vector<double> xs, std::vector<double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return 0;
  return pearson(ranks_of(std::move(xs)), ranks_of(std::move(ys)));
}

std::string ascii_bar(double fraction, std::size_t width) {
  fraction = std::clamp(fraction, 0.0, 1.0);
  const auto filled =
      static_cast<std::size_t>(fraction * static_cast<double>(width) + 0.5);
  std::string bar(filled, '#');
  bar.append(width - filled, ' ');
  return bar;
}

}  // namespace fu::support
