// String helpers shared across modules. Nothing clever: split/join/trim,
// case folding, prefix/suffix tests and simple formatting.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace fu::support {

std::vector<std::string> split(std::string_view text, char sep);

// Split, dropping empty fields.
std::vector<std::string> split_nonempty(std::string_view text, char sep);

std::string join(const std::vector<std::string>& parts, std::string_view sep);

std::string_view trim(std::string_view text);

std::string to_lower(std::string_view text);

bool starts_with(std::string_view text, std::string_view prefix);
bool ends_with(std::string_view text, std::string_view suffix);
bool contains(std::string_view text, std::string_view needle);

// Case-insensitive equality.
bool iequals(std::string_view a, std::string_view b);

// "1,234,567" style thousands separators, for table output.
std::string with_commas(unsigned long long value);

// Fixed-point percent like "86.8%".
std::string percent(double fraction, int decimals = 1);

// Simple glob match supporting '*' (any run) and '?' (any one char).
bool glob_match(std::string_view pattern, std::string_view text);

}  // namespace fu::support
