#include "support/date.h"

#include <cstdio>
#include <stdexcept>

namespace fu::support {

namespace {

// Howard Hinnant's days-from-civil algorithm (public-domain formulas).
constexpr std::int64_t days_from_civil(int y, int m, int d) noexcept {
  y -= m <= 2;
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy =
      static_cast<unsigned>((153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1);
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

struct Civil {
  int year;
  unsigned month;
  unsigned day;
};

constexpr Civil civil_from_days(std::int64_t z) noexcept {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const std::int64_t y = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;
  const unsigned m = mp + (mp < 10 ? 3 : static_cast<unsigned>(-9));
  return {static_cast<int>(y + (m <= 2)), m, d};
}

constexpr bool is_leap(int y) noexcept {
  return (y % 4 == 0 && y % 100 != 0) || y % 400 == 0;
}

constexpr int days_in_month(int y, int m) noexcept {
  constexpr int table[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  return m == 2 && is_leap(y) ? 29 : table[m - 1];
}

}  // namespace

Date::Date(int year, int month, int day) {
  if (month < 1 || month > 12 || day < 1 || day > days_in_month(year, month)) {
    throw std::invalid_argument("Date: invalid calendar date");
  }
  days_ = days_from_civil(year, month, day);
}

int Date::year() const noexcept { return civil_from_days(days_).year; }
int Date::month() const noexcept {
  return static_cast<int>(civil_from_days(days_).month);
}
int Date::day() const noexcept {
  return static_cast<int>(civil_from_days(days_).day);
}

double Date::fractional_year() const noexcept {
  const Civil c = civil_from_days(days_);
  const std::int64_t start = days_from_civil(c.year, 1, 1);
  const std::int64_t end = days_from_civil(c.year + 1, 1, 1);
  return static_cast<double>(c.year) +
         static_cast<double>(days_ - start) / static_cast<double>(end - start);
}

std::string Date::to_string() const {
  const Civil c = civil_from_days(days_);
  char buf[16];
  std::snprintf(buf, sizeof buf, "%04d-%02u-%02u", c.year, c.month, c.day);
  return buf;
}

}  // namespace fu::support
