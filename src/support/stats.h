// Small statistics helpers used by the analysis and validation code:
// percentiles, empirical CDFs, histograms and summary accumulators.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace fu::support {

// Running summary of a stream of doubles.
class Summary {
 public:
  void add(double x) noexcept;

  std::size_t count() const noexcept { return count_; }
  double sum() const noexcept { return sum_; }
  double mean() const noexcept;
  double variance() const noexcept;  // population variance
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

 private:
  std::size_t count_ = 0;
  double sum_ = 0;
  double sum_sq_ = 0;
  double min_ = 0;
  double max_ = 0;
};

// Percentile of a sample using linear interpolation between order statistics.
// p in [0, 100]. The input is copied and sorted.
double percentile(std::vector<double> values, double p);

// Point on the empirical CDF: fraction of values <= threshold.
double cdf_at(const std::vector<double>& values, double threshold);

// Equal-width histogram over [lo, hi) with `bins` buckets; values outside
// the range are clamped into the first/last bucket.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;

  std::size_t bin_count(std::size_t bin) const { return counts_.at(bin); }
  std::size_t bins() const noexcept { return counts_.size(); }
  std::size_t total() const noexcept { return total_; }
  double bin_low(std::size_t bin) const noexcept;
  double bin_high(std::size_t bin) const noexcept;
  // Fraction of all observations in this bin (0 if empty histogram).
  double bin_fraction(std::size_t bin) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

// Pearson correlation coefficient; returns 0 for degenerate input.
double pearson(const std::vector<double>& xs, const std::vector<double>& ys);

// Spearman rank correlation; returns 0 for degenerate input.
double spearman(std::vector<double> xs, std::vector<double> ys);

// Render a count as a fixed-width ASCII bar, for the figure benches.
std::string ascii_bar(double fraction, std::size_t width);

}  // namespace fu::support
