// Deterministic pseudo-random number generation for the whole project.
//
// Every source of randomness in the reproduction flows from a single uint64
// seed through these generators, so a survey run is bit-reproducible. We use
// splitmix64 for seeding and xoshiro256** as the workhorse generator; both
// are tiny, fast and well understood.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <string_view>
#include <vector>

namespace fu::support {

// splitmix64: used to expand a single seed into generator state, and to
// derive independent child seeds from (seed, label) pairs.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// FNV-1a hash of a string, used to mix textual labels into child seeds so
// that e.g. the RNG stream for site "example0042.com" is independent of the
// stream for "example0043.com".
constexpr std::uint64_t fnv1a(std::string_view text) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm),
// reimplemented here. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0xfeedfaceULL) noexcept { reseed(seed); }

  // Child generator whose stream is independent per (parent seed, label).
  Rng(std::uint64_t seed, std::string_view label) noexcept {
    reseed(seed ^ fnv1a(label));
  }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  // Uniform integer in [0, bound). bound must be > 0. Uses rejection
  // sampling to avoid modulo bias.
  std::uint64_t below(std::uint64_t bound) noexcept {
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % bound;
    }
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t between(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  // Bernoulli trial.
  bool chance(double probability) noexcept { return uniform() < probability; }

  // Pick an index according to non-negative weights; returns weights.size()
  // only if all weights are zero or the span is empty.
  std::size_t weighted_index(std::span<const double> weights) noexcept {
    double total = 0;
    for (const double w : weights) total += w;
    if (total <= 0) return weights.size();
    double target = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      target -= weights[i];
      if (target < 0) return i;
    }
    return weights.size() - 1;
  }

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      using std::swap;
      swap(items[i - 1], items[below(i)]);
    }
  }

  // Geometric-ish count: number of successes before first failure, capped.
  int run_length(double continue_probability, int cap) noexcept {
    int n = 0;
    while (n < cap && chance(continue_probability)) ++n;
    return n;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

// Bounded Zipf(s) sampler over ranks 1..n, via inverse-CDF on a precomputed
// table. Used for Alexa visit weights and intra-standard feature popularity.
class Zipf {
 public:
  Zipf(std::size_t n, double exponent);

  // Returns a rank in [1, n]; rank 1 is the most likely.
  std::size_t sample(Rng& rng) const noexcept;

  // Probability mass of a given rank (1-based).
  double pmf(std::size_t rank) const noexcept;

  std::size_t size() const noexcept { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // cdf_[i] = P(rank <= i+1)
};

}  // namespace fu::support
