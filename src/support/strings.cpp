#include "support/strings.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace fu::support {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_nonempty(std::string_view text, char sep) {
  std::vector<std::string> out;
  for (auto& part : split(text, sep)) {
    if (!part.empty()) out.push_back(std::move(part));
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view trim(std::string_view text) {
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  return text;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

bool contains(std::string_view text, std::string_view needle) {
  return text.find(needle) != std::string_view::npos;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string with_commas(unsigned long long value) {
  std::string digits = std::to_string(value);
  std::string out;
  const std::size_t first = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - first) % 3 == 0 && i >= first) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

std::string percent(double fraction, int decimals) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

bool glob_match(std::string_view pattern, std::string_view text) {
  // Iterative wildcard matcher with backtracking over the last '*'.
  std::size_t p = 0, t = 0;
  std::size_t star = std::string_view::npos, mark = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      mark = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++mark;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

}  // namespace fu::support
