#include "service/jobs.h"

namespace fu::service {

const char* to_string(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
    case JobState::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

JobTable::Submitted JobTable::submit(const SurveyRequest& request,
                                     std::string key_bytes,
                                     std::string shard_dir) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const std::shared_ptr<Job>& existing : jobs_) {
    if (existing->state == JobState::kFailed ||
        existing->state == JobState::kCancelled) {
      continue;  // retries may resubmit these
    }
    if (existing->key_bytes == key_bytes &&
        existing->request.same_analysis(request)) {
      return {existing, false};
    }
  }
  auto job = std::make_shared<Job>();
  job->id = next_id_++;
  job->request = request;
  job->key_bytes = std::move(key_bytes);
  job->shard_dir = std::move(shard_dir);
  job->meter = std::make_shared<sched::ProgressMeter>(request.sites);
  jobs_.push_back(job);
  return {job, true};
}

std::shared_ptr<Job> JobTable::find(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const std::shared_ptr<Job>& job : jobs_) {
    if (job->id == id) return job;
  }
  return nullptr;
}

std::shared_ptr<Job> JobTable::claim_next_queued() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const std::shared_ptr<Job>& job : jobs_) {
    if (job->state == JobState::kQueued) {
      job->state = JobState::kRunning;
      return job;
    }
  }
  return nullptr;
}

Job JobTable::copy_of(const std::shared_ptr<Job>& job) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return *job;
}

std::vector<std::shared_ptr<Job>> JobTable::all() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return jobs_;
}

std::shared_ptr<Job> JobTable::active_or_latest() const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const std::shared_ptr<Job>& job : jobs_) {
    if (job->state == JobState::kRunning) return job;
  }
  return jobs_.empty() ? nullptr : jobs_.back();
}

void JobTable::cancel_queued(const std::string& reason) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const std::shared_ptr<Job>& job : jobs_) {
    if (job->state == JobState::kQueued) {
      job->state = JobState::kCancelled;
      job->error = reason;
    }
  }
}

}  // namespace fu::service
