#include "service/daemon.h"

#include <cstdlib>
#include <filesystem>
#include <optional>
#include <utility>

#include "analysis/tables_json.h"
#include "crawler/serialize.h"
#include "crawler/survey.h"
#include "net/web.h"
#include "obs/mem.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/router.h"

namespace fu::service {

namespace {

// Registry activity attributable to one survey: counters and histogram
// buckets are monotone, so "after minus before" is exactly what the crawl
// between the two snapshots did — exact here because the executor
// serializes crawls. Gauges (and histogram min/max) are levels, not sums;
// they carry the `after` values unchanged.
obs::MetricsSnapshot snapshot_delta(const obs::MetricsSnapshot& before,
                                    const obs::MetricsSnapshot& after) {
  obs::MetricsSnapshot delta;
  for (const auto& [name, value] : after.counters) {
    std::uint64_t base = 0;
    for (const auto& [before_name, before_value] : before.counters) {
      if (before_name == name) {
        base = before_value;
        break;
      }
    }
    delta.counters.emplace_back(name, value >= base ? value - base : value);
  }
  delta.gauges = after.gauges;
  for (const obs::Histogram::Snapshot& hist : after.histograms) {
    const obs::Histogram::Snapshot* base = nullptr;
    for (const obs::Histogram::Snapshot& candidate : before.histograms) {
      if (candidate.name == hist.name && candidate.bounds == hist.bounds &&
          candidate.counts.size() == hist.counts.size()) {
        base = &candidate;
        break;
      }
    }
    obs::Histogram::Snapshot diff = hist;
    if (base != nullptr) {
      for (std::size_t b = 0; b < diff.counts.size(); ++b) {
        diff.counts[b] -= std::min(base->counts[b], diff.counts[b]);
      }
      diff.count -= std::min(base->count, diff.count);
      diff.sum -= std::min(base->sum, diff.sum);
    }
    delta.histograms.push_back(std::move(diff));
  }
  return delta;
}

obs::HttpResponse error_response(int status, const std::string& message) {
  return obs::json_response(status,
                            "{\"error\": " + obs::json_quote(message) + "}\n");
}

// The shard-cache directory name for a key: the canonical cache filename
// with its ".bin" swapped for "-shards", e.g. "survey_s10f3a7_n100_p5_ft-shards".
std::string shard_dir_name(const crawler::SurveyKey& key) {
  std::string name = crawler::cache_filename(key);
  if (const std::size_t dot = name.rfind(".bin"); dot != std::string::npos) {
    name.resize(dot);
  }
  return name + "-shards";
}

}  // namespace

Daemon::Daemon(DaemonOptions options) : options_(std::move(options)) {
  std::error_code ec;
  std::filesystem::create_directories(options_.cache_dir, ec);
  if (ec) {
    error_ = "cannot create cache dir " + options_.cache_dir + ": " +
             ec.message();
    return;
  }
  pool_ = std::make_unique<sched::Pool>(options_.threads);

  obs::ServerOptions server;
  server.port = options_.port;
  server.bind_address = options_.bind_address;
  server.auth_token = options_.auth_token;
  server.max_request_bytes = options_.max_request_bytes;
  server.port_file = options_.cache_dir + "/serve.port";
  server.routes = [this](obs::Router& router) { mount_routes(router); };
  if (options_.access_log) server.access_log = obs::stderr_access_logger();
  // The daemon-level /progress.json and /healthz follow the running (else
  // most recent) survey, so `fu watch host:port` works unchanged against a
  // daemon.
  server.progress_json = [this] {
    if (const std::shared_ptr<Job> job = table_.active_or_latest()) {
      return sched::progress_json(job->meter->snapshot());
    }
    return sched::progress_json(sched::ProgressMeter().snapshot());
  };
  server.health = [this] {
    obs::HealthStatus health;
    if (const std::shared_ptr<Job> job = table_.active_or_latest()) {
      const sched::ProgressMeter::Snapshot snap = job->meter->snapshot();
      // Only a *running* crawl can stall; a queued or finished survey's
      // completion gap is idleness, not sickness.
      health.ok = !(table_.copy_of(job).state == JobState::kRunning &&
                    snap.stalled);
      health.body = sched::health_json(snap);
    }
    return health;
  };
  server_ = std::make_unique<obs::Server>(std::move(server));
  if (!server_->ok()) {
    error_ = server_->error();
    server_.reset();
    return;
  }
  ok_ = true;
  executor_ = std::thread([this] { executor_loop(); });
}

Daemon::~Daemon() {
  // Order matters: stop answering requests first (drains the in-flight
  // one), then cancel and join the executor — whose running survey folds
  // its unstarted sites as cancelled and returns — then let the members
  // destroy the pool after its last user is gone.
  server_.reset();
  cancel_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(exec_mutex_);
    stop_ = true;
  }
  exec_cv_.notify_all();
  if (executor_.joinable()) executor_.join();
}

void Daemon::mount_routes(obs::Router& router) {
  const auto with_job =
      [this](obs::HttpRequest& request,
             obs::HttpResponse (Daemon::*method)(const std::shared_ptr<Job>&)) {
        const std::shared_ptr<Job> job = job_from(request);
        if (job == nullptr) return error_response(404, "no such survey");
        return (this->*method)(job);
      };
  // Most specific first: the Router gives earlier registrations priority.
  router.handle("GET", "/surveys/<id>/tables",
                [this, with_job](obs::HttpRequest& request) {
                  return with_job(request, &Daemon::handle_tables);
                });
  router.handle("GET", "/surveys/<id>/progress.json",
                [this, with_job](obs::HttpRequest& request) {
                  return with_job(request, &Daemon::handle_progress);
                });
  router.handle("GET", "/surveys/<id>/metrics.json",
                [this, with_job](obs::HttpRequest& request) {
                  return with_job(request, &Daemon::handle_metrics);
                });
  // Per-survey profiling: samples the whole process, but the executor
  // serializes crawls, so requiring the job to be *running* scopes every
  // worker sample to exactly that crawl.
  router.handle("GET", "/surveys/<id>/profilez",
                [this](obs::HttpRequest& request) {
                  const std::shared_ptr<Job> job = job_from(request);
                  if (job == nullptr) {
                    return error_response(404, "no such survey");
                  }
                  if (table_.copy_of(job).state != JobState::kRunning) {
                    return error_response(
                        409, "survey is not running; profile it live");
                  }
                  double seconds =
                      obs::query_double(request.query, "seconds", 1.0);
                  if (seconds > 30.0) seconds = 30.0;
                  const double hz =
                      obs::query_double(request.query, "hz", 97.0);
                  try {
                    return obs::text_response(
                        200, obs::profile_for(seconds, hz).to_text());
                  } catch (const std::logic_error&) {
                    return error_response(409,
                                          "another profiler is already live");
                  }
                });
  router.handle("GET", "/surveys/<id>",
                [this, with_job](obs::HttpRequest& request) {
                  return with_job(request, &Daemon::handle_detail);
                });
  router.handle("GET", "/surveys", [this](obs::HttpRequest&) {
    return handle_list();
  });
  router.handle("POST", "/surveys", [this](obs::HttpRequest& request) {
    return handle_submit(request);
  });
}

const catalog::Catalog& Daemon::catalog_for(std::uint64_t seed) {
  std::lock_guard<std::mutex> lock(catalog_mutex_);
  std::unique_ptr<catalog::Catalog>& slot = catalogs_[seed];
  if (!slot) slot = std::make_unique<catalog::Catalog>(seed);
  return *slot;
}

obs::HttpResponse Daemon::handle_submit(obs::HttpRequest& request) {
  SurveyRequest survey;
  std::string error;
  if (!parse_survey_request(request.body, options_.max_sites, survey, error)) {
    return error_response(400, error);
  }

  // The crawl identity, computed without building the web: key_for() only
  // needs the catalog shape (one catalog per seed, cached) plus the request
  // fields. The executor re-derives the key from the real web and refuses
  // to run on a mismatch, so this shortcut can never poison the cache.
  const catalog::Catalog& cat = catalog_for(survey.seed);
  crawler::SurveyKey key;
  key.seed = survey.seed;
  key.site_count = survey.sites;
  key.passes = static_cast<std::uint32_t>(survey.passes);
  key.ad_only = survey.ad_only;
  key.tracking_only = survey.tracking_only;
  key.feature_count = static_cast<std::uint32_t>(cat.features().size());
  key.standard_count = static_cast<std::uint32_t>(cat.standard_count());
  key.catalog_fingerprint = crawler::catalog_fingerprint(cat);

  const JobTable::Submitted submitted =
      table_.submit(survey, crawler::encode_survey_key(key),
                    options_.cache_dir + "/" + shard_dir_name(key));
  if (submitted.created) {
    std::lock_guard<std::mutex> lock(exec_mutex_);
    exec_cv_.notify_all();
  }
  const Job copy = table_.copy_of(submitted.job);
  std::string body = "{\"id\": " + std::to_string(copy.id);
  body += ", \"state\": \"" + std::string(to_string(copy.state)) + "\"";
  body += std::string(", \"deduplicated\": ") +
          (submitted.created ? "false" : "true");
  body += ", \"location\": \"/surveys/" + std::to_string(copy.id) + "\"}\n";
  return obs::json_response(submitted.created ? 202 : 200, std::move(body));
}

std::string Daemon::job_json(const Job& job) const {
  const sched::ProgressMeter::Snapshot progress = job.meter->snapshot();
  std::string out = "{";
  out += "\"id\": " + std::to_string(job.id);
  out += ", \"state\": \"" + std::string(to_string(job.state)) + "\"";
  out += ", \"request\": " + request_json(job.request);
  out += ", \"done\": " + std::to_string(progress.done);
  out += ", \"total\": " + std::to_string(progress.total);
  out += std::string(", \"from_cache\": ") + (job.from_cache ? "true" : "false");
  out += ", \"sites_recrawled\": " + std::to_string(job.sites_recrawled);
  out += ", \"sites_failed\": " + std::to_string(job.sites_failed);
  out += ", \"error\": " + obs::json_quote(job.error);
  out += ", \"mem\": " + (job.mem.empty() ? std::string("null") : job.mem);
  out += ", \"location\": \"/surveys/" + std::to_string(job.id) + "\"";
  out += "}";
  return out;
}

obs::HttpResponse Daemon::handle_list() {
  std::string body = "{\"jobs\": [";
  bool first = true;
  for (const std::shared_ptr<Job>& job : table_.all()) {
    if (!first) body += ", ";
    first = false;
    body += job_json(table_.copy_of(job));
  }
  body += "]}\n";
  return obs::json_response(200, std::move(body));
}

obs::HttpResponse Daemon::handle_detail(const std::shared_ptr<Job>& job) {
  return obs::json_response(200, job_json(table_.copy_of(job)) + "\n");
}

obs::HttpResponse Daemon::handle_tables(const std::shared_ptr<Job>& job) {
  const Job copy = table_.copy_of(job);
  if (copy.state != JobState::kDone) {
    return error_response(409, "survey is " +
                                   std::string(to_string(copy.state)) +
                                   (copy.error.empty() ? "" : ": " + copy.error));
  }
  return obs::json_response(200, copy.tables);
}

obs::HttpResponse Daemon::handle_progress(const std::shared_ptr<Job>& job) {
  return obs::json_response(200,
                            sched::progress_json(job->meter->snapshot()));
}

obs::HttpResponse Daemon::handle_metrics(const std::shared_ptr<Job>& job) {
  const Job copy = table_.copy_of(job);
  if (copy.state == JobState::kRunning) {
    // Live view: the crawl is between its two bracketing snapshots, and it
    // is the only crawl running, so (now - start) is its activity so far.
    return obs::json_response(
        200, snapshot_delta(copy.metrics_start,
                            obs::Registry::global().snapshot())
                 .to_json());
  }
  if (!copy.metrics.empty()) return obs::json_response(200, copy.metrics);
  return obs::json_response(200, obs::MetricsSnapshot{}.to_json());
}

std::shared_ptr<Job> Daemon::job_from(const obs::HttpRequest& request) const {
  if (request.params.empty()) return nullptr;
  const std::string& text = request.params.front();
  if (text.empty() || text.size() > 18 ||
      text.find_first_not_of("0123456789") != std::string::npos) {
    return nullptr;
  }
  return table_.find(std::strtoull(text.c_str(), nullptr, 10));
}

void Daemon::executor_loop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(exec_mutex_);
      exec_cv_.wait(lock, [&] {
        if (stop_) return true;  // checked first so shutdown never claims
        job = table_.claim_next_queued();
        return job != nullptr;
      });
      if (stop_) break;
    }
    run_job(job);
  }
  table_.cancel_queued("daemon shutting down");
}

void Daemon::run_job(const std::shared_ptr<Job>& job) {
  const Job copy = table_.copy_of(job);
  const SurveyRequest& request = copy.request;
  // Scope the high-water marks to this survey: the executor runs one job at
  // a time, so the peaks reported in the job record are this crawl's peaks.
  obs::mem::reset_high_water();
  try {
    const catalog::Catalog& cat = catalog_for(request.seed);
    net::SyntheticWeb::Config web_config;
    web_config.site_count = static_cast<int>(request.sites);
    web_config.seed = request.seed;
    const net::SyntheticWeb web(cat, web_config);

    crawler::SurveyOptions survey;
    survey.passes = request.passes;
    survey.include_ad_only = request.ad_only;
    survey.include_tracking_only = request.tracking_only;
    survey.seed = request.seed;
    survey.checkpoint_dir = copy.shard_dir;
    survey.checkpoint_every = options_.checkpoint_every;
    survey.resume = true;  // an interrupted daemon resumes, never recrawls
    survey.progress = job->meter.get();
    survey.serve_stall_secs = options_.stall_secs;
    survey.pool = pool_.get();
    survey.cancel = &cancel_;

    if (crawler::encode_survey_key(crawler::key_for(web, survey)) !=
        copy.key_bytes) {
      table_.update(job, [](Job& j) {
        j.state = JobState::kFailed;
        j.error = "internal: submission key does not match crawl key";
      });
      return;
    }

    // Warm path: a previous crawl of this exact key left a complete shard
    // set, so the tables come straight from the cached per-site feature
    // bitsets — zero sites recrawled, bit-identical by construction.
    if (std::optional<std::string> warm = analysis::tables_from_shards(
            web, survey, copy.shard_dir, request.tables)) {
      job->meter->reset(request.sites);
      for (std::uint32_t i = 0; i < request.sites; ++i) {
        job->meter->job_skipped();
      }
      std::string mem = obs::mem::domains_json();
      table_.update(job, [&warm, &mem](Job& j) {
        j.state = JobState::kDone;
        j.from_cache = true;
        j.tables = std::move(*warm);
        j.metrics = obs::MetricsSnapshot{}.to_json();
        j.mem = std::move(mem);
      });
      surveys_from_cache_.fetch_add(1, std::memory_order_relaxed);
      return;
    }

    const obs::MetricsSnapshot before = obs::Registry::global().snapshot();
    table_.update(job, [&before](Job& j) { j.metrics_start = before; });
    const crawler::SurveyResults results = crawler::run_survey(web, survey);
    const obs::MetricsSnapshot after = obs::Registry::global().snapshot();
    const std::string metrics = snapshot_delta(before, after).to_json();

    if (cancel_.load(std::memory_order_acquire)) {
      // Shutdown mid-crawl: whatever completed is already in the shards
      // (the next daemon resumes from them); the job itself is cancelled.
      table_.update(job, [&metrics](Job& j) {
        j.state = JobState::kCancelled;
        j.error = "daemon shutting down";
        j.metrics = metrics;
      });
      return;
    }

    const sched::ProgressMeter::Snapshot progress = job->meter->snapshot();
    const analysis::Analysis analysis(results);
    std::string tables = analysis::tables_json(analysis, request.tables);
    std::string mem = obs::mem::domains_json();
    table_.update(job, [&](Job& j) {
      j.state = JobState::kDone;
      j.tables = std::move(tables);
      j.metrics = metrics;
      j.mem = std::move(mem);
      j.sites_failed = static_cast<std::size_t>(results.sites_failed());
      j.sites_recrawled = progress.done - progress.skipped;
      j.from_cache = j.sites_recrawled == 0;
    });
    surveys_crawled_.fetch_add(1, std::memory_order_relaxed);
  } catch (const std::exception& error) {
    const std::string what = error.what();
    table_.update(job, [&what](Job& j) {
      j.state = JobState::kFailed;
      j.error = what;
    });
  }
}

}  // namespace fu::service
