// The daemon's job table: every survey ever submitted to this process, in
// submission order, with its lifecycle state.
//
//   queued -> running -> done | failed | cancelled
//
// Jobs are deduplicated at submission: a request whose crawl identity
// (encoded SurveyKey) *and* analysis parameters match a live or completed
// job returns that job instead of creating one — N clients POSTing the same
// survey share one crawl and poll one id. Failed and cancelled jobs do not
// absorb resubmissions, so a client can retry by POSTing again.
//
// One mutex guards the whole table; HTTP handlers and the executor thread
// both go through it with short critical sections (state flips, pointer
// copies, string copies of finished tables). ProgressMeters are internally
// thread-safe and are snapshotted outside the lock.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "sched/progress.h"
#include "service/request.h"

namespace fu::service {

enum class JobState : std::uint8_t {
  kQueued,
  kRunning,
  kDone,
  kFailed,
  kCancelled,
};
const char* to_string(JobState state);

// All fields except `meter` are guarded by the owning JobTable's mutex;
// read them via JobTable::copy_of. The meter pointer itself is immutable
// after construction and the meter is safe to snapshot from any thread.
struct Job {
  std::uint64_t id = 0;
  SurveyRequest request;
  std::string key_bytes;  // encoded SurveyKey — the crawl identity
  std::string shard_dir;  // keyed shard-cache directory for that identity
  JobState state = JobState::kQueued;
  std::string error;       // why kFailed / kCancelled
  bool from_cache = false; // tables derived from shards, nothing crawled
  std::size_t sites_failed = 0;
  std::size_t sites_recrawled = 0;  // sites actually crawled (not restored)
  std::string tables;   // tables_json document once kDone
  std::string metrics;  // per-survey registry delta (MetricsSnapshot JSON)
  std::string mem;      // per-survey domain peaks (mem::domains_json) once done
  // Registry snapshot taken when the crawl began — the "before" of the
  // delta; while kRunning, /metrics.json diffs the live registry against it.
  obs::MetricsSnapshot metrics_start;
  std::shared_ptr<sched::ProgressMeter> meter;  // live from submission on
};

class JobTable {
 public:
  struct Submitted {
    std::shared_ptr<Job> job;
    bool created = false;  // false = deduplicated onto an existing job
  };

  // Deduplicating submit; `key_bytes` must be the encoded SurveyKey of
  // `request`. A fresh job starts kQueued with a meter sized to the site
  // count, so progress polls work before the crawl starts.
  Submitted submit(const SurveyRequest& request, std::string key_bytes,
                   std::string shard_dir);

  std::shared_ptr<Job> find(std::uint64_t id) const;

  // Executor side: atomically claim the oldest queued job as kRunning.
  std::shared_ptr<Job> claim_next_queued();

  // Executor side: mutate a job's guarded fields under the table lock.
  template <typename Fn>
  void update(const std::shared_ptr<Job>& job, Fn&& fn) {
    std::lock_guard<std::mutex> lock(mutex_);
    fn(*job);
  }

  // Consistent copy of a job's guarded fields for rendering.
  Job copy_of(const std::shared_ptr<Job>& job) const;

  std::vector<std::shared_ptr<Job>> all() const;

  // The job currently kRunning (the executor runs at most one), or the most
  // recently submitted one — what the daemon-level /progress.json shows.
  std::shared_ptr<Job> active_or_latest() const;

  // Shutdown: every still-queued job flips to kCancelled.
  void cancel_queued(const std::string& reason);

 private:
  mutable std::mutex mutex_;
  std::vector<std::shared_ptr<Job>> jobs_;
  std::uint64_t next_id_ = 1;
};

}  // namespace fu::service
