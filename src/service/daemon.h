// Survey-as-a-service: the `fu serve` daemon.
//
// One process owns one persistent work-stealing pool (sched::Pool), one
// HTTP server (obs::Server + Router) and a job table. Clients POST survey
// requests; the daemon queues them, crawls them one at a time on the shared
// pool, and keeps every finished crawl's checkpoint shards in a keyed shard
// cache under `cache_dir`. A later request with the same crawl identity but
// different analysis parameters (table cuts) never recrawls: its tables are
// re-derived from the cached per-site feature bitsets via
// analysis::tables_from_shards — bit-identical to a fresh crawl, locked in
// by tests.
//
// Endpoints (everything under the server's bearer-token auth):
//
//   POST /surveys                    submit (JSON body, see request.h);
//                                    202 {id,...} created, 200 deduplicated
//   GET  /surveys                    all jobs with state + progress
//   GET  /surveys/<id>               one job in full
//   GET  /surveys/<id>/tables        Tables 1-3 JSON (409 until done)
//   GET  /surveys/<id>/progress.json that job's live progress snapshot
//   GET  /surveys/<id>/metrics.json  that job's registry delta (counters
//                                    and histograms accumulated by exactly
//                                    that crawl; exact because the executor
//                                    serializes crawls)
//   GET  /surveys/<id>/profilez      sample that job's crawl for
//                                    ?seconds=N (default 1, max 30) at
//                                    ?hz=H and return the folded-stack
//                                    profile; 409 unless the job is
//                                    running (the executor serializes
//                                    crawls, so a running job owns every
//                                    worker sample)
//   GET  /metrics.json /metrics /progress.json /deltas.json /healthz
//        /buildz /profilez          the observability built-ins;
//                                    /progress.json and /healthz follow the
//                                    running (else latest) job
//
// Crawls are serialized deliberately: the pool's worker set is the
// parallelism budget, and two concurrent surveys would just time-slice it
// while blurring per-survey metrics. Queued jobs wait their turn; duplicate
// submissions of an in-flight survey attach to it (one crawl, N waiters).
//
// Shutdown (the destructor) is clean by construction: the cancel flag
// flips, the in-flight survey folds its unstarted sites as cancelled and
// returns (already-crawled sites keep their shards, so a restarted daemon
// resumes instead of recrawling), queued jobs flip to kCancelled, and the
// server drains before the pool dies.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "catalog/catalog.h"
#include "obs/server.h"
#include "sched/pool.h"
#include "service/jobs.h"

namespace fu::service {

struct DaemonOptions {
  // Socket: same meaning as obs::ServerOptions — port 0 = ephemeral,
  // non-loopback bind refuses to start without auth_token.
  int port = 0;
  std::string bind_address = "127.0.0.1";
  std::string auth_token;

  // Where the keyed shard cache lives (one subdirectory per SurveyKey) and
  // where serve.port is written. Created if missing.
  std::string cache_dir = "fu-serve-cache";

  // Worker threads in the persistent pool (0 = hardware concurrency).
  int threads = 0;

  // Requests above this site count are rejected with 400 — the daemon's
  // admission control, not a crawl limit.
  std::uint32_t max_sites = 100000;

  // Checkpoint cadence for crawls (shards per `checkpoint_every` outcomes).
  int checkpoint_every = 64;

  // /healthz stall window for the running survey (0 = off).
  double stall_secs = 30;

  // Request-size cap forwarded to the server (413 above it).
  std::size_t max_request_bytes = 64 * 1024;

  // Structured per-request access log to stderr (one JSON line per request;
  // `fu serve --log` / FU_SERVE_LOG turn it on).
  bool access_log = false;
};

class Daemon {
 public:
  explicit Daemon(DaemonOptions options);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  // False when the server failed to bind (port taken, non-loopback bind
  // without a token, unwritable cache dir); error() says why and no
  // executor thread was started.
  bool ok() const noexcept { return ok_; }
  const std::string& error() const noexcept { return error_; }
  int port() const noexcept { return server_ ? server_->port() : -1; }

  // How many surveys this process actually crawled vs served purely from
  // the warm shard cache — the counters the no-recrawl tests and the CI
  // smoke assert on (also exposed in every job document as "from_cache").
  std::uint64_t surveys_crawled() const noexcept {
    return surveys_crawled_.load(std::memory_order_relaxed);
  }
  std::uint64_t surveys_from_cache() const noexcept {
    return surveys_from_cache_.load(std::memory_order_relaxed);
  }

 private:
  void mount_routes(obs::Router& router);
  obs::HttpResponse handle_submit(obs::HttpRequest& request);
  obs::HttpResponse handle_list();
  obs::HttpResponse handle_detail(const std::shared_ptr<Job>& job);
  obs::HttpResponse handle_tables(const std::shared_ptr<Job>& job);
  obs::HttpResponse handle_progress(const std::shared_ptr<Job>& job);
  obs::HttpResponse handle_metrics(const std::shared_ptr<Job>& job);
  std::shared_ptr<Job> job_from(const obs::HttpRequest& request) const;

  void executor_loop();
  void run_job(const std::shared_ptr<Job>& job);

  // One catalog per seed, built on first use and kept — every request with
  // the same seed shares it (catalog construction is pure in the seed).
  const catalog::Catalog& catalog_for(std::uint64_t seed);

  std::string job_json(const Job& job) const;

  DaemonOptions options_;
  bool ok_ = false;
  std::string error_;

  JobTable table_;
  std::unique_ptr<sched::Pool> pool_;

  std::mutex catalog_mutex_;
  std::map<std::uint64_t, std::unique_ptr<catalog::Catalog>> catalogs_;

  std::atomic<bool> cancel_{false};
  std::atomic<std::uint64_t> surveys_crawled_{0};
  std::atomic<std::uint64_t> surveys_from_cache_{0};

  std::mutex exec_mutex_;
  std::condition_variable exec_cv_;
  bool stop_ = false;  // guarded by exec_mutex_

  std::unique_ptr<obs::Server> server_;
  std::thread executor_;
};

}  // namespace fu::service
