// Survey daemon request model: the JSON body of `POST /surveys`.
//
// A request names exactly one survey. Its crawl-identity fields (sites,
// seed, passes, blocker configurations) enter the SurveyKey and therefore
// decide whether a crawl must run; the table options are analysis-layer
// parameters that deliberately stay *outside* the key, so a request that
// differs only in them is served from the warm shard cache of an earlier
// crawl — re-derived tables, zero recrawled sites.
#pragma once

#include <cstdint>
#include <string>

#include "analysis/tables_json.h"

namespace fu::service {

struct SurveyRequest {
  std::uint32_t sites = 0;           // required; 1 .. DaemonOptions::max_sites
  std::uint64_t seed = 0x10f3a7ULL;  // default mirrors ReproductionConfig
  int passes = 5;
  bool ad_only = true;        // AdBlock-Plus-only configuration (Figure 7)
  bool tracking_only = true;  // Ghostery-only configuration (Figure 7)
  analysis::TableOptions tables;

  // Same crawl identity (same SurveyKey, given one catalog per seed)?
  bool same_crawl(const SurveyRequest& other) const {
    return sites == other.sites && seed == other.seed &&
           passes == other.passes && ad_only == other.ad_only &&
           tracking_only == other.tracking_only;
  }
  // Same analysis parameters? same_crawl && same_analysis == same job.
  bool same_analysis(const SurveyRequest& other) const {
    return tables.table2_min_site_pct == other.tables.table2_min_site_pct &&
           tables.table2_min_cves == other.tables.table2_min_cves;
  }
};

// Strict parse + validation of a POST /surveys body. The document must be a
// JSON object; "sites" is required; every other field is optional with the
// defaults above. Unknown keys, wrong types, non-integral counts and
// out-of-range values are all rejected — a typo must fail loudly, not
// silently crawl the wrong survey. Returns false with `error` set (the 400
// body) on any defect.
bool parse_survey_request(const std::string& body, std::uint32_t max_sites,
                          SurveyRequest& out, std::string& error);

// The request echoed back as JSON — the "request" member of every job
// document, so a client can always see what a job will (or did) crawl.
std::string request_json(const SurveyRequest& request);

}  // namespace fu::service
