#include "service/request.h"

#include <cmath>
#include <cstdio>

#include "obs/json.h"

namespace fu::service {

namespace {

// Bounds beyond which a value is a client error rather than a big survey.
constexpr int kMaxPasses = 50;
constexpr int kMaxTable2Cves = 1'000'000;

bool integral_in_range(const obs::JsonValue& value, double lo, double hi,
                       double& out) {
  if (!value.is_number()) return false;
  if (std::floor(value.number) != value.number) return false;
  if (value.number < lo || value.number > hi) return false;
  out = value.number;
  return true;
}

}  // namespace

bool parse_survey_request(const std::string& body, std::uint32_t max_sites,
                          SurveyRequest& out, std::string& error) {
  obs::JsonValue doc;
  if (!obs::json_parse(body, doc, &error)) {
    error = "malformed JSON: " + error;
    return false;
  }
  if (!doc.is_object()) {
    error = "request body must be a JSON object";
    return false;
  }

  SurveyRequest request;
  bool have_sites = false;
  for (const auto& [key, value] : doc.object) {
    double number = 0;
    if (key == "sites") {
      if (!integral_in_range(value, 1, max_sites, number)) {
        error = "\"sites\" must be an integer in [1, " +
                std::to_string(max_sites) + "]";
        return false;
      }
      request.sites = static_cast<std::uint32_t>(number);
      have_sites = true;
    } else if (key == "seed") {
      // Doubles carry 53 integer bits exactly; a seed beyond that would not
      // round-trip through JSON, so it is refused rather than quietly bent.
      if (!integral_in_range(value, 0, 9007199254740992.0, number)) {
        error = "\"seed\" must be a non-negative integer (<= 2^53)";
        return false;
      }
      request.seed = static_cast<std::uint64_t>(number);
    } else if (key == "passes") {
      if (!integral_in_range(value, 1, kMaxPasses, number)) {
        error = "\"passes\" must be an integer in [1, " +
                std::to_string(kMaxPasses) + "]";
        return false;
      }
      request.passes = static_cast<int>(number);
    } else if (key == "ad_only" || key == "tracking_only") {
      if (value.type != obs::JsonValue::Type::kBool) {
        error = "\"" + key + "\" must be a boolean";
        return false;
      }
      (key == "ad_only" ? request.ad_only : request.tracking_only) =
          value.boolean;
    } else if (key == "table2_min_site_pct") {
      if (!value.is_number() || value.number < 0 || value.number > 100) {
        error = "\"table2_min_site_pct\" must be a number in [0, 100]";
        return false;
      }
      request.tables.table2_min_site_pct = value.number;
    } else if (key == "table2_min_cves") {
      if (!integral_in_range(value, 0, kMaxTable2Cves, number)) {
        error = "\"table2_min_cves\" must be a non-negative integer";
        return false;
      }
      request.tables.table2_min_cves = static_cast<int>(number);
    } else {
      error = "unknown field \"" + key + "\"";
      return false;
    }
  }
  if (!have_sites) {
    error = "missing required field \"sites\"";
    return false;
  }
  out = request;
  return true;
}

std::string request_json(const SurveyRequest& request) {
  char pct[64];
  std::snprintf(pct, sizeof pct, "%.6f", request.tables.table2_min_site_pct);
  std::string out = "{";
  out += "\"sites\": " + std::to_string(request.sites);
  out += ", \"seed\": " + std::to_string(request.seed);
  out += ", \"passes\": " + std::to_string(request.passes);
  out += std::string(", \"ad_only\": ") +
         (request.ad_only ? "true" : "false");
  out += std::string(", \"tracking_only\": ") +
         (request.tracking_only ? "true" : "false");
  out += std::string(", \"table2_min_site_pct\": ") + pct;
  out += ", \"table2_min_cves\": " +
         std::to_string(request.tables.table2_min_cves);
  out += "}";
  return out;
}

}  // namespace fu::service
