// MiniJS register bytecode: the compiled form of a parsed Program or
// AstFunction body, executed by the VM dispatch loop (vm.cpp) instead of
// the old tree-walking evaluator.
//
// Instructions are fixed-width (12 bytes): an opcode, a pre-charged fuel
// count, three 16-bit register operands and a 32-bit immediate. Inline
// caches are not scattered over AST nodes any more — each chunk owns dense
// vectors of IC records and property/variable/call instructions carry the
// record's index in `imm`, so IC slot allocation is centralized in the
// bytecode compiler (compiler.cpp).
//
// Fuel accounting is compiled in: the tree-walker burned one fuel unit at
// the entry of every exec(Stmt)/eval(Expr), and that count is observable
// (Date.now reads steps_executed(); fuel exhaustion aborts scripts). The
// compiler folds each node's entry burn into the *next emitted
// instruction*'s `fuel` field — charged before the instruction runs — and
// flushes pending burns as a standalone kNop before binding any jump
// target, so one-time burns are never re-charged on a loop back edge. The
// engine-identity fingerprint locks this bit-for-bit.
//
// Chunks are memoized per engine on the owning Program/AstFunction (atoms
// are baked into instructions, so a chunk is only valid for the AtomTable
// that compiled it). IC state inside a chunk is mutable at run time under
// the same single-threaded contract as the old AST caches: sites are the
// unit of crawl parallelism.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "script/atoms.h"
#include "script/value.h"

namespace fu::script {

struct AstFunction;

enum class Op : std::uint8_t {
  kNop,             // fuel carrier / pending-burn flush point
  kLoadConst,       // r[a] = constants[imm]
  kLoadUndefined,   // r[a] = undefined
  kMove,            // r[a] = r[b]
  kGetLocal,        // r[a] = activation slot imm (params / this / arguments)
  kSetLocal,        // activation slot imm = r[a]
  kGetVar,          // r[a] = scope lookup through var_ics[imm]
  kSetVar,          // scope assign r[a] through var_ics[imm]
  kDefineVar,       // current scope define: atom imm = r[a]
  kMakeFunction,    // r[a] = closure of functions[imm] over the current scope
  kGetProp,         // r[a] = r[b].<prop_ics[imm].atom>
  kGetMethod,       // kGetProp + "is not a function" check (call callees)
  kSetProp,         // r[b].<write_ics[imm].atom> = r[a]
  kGetIndex,        // r[a] = r[b][r[c]]
  kSetIndex,        // r[b][r[c]] = r[a]
  kDefineProp,      // define r[b].<atom imm> = r[a] (object literals)
  kDeleteProp,      // r[a] = delete r[b].<atom imm>
  kDeleteIndex,     // r[a] = delete r[b][r[c]] (base already object-checked)
  kMakeObject,      // r[a] = {}
  kMakeArray,       // r[a] = Array of r[b] .. r[b+imm-1]
  kCall,            // r[a] = r[b](r[b+1..b+c]) through call_ics[imm]
  kCallMethod,      // r[a] = r[b].call(this=r[b+1], r[b+2..b+1+c]), call_ics[imm]
  kNew,             // r[a] = new r[b](r[b+1..b+imm])
  // binary operators: r[a] = r[b] <op> r[c]
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNe, kStrictEq, kStrictNe,
  kLt, kGt, kLe, kGe,
  kInstanceof, kIn,
  kNot,             // r[a] = !truthy(r[b])
  kNeg,             // r[a] = -to_number(r[b])
  kTypeofValue,     // r[a] = typeof r[b]
  kTypeofVar,       // r[a] = typeof <identifier>; unbound burns nothing
  kIsObject,        // r[a] = r[b] is an object (delete-index guard)
  kJump,            // pc = imm
  kJumpIfFalse,     // if (!truthy(r[a])) pc = imm
  kJumpIfTrue,      // if (truthy(r[a])) pc = imm
  kThrow,           // throw ScriptError(constants[imm])
  kReturn,          // return r[a]
  kReturnUndefined, // return undefined (also the chunk terminator)
};

struct Instr {
  Op op = Op::kNop;
  std::uint8_t fuel = 0;  // fuel units charged before this instruction runs
  std::uint16_t a = 0, b = 0, c = 0;
  std::uint32_t imm = 0;
};

// --------------------------------------------------------------- ICs ------
// Polymorphic inline caches, owned by the chunk and indexed by instruction
// immediates. Each property site holds up to kMaxEntries (shape, slot)
// entries before collapsing to a megamorphic terminal state (generic walk,
// no further recording). Validity is anchored in shape-tree identities
// (value.h): with shapes drawn from shared transition trees rooted at the
// prototype, a shape match implies both the slot layout *and* the identity
// of the prototype, so same-layout objects hit each other's cache entries
// and chain revalidation is pure shape compares. In-place value overwrites
// (the measuring extension's shim injection) never change a shape, so warm
// caches stay warm and read the shim.

// Identifier resolution: caches the (environment serial, slot) of a name
// that resolved in the scope the site started in — nothing nearer can ever
// shadow it, and environment binding stores are append-only.
struct VarIC {
  Atom atom = kNoAtom;
  std::uint64_t env_serial = 0;  // 0 = no cached resolution
  std::uint32_t slot = 0;
};

// Property read through a member site. An entry validates by the receiver's
// shape plus the shapes of the recorded prototype links; `holder` says which
// object owns the slot (0 = the receiver itself, k = chain[k-1]).
struct PropIC {
  static constexpr int kMaxEntries = 4;
  static constexpr int kMaxChain = 4;  // receiver + up to 3 prototype links
  static constexpr std::uint32_t kMissSlot = 0xFFFFFFFFu;
  static constexpr std::uint8_t kMegamorphic = 0xFF;

  struct Link {
    std::uint32_t object = 0;  // ObjectRef index of the prototype
    std::uint32_t shape = 0;
  };
  struct Entry {
    std::uint32_t receiver_shape = 0;
    std::uint8_t chain_len = 0;   // prototype links recorded (not receiver)
    std::uint8_t holder = 0;      // 0 = receiver, k = chain[k-1]
    Link chain[kMaxChain - 1];
    std::uint32_t slot = 0;       // kMissSlot = negative cache
  };

  Atom atom = kNoAtom;
  std::uint8_t count = 0;  // kMegamorphic once saturated
  Entry entries[kMaxEntries];
};

// Property write through a member-assignment site. JS assignment targets an
// *own* slot of the receiver; entries record the post-write shape so the
// steady state (value overwrite, shape unchanged) hits. The watch hook is
// re-checked on the fast path — watches are per-object, not per-shape.
struct WriteIC {
  static constexpr int kMaxEntries = 4;
  static constexpr std::uint8_t kMegamorphic = 0xFF;

  struct Entry {
    std::uint32_t shape = 0;
    std::uint32_t slot = 0;
  };

  Atom atom = kNoAtom;
  std::uint8_t count = 0;  // kMegamorphic once saturated
  Entry entries[kMaxEntries];
};

// Call-site cache for kCall/kCallMethod: remembers the callee function
// object (by heap index — objects are never freed or reused) and its
// resolved Callable, so a warm site skips the value-type/is-callable checks
// and dispatches straight into the callee. Monomorphic: call sites on page
// scripts overwhelmingly see one callee; a different function at the same
// site just re-records. A function's Callable is never reassigned after
// creation (the measuring extension replaces property *values*), so the
// cached pointer stays valid for the chunk's lifetime.
struct CallIC {
  std::uint32_t callee = 0;  // ObjectRef index; 0 (reserved null) = empty
  const Callable* target = nullptr;
};

// ------------------------------------------------------------- chunk ------

struct Chunk {
  std::vector<Instr> code;
  std::vector<Value> constants;  // literals: numbers, strings, bools, null
  std::vector<std::shared_ptr<const AstFunction>> functions;

  // IC storage, indexed by instruction immediates. Mutable at run time
  // (single-threaded per site, like the chunk itself); the VM runs over a
  // const Chunk and warms only these.
  mutable std::vector<VarIC> var_ics;
  mutable std::vector<PropIC> prop_ics;
  mutable std::vector<WriteIC> write_ics;
  mutable std::vector<CallIC> call_ics;

  // try/catch protected ranges: [start, end) in pc space, innermost first.
  struct Handler {
    std::uint32_t start = 0;
    std::uint32_t end = 0;
    std::uint32_t target = 0;
    Atom binding = kNoAtom;  // kNoAtom = no catch binding
  };
  std::vector<Handler> handlers;

  // Function chunks: activation layout the call prologue installs before
  // the body runs. param_atoms is one atom per declared parameter, in
  // order; needs_arguments is false when the body never mentions
  // `arguments`, letting the call path skip building the object.
  std::vector<Atom> param_atoms;
  bool needs_arguments = false;

  std::uint32_t num_regs = 0;
  std::string name;  // diagnostic label for the disassembler
};

// Human-readable disassembly with IC-slot annotations (`fu disasm`).
std::string disassemble(const Chunk& chunk, const AtomTable& atoms);

}  // namespace fu::script
