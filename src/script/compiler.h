// AST → register bytecode compiler (see bytecode.h for the instruction
// format and the fuel-accounting contract it must honour bit-for-bit).
#pragma once

#include <memory>
#include <string>

#include "script/ast.h"
#include "script/bytecode.h"

namespace fu::script {

// Compile a whole program (top-level statements, global scope).
std::shared_ptr<Chunk> compile_program(const Program& program, AtomTable& atoms);

// Compile one function body (activation scope with params/this/arguments).
std::shared_ptr<Chunk> compile_function(const AstFunction& fn, AtomTable& atoms);

// Per-engine memoized chunks: compiled once per (AST, AtomTable) pair and
// cached on the AST node, like the old per-engine atom memos. Single-
// threaded by the site-cache contract.
const Chunk& chunk_for(const Program& program, AtomTable& atoms);
const Chunk& chunk_for(const AstFunction& fn, AtomTable& atoms);

// Disassemble a program and, recursively, every function it defines
// (compiling on demand). Backs `fu disasm`.
std::string disassemble_program(const Program& program, AtomTable& atoms);

}  // namespace fu::script
