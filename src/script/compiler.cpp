// AST → register bytecode. The contract (bytecode.h) is bit-identical
// observable behaviour with the old tree-walking evaluator, including fuel
// accounting: the walker burned one unit at the entry of every
// exec(Stmt)/eval(Expr), so the compiler counts one pending unit per node
// it enters and folds the count into the next emitted instruction's fuel
// field. Pending burns are flushed as kNop before any jump target is bound
// (one-time burns must not sit inside a loop's back edge) and before a
// try-protected range starts (the walker charged a statement's entry burn
// before its own catch could see it).
#include "script/compiler.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "script/interp.h"

namespace fu::script {

namespace {

constexpr std::uint32_t kNoPatch = 0xFFFFFFFFu;

class FnCompiler {
 public:
  explicit FnCompiler(AtomTable& atoms) : at_(atoms) {}

  std::shared_ptr<Chunk> compile(const Program& program) {
    chunk_ = std::make_shared<Chunk>();
    chunk_->name = "<program>";
    for (const StmtPtr& s : program.statements) stmt(*s);
    finish();
    return std::move(chunk_);
  }

  std::shared_ptr<Chunk> compile(const AstFunction& fn) {
    chunk_ = std::make_shared<Chunk>();
    chunk_->name = fn.name.empty() ? "<anonymous>" : fn.name;
    // Reproduce the activation layout call_function installs: params in
    // declaration order (a duplicate name re-uses its first slot — define
    // is put, and put overwrites), then `this`, then `arguments` when the
    // body mentions it. These are the only bindings that exist
    // unconditionally before the body runs, so only they may be compiled
    // to fixed kGetLocal/kSetLocal slots; everything else (vars, outer
    // names) goes through the VarIC path.
    std::uint32_t next_slot = 0;
    auto define_local = [&](const std::string& name) {
      if (!locals_.count(name)) locals_.emplace(name, next_slot++);
    };
    chunk_->param_atoms.reserve(fn.params.size());
    for (const std::string& p : fn.params) {
      chunk_->param_atoms.push_back(at_.intern(p));
      define_local(p);
    }
    define_local("this");
    chunk_->needs_arguments = false;
    for (const StmtPtr& s : fn.body) {
      if (stmt_mentions_arguments(*s)) {
        chunk_->needs_arguments = true;
        break;
      }
    }
    if (chunk_->needs_arguments) define_local("arguments");
    has_locals_ = true;
    for (const StmtPtr& s : fn.body) stmt(*s);
    finish();
    return std::move(chunk_);
  }

 private:
  // ----------------------------------------------------------- emission --
  std::uint32_t emit(Op op, std::uint16_t a = 0, std::uint16_t b = 0,
                     std::uint16_t c = 0, std::uint32_t imm = 0) {
    while (pending_ > 255) {
      chunk_->code.push_back(Instr{Op::kNop, 255, 0, 0, 0, 0});
      pending_ -= 255;
    }
    chunk_->code.push_back(
        Instr{op, static_cast<std::uint8_t>(pending_), a, b, c, imm});
    pending_ = 0;
    return static_cast<std::uint32_t>(chunk_->code.size()) - 1;
  }

  void flush_pending() {
    while (pending_ > 0) {
      const std::uint32_t f = std::min<std::uint32_t>(pending_, 255);
      chunk_->code.push_back(
          Instr{Op::kNop, static_cast<std::uint8_t>(f), 0, 0, 0, 0});
      pending_ -= f;
    }
  }

  // Flush pending burns, then return the pc *after* the flush: fall-through
  // pays the pending fuel, jumps landing on the label do not.
  std::uint32_t bind_label() {
    flush_pending();
    return static_cast<std::uint32_t>(chunk_->code.size());
  }

  std::uint32_t here() const {
    return static_cast<std::uint32_t>(chunk_->code.size());
  }

  void patch(std::uint32_t instr, std::uint32_t target) {
    chunk_->code[instr].imm = target;
  }

  void burn() { ++pending_; }

  // ---------------------------------------------------------- registers --
  std::uint16_t alloc_reg() {
    const std::uint16_t r = next_reg_++;
    chunk_->num_regs = std::max<std::uint32_t>(chunk_->num_regs, next_reg_);
    return r;
  }

  // ---------------------------------------------------------- chunk pools --
  std::uint32_t add_const(Value v) {
    chunk_->constants.push_back(std::move(v));
    return static_cast<std::uint32_t>(chunk_->constants.size()) - 1;
  }

  std::uint32_t add_function(std::shared_ptr<AstFunction> fn) {
    chunk_->functions.push_back(std::move(fn));
    return static_cast<std::uint32_t>(chunk_->functions.size()) - 1;
  }

  std::uint32_t add_var_ic(const std::string& name) {
    chunk_->var_ics.push_back(VarIC{at_.intern(name), 0, 0});
    return static_cast<std::uint32_t>(chunk_->var_ics.size()) - 1;
  }

  std::uint32_t add_prop_ic(const std::string& name) {
    chunk_->prop_ics.emplace_back();
    chunk_->prop_ics.back().atom = at_.intern(name);
    return static_cast<std::uint32_t>(chunk_->prop_ics.size()) - 1;
  }

  std::uint32_t add_write_ic(const std::string& name) {
    chunk_->write_ics.emplace_back();
    chunk_->write_ics.back().atom = at_.intern(name);
    return static_cast<std::uint32_t>(chunk_->write_ics.size()) - 1;
  }

  std::uint32_t add_call_ic() {
    chunk_->call_ics.emplace_back();
    return static_cast<std::uint32_t>(chunk_->call_ics.size()) - 1;
  }

  const std::uint32_t* local_slot(const std::string& name) const {
    if (!has_locals_) return nullptr;
    const auto it = locals_.find(name);
    return it == locals_.end() ? nullptr : &it->second;
  }

  // ------------------------------------------------------- break/continue --
  struct LoopCtx {
    bool is_switch = false;
    std::vector<std::uint32_t> breaks;
    std::vector<std::uint32_t> continues;
  };

  void add_break(std::uint32_t jump) {
    if (loops_.empty()) {
      end_jumps_.push_back(jump);  // stray break: halt the whole chunk,
    } else {                       // matching Flow propagation out of run()
      loops_.back().breaks.push_back(jump);
    }
  }

  void add_continue(std::uint32_t jump) {
    for (auto it = loops_.rbegin(); it != loops_.rend(); ++it) {
      if (!it->is_switch) {
        it->continues.push_back(jump);
        return;
      }
    }
    end_jumps_.push_back(jump);
  }

  // ---------------------------------------------------------- statements --
  void stmt(const Stmt& s) {
    burn();  // exec(Stmt) entry
    switch (s.kind) {
      case Stmt::Kind::kEmpty:
        return;
      case Stmt::Kind::kExpr: {
        const std::uint16_t mark = next_reg_;
        (void)expr(*s.expr);
        next_reg_ = mark;
        return;
      }
      case Stmt::Kind::kVar: {
        const std::uint16_t mark = next_reg_;
        const std::uint16_t r = alloc_reg();
        if (s.expr) {
          expr_into(*s.expr, r);
        } else {
          emit(Op::kLoadUndefined, r);
        }
        emit(Op::kDefineVar, r, 0, 0, at_.intern(s.name));
        next_reg_ = mark;
        return;
      }
      case Stmt::Kind::kFunction: {
        const std::uint16_t mark = next_reg_;
        const std::uint16_t r = alloc_reg();
        emit(Op::kMakeFunction, r, 0, 0, add_function(s.function));
        emit(Op::kDefineVar, r, 0, 0, at_.intern(s.function->name));
        next_reg_ = mark;
        return;
      }
      case Stmt::Kind::kBlock: {
        for (const StmtPtr& child : s.statements) stmt(*child);
        return;
      }
      case Stmt::Kind::kIf: {
        const std::uint16_t mark = next_reg_;
        const std::uint16_t c = expr(*s.expr);
        const std::uint32_t jf = emit(Op::kJumpIfFalse, c);
        next_reg_ = mark;
        stmt(*s.body);
        if (s.else_body) {
          const std::uint32_t j = emit(Op::kJump);
          patch(jf, bind_label());
          stmt(*s.else_body);
          patch(j, bind_label());
        } else {
          patch(jf, bind_label());
        }
        return;
      }
      case Stmt::Kind::kWhile: {
        loops_.emplace_back();
        const std::uint32_t top = bind_label();
        const std::uint16_t mark = next_reg_;
        const std::uint16_t c = expr(*s.expr);
        const std::uint32_t jf = emit(Op::kJumpIfFalse, c);
        next_reg_ = mark;
        stmt(*s.body);
        emit(Op::kJump, 0, 0, 0, top);
        const std::uint32_t end = bind_label();
        patch(jf, end);
        close_loop(end, top);
        return;
      }
      case Stmt::Kind::kDoWhile: {
        loops_.emplace_back();
        const std::uint32_t top = bind_label();
        stmt(*s.body);
        const std::uint32_t cond = bind_label();
        const std::uint16_t mark = next_reg_;
        const std::uint16_t c = expr(*s.expr);
        emit(Op::kJumpIfTrue, c, 0, 0, top);
        next_reg_ = mark;
        const std::uint32_t end = bind_label();
        close_loop(end, cond);
        return;
      }
      case Stmt::Kind::kFor: {
        if (s.init_stmt) stmt(*s.init_stmt);
        if (s.init_expr) {
          const std::uint16_t mark = next_reg_;
          (void)expr(*s.init_expr);
          next_reg_ = mark;
        }
        loops_.emplace_back();
        const std::uint32_t top = bind_label();
        std::uint32_t jf = kNoPatch;
        if (s.expr) {
          const std::uint16_t mark = next_reg_;
          const std::uint16_t c = expr(*s.expr);
          jf = emit(Op::kJumpIfFalse, c);
          next_reg_ = mark;
        }
        stmt(*s.body);
        const std::uint32_t step = bind_label();
        if (s.step) {
          const std::uint16_t mark = next_reg_;
          (void)expr(*s.step);
          next_reg_ = mark;
        }
        emit(Op::kJump, 0, 0, 0, top);
        const std::uint32_t end = bind_label();
        if (jf != kNoPatch) patch(jf, end);
        close_loop(end, step);
        return;
      }
      case Stmt::Kind::kReturn: {
        if (s.expr) {
          const std::uint16_t mark = next_reg_;
          const std::uint16_t r = expr(*s.expr);
          emit(Op::kReturn, r);
          next_reg_ = mark;
        } else {
          emit(Op::kReturnUndefined);
        }
        return;
      }
      case Stmt::Kind::kBreak:
        add_break(emit(Op::kJump));
        return;
      case Stmt::Kind::kContinue:
        add_continue(emit(Op::kJump));
        return;
      case Stmt::Kind::kTry: {
        // The statement's own entry burn is charged *outside* the protected
        // range (the walker burned before entering its try block).
        flush_pending();
        const std::uint32_t start = here();
        for (const StmtPtr& child : s.statements) stmt(*child);
        const std::uint32_t jend = emit(Op::kJump);  // skip the catch body
        const std::uint32_t end = here();
        // Nested handlers were pushed while compiling the body, so they sit
        // earlier in the vector: first covering match = innermost.
        chunk_->handlers.push_back(Chunk::Handler{
            start, end, /*target=*/end,
            s.name.empty() ? kNoAtom : at_.intern(s.name)});
        for (const StmtPtr& child : s.catch_body) stmt(*child);
        patch(jend, bind_label());
        return;
      }
      case Stmt::Kind::kSwitch: {
        loops_.emplace_back();
        loops_.back().is_switch = true;
        const std::uint16_t mark = next_reg_;
        const std::uint16_t disc = expr(*s.expr);
        const std::uint16_t flag = alloc_reg();
        std::vector<std::uint32_t> clause_jumps(s.clauses.size(), kNoPatch);
        for (std::size_t i = 0; i < s.clauses.size(); ++i) {
          if (!s.clauses[i].test) continue;
          const std::uint16_t inner = next_reg_;
          const std::uint16_t t = expr(*s.clauses[i].test);
          emit(Op::kStrictEq, flag, t, disc);
          clause_jumps[i] = emit(Op::kJumpIfTrue, flag);
          next_reg_ = inner;
        }
        const std::uint32_t jdefault = emit(Op::kJump);
        next_reg_ = mark;
        std::vector<std::uint32_t> clause_pcs(s.clauses.size(), 0);
        int default_idx = -1;
        for (std::size_t i = 0; i < s.clauses.size(); ++i) {
          clause_pcs[i] = bind_label();
          if (!s.clauses[i].test) default_idx = static_cast<int>(i);
          for (const StmtPtr& child : s.clauses[i].body) stmt(*child);
        }
        const std::uint32_t end = bind_label();
        for (std::size_t i = 0; i < s.clauses.size(); ++i) {
          if (clause_jumps[i] != kNoPatch) patch(clause_jumps[i], clause_pcs[i]);
        }
        patch(jdefault, default_idx >= 0
                            ? clause_pcs[static_cast<std::size_t>(default_idx)]
                            : end);
        for (const std::uint32_t b : loops_.back().breaks) patch(b, end);
        loops_.pop_back();
        return;
      }
    }
    throw ScriptError("unknown statement kind");
  }

  void close_loop(std::uint32_t break_target, std::uint32_t continue_target) {
    for (const std::uint32_t b : loops_.back().breaks) patch(b, break_target);
    for (const std::uint32_t c : loops_.back().continues) {
      patch(c, continue_target);
    }
    loops_.pop_back();
  }

  // --------------------------------------------------------- expressions --
  // Evaluate into a fresh register; any temporaries used above it are
  // released before returning.
  std::uint16_t expr(const Expr& e) {
    const std::uint16_t dst = alloc_reg();
    expr_into(e, dst);
    return dst;
  }

  // Evaluate into `dst`. Restores next_reg_ to its entry value.
  void expr_into(const Expr& e, std::uint16_t dst) {
    burn();  // eval(Expr) entry
    switch (e.kind) {
      case Expr::Kind::kNumber:
        emit(Op::kLoadConst, dst, 0, 0, add_const(Value(e.number)));
        return;
      case Expr::Kind::kString:
        emit(Op::kLoadConst, dst, 0, 0, add_const(Value(e.text)));
        return;
      case Expr::Kind::kBool:
        emit(Op::kLoadConst, dst, 0, 0, add_const(Value(e.boolean)));
        return;
      case Expr::Kind::kNull:
        emit(Op::kLoadConst, dst, 0, 0, add_const(Value(Null{})));
        return;
      case Expr::Kind::kUndefined:
        emit(Op::kLoadUndefined, dst);
        return;
      case Expr::Kind::kIdentifier: {
        if (const std::uint32_t* slot = local_slot(e.text)) {
          emit(Op::kGetLocal, dst, 0, 0, *slot);
        } else {
          emit(Op::kGetVar, dst, 0, 0, add_var_ic(e.text));
        }
        return;
      }
      case Expr::Kind::kMember: {
        // Register reuse: `dst` is dead until this node's result lands, so
        // the base is evaluated straight into it (kGetProp reads r[b] fully
        // before writing r[a]). Right-deep member chains like a.b.c.d now
        // use one register instead of one per link.
        expr_into(*e.object, dst);
        emit(Op::kGetProp, dst, dst, 0, add_prop_ic(e.text));
        return;
      }
      case Expr::Kind::kIndex: {
        expr_into(*e.object, dst);  // base reuses dst (see kMember)
        const std::uint16_t mark = next_reg_;
        const std::uint16_t idx = expr(*e.index);
        emit(Op::kGetIndex, dst, dst, idx);
        next_reg_ = mark;
        return;
      }
      case Expr::Kind::kCall:
        compile_call(e, dst);
        return;
      case Expr::Kind::kNew: {
        const std::uint16_t mark = next_reg_;
        const std::uint16_t ctor = alloc_reg();
        expr_into(*e.callee, ctor);
        for (const ExprPtr& arg : e.args) {
          const std::uint16_t r = alloc_reg();
          expr_into(*arg, r);
        }
        emit(Op::kNew, dst, ctor, 0,
             static_cast<std::uint32_t>(e.args.size()));
        next_reg_ = mark;
        return;
      }
      case Expr::Kind::kAssign:
        compile_assign(e, dst);
        return;
      case Expr::Kind::kBinary:
        compile_binary(e, dst);
        return;
      case Expr::Kind::kUnary:
        compile_unary(e, dst);
        return;
      case Expr::Kind::kConditional: {
        // The condition reuses dst: its value is consumed by the jump
        // before either arm overwrites the register.
        expr_into(*e.cond, dst);
        const std::uint32_t jf = emit(Op::kJumpIfFalse, dst);
        expr_into(*e.then_expr, dst);
        const std::uint32_t j = emit(Op::kJump);
        patch(jf, bind_label());
        expr_into(*e.else_expr, dst);
        patch(j, bind_label());
        return;
      }
      case Expr::Kind::kFunction:
        emit(Op::kMakeFunction, dst, 0, 0, add_function(e.function));
        return;
      case Expr::Kind::kObjectLiteral: {
        emit(Op::kMakeObject, dst);
        const std::uint16_t mark = next_reg_;
        for (std::size_t i = 0; i < e.keys.size(); ++i) {
          const std::uint16_t v = alloc_reg();
          expr_into(*e.args[i], v);
          emit(Op::kDefineProp, v, dst, 0, at_.intern(e.keys[i]));
          next_reg_ = mark;
        }
        return;
      }
      case Expr::Kind::kArrayLiteral: {
        const std::uint16_t mark = next_reg_;
        for (const ExprPtr& arg : e.args) {
          const std::uint16_t r = alloc_reg();
          expr_into(*arg, r);
        }
        emit(Op::kMakeArray, dst, mark, 0,
             static_cast<std::uint32_t>(e.args.size()));
        next_reg_ = mark;
        return;
      }
    }
    throw ScriptError("unknown expression kind");
  }

  void compile_call(const Expr& e, std::uint16_t dst) {
    const std::uint16_t mark = next_reg_;
    const Expr& callee = *e.callee;
    // Method calls: the walker evaluated the base, resolved the member
    // *without* burning an eval() for the member node itself (eval_call
    // peeled it off before dispatch), and passed the base as `this`.
    if (callee.kind == Expr::Kind::kMember) {
      const std::uint16_t fn = alloc_reg();
      const std::uint16_t self = alloc_reg();
      expr_into(*callee.object, self);
      emit(Op::kGetMethod, fn, self, 0, add_prop_ic(callee.text));
      for (const ExprPtr& arg : e.args) {
        const std::uint16_t r = alloc_reg();
        expr_into(*arg, r);
      }
      emit(Op::kCallMethod, dst, fn,
           static_cast<std::uint16_t>(e.args.size()), add_call_ic());
    } else if (callee.kind == Expr::Kind::kIndex) {
      const std::uint16_t fn = alloc_reg();
      const std::uint16_t self = alloc_reg();
      expr_into(*callee.object, self);
      {
        const std::uint16_t inner = next_reg_;
        const std::uint16_t idx = expr(*callee.index);
        emit(Op::kGetIndex, fn, self, idx);
        next_reg_ = inner;
      }
      for (const ExprPtr& arg : e.args) {
        const std::uint16_t r = alloc_reg();
        expr_into(*arg, r);
      }
      emit(Op::kCallMethod, dst, fn,
           static_cast<std::uint16_t>(e.args.size()), add_call_ic());
    } else {
      const std::uint16_t fn = alloc_reg();
      expr_into(callee, fn);
      for (const ExprPtr& arg : e.args) {
        const std::uint16_t r = alloc_reg();
        expr_into(*arg, r);
      }
      emit(Op::kCall, dst, fn, static_cast<std::uint16_t>(e.args.size()),
           add_call_ic());
    }
    next_reg_ = mark;
  }

  void compile_assign(const Expr& e, std::uint16_t dst) {
    // The walker evaluated the RHS first, then dispatched on the target
    // node without burning an eval() for it (only its sub-expressions).
    const Expr& target = *e.lhs;
    expr_into(*e.rhs, dst);  // dst doubles as the assignment's result value
    switch (target.kind) {
      case Expr::Kind::kIdentifier: {
        if (const std::uint32_t* slot = local_slot(target.text)) {
          emit(Op::kSetLocal, dst, 0, 0, *slot);
        } else {
          emit(Op::kSetVar, dst, 0, 0, add_var_ic(target.text));
        }
        return;
      }
      case Expr::Kind::kMember: {
        const std::uint16_t mark = next_reg_;
        const std::uint16_t base = expr(*target.object);
        emit(Op::kSetProp, dst, base, 0, add_write_ic(target.text));
        next_reg_ = mark;
        return;
      }
      case Expr::Kind::kIndex: {
        const std::uint16_t mark = next_reg_;
        const std::uint16_t base = expr(*target.object);
        const std::uint16_t idx = expr(*target.index);
        emit(Op::kSetIndex, dst, base, idx);
        next_reg_ = mark;
        return;
      }
      default:
        emit(Op::kThrow, 0, 0, 0,
             add_const(Value(std::string("invalid assignment target"))));
        return;
    }
  }

  void compile_binary(const Expr& e, std::uint16_t dst) {
    if (e.binary_op == BinaryOp::kAnd || e.binary_op == BinaryOp::kOr) {
      expr_into(*e.lhs, dst);
      const std::uint32_t j =
          emit(e.binary_op == BinaryOp::kAnd ? Op::kJumpIfFalse
                                             : Op::kJumpIfTrue,
               dst);
      expr_into(*e.rhs, dst);
      patch(j, bind_label());
      return;
    }
    // The lhs reuses dst (every binary op reads both operands before
    // writing its result); only the rhs needs a temporary.
    expr_into(*e.lhs, dst);
    const std::uint16_t mark = next_reg_;
    const std::uint16_t r = expr(*e.rhs);
    Op op = Op::kAdd;
    switch (e.binary_op) {
      case BinaryOp::kAdd: op = Op::kAdd; break;
      case BinaryOp::kSub: op = Op::kSub; break;
      case BinaryOp::kMul: op = Op::kMul; break;
      case BinaryOp::kDiv: op = Op::kDiv; break;
      case BinaryOp::kMod: op = Op::kMod; break;
      case BinaryOp::kEq: op = Op::kEq; break;
      case BinaryOp::kNe: op = Op::kNe; break;
      case BinaryOp::kStrictEq: op = Op::kStrictEq; break;
      case BinaryOp::kStrictNe: op = Op::kStrictNe; break;
      case BinaryOp::kLt: op = Op::kLt; break;
      case BinaryOp::kGt: op = Op::kGt; break;
      case BinaryOp::kLe: op = Op::kLe; break;
      case BinaryOp::kGe: op = Op::kGe; break;
      case BinaryOp::kInstanceof: op = Op::kInstanceof; break;
      case BinaryOp::kIn: op = Op::kIn; break;
      case BinaryOp::kAnd:
      case BinaryOp::kOr: break;  // handled above
    }
    emit(op, dst, dst, r);
    next_reg_ = mark;
  }

  void compile_unary(const Expr& e, std::uint16_t dst) {
    switch (e.unary_op) {
      case UnaryOp::kTypeof: {
        // `typeof unboundName` must not throw, and the walker only burned
        // the operand's eval when the name was bound — kTypeofVar charges
        // that unit at run time on the bound path.
        if (e.lhs->kind == Expr::Kind::kIdentifier &&
            !local_slot(e.lhs->text)) {
          emit(Op::kTypeofVar, dst, 0, 0, add_var_ic(e.lhs->text));
          return;
        }
        expr_into(*e.lhs, dst);  // operand reuses dst
        emit(Op::kTypeofValue, dst, dst);
        return;
      }
      case UnaryOp::kDelete: {
        const Expr& target = *e.lhs;
        if (target.kind == Expr::Kind::kMember) {
          const std::uint16_t mark = next_reg_;
          const std::uint16_t base = expr(*target.object);
          emit(Op::kDeleteProp, dst, base, 0, at_.intern(target.text));
          next_reg_ = mark;
          return;
        }
        if (target.kind == Expr::Kind::kIndex) {
          // The walker skipped evaluating the index when the base was not
          // an object (result: true, no burns for the index expression).
          const std::uint16_t mark = next_reg_;
          const std::uint16_t base = expr(*target.object);
          const std::uint16_t flag = alloc_reg();
          emit(Op::kIsObject, flag, base);
          const std::uint32_t jf = emit(Op::kJumpIfFalse, flag);
          const std::uint16_t idx = expr(*target.index);
          emit(Op::kDeleteIndex, dst, base, idx);
          const std::uint32_t j = emit(Op::kJump);
          patch(jf, bind_label());
          emit(Op::kLoadConst, dst, 0, 0, add_const(Value(true)));
          patch(j, bind_label());
          next_reg_ = mark;
          return;
        }
        // delete of a non-reference: the walker evaluated it and returned
        // true.
        const std::uint16_t mark = next_reg_;
        (void)expr(target);
        emit(Op::kLoadConst, dst, 0, 0, add_const(Value(true)));
        next_reg_ = mark;
        return;
      }
      case UnaryOp::kNot:
      case UnaryOp::kNeg: {
        expr_into(*e.lhs, dst);  // operand reuses dst
        emit(e.unary_op == UnaryOp::kNot ? Op::kNot : Op::kNeg, dst, dst);
        return;
      }
    }
    throw ScriptError("unknown unary operator");
  }

  // --------------------------------------------------- `arguments` scan --
  // True when the body mentions the identifier `arguments` outside nested
  // function bodies (those get their own activation's object).
  static bool stmt_mentions_arguments(const Stmt& s) {
    if (s.expr && expr_mentions_arguments(*s.expr)) return true;
    if (s.body && stmt_mentions_arguments(*s.body)) return true;
    if (s.else_body && stmt_mentions_arguments(*s.else_body)) return true;
    if (s.init_expr && expr_mentions_arguments(*s.init_expr)) return true;
    if (s.init_stmt && stmt_mentions_arguments(*s.init_stmt)) return true;
    if (s.step && expr_mentions_arguments(*s.step)) return true;
    for (const StmtPtr& child : s.statements) {
      if (stmt_mentions_arguments(*child)) return true;
    }
    for (const StmtPtr& child : s.catch_body) {
      if (stmt_mentions_arguments(*child)) return true;
    }
    for (const Stmt::SwitchClause& clause : s.clauses) {
      if (clause.test && expr_mentions_arguments(*clause.test)) return true;
      for (const StmtPtr& child : clause.body) {
        if (stmt_mentions_arguments(*child)) return true;
      }
    }
    return false;
  }

  static bool expr_mentions_arguments(const Expr& e) {
    if (e.kind == Expr::Kind::kIdentifier && e.text == "arguments") {
      return true;
    }
    if (e.kind == Expr::Kind::kFunction) return false;  // fresh activation
    if (e.object && expr_mentions_arguments(*e.object)) return true;
    if (e.index && expr_mentions_arguments(*e.index)) return true;
    if (e.callee && expr_mentions_arguments(*e.callee)) return true;
    if (e.lhs && expr_mentions_arguments(*e.lhs)) return true;
    if (e.rhs && expr_mentions_arguments(*e.rhs)) return true;
    if (e.cond && expr_mentions_arguments(*e.cond)) return true;
    if (e.then_expr && expr_mentions_arguments(*e.then_expr)) return true;
    if (e.else_expr && expr_mentions_arguments(*e.else_expr)) return true;
    for (const ExprPtr& arg : e.args) {
      if (arg && expr_mentions_arguments(*arg)) return true;
    }
    return false;
  }

  void finish() {
    const std::uint32_t end = bind_label();
    emit(Op::kReturnUndefined);
    for (const std::uint32_t j : end_jumps_) patch(j, end);
    // A chunk always has at least one register so the VM's frame setup
    // never deals with an empty window.
    chunk_->num_regs = std::max<std::uint32_t>(chunk_->num_regs, 1);
  }

  AtomTable& at_;
  std::shared_ptr<Chunk> chunk_;
  std::uint32_t pending_ = 0;  // entry burns not yet folded into an instr
  std::uint16_t next_reg_ = 0;
  bool has_locals_ = false;
  std::unordered_map<std::string, std::uint32_t> locals_;
  std::vector<LoopCtx> loops_;
  std::vector<std::uint32_t> end_jumps_;  // stray break/continue → chunk end
};

}  // namespace

std::shared_ptr<Chunk> compile_program(const Program& program,
                                       AtomTable& atoms) {
  return FnCompiler(atoms).compile(program);
}

std::shared_ptr<Chunk> compile_function(const AstFunction& fn,
                                        AtomTable& atoms) {
  return FnCompiler(atoms).compile(fn);
}

const Chunk& chunk_for(const Program& program, AtomTable& atoms) {
  if (program.chunk_engine != atoms.id() || !program.chunk) {
    program.chunk = compile_program(program, atoms);
    program.chunk_engine = atoms.id();
  }
  return *program.chunk;
}

const Chunk& chunk_for(const AstFunction& fn, AtomTable& atoms) {
  if (fn.chunk_engine != atoms.id() || !fn.chunk) {
    fn.chunk = compile_function(fn, atoms);
    fn.chunk_engine = atoms.id();
  }
  return *fn.chunk;
}

std::string disassemble_program(const Program& program, AtomTable& atoms) {
  std::string out;
  const Chunk& top = chunk_for(program, atoms);
  // Depth-first over the chunk's function pool: the AST is a tree, so no
  // cycle guard is needed.
  std::vector<const Chunk*> stack{&top};
  while (!stack.empty()) {
    const Chunk* chunk = stack.back();
    stack.pop_back();
    out += disassemble(*chunk, atoms);
    std::vector<const Chunk*> children;
    for (const auto& fn : chunk->functions) {
      children.push_back(&chunk_for(*fn, atoms));
    }
    for (auto it = children.rbegin(); it != children.rend(); ++it) {
      stack.push_back(*it);
    }
    if (!stack.empty()) out += "\n";
  }
  return out;
}

}  // namespace fu::script
