// Extended builtins: Array methods, String methods, JSON, Object helpers.
// Separated from the interpreter core to keep interp.cpp focused on
// evaluation semantics. Everything here goes through the public Heap API.
#include <algorithm>
#include <cmath>

#include "script/interp.h"

namespace fu::script {

namespace {

// --- array helpers --------------------------------------------------------

double array_length(Heap& heap, ObjectRef arr) {
  const Value len = heap.get_property(arr, "length");
  return len.is_number() ? len.as_number() : 0;
}

void set_array_length(Heap& heap, ObjectRef arr, double n) {
  heap.define_property(arr, heap.atoms().well_known().length, Value(n));
}

Value array_push(Interpreter& in, const Value& self,
                 std::span<const Value> args) {
  if (!self.is_object()) throw ScriptError("push: not an array");
  Heap& heap = in.heap();
  double n = array_length(heap, self.as_object());
  for (const Value& v : args) {
    heap.define_property(
        self.as_object(),
        heap.atoms().intern_index(static_cast<std::uint64_t>(n)), v);
    n += 1;
  }
  set_array_length(heap, self.as_object(), n);
  return Value(n);
}

Value array_pop(Interpreter& in, const Value& self, std::span<const Value>) {
  if (!self.is_object()) throw ScriptError("pop: not an array");
  Heap& heap = in.heap();
  double n = array_length(heap, self.as_object());
  if (n <= 0) return Value();
  n -= 1;
  const Atom key = heap.atoms().intern_index(static_cast<std::uint64_t>(n));
  JsObject& obj = heap.get(self.as_object());
  Value out;
  if (const Value* v = obj.properties.find(key)) {
    out = *v;
    obj.properties.erase(key);
  }
  set_array_length(heap, self.as_object(), n);
  return out;
}

Value array_join(Interpreter& in, const Value& self,
                 std::span<const Value> args) {
  if (!self.is_object()) throw ScriptError("join: not an array");
  Heap& heap = in.heap();
  const std::string sep =
      args.empty() ? "," : args[0].to_display_string();
  const double n = array_length(heap, self.as_object());
  std::string out;
  for (long long i = 0; i < static_cast<long long>(n); ++i) {
    if (i) out += sep;
    const Value v = heap.get_property(
        self.as_object(),
        heap.atoms().intern_index(static_cast<std::uint64_t>(i)));
    if (!v.is_undefined() && !v.is_null()) out += v.to_display_string();
  }
  return Value(std::move(out));
}

Value array_index_of(Interpreter& in, const Value& self,
                     std::span<const Value> args) {
  if (!self.is_object() || args.empty()) return Value(-1.0);
  Heap& heap = in.heap();
  const double n = array_length(heap, self.as_object());
  for (long long i = 0; i < static_cast<long long>(n); ++i) {
    if (heap.get_property(
            self.as_object(),
            heap.atoms().intern_index(static_cast<std::uint64_t>(i))) ==
        args[0]) {
      return Value(static_cast<double>(i));
    }
  }
  return Value(-1.0);
}

Value array_slice(Interpreter& in, const Value& self,
                  std::span<const Value> args) {
  if (!self.is_object()) throw ScriptError("slice: not an array");
  Heap& heap = in.heap();
  const auto n = static_cast<long long>(array_length(heap, self.as_object()));
  long long from = args.size() > 0 ? static_cast<long long>(args[0].to_number())
                                   : 0;
  long long to =
      args.size() > 1 ? static_cast<long long>(args[1].to_number()) : n;
  if (from < 0) from += n;
  if (to < 0) to += n;
  from = std::clamp<long long>(from, 0, n);
  to = std::clamp<long long>(to, 0, n);
  std::vector<Value> out;
  for (long long i = from; i < to; ++i) {
    out.push_back(heap.get_property(
        self.as_object(),
        heap.atoms().intern_index(static_cast<std::uint64_t>(i))));
  }
  return in.make_array(out);
}

// --- string helpers -------------------------------------------------------

std::string self_string(const Value& self) {
  if (!self.is_string()) throw ScriptError("string method on non-string");
  return self.as_string();
}

Value string_index_of(Interpreter&, const Value& self,
                      std::span<const Value> args) {
  const std::string s = self_string(self);
  if (args.empty()) return Value(-1.0);
  const auto pos = s.find(args[0].to_display_string());
  return Value(pos == std::string::npos ? -1.0 : static_cast<double>(pos));
}

Value string_slice(Interpreter&, const Value& self,
                   std::span<const Value> args) {
  const std::string s = self_string(self);
  const auto n = static_cast<long long>(s.size());
  long long from =
      args.size() > 0 ? static_cast<long long>(args[0].to_number()) : 0;
  long long to =
      args.size() > 1 ? static_cast<long long>(args[1].to_number()) : n;
  if (from < 0) from += n;
  if (to < 0) to += n;
  from = std::clamp<long long>(from, 0, n);
  to = std::clamp<long long>(to, 0, n);
  if (from >= to) return Value(std::string());
  return Value(s.substr(static_cast<std::size_t>(from),
                        static_cast<std::size_t>(to - from)));
}

Value string_split(Interpreter& in, const Value& self,
                   std::span<const Value> args) {
  const std::string s = self_string(self);
  std::vector<Value> parts;
  if (args.empty()) {
    parts.emplace_back(s);
    return in.make_array(parts);
  }
  const std::string sep = args[0].to_display_string();
  if (sep.empty()) {
    for (const char c : s) parts.emplace_back(std::string(1, c));
    return in.make_array(parts);
  }
  std::size_t start = 0;
  for (;;) {
    const std::size_t at = s.find(sep, start);
    if (at == std::string::npos) {
      parts.emplace_back(s.substr(start));
      break;
    }
    parts.emplace_back(s.substr(start, at - start));
    start = at + sep.size();
  }
  return in.make_array(parts);
}

Value string_replace(Interpreter&, const Value& self,
                     std::span<const Value> args) {
  std::string s = self_string(self);
  if (args.size() < 2) return Value(std::move(s));
  const std::string needle = args[0].to_display_string();
  const std::string replacement = args[1].to_display_string();
  if (needle.empty()) return Value(std::move(s));
  const std::size_t at = s.find(needle);  // JS replaces first occurrence
  if (at != std::string::npos) s.replace(at, needle.size(), replacement);
  return Value(std::move(s));
}

Value string_char_at(Interpreter&, const Value& self,
                     std::span<const Value> args) {
  const std::string s = self_string(self);
  const auto i =
      args.empty() ? 0 : static_cast<long long>(args[0].to_number());
  if (i < 0 || i >= static_cast<long long>(s.size())) {
    return Value(std::string());
  }
  return Value(std::string(1, s[static_cast<std::size_t>(i)]));
}

// --- JSON ------------------------------------------------------------------

void json_stringify_into(Heap& heap, const Value& value, std::string& out,
                         int depth) {
  if (depth > 16) {
    out += "null";
    return;
  }
  if (value.is_undefined() || value.is_null()) {
    out += "null";
    return;
  }
  if (value.is_bool()) {
    out += value.as_bool() ? "true" : "false";
    return;
  }
  if (value.is_number()) {
    const double d = value.as_number();
    out += std::isfinite(d) ? value.to_display_string() : "null";
    return;
  }
  if (value.is_string()) {
    out.push_back('"');
    for (const char c : value.as_string()) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default: out.push_back(c);
      }
    }
    out.push_back('"');
    return;
  }
  const JsObject& obj = heap.get(value.as_object());
  if (obj.callable) {
    out += "null";
    return;
  }
  if (obj.class_name == "Array") {
    out.push_back('[');
    const double n = array_length(heap, value.as_object());
    for (long long i = 0; i < static_cast<long long>(n); ++i) {
      if (i) out.push_back(',');
      json_stringify_into(
          heap,
          heap.get_property(
              value.as_object(),
              heap.atoms().intern_index(static_cast<std::uint64_t>(i))),
          out, depth + 1);
    }
    out.push_back(']');
    return;
  }
  out.push_back('{');
  bool first = true;
  // insertion order, like JSON.stringify over ordinary JS objects
  for (const PropertySlots::Slot& slot : obj.properties.slots()) {
    if (!first) out.push_back(',');
    first = false;
    json_stringify_into(heap, Value(heap.atoms().name(slot.atom)), out,
                        depth + 1);
    out.push_back(':');
    json_stringify_into(heap, slot.value, out, depth + 1);
  }
  out.push_back('}');
}

class JsonParser {
 public:
  JsonParser(Interpreter& in, std::string_view text) : in_(in), src_(text) {}

  Value run() {
    const Value v = parse_value();
    skip_space();
    if (pos_ != src_.size()) throw ScriptError("JSON.parse: trailing data");
    return v;
  }

 private:
  void skip_space() {
    while (pos_ < src_.size() &&
           std::isspace(static_cast<unsigned char>(src_[pos_]))) {
      ++pos_;
    }
  }
  char peek() { return pos_ < src_.size() ? src_[pos_] : '\0'; }
  bool consume(std::string_view word) {
    if (src_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Value parse_value() {
    skip_space();
    if (consume("null")) return Value(Null{});
    if (consume("true")) return Value(true);
    if (consume("false")) return Value(false);
    const char c = peek();
    if (c == '"') return parse_string();
    if (c == '[') return parse_array();
    if (c == '{') return parse_object();
    return parse_number();
  }

  Value parse_string() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < src_.size() && src_[pos_] != '"') {
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) {
        const char esc = src_[pos_ + 1];
        switch (esc) {
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          default: out.push_back(esc);
        }
        pos_ += 2;
        continue;
      }
      out.push_back(src_[pos_++]);
    }
    if (pos_ >= src_.size()) throw ScriptError("JSON.parse: bad string");
    ++pos_;
    return Value(std::move(out));
  }

  Value parse_number() {
    const std::size_t start = pos_;
    while (pos_ < src_.size() &&
           (std::isdigit(static_cast<unsigned char>(src_[pos_])) ||
            src_[pos_] == '-' || src_[pos_] == '+' || src_[pos_] == '.' ||
            src_[pos_] == 'e' || src_[pos_] == 'E')) {
      ++pos_;
    }
    if (start == pos_) throw ScriptError("JSON.parse: unexpected token");
    try {
      return Value(std::stod(std::string(src_.substr(start, pos_ - start))));
    } catch (const std::exception&) {
      throw ScriptError("JSON.parse: bad number");
    }
  }

  Value parse_array() {
    ++pos_;  // '['
    std::vector<Value> elements;
    skip_space();
    if (peek() == ']') {
      ++pos_;
      return in_.make_array(elements);
    }
    for (;;) {
      elements.push_back(parse_value());
      skip_space();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return in_.make_array(elements);
      }
      throw ScriptError("JSON.parse: bad array");
    }
  }

  Value parse_object() {
    ++pos_;  // '{'
    const ObjectRef obj = in_.heap().make_object();
    skip_space();
    if (peek() == '}') {
      ++pos_;
      return Value(obj);
    }
    for (;;) {
      skip_space();
      if (peek() != '"') throw ScriptError("JSON.parse: bad object key");
      const Value key = parse_string();
      skip_space();
      if (peek() != ':') throw ScriptError("JSON.parse: missing ':'");
      ++pos_;
      in_.heap().define_property(obj, key.as_string(), parse_value());
      skip_space();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return Value(obj);
      }
      throw ScriptError("JSON.parse: bad object");
    }
  }

  Interpreter& in_;
  std::string_view src_;
  std::size_t pos_ = 0;
};

}  // namespace

Value Interpreter::make_array(std::span<const Value> elements) {
  const ObjectRef arr = heap_.make_object(array_prototype_, "Array");
  JsObject& obj = heap_.get(arr);
  for (std::size_t i = 0; i < elements.size(); ++i) {
    obj.properties.put(heap_.atoms().intern_index(i)) = elements[i];
  }
  obj.properties.put(heap_.atoms().well_known().length) =
      Value(static_cast<double>(elements.size()));
  return Value(arr);
}

void Interpreter::install_extended_builtins() {
  Heap& h = heap_;
  const auto def = [&h](ObjectRef target, const char* name, NativeFn fn) {
    h.define_property(target, name, Value(h.make_function(std::move(fn), name)));
  };

  // Array.prototype
  array_prototype_ = h.make_object(ObjectRef(), "ArrayPrototype");
  def(array_prototype_, "push", array_push);
  def(array_prototype_, "pop", array_pop);
  def(array_prototype_, "join", array_join);
  def(array_prototype_, "indexOf", array_index_of);
  def(array_prototype_, "slice", array_slice);

  // String.prototype-alike (strings are primitives; member access falls
  // back here with the string itself bound as `this`)
  string_prototype_ = h.make_object(ObjectRef(), "StringPrototype");
  def(string_prototype_, "indexOf", string_index_of);
  def(string_prototype_, "slice", string_slice);
  def(string_prototype_, "substring", string_slice);
  def(string_prototype_, "split", string_split);
  def(string_prototype_, "replace", string_replace);
  def(string_prototype_, "charAt", string_char_at);
  def(string_prototype_, "toUpperCase",
      [](Interpreter&, const Value& self, std::span<const Value>) {
        std::string s = self_string(self);
        std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
          return static_cast<char>(std::toupper(c));
        });
        return Value(std::move(s));
      });
  def(string_prototype_, "toLowerCase",
      [](Interpreter&, const Value& self, std::span<const Value>) {
        std::string s = self_string(self);
        std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
          return static_cast<char>(std::tolower(c));
        });
        return Value(std::move(s));
      });

  // JSON
  const ObjectRef json = h.make_object(ObjectRef(), "JSON");
  def(json, "stringify",
      [](Interpreter& in, const Value&, std::span<const Value> args) {
        std::string out;
        json_stringify_into(in.heap(), args.empty() ? Value() : args[0], out,
                            0);
        return Value(std::move(out));
      });
  def(json, "parse",
      [](Interpreter& in, const Value&, std::span<const Value> args) {
        if (args.empty() || !args[0].is_string()) {
          throw ScriptError("JSON.parse: expected a string");
        }
        return JsonParser(in, args[0].as_string()).run();
      });
  global_env_->define("JSON", Value(json));

  // Object.keys / Array.isArray
  const ObjectRef object_ns = h.make_object(ObjectRef(), "ObjectNamespace");
  def(object_ns, "keys",
      [](Interpreter& in, const Value&, std::span<const Value> args) {
        std::vector<Value> keys;
        if (!args.empty() && args[0].is_object()) {
          // insertion order, like JavaScript's Object.keys
          for (const PropertySlots::Slot& slot :
               in.heap().get(args[0].as_object()).properties.slots()) {
            keys.emplace_back(in.heap().atoms().name(slot.atom));
          }
        }
        return in.make_array(keys);
      });
  global_env_->define("Object", Value(object_ns));

  const ObjectRef array_ns = h.make_object(ObjectRef(), "ArrayNamespace");
  h.define_property(array_ns, h.atoms().well_known().prototype,
                    Value(array_prototype_));
  def(array_ns, "isArray",
      [](Interpreter& in, const Value&, std::span<const Value> args) {
        return Value(!args.empty() && args[0].is_object() &&
                     in.heap().get(args[0].as_object()).class_name == "Array");
      });
  global_env_->define("Array", Value(array_ns));
}

}  // namespace fu::script
