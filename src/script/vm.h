// Register-bytecode dispatch loop. Replaces the tree-walking Evaluator:
// execute()/call_function() compile (memoized) and hand the chunk here.
#pragma once

#include "script/bytecode.h"
#include "script/interp.h"

namespace fu::script {

class Vm {
 public:
  // Run a chunk in `env` (the global scope for programs, a fresh activation
  // for function bodies — the caller installs params/this/arguments first).
  // Returns the chunk's return value, undefined if it runs off the end.
  static Value run(Interpreter& interp, const Chunk& chunk, Environment* env);
};

}  // namespace fu::script
