// MiniJS value model: a small prototype-based dynamic object system.
//
// This is the reproduction's stand-in for SpiderMonkey. It is deliberately
// faithful to the parts of JavaScript the paper's instrumentation relies on:
//   * objects with prototype chains — methods live on Interface.prototype
//     objects and are *replaceable*, so the measuring extension can shim them
//     with counting wrappers that close over the originals (§4.2.1);
//   * watchable objects — a per-object property-write hook equivalent to
//     Firefox's non-standard Object.watch(), which the extension uses to
//     count property writes on singletons (window, document, navigator)
//     and which cannot see writes on other objects (§4.2.2);
//   * first-class functions and closures, so pages can register handlers.
//
// Property storage is a flat slot vector keyed by interned Atom (see
// atoms.h), in insertion order — which is both JavaScript's enumeration
// order and what keeps watch-hook callbacks and Object.keys deterministic.
// Each object carries a `shape` version, bumped only when the slot *layout*
// changes (add/delete, not value overwrite); inline caches guard on it.
//
// Memory: all objects live in a Heap arena owned by the page's Interpreter;
// nothing is collected mid-page (pages are short-lived). ObjectRef is an
// index into the arena.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <variant>
#include <vector>

#include "script/atoms.h"

namespace fu::obs::mem {
enum class Domain : std::uint8_t;  // obs/mem.h
}

namespace fu::script {

class Heap;
class Interpreter;
struct JsObject;

// Index of an object in its heap. 0 is reserved (null object reference).
class ObjectRef {
 public:
  constexpr ObjectRef() = default;
  constexpr explicit ObjectRef(std::uint32_t index) : index_(index) {}

  constexpr bool null() const noexcept { return index_ == 0; }
  constexpr std::uint32_t index() const noexcept { return index_; }
  friend constexpr bool operator==(ObjectRef, ObjectRef) = default;
  friend constexpr auto operator<=>(ObjectRef, ObjectRef) = default;

 private:
  std::uint32_t index_ = 0;
};

struct Undefined {
  friend constexpr bool operator==(Undefined, Undefined) { return true; }
};
struct Null {
  friend constexpr bool operator==(Null, Null) { return true; }
};

class Value {
 public:
  Value() : data_(Undefined{}) {}
  Value(Undefined) : data_(Undefined{}) {}
  Value(Null) : data_(Null{}) {}
  Value(bool b) : data_(b) {}
  Value(double d) : data_(d) {}
  Value(int i) : data_(static_cast<double>(i)) {}
  Value(std::string s) : data_(std::move(s)) {}
  Value(const char* s) : data_(std::string(s)) {}
  Value(ObjectRef ref) : data_(ref) {}

  bool is_undefined() const { return std::holds_alternative<Undefined>(data_); }
  bool is_null() const { return std::holds_alternative<Null>(data_); }
  bool is_bool() const { return std::holds_alternative<bool>(data_); }
  bool is_number() const { return std::holds_alternative<double>(data_); }
  bool is_string() const { return std::holds_alternative<std::string>(data_); }
  bool is_object() const { return std::holds_alternative<ObjectRef>(data_); }

  bool as_bool() const { return std::get<bool>(data_); }
  double as_number() const { return std::get<double>(data_); }
  const std::string& as_string() const { return std::get<std::string>(data_); }
  ObjectRef as_object() const { return std::get<ObjectRef>(data_); }

  // JavaScript-style coercions.
  bool truthy() const;
  double to_number() const;          // NaN for non-coercible
  std::string to_display_string() const;

  // Loose equality for primitives; objects compare by identity.
  bool loose_equals(const Value& other) const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.data_ == b.data_;
  }

 private:
  std::variant<Undefined, Null, bool, double, std::string, ObjectRef> data_;
};

// Shared shape-transition tree (the "hidden class" lattice). Every heap
// object's shape is a node id in its heap's tree: objects start at a root
// node keyed by their prototype and each property *append* follows (or
// creates) the edge labelled with the appended atom. Two objects that were
// born with the same prototype and added the same properties in the same
// order therefore carry the *same* shape id — so one object's warm inline
// cache entry validates against the other, and a shape match alone proves
// both the slot layout and the identity of the prototype (prototypes are
// only ever assigned at make_object time). A delete drops the object to a
// fresh never-shared node ("dictionary mode"), since its slot indices no
// longer match anything on the shared path. Value overwrites never move an
// object along the tree, which is exactly the PR 3 invariant the measuring
// extension's shim injection relies on.
class ShapeTree {
 public:
  // Root node for objects born with this prototype (get-or-create).
  std::uint32_t root_for(std::uint32_t proto_index);
  // Child of `from` along `atom` (get-or-create).
  std::uint32_t transition(std::uint32_t from, Atom atom);
  // Fresh node no other object can ever reach (post-delete layouts).
  std::uint32_t unique_shape();

  // Become a structural copy of `other`, preserving every node id — cloned
  // heaps keep the exact shape numbering of the snapshot image they came
  // from, so a clone's transitions continue where the image's left off.
  void clone_from(const ShapeTree& other);

  std::size_t size() const noexcept { return nodes_.size(); }

 private:
  struct Node {
    // Almost every node has fan-out 0 or 1 (layouts form chains), so the
    // first edge lives inline and only genuine branch points pay for an
    // overflow vector — a fresh heap creates thousands of chain nodes while
    // the host bindings install, and this keeps that allocation-free.
    Atom first_atom = kNoAtom;
    std::uint32_t first_child = 0;
    std::unique_ptr<std::vector<std::pair<Atom, std::uint32_t>>> more;
  };
  std::vector<Node> nodes_ = std::vector<Node>(1);  // node 0 = unattached
  std::vector<std::uint32_t> roots_;  // proto object index -> root node (0 = none)
};

// Insertion-ordered atom → Value store. Linear scan below a size threshold
// (property counts on real objects are tiny and the scan compares uint32s);
// a side hash index kicks in for the handful of big objects (window, the
// interface map). Slot indices are stable until a delete; `shape()` changes
// exactly when any slot index might have. Heap objects are attached to the
// heap's ShapeTree so equal layouts share shape ids; unattached stores
// (environment bindings) fall back to a private bump counter.
class PropertySlots {
 public:
  static constexpr std::uint32_t kMissSlot = 0xFFFFFFFFu;

  struct Slot {
    Atom atom;
    Value value;
  };

  PropertySlots() = default;
  // Copies preserve the shape id and the (possibly foreign) tree pointer;
  // heap cloning rebinds the pointer to the clone's own tree afterwards so
  // a clone never mutates the frozen image's ShapeTree.
  PropertySlots(const PropertySlots& other)
      : slots_(other.slots_),
        index_(other.index_ ? std::make_unique<
                                  std::unordered_map<Atom, std::uint32_t>>(
                                  *other.index_)
                            : nullptr),
        shapes_(other.shapes_),
        shape_(other.shape_) {}
  PropertySlots& operator=(const PropertySlots& other) {
    if (this != &other) {
      PropertySlots copy(other);
      *this = std::move(copy);
    }
    return *this;
  }
  PropertySlots(PropertySlots&&) = default;
  PropertySlots& operator=(PropertySlots&&) = default;

  std::uint32_t index_of(Atom atom) const {
    if (index_) {
      const auto it = index_->find(atom);
      return it == index_->end() ? kMissSlot : it->second;
    }
    for (std::uint32_t i = 0; i < slots_.size(); ++i) {
      if (slots_[i].atom == atom) return i;
    }
    return kMissSlot;
  }

  const Value* find(Atom atom) const {
    const std::uint32_t slot = index_of(atom);
    return slot == kMissSlot ? nullptr : &slots_[slot].value;
  }
  Value* find(Atom atom) {
    const std::uint32_t slot = index_of(atom);
    return slot == kMissSlot ? nullptr : &slots_[slot].value;
  }

  // Find-or-append. Appending bumps the shape; overwriting through the
  // returned reference does not (value changes are invisible to caches).
  Value& put(Atom atom);

  bool erase(Atom atom);

  Value& value_at(std::uint32_t slot) { return slots_[slot].value; }
  const Value& value_at(std::uint32_t slot) const {
    return slots_[slot].value;
  }

  std::span<const Slot> slots() const noexcept {
    return {slots_.data(), slots_.size()};
  }

  std::uint32_t shape() const noexcept { return shape_; }
  std::size_t size() const noexcept { return slots_.size(); }
  bool empty() const noexcept { return slots_.empty(); }

  void reserve(std::size_t n) { slots_.reserve(n); }

  // Join a shared shape tree at the given root (Heap::make_object). Must
  // happen before any property is added.
  void attach(ShapeTree* tree, std::uint32_t root) {
    shapes_ = tree;
    shape_ = root;
  }

  // Retarget the tree pointer without touching the shape id. Only valid
  // when `tree` is a node-for-node clone of the currently attached tree
  // (Heap::clone_from), so every stored shape id stays meaningful.
  void rebind_shapes(ShapeTree* tree) { shapes_ = tree; }

 private:
  static constexpr std::size_t kIndexThreshold = 12;

  std::vector<Slot> slots_;  // insertion order == enumeration order
  std::unique_ptr<std::unordered_map<Atom, std::uint32_t>> index_;
  ShapeTree* shapes_ = nullptr;  // null: private counter shapes
  std::uint32_t shape_ = 0;
};

// Native (C++-implemented) function. Receives the interpreter, the `this`
// value and the argument list.
using NativeFn =
    std::function<Value(Interpreter&, const Value& self, std::span<const Value>)>;

// Property-write hook, the Object.watch() equivalent. Called *after* the
// write with (property name, new value).
using WatchHandler = std::function<void(const std::string&, const Value&)>;

struct AstFunction;  // defined in ast.h
class Environment;   // defined in interp.h

// Function payload attached to a callable object.
struct Callable {
  // exactly one of native / script is set
  NativeFn native;
  // Shared ownership: a function value keeps its AST alive even if the
  // Program it was parsed from has been destroyed (handlers frequently
  // outlive the script that registered them).
  std::shared_ptr<const AstFunction> script;
  Environment* closure = nullptr;  // captured scope for script functions
  std::string name;                // diagnostic / shim bookkeeping
};

struct JsObject {
  PropertySlots properties;
  ObjectRef prototype;
  // Shared, immutable once created: a cloned heap's function objects point
  // at the same Callable as the snapshot image (a refcount bump instead of
  // a std::function deep copy per shim — there are ~3.3k per session).
  std::shared_ptr<const Callable> callable;  // set iff the object is a function
  std::optional<WatchHandler> watch;   // Object.watch-style hook
  std::string class_name = "Object";   // e.g. "XMLHttpRequest" for instances
  // Host back-pointer for DOM wrapper objects (non-owning).
  void* host = nullptr;
};

class Heap {
 public:
  Heap();
  ~Heap();
  Heap(const Heap&) = delete;
  Heap& operator=(const Heap&) = delete;

  ObjectRef make_object(ObjectRef prototype = ObjectRef(),
                        std::string class_name = "Object");
  ObjectRef make_function(NativeFn fn, std::string name);
  ObjectRef make_script_function(std::shared_ptr<const AstFunction> fn,
                                 Environment* closure);

  // Become an object-for-object copy of `image`, preserving object indices,
  // shape ids and atom contents bit-for-bit. Callables are shared (see
  // JsObject::callable); watch handlers are deliberately NOT copied — they
  // close over per-session state and are re-attached by the session layer.
  // `image` is only read, so any number of threads may clone the same
  // frozen image concurrently. The atom table keeps this heap's own
  // process-unique id (fresh table identity => cached bytecode chunks
  // recompile per clone, exactly as they do for a rebuilt session).
  //
  // `frozen_atoms`, when non-null, must hold the same contents as the
  // image's atom table; it is adopted as a shared immutable prefix
  // (AtomTable::adopt_base) instead of deep-copied — the snapshot fast
  // path. Null falls back to a full atom copy.
  void clone_from(const Heap& image,
                  std::shared_ptr<const AtomTable> frozen_atoms = nullptr);

  JsObject& get(ObjectRef ref);
  const JsObject& get(ObjectRef ref) const;

  // The interning table every property name and identifier goes through.
  AtomTable& atoms() noexcept { return atoms_; }
  const AtomTable& atoms() const noexcept { return atoms_; }

  // Property access with prototype-chain walk. The string_view overloads
  // only *look up* the atom — a read of a never-interned name cannot grow
  // the table.
  Value get_property(ObjectRef ref, std::string_view name) const;
  Value get_property(ObjectRef ref, Atom atom) const;
  bool has_property(ObjectRef ref, std::string_view name) const;
  bool has_property(ObjectRef ref, Atom atom) const;

  // Sets an *own* property (like JS assignment), firing any watch handler.
  void set_property(ObjectRef ref, std::string_view name, Value value);
  void set_property(ObjectRef ref, Atom atom, Value value);

  // Raw own-property write: no prototype walk, no watch fire. This is what
  // hosts use to *build* objects (bindings, builtins); JS-visible
  // assignment must go through set_property so watches see it.
  Value& define_property(ObjectRef ref, std::string_view name, Value value);
  Value& define_property(ObjectRef ref, Atom atom, Value value);

  // Own-property pointer (no prototype walk); nullptr when absent.
  Value* own_property(ObjectRef ref, std::string_view name);
  const Value* own_property(ObjectRef ref, std::string_view name) const;
  Value* own_property(ObjectRef ref, Atom atom);

  // `delete obj.name`; true when a slot was removed.
  bool delete_property(ObjectRef ref, std::string_view name);

  std::size_t size() const noexcept { return objects_.size(); }

  // Slab bytes occupied by placement-constructed objects / reserved by all
  // open slabs. Feeds the script.heap_bytes gauge at session teardown and
  // the mem.* domain accounting.
  std::size_t bytes_used() const noexcept;
  std::size_t bytes_reserved() const noexcept;

  // Re-attribute this heap's slab bytes to another accounting domain: a
  // HeapSnapshot moves its image heap to mem::Domain::kSnapshot before
  // capture so frozen images and live session heaps account separately.
  void set_mem_domain(obs::mem::Domain domain) noexcept;

  // The heap-wide shape-transition tree every object's shape id lives in.
  ShapeTree& shapes() noexcept { return shapes_; }

 private:
  JsObject* allocate_object();
  void* allocate_raw();
  void destroy_objects();

  // Slab storage: objects are placement-constructed into fixed-size raw
  // byte slabs and never moved or freed individually, so JsObject* and
  // ObjectRef indices are stable for the heap's lifetime. One slab covers
  // a typical session's ~7k objects in two allocations instead of one
  // `new` per object. Raw bytes (rather than JsObject[]) let clone_from
  // copy-construct each clone object straight from the image instead of
  // default-constructing a whole slab and assigning over it — this is
  // what makes snapshot cloning cheap. Every constructed object is
  // reachable through objects_, which is what destroy_objects() walks.
  static constexpr std::size_t kSlabSize = 4096;
  std::vector<std::unique_ptr<std::byte[]>> slabs_;
  std::size_t slab_used_ = kSlabSize;  // full => first allocation opens a slab
  obs::mem::Domain mem_domain_;        // where slab bytes are accounted
  std::vector<JsObject*> objects_;     // dense index; [0] reserved null
  AtomTable atoms_;
  ShapeTree shapes_;
};

}  // namespace fu::script
