// MiniJS value model: a small prototype-based dynamic object system.
//
// This is the reproduction's stand-in for SpiderMonkey. It is deliberately
// faithful to the parts of JavaScript the paper's instrumentation relies on:
//   * objects with prototype chains — methods live on Interface.prototype
//     objects and are *replaceable*, so the measuring extension can shim them
//     with counting wrappers that close over the originals (§4.2.1);
//   * watchable objects — a per-object property-write hook equivalent to
//     Firefox's non-standard Object.watch(), which the extension uses to
//     count property writes on singletons (window, document, navigator)
//     and which cannot see writes on other objects (§4.2.2);
//   * first-class functions and closures, so pages can register handlers.
//
// Memory: all objects live in a Heap arena owned by the page's Interpreter;
// nothing is collected mid-page (pages are short-lived). ObjectRef is an
// index into the arena.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace fu::script {

class Heap;
class Interpreter;
struct JsObject;

// Index of an object in its heap. 0 is reserved (null object reference).
class ObjectRef {
 public:
  constexpr ObjectRef() = default;
  constexpr explicit ObjectRef(std::uint32_t index) : index_(index) {}

  constexpr bool null() const noexcept { return index_ == 0; }
  constexpr std::uint32_t index() const noexcept { return index_; }
  friend constexpr bool operator==(ObjectRef, ObjectRef) = default;
  friend constexpr auto operator<=>(ObjectRef, ObjectRef) = default;

 private:
  std::uint32_t index_ = 0;
};

struct Undefined {
  friend constexpr bool operator==(Undefined, Undefined) { return true; }
};
struct Null {
  friend constexpr bool operator==(Null, Null) { return true; }
};

class Value {
 public:
  Value() : data_(Undefined{}) {}
  Value(Undefined) : data_(Undefined{}) {}
  Value(Null) : data_(Null{}) {}
  Value(bool b) : data_(b) {}
  Value(double d) : data_(d) {}
  Value(int i) : data_(static_cast<double>(i)) {}
  Value(std::string s) : data_(std::move(s)) {}
  Value(const char* s) : data_(std::string(s)) {}
  Value(ObjectRef ref) : data_(ref) {}

  bool is_undefined() const { return std::holds_alternative<Undefined>(data_); }
  bool is_null() const { return std::holds_alternative<Null>(data_); }
  bool is_bool() const { return std::holds_alternative<bool>(data_); }
  bool is_number() const { return std::holds_alternative<double>(data_); }
  bool is_string() const { return std::holds_alternative<std::string>(data_); }
  bool is_object() const { return std::holds_alternative<ObjectRef>(data_); }

  bool as_bool() const { return std::get<bool>(data_); }
  double as_number() const { return std::get<double>(data_); }
  const std::string& as_string() const { return std::get<std::string>(data_); }
  ObjectRef as_object() const { return std::get<ObjectRef>(data_); }

  // JavaScript-style coercions.
  bool truthy() const;
  double to_number() const;          // NaN for non-coercible
  std::string to_display_string() const;

  // Loose equality for primitives; objects compare by identity.
  bool loose_equals(const Value& other) const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.data_ == b.data_;
  }

 private:
  std::variant<Undefined, Null, bool, double, std::string, ObjectRef> data_;
};

// Native (C++-implemented) function. Receives the interpreter, the `this`
// value and the argument list.
using NativeFn =
    std::function<Value(Interpreter&, const Value& self, std::span<const Value>)>;

// Property-write hook, the Object.watch() equivalent. Called *after* the
// write with (property name, new value).
using WatchHandler = std::function<void(const std::string&, const Value&)>;

struct AstFunction;  // defined in ast.h
class Environment;   // defined in interp.h

// Function payload attached to a callable object.
struct Callable {
  // exactly one of native / script is set
  NativeFn native;
  // Shared ownership: a function value keeps its AST alive even if the
  // Program it was parsed from has been destroyed (handlers frequently
  // outlive the script that registered them).
  std::shared_ptr<const AstFunction> script;
  Environment* closure = nullptr;  // captured scope for script functions
  std::string name;                // diagnostic / shim bookkeeping
};

struct JsObject {
  std::map<std::string, Value, std::less<>> properties;
  ObjectRef prototype;
  std::unique_ptr<Callable> callable;  // set iff the object is a function
  std::optional<WatchHandler> watch;   // Object.watch-style hook
  std::string class_name = "Object";   // e.g. "XMLHttpRequest" for instances
  // Host back-pointer for DOM wrapper objects (non-owning).
  void* host = nullptr;
};

class Heap {
 public:
  Heap();

  ObjectRef make_object(ObjectRef prototype = ObjectRef(),
                        std::string class_name = "Object");
  ObjectRef make_function(NativeFn fn, std::string name);
  ObjectRef make_script_function(std::shared_ptr<const AstFunction> fn,
                                 Environment* closure);

  JsObject& get(ObjectRef ref);
  const JsObject& get(ObjectRef ref) const;

  // Property access with prototype-chain walk.
  Value get_property(ObjectRef ref, std::string_view name) const;
  bool has_property(ObjectRef ref, std::string_view name) const;
  // Sets an *own* property (like JS assignment), firing any watch handler.
  void set_property(ObjectRef ref, std::string_view name, Value value);

  std::size_t size() const noexcept { return objects_.size(); }

 private:
  // deque-like stable storage: objects are never moved once created
  std::vector<std::unique_ptr<JsObject>> objects_;
};

}  // namespace fu::script
