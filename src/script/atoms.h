// Atom table: per-interpreter string interning for the MiniJS engine.
//
// Every identifier and property name is interned once into a dense
// std::uint32_t `Atom`; the hot paths (property lookup, environment
// resolution) then compare and hash integers instead of strings, the way
// SpiderMonkey's atom table backs its property tables. The table is
// append-only: an atom, once handed out, names the same string for the
// table's whole lifetime, so inline caches can key on it.
//
// Inline-cache records live with the bytecode that indexes them
// (script/bytecode.h); chunks are tagged with the owning table's
// process-unique id, so a program compiled under one interpreter
// recompiles cleanly under another (site caches share parsed programs
// across the up-to-20 sessions that crawl one site).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace fu::script {

using Atom = std::uint32_t;
inline constexpr Atom kNoAtom = 0xFFFFFFFFu;

class AtomTable {
 public:
  // Atoms the engine needs on every call; interned first so their ids are
  // compile-time-stable within any table.
  struct WellKnown {
    Atom length;
    Atom prototype;
    Atom constructor;
    Atom this_;
    Atom arguments;
  };

  AtomTable();
  ~AtomTable();
  AtomTable(const AtomTable&) = delete;
  AtomTable& operator=(const AtomTable&) = delete;

  // Copy every interned name (same atom ids, same contents) from `other`
  // while KEEPING this table's own process-unique id() — a cloned session's
  // inline caches and chunk memos must not validate against bytecode
  // compiled for the snapshot image, mirroring how a rebuilt session always
  // starts with a fresh table identity.
  void clone_from(const AtomTable& other);

  // Share `base` as a frozen, immutable prefix instead of deep-copying it
  // (the snapshot-clone fast path): atoms [0, base->size()) resolve through
  // the shared table, new interns append here starting at base->size().
  // Observably identical to clone_from — same atom ids in the same intern
  // order — without copying a thousand strings and rebuilding the hash per
  // session. The base must never be mutated again; any number of tables may
  // adopt it concurrently (reads only). Keeps this table's own id().
  void adopt_base(std::shared_ptr<const AtomTable> base);

  // Insert-or-get. Idempotent: the same name always returns the same atom.
  Atom intern(std::string_view name);

  // Lookup without inserting; kNoAtom when the name was never interned
  // (no object can hold a property whose name was never interned, so a
  // read miss needs no table growth).
  Atom lookup(std::string_view name) const;

  // Atom for the canonical decimal spelling of `index` ("0", "1", ...).
  // Small indices are served from a cache so array element access never
  // allocates a key string.
  Atom intern_index(std::uint64_t index);

  const std::string& name(Atom atom) const {
    return atom < base_count_ ? base_->name(atom)
                              : names_[atom - base_count_];
  }
  std::size_t size() const noexcept { return base_count_ + names_.size(); }

  // Process-unique identity of this table; inline caches are tagged with it.
  std::uint64_t id() const noexcept { return id_; }

  const WellKnown& well_known() const noexcept { return well_known_; }

 private:
  std::uint64_t id_;
  // Frozen shared prefix (adopt_base); null for ordinary tables. Atoms
  // below base_count_ live in *base_, the rest in this table's own storage.
  std::shared_ptr<const AtomTable> base_;
  Atom base_count_ = 0;
  std::deque<std::string> names_;  // stable storage; atom - base_count_
  std::unordered_map<std::string_view, Atom> ids_;  // views into names_
  std::vector<Atom> small_indices_;  // lazily-filled cache for 0..4095
  WellKnown well_known_{};
  // Bytes this table reported to mem::Domain::kAtoms (own storage only —
  // a frozen base is accounted once, by the table that owns it).
  std::size_t tracked_bytes_ = 0;
};

}  // namespace fu::script
