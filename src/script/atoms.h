// Atom table: per-interpreter string interning for the MiniJS engine.
//
// Every identifier and property name is interned once into a dense
// std::uint32_t `Atom`; the hot paths (property lookup, environment
// resolution) then compare and hash integers instead of strings, the way
// SpiderMonkey's atom table backs its property tables. The table is
// append-only: an atom, once handed out, names the same string for the
// table's whole lifetime, so inline caches can key on it.
//
// This header also defines the inline-cache records that parser-emitted AST
// nodes carry (one per member-access / identifier site). Caches are tagged
// with the owning table's process-unique id: a cached AST executed by a
// different interpreter misses cleanly and re-resolves (site caches share
// parsed programs across the up-to-20 sessions that crawl one site).
// Programs — and therefore these mutable cache fields — are single-threaded
// by the same contract as browser::SiteCache: sites are the unit of
// parallelism.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace fu::script {

using Atom = std::uint32_t;
inline constexpr Atom kNoAtom = 0xFFFFFFFFu;

class Environment;

class AtomTable {
 public:
  // Atoms the engine needs on every call; interned first so their ids are
  // compile-time-stable within any table.
  struct WellKnown {
    Atom length;
    Atom prototype;
    Atom constructor;
    Atom this_;
    Atom arguments;
  };

  AtomTable();
  AtomTable(const AtomTable&) = delete;
  AtomTable& operator=(const AtomTable&) = delete;

  // Insert-or-get. Idempotent: the same name always returns the same atom.
  Atom intern(std::string_view name);

  // Lookup without inserting; kNoAtom when the name was never interned
  // (no object can hold a property whose name was never interned, so a
  // read miss needs no table growth).
  Atom lookup(std::string_view name) const;

  // Atom for the canonical decimal spelling of `index` ("0", "1", ...).
  // Small indices are served from a cache so array element access never
  // allocates a key string.
  Atom intern_index(std::uint64_t index);

  const std::string& name(Atom atom) const { return names_[atom]; }
  std::size_t size() const noexcept { return names_.size(); }

  // Process-unique identity of this table; inline caches are tagged with it.
  std::uint64_t id() const noexcept { return id_; }

  const WellKnown& well_known() const noexcept { return well_known_; }

 private:
  std::uint64_t id_;
  std::deque<std::string> names_;  // stable storage; index = Atom
  std::unordered_map<std::string_view, Atom> ids_;  // views into names_
  std::vector<Atom> small_indices_;  // lazily-filled cache for 0..4095
  WellKnown well_known_{};
};

// ---------------------------------------------------------------------------
// Inline-cache records. All are "monomorphic": each remembers exactly one
// resolution and falls back to the slow path (then re-caches) on mismatch.
// Validity is anchored in things that cannot silently change under the
// cache: atom-table identity, per-object shape versions (bumped on every
// property-layout mutation — add or delete, never value overwrite, so the
// measuring extension's shim-over-prototype-method replacement keeps caches
// valid and reads the *shim*), and environment serial numbers.

// Property read through an AST member-access site. chain[0] is the
// receiver, chain[chain_len-1] the holder whose slot holds the value; every
// link's shape is revalidated on use, which also guards against a new
// shadowing property appearing anywhere on the cached prototype path.
struct PropertyIC {
  static constexpr int kMaxChain = 4;
  static constexpr std::uint32_t kMissSlot = 0xFFFFFFFFu;

  struct Link {
    std::uint32_t object = 0;  // ObjectRef index
    std::uint32_t shape = 0;
  };

  std::uint64_t engine_id = 0;  // owning AtomTable::id(); 0 = empty
  Atom atom = kNoAtom;
  Link chain[kMaxChain];
  std::uint8_t chain_len = 0;  // 0 = no cached resolution (atom memo only)
  // Slot index in the holder; kMissSlot = negative cache ("definitely
  // absent along the whole recorded chain").
  std::uint32_t slot = 0;
};

// Property write through an AST member-assignment site: JS assignment
// always targets an *own* slot of the receiver.
struct PropertyWriteIC {
  std::uint64_t engine_id = 0;
  Atom atom = kNoAtom;
  std::uint32_t object = 0;
  std::uint32_t shape = 0;
  std::uint32_t slot = 0;
  bool valid = false;
};

// Identifier resolution. Only filled when the name resolved in the scope
// the site executed in (nothing nearer can ever shadow it, and environment
// binding stores are append-only, so the slot index stays good); the
// environment serial — unique per environment per interpreter — keys the
// cache, which makes global-scope loops hit while each fresh function
// activation re-resolves once.
struct VarIC {
  std::uint64_t engine_id = 0;
  Atom atom = kNoAtom;
  std::uint64_t env_serial = 0;  // 0 = no cached resolution
  Environment* env = nullptr;
  std::uint32_t slot = 0;
};

}  // namespace fu::script
