// Heap snapshots: freeze a fully-constructed engine into an immutable image
// and stamp out clones instead of rebuilding per session.
//
// Lifecycle (see DESIGN.md):
//   build   — construct one canonical session the normal way (builtins, DOM
//             bindings, extension shims) against a scratch Interpreter;
//   freeze  — HeapSnapshot(interp) deep-copies the heap (objects, atoms,
//             shape tree) and the global bindings into this object. The
//             image is immutable from then on; Callables are shared by
//             shared_ptr, watch handlers are deliberately dropped (they
//             close over per-session state and are re-attached per clone);
//   clone   — Interpreter(&snapshot, seed) reproduces the frozen state
//             bit-for-bit: same object indices, atom ids and shape
//             numbering, fresh atom-table identity (cached bytecode
//             recompiles per clone exactly as it does per rebuild), fuel
//             and step counters at zero, env serial counter at 1;
//   discard — drop the last reference; shared Callables die with the last
//             clone that still uses them.
//
// Thread safety: a frozen HeapSnapshot is only ever read, so any number of
// worker threads may instantiate clones from the same image concurrently.
#pragma once

#include <cstdint>
#include <memory>

#include "script/interp.h"
#include "script/value.h"

namespace fu::script {

class HeapSnapshot {
 public:
  // Freeze `source`'s current engine state. Requirements (violations throw
  // std::logic_error — they would make clones observably diverge from a
  // rebuilt session or dangle):
  //   * no activation environments yet (only the global scope exists);
  //   * no script functions on the heap (their closure Environment*
  //     belongs to the source interpreter). All setup-time functions are
  //     native, so a session captured right after extension injection
  //     always satisfies this.
  explicit HeapSnapshot(const Interpreter& source);

  HeapSnapshot(const HeapSnapshot&) = delete;
  HeapSnapshot& operator=(const HeapSnapshot&) = delete;

  std::size_t object_count() const noexcept { return heap_.size(); }

 private:
  friend class Interpreter;

  // Reproduce the frozen state inside a freshly-constructed interpreter
  // (called by Interpreter's snapshot constructor, before any other use).
  void instantiate(Interpreter& out) const;

  Heap heap_;               // the frozen image
  // The image's atom table, frozen once at capture and adopted by every
  // clone as a shared immutable prefix (AtomTable::adopt_base) — same atom
  // ids without copying ~1.3k strings per session.
  std::shared_ptr<const AtomTable> frozen_atoms_;
  PropertySlots globals_;   // global environment bindings
  ObjectRef array_prototype_;
  ObjectRef string_prototype_;
};

}  // namespace fu::script
