// MiniJS AST pretty-printer. to_source(parse(x)) is valid MiniJS that
// parses back to an equivalent program — the property the round-trip tests
// lean on. Also handy for debugging generated site scripts.
#pragma once

#include <string>

#include "script/ast.h"

namespace fu::script {

std::string to_source(const Expr& expr);
std::string to_source(const Stmt& stmt, int indent = 0);
std::string to_source(const Program& program);

}  // namespace fu::script
