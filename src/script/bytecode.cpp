// Disassembler for `fu disasm`: one line per instruction, with IC-slot
// annotations resolved back to property/identifier names so a survey
// engineer can read which sites carry caches.
#include "script/bytecode.h"

#include <cstdarg>
#include <cstdio>

#include "script/ast.h"

namespace fu::script {

namespace {

const char* op_name(Op op) {
  switch (op) {
    case Op::kNop: return "nop";
    case Op::kLoadConst: return "load_const";
    case Op::kLoadUndefined: return "load_undef";
    case Op::kMove: return "move";
    case Op::kGetLocal: return "get_local";
    case Op::kSetLocal: return "set_local";
    case Op::kGetVar: return "get_var";
    case Op::kSetVar: return "set_var";
    case Op::kDefineVar: return "define_var";
    case Op::kMakeFunction: return "make_function";
    case Op::kGetProp: return "get_prop";
    case Op::kGetMethod: return "get_method";
    case Op::kSetProp: return "set_prop";
    case Op::kGetIndex: return "get_index";
    case Op::kSetIndex: return "set_index";
    case Op::kDefineProp: return "define_prop";
    case Op::kDeleteProp: return "delete_prop";
    case Op::kDeleteIndex: return "delete_index";
    case Op::kMakeObject: return "make_object";
    case Op::kMakeArray: return "make_array";
    case Op::kCall: return "call";
    case Op::kCallMethod: return "call_method";
    case Op::kNew: return "new";
    case Op::kAdd: return "add";
    case Op::kSub: return "sub";
    case Op::kMul: return "mul";
    case Op::kDiv: return "div";
    case Op::kMod: return "mod";
    case Op::kEq: return "eq";
    case Op::kNe: return "ne";
    case Op::kStrictEq: return "stricteq";
    case Op::kStrictNe: return "strictne";
    case Op::kLt: return "lt";
    case Op::kGt: return "gt";
    case Op::kLe: return "le";
    case Op::kGe: return "ge";
    case Op::kInstanceof: return "instanceof";
    case Op::kIn: return "in";
    case Op::kNot: return "not";
    case Op::kNeg: return "neg";
    case Op::kTypeofValue: return "typeof_value";
    case Op::kTypeofVar: return "typeof_var";
    case Op::kIsObject: return "is_object";
    case Op::kJump: return "jump";
    case Op::kJumpIfFalse: return "jump_if_false";
    case Op::kJumpIfTrue: return "jump_if_true";
    case Op::kThrow: return "throw";
    case Op::kReturn: return "return";
    case Op::kReturnUndefined: return "return_undef";
  }
  return "?";
}

std::string const_repr(const Value& v) {
  if (v.is_string()) return "\"" + v.as_string() + "\"";
  return v.to_display_string();
}

void append(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  out += buf;
}

}  // namespace

std::string disassemble(const Chunk& chunk, const AtomTable& atoms) {
  std::string out;
  append(out, "== %s (regs=%u, params=%zu%s)\n",
         chunk.name.c_str(), chunk.num_regs, chunk.param_atoms.size(),
         chunk.needs_arguments ? ", arguments" : "");
  for (const Chunk::Handler& h : chunk.handlers) {
    append(out, "   handler [%04u,%04u) -> %04u", h.start, h.end, h.target);
    if (h.binding != kNoAtom) {
      append(out, " catch(%s)", atoms.name(h.binding).c_str());
    }
    out += "\n";
  }
  for (std::uint32_t pc = 0; pc < chunk.code.size(); ++pc) {
    const Instr& i = chunk.code[pc];
    append(out, "%04u  ", pc);
    if (i.fuel != 0) {
      append(out, "fuel=%-3u ", i.fuel);
    } else {
      out += "         ";
    }
    append(out, "%-14s", op_name(i.op));
    switch (i.op) {
      case Op::kNop:
      case Op::kReturnUndefined:
        break;
      case Op::kLoadConst:
      case Op::kThrow:
        append(out, "r%u, const[%u]", i.a, i.imm);
        append(out, "    ; %s", const_repr(chunk.constants[i.imm]).c_str());
        break;
      case Op::kLoadUndefined:
        append(out, "r%u", i.a);
        break;
      case Op::kMove:
      case Op::kNot:
      case Op::kNeg:
      case Op::kTypeofValue:
      case Op::kIsObject:
        append(out, "r%u, r%u", i.a, i.b);
        break;
      case Op::kGetLocal:
      case Op::kSetLocal:
        append(out, "r%u, local[%u]", i.a, i.imm);
        break;
      case Op::kGetVar:
      case Op::kSetVar:
      case Op::kTypeofVar:
        append(out, "r%u, var_ic[%u]", i.a, i.imm);
        append(out, "    ; %s",
               atoms.name(chunk.var_ics[i.imm].atom).c_str());
        break;
      case Op::kDefineVar:
        append(out, "r%u", i.a);
        append(out, "    ; define %s",
               atoms.name(static_cast<Atom>(i.imm)).c_str());
        break;
      case Op::kMakeFunction:
        append(out, "r%u, fn[%u]", i.a, i.imm);
        if (i.imm < chunk.functions.size()) {
          const auto& fn = chunk.functions[i.imm];
          append(out, "    ; %s",
                 fn->name.empty() ? "<anonymous>" : fn->name.c_str());
        }
        break;
      case Op::kGetProp:
      case Op::kGetMethod:
        append(out, "r%u, r%u, prop_ic[%u]", i.a, i.b, i.imm);
        append(out, "    ; .%s",
               atoms.name(chunk.prop_ics[i.imm].atom).c_str());
        break;
      case Op::kSetProp:
        append(out, "r%u, r%u, write_ic[%u]", i.a, i.b, i.imm);
        append(out, "    ; .%s",
               atoms.name(chunk.write_ics[i.imm].atom).c_str());
        break;
      case Op::kGetIndex:
      case Op::kSetIndex:
      case Op::kDeleteIndex:
        append(out, "r%u, r%u, r%u", i.a, i.b, i.c);
        break;
      case Op::kDefineProp:
      case Op::kDeleteProp:
        append(out, "r%u, r%u", i.a, i.b);
        append(out, "    ; .%s", atoms.name(static_cast<Atom>(i.imm)).c_str());
        break;
      case Op::kMakeObject:
        append(out, "r%u", i.a);
        break;
      case Op::kMakeArray:
        append(out, "r%u, r%u..r%u (n=%u)", i.a, i.b,
               i.imm == 0 ? i.b : i.b + i.imm - 1, i.imm);
        break;
      case Op::kCall:
        append(out, "r%u, fn=r%u, argc=%u  ; call_ic[%u]", i.a, i.b, i.c,
               i.imm);
        break;
      case Op::kCallMethod:
        append(out, "r%u, fn=r%u, this=r%u, argc=%u  ; call_ic[%u]", i.a, i.b,
               i.b + 1, i.c, i.imm);
        break;
      case Op::kNew:
        append(out, "r%u, ctor=r%u, argc=%u", i.a, i.b, i.imm);
        break;
      case Op::kAdd:
      case Op::kSub:
      case Op::kMul:
      case Op::kDiv:
      case Op::kMod:
      case Op::kEq:
      case Op::kNe:
      case Op::kStrictEq:
      case Op::kStrictNe:
      case Op::kLt:
      case Op::kGt:
      case Op::kLe:
      case Op::kGe:
      case Op::kInstanceof:
      case Op::kIn:
        append(out, "r%u, r%u, r%u", i.a, i.b, i.c);
        break;
      case Op::kJump:
        append(out, "-> %04u", i.imm);
        break;
      case Op::kJumpIfFalse:
      case Op::kJumpIfTrue:
        append(out, "r%u -> %04u", i.a, i.imm);
        break;
      case Op::kReturn:
        append(out, "r%u", i.a);
        break;
    }
    out += "\n";
  }
  return out;
}

}  // namespace fu::script
