// The dispatch loop. Every case is a direct port of the corresponding
// tree-walker behaviour (old interp.cpp Evaluator), with fuel pre-charged
// from the instruction's `fuel` field — the compiler guarantees the charge
// points and counts match the walker's exec()/eval() entry burns, which the
// engine-identity fingerprint locks bit-for-bit.
#include "script/vm.h"

#include <cmath>
#include <utility>

namespace fu::script {

namespace {

// Registers live on the C++ stack for typical chunks; big chunks spill.
constexpr std::uint32_t kInlineRegs = 24;

Atom index_atom(Heap& h, const Value& idx) {
  // Atom for a computed index when its canonical string form is a plain
  // decimal integer (the array hot path); kNoAtom otherwise. The guard
  // matches Value::to_display_string's integer formatting exactly.
  if (!idx.is_number()) return kNoAtom;
  const double d = idx.as_number();
  if (!(d >= 0) || d >= 1e15 || d != std::trunc(d)) return kNoAtom;
  return h.atoms().intern_index(static_cast<std::uint64_t>(d));
}

// Uncached member access (computed names).
Value member_of(Interpreter& in, Heap& h, const Value& base,
                std::string_view name) {
  if (!base.is_object()) {
    if (base.is_string()) {
      if (name == "length") {
        return Value(static_cast<double>(base.as_string().size()));
      }
      return h.get_property(in.string_prototype(), name);
    }
    if (base.is_undefined() || base.is_null()) {
      throw ScriptError("TypeError: cannot read property '" +
                        std::string(name) + "' of " +
                        base.to_display_string());
    }
    return Value();  // other primitive members: undefined
  }
  return h.get_property(base.as_object(), name);
}

void prop_ic_insert(PropIC& ic, const PropIC::Entry& entry) {
  if (ic.count == PropIC::kMegamorphic) return;
  for (std::uint8_t i = 0; i < ic.count; ++i) {
    if (ic.entries[i].receiver_shape == entry.receiver_shape) {
      ic.entries[i] = entry;  // re-record: the old entry failed validation
      return;
    }
  }
  if (ic.count < PropIC::kMaxEntries) {
    ic.entries[ic.count++] = entry;
  } else {
    ic.count = PropIC::kMegamorphic;  // terminal: stop recording
  }
}

// Chain walk with poly-IC recording. `receiver_shape` was read by the
// caller's probe.
Value get_prop_slow(Heap& h, PropIC& ic, ObjectRef ref,
                    std::uint32_t receiver_shape) {
  PropIC::Entry entry;
  entry.receiver_shape = receiver_shape;
  ObjectRef cursor = ref;
  int depth = 0;
  for (; depth < 32 && !cursor.null(); ++depth) {
    const JsObject& o = h.get(cursor);
    if (depth > 0 && depth <= PropIC::kMaxChain - 1) {
      entry.chain[depth - 1] =
          PropIC::Link{cursor.index(), o.properties.shape()};
    }
    const std::uint32_t slot = o.properties.index_of(ic.atom);
    if (slot != PropertySlots::kMissSlot) {
      if (depth <= PropIC::kMaxChain - 1) {
        entry.chain_len = static_cast<std::uint8_t>(depth);
        entry.holder = static_cast<std::uint8_t>(depth);
        entry.slot = slot;
        prop_ic_insert(ic, entry);
      }
      // holder deeper than the IC can guard: leave the cache as is
      return o.properties.value_at(slot);
    }
    cursor = o.prototype;
  }
  if (cursor.null() && depth <= PropIC::kMaxChain) {
    // Whole (short) chain walked without a hit: negative-cache it.
    entry.chain_len = static_cast<std::uint8_t>(depth - 1);
    entry.holder = 0;
    entry.slot = PropIC::kMissSlot;
    prop_ic_insert(ic, entry);
  }
  return Value();
}

Value get_prop(Interpreter& in, Heap& h, PropIC& ic, const Value& base) {
  if (!base.is_object()) {
    if (base.is_string()) {
      if (ic.atom == h.atoms().well_known().length) {
        return Value(static_cast<double>(base.as_string().size()));
      }
      // string methods live on the shared string prototype and receive
      // the string itself as `this`
      return h.get_property(in.string_prototype(), ic.atom);
    }
    if (base.is_undefined() || base.is_null()) {
      throw ScriptError("TypeError: cannot read property '" +
                        h.atoms().name(ic.atom) + "' of " +
                        base.to_display_string());
    }
    return Value();  // other primitive members: undefined
  }

  const ObjectRef ref = base.as_object();
  const JsObject& obj = h.get(ref);
  const std::uint32_t shape = obj.properties.shape();
  if (ic.count != PropIC::kMegamorphic) {
    for (std::uint8_t i = 0; i < ic.count; ++i) {
      const PropIC::Entry& en = ic.entries[i];
      if (en.receiver_shape != shape) continue;
      // Shapes come from the heap's shared transition tree, so a receiver
      // shape match already proves the prototype's identity (and prototypes
      // are only ever assigned at make_object time) — revalidation is pure
      // shape compares down the recorded links, which guards against layout
      // changes and new shadowing properties. Value overwrites never move a
      // shape, so shimmed prototype methods keep hitting here.
      bool valid = true;
      for (std::uint8_t k = 0; k < en.chain_len; ++k) {
        if (h.get(ObjectRef(en.chain[k].object)).properties.shape() !=
            en.chain[k].shape) {
          valid = false;
          break;
        }
      }
      if (!valid) break;  // stale layout: re-walk and re-record
      if (en.slot == PropIC::kMissSlot) return Value();
      const JsObject& holder =
          en.holder == 0 ? obj : h.get(ObjectRef(en.chain[en.holder - 1].object));
      return holder.properties.value_at(en.slot);
    }
  }
  return get_prop_slow(h, ic, ref, shape);
}

void set_prop(Heap& h, WriteIC& ic, const Value& base, const Value& value) {
  if (!base.is_object()) {
    throw ScriptError("TypeError: cannot set property '" +
                      h.atoms().name(ic.atom) + "' of " +
                      base.to_display_string());
  }
  const ObjectRef ref = base.as_object();
  JsObject& obj = h.get(ref);
  const std::uint32_t shape = obj.properties.shape();
  if (ic.count != WriteIC::kMegamorphic) {
    for (std::uint8_t i = 0; i < ic.count; ++i) {
      if (ic.entries[i].shape != shape) continue;
      // Entries record post-write shapes: a match means the slot already
      // exists, so this write is a pure overwrite (no layout change).
      obj.properties.value_at(ic.entries[i].slot) = value;
      if (obj.watch) {
        // Copy: a re-entrant write from the handler may grow the slot
        // vector and move the slot out from under the callback.
        const Value written = obj.properties.value_at(ic.entries[i].slot);
        (*obj.watch)(h.atoms().name(ic.atom), written);
      }
      return;
    }
  }
  h.set_property(ref, ic.atom, value);
  if (ic.count == WriteIC::kMegamorphic) return;
  const std::uint32_t slot = obj.properties.index_of(ic.atom);
  if (slot == PropertySlots::kMissSlot) return;  // watch handler deleted it
  const WriteIC::Entry entry{obj.properties.shape(), slot};
  for (std::uint8_t i = 0; i < ic.count; ++i) {
    if (ic.entries[i].shape == entry.shape) {
      ic.entries[i] = entry;
      return;
    }
  }
  if (ic.count < WriteIC::kMaxEntries) {
    ic.entries[ic.count++] = entry;
  } else {
    ic.count = WriteIC::kMegamorphic;
  }
}

Value typeof_value(Heap& h, const Value& v) {
  if (v.is_undefined()) return Value("undefined");
  if (v.is_null()) return Value("object");
  if (v.is_bool()) return Value("boolean");
  if (v.is_number()) return Value("number");
  if (v.is_string()) return Value("string");
  return Value(h.get(v.as_object()).callable ? "function" : "object");
}

template <typename Cmp>
Value compare(const Value& a, const Value& b, Cmp cmp) {
  if (a.is_number() && b.is_number()) {  // hot path: skip the coercion calls
    const double x = a.as_number();
    const double y = b.as_number();
    if (std::isnan(x) || std::isnan(y)) return Value(false);
    return Value(cmp(x, y));
  }
  if (a.is_string() && b.is_string()) {
    return Value(cmp(a.as_string() < b.as_string()
                         ? -1.0
                         : (a.as_string() == b.as_string() ? 0.0 : 1.0),
                     0.0));
  }
  const double x = a.to_number();
  const double y = b.to_number();
  if (std::isnan(x) || std::isnan(y)) return Value(false);
  return Value(cmp(x, y));
}

}  // namespace

// Dispatch is a computed-goto threaded loop under GCC/Clang: each opcode
// body ends in its own indirect branch, so the branch predictor learns
// per-opcode successor patterns instead of sharing one switch branch. The
// opcode bodies are written once and shared with the portable switch
// fallback through the VM_CASE/VM_NEXT/VM_GOTO macros.
#if defined(__GNUC__) || defined(__clang__)
#define FU_VM_COMPUTED_GOTO 1
#else
#define FU_VM_COMPUTED_GOTO 0
#endif

Value Vm::run(Interpreter& in, const Chunk& chunk, Environment* env) {
  Heap& h = in.heap_;
  AtomTable& at = h.atoms();

  // Hot-loop locals: the chunk's tables never reallocate while it runs
  // (ICs mutate in place), and `env` (hence its serial) is fixed per frame.
  const Instr* const code = chunk.code.data();
  const Value* const consts = chunk.constants.data();
  VarIC* const var_ics = chunk.var_ics.data();
  PropIC* const prop_ics = chunk.prop_ics.data();
  WriteIC* const write_ics = chunk.write_ics.data();
  CallIC* const call_ics = chunk.call_ics.data();
  const std::uint64_t env_serial = env->serial();

  // Registers live on the C++ stack for typical chunks; big chunks spill.
  Value inline_regs[kInlineRegs];
  std::vector<Value> spill;
  Value* r = inline_regs;
  if (chunk.num_regs > kInlineRegs) {
    spill.resize(chunk.num_regs);
    r = spill.data();
  }

  std::uint32_t pc = 0;
  const Instr* I = code;
  for (;;) {
    try {
#if FU_VM_COMPUTED_GOTO
      // Must match the Op enum order exactly.
      static const void* const kDispatch[] = {
          &&op_kNop, &&op_kLoadConst, &&op_kLoadUndefined, &&op_kMove,
          &&op_kGetLocal, &&op_kSetLocal, &&op_kGetVar, &&op_kSetVar,
          &&op_kDefineVar, &&op_kMakeFunction, &&op_kGetProp, &&op_kGetMethod,
          &&op_kSetProp, &&op_kGetIndex, &&op_kSetIndex, &&op_kDefineProp,
          &&op_kDeleteProp, &&op_kDeleteIndex, &&op_kMakeObject,
          &&op_kMakeArray, &&op_kCall, &&op_kCallMethod, &&op_kNew,
          &&op_kAdd, &&op_kSub, &&op_kMul, &&op_kDiv, &&op_kMod,
          &&op_kEq, &&op_kNe, &&op_kStrictEq, &&op_kStrictNe,
          &&op_kLt, &&op_kGt, &&op_kLe, &&op_kGe,
          &&op_kInstanceof, &&op_kIn, &&op_kNot, &&op_kNeg,
          &&op_kTypeofValue, &&op_kTypeofVar, &&op_kIsObject,
          &&op_kJump, &&op_kJumpIfFalse, &&op_kJumpIfTrue,
          &&op_kThrow, &&op_kReturn, &&op_kReturnUndefined,
      };
      static_assert(sizeof(kDispatch) / sizeof(kDispatch[0]) ==
                    static_cast<std::size_t>(Op::kReturnUndefined) + 1);
#define VM_CASE(name) op_##name:
#define VM_DISPATCH()                                     \
  do {                                                    \
    I = &code[pc];                                        \
    if (I->fuel != 0) in.burn_units(I->fuel);             \
    goto* kDispatch[static_cast<std::uint8_t>(I->op)];    \
  } while (0)
#define VM_NEXT() \
  do {            \
    ++pc;         \
    VM_DISPATCH(); \
  } while (0)
#define VM_GOTO(target) \
  do {                  \
    pc = (target);      \
    VM_DISPATCH();      \
  } while (0)
      VM_DISPATCH();
#else
#define VM_CASE(name) case Op::name:
#define VM_NEXT() break
#define VM_GOTO(target) \
  {                     \
    pc = (target);      \
    continue;           \
  }
      for (;;) {
        I = &code[pc];
        if (I->fuel != 0) in.burn_units(I->fuel);
        switch (I->op) {
#endif

      VM_CASE(kNop)
        VM_NEXT();
      VM_CASE(kLoadConst)
        r[I->a] = consts[I->imm];
        VM_NEXT();
      VM_CASE(kLoadUndefined)
        r[I->a] = Value();
        VM_NEXT();
      VM_CASE(kMove)
        r[I->a] = r[I->b];
        VM_NEXT();
      VM_CASE(kGetLocal)
        r[I->a] = env->slot_value(I->imm);
        VM_NEXT();
      VM_CASE(kSetLocal)
        env->slot_value(I->imm) = r[I->a];
        VM_NEXT();
      VM_CASE(kGetVar) {
        VarIC& ic = var_ics[I->imm];
        if (ic.env_serial == env_serial) {
          r[I->a] = env->slot_value(ic.slot);
          VM_NEXT();
        }
        Environment* e = env;
        for (; e != nullptr; e = e->parent()) {
          const std::uint32_t slot = e->own_slot(ic.atom);
          if (slot != PropertySlots::kMissSlot) {
            if (e == env) {
              // Cacheable: resolved in the starting scope itself, where
              // no nearer binding can ever appear to shadow it.
              ic.env_serial = env_serial;
              ic.slot = slot;
            }
            r[I->a] = e->slot_value(slot);
            break;
          }
        }
        if (e == nullptr) {
          throw ScriptError("ReferenceError: " + at.name(ic.atom) +
                            " is not defined");
        }
        VM_NEXT();
      }
      VM_CASE(kSetVar) {
        VarIC& ic = var_ics[I->imm];
        if (ic.env_serial == env_serial) {
          env->slot_value(ic.slot) = r[I->a];
          VM_NEXT();
        }
        Environment* e = env;
        for (; e != nullptr; e = e->parent()) {
          const std::uint32_t slot = e->own_slot(ic.atom);
          if (slot != PropertySlots::kMissSlot) {
            if (e == env) {
              ic.env_serial = env_serial;
              ic.slot = slot;
            }
            e->slot_value(slot) = r[I->a];
            break;
          }
        }
        if (e == nullptr) {
          env->assign(ic.atom, r[I->a]);  // sloppy-mode implicit global
        }
        VM_NEXT();
      }
      VM_CASE(kDefineVar)
        env->define(static_cast<Atom>(I->imm), r[I->a]);
        VM_NEXT();
      VM_CASE(kMakeFunction)
        r[I->a] = Value(h.make_script_function(chunk.functions[I->imm], env));
        VM_NEXT();
      VM_CASE(kGetProp)
        r[I->a] = get_prop(in, h, prop_ics[I->imm], r[I->b]);
        VM_NEXT();
      VM_CASE(kGetMethod) {
        PropIC& ic = prop_ics[I->imm];
        r[I->a] = get_prop(in, h, ic, r[I->b]);
        if (r[I->a].is_undefined()) {
          throw ScriptError("TypeError: " + r[I->b].to_display_string() + "." +
                            at.name(ic.atom) + " is not a function");
        }
        VM_NEXT();
      }
      VM_CASE(kSetProp)
        set_prop(h, write_ics[I->imm], r[I->b], r[I->a]);
        VM_NEXT();
      VM_CASE(kGetIndex) {
        const Value& base = r[I->b];
        const Value& idx = r[I->c];
        if (base.is_object()) {
          if (const Atom atom = index_atom(h, idx); atom != kNoAtom) {
            r[I->a] = h.get_property(base.as_object(), atom);
            VM_NEXT();
          }
        }
        r[I->a] = member_of(in, h, base, idx.to_display_string());
        VM_NEXT();
      }
      VM_CASE(kSetIndex) {
        const Value& base = r[I->b];
        if (!base.is_object()) {
          throw ScriptError("TypeError: cannot index " +
                            base.to_display_string());
        }
        if (const Atom atom = index_atom(h, r[I->c]); atom != kNoAtom) {
          h.set_property(base.as_object(), atom, r[I->a]);
        } else {
          h.set_property(base.as_object(), r[I->c].to_display_string(),
                         r[I->a]);
        }
        VM_NEXT();
      }
      VM_CASE(kDefineProp)
        h.define_property(r[I->b].as_object(), static_cast<Atom>(I->imm),
                          r[I->a]);
        VM_NEXT();
      VM_CASE(kDeleteProp)
        if (r[I->b].is_object()) {
          h.get(r[I->b].as_object()).properties.erase(static_cast<Atom>(I->imm));
        }
        r[I->a] = Value(true);
        VM_NEXT();
      VM_CASE(kDeleteIndex)
        h.delete_property(r[I->b].as_object(), r[I->c].to_display_string());
        r[I->a] = Value(true);
        VM_NEXT();
      VM_CASE(kMakeObject)
        r[I->a] = Value(h.make_object());
        VM_NEXT();
      VM_CASE(kMakeArray)
        r[I->a] = in.make_array(std::span<const Value>(r + I->b, I->imm));
        VM_NEXT();
      VM_CASE(kCall) {
        const Value& fn = r[I->b];
        CallIC& ic = call_ics[I->imm];
        const std::span<const Value> args(r + I->b + 1, I->c);
        // Hit: same function object as last time => skip the value-type and
        // is-callable checks and dispatch the cached Callable directly.
        if (fn.is_object() && fn.as_object().index() == ic.callee) {
          r[I->a] = in.invoke(*ic.target, Value(), args);
        } else {
          r[I->a] = in.call_resolved(fn, Value(), args, &ic);
        }
        VM_NEXT();
      }
      VM_CASE(kCallMethod) {
        const Value& fn = r[I->b];
        CallIC& ic = call_ics[I->imm];
        const std::span<const Value> args(r + I->b + 2, I->c);
        if (fn.is_object() && fn.as_object().index() == ic.callee) {
          r[I->a] = in.invoke(*ic.target, r[I->b + 1], args);
        } else {
          r[I->a] = in.call_resolved(fn, r[I->b + 1], args, &ic);
        }
        VM_NEXT();
      }
      VM_CASE(kNew)
        r[I->a] =
            in.construct(r[I->b], std::span<const Value>(r + I->b + 1, I->imm));
        VM_NEXT();
      VM_CASE(kAdd) {
        const Value& a = r[I->b];
        const Value& b = r[I->c];
        if (a.is_number() && b.is_number()) {  // hot path: numeric add
          r[I->a] = Value(a.as_number() + b.as_number());
        } else if (a.is_string() || b.is_string()) {
          r[I->a] = Value(a.to_display_string() + b.to_display_string());
        } else {
          r[I->a] = Value(a.to_number() + b.to_number());
        }
        VM_NEXT();
      }
      VM_CASE(kSub) {
        const Value& a = r[I->b];
        const Value& b = r[I->c];
        r[I->a] = a.is_number() && b.is_number()
                      ? Value(a.as_number() - b.as_number())
                      : Value(a.to_number() - b.to_number());
        VM_NEXT();
      }
      VM_CASE(kMul) {
        const Value& a = r[I->b];
        const Value& b = r[I->c];
        r[I->a] = a.is_number() && b.is_number()
                      ? Value(a.as_number() * b.as_number())
                      : Value(a.to_number() * b.to_number());
        VM_NEXT();
      }
      VM_CASE(kDiv) {
        const Value& a = r[I->b];
        const Value& b = r[I->c];
        r[I->a] = a.is_number() && b.is_number()
                      ? Value(a.as_number() / b.as_number())
                      : Value(a.to_number() / b.to_number());
        VM_NEXT();
      }
      VM_CASE(kMod)
        r[I->a] = Value(std::fmod(r[I->b].to_number(), r[I->c].to_number()));
        VM_NEXT();
      VM_CASE(kEq)
        r[I->a] = Value(r[I->b].loose_equals(r[I->c]));
        VM_NEXT();
      VM_CASE(kNe)
        r[I->a] = Value(!r[I->b].loose_equals(r[I->c]));
        VM_NEXT();
      VM_CASE(kStrictEq)
        r[I->a] = Value(r[I->b] == r[I->c]);
        VM_NEXT();
      VM_CASE(kStrictNe)
        r[I->a] = Value(!(r[I->b] == r[I->c]));
        VM_NEXT();
      VM_CASE(kLt)
        r[I->a] =
            compare(r[I->b], r[I->c], [](double x, double y) { return x < y; });
        VM_NEXT();
      VM_CASE(kGt)
        r[I->a] =
            compare(r[I->b], r[I->c], [](double x, double y) { return x > y; });
        VM_NEXT();
      VM_CASE(kLe)
        r[I->a] = compare(r[I->b], r[I->c],
                          [](double x, double y) { return x <= y; });
        VM_NEXT();
      VM_CASE(kGe)
        r[I->a] = compare(r[I->b], r[I->c],
                          [](double x, double y) { return x >= y; });
        VM_NEXT();
      VM_CASE(kInstanceof) {
        const Value& a = r[I->b];
        const Value& b = r[I->c];
        if (!b.is_object()) {
          throw ScriptError(
              "TypeError: right side of instanceof is not an object");
        }
        const Value proto =
            h.get_property(b.as_object(), at.well_known().prototype);
        if (!a.is_object() || !proto.is_object()) {
          r[I->a] = Value(false);
          VM_NEXT();
        }
        ObjectRef cursor = h.get(a.as_object()).prototype;
        bool found = false;
        for (int depth = 0; depth < 32 && !cursor.null(); ++depth) {
          if (cursor == proto.as_object()) {
            found = true;
            break;
          }
          cursor = h.get(cursor).prototype;
        }
        r[I->a] = Value(found);
        VM_NEXT();
      }
      VM_CASE(kIn)
        if (!r[I->c].is_object()) {
          throw ScriptError("TypeError: right side of 'in' is not an object");
        }
        r[I->a] =
            Value(h.has_property(r[I->c].as_object(),
                                 r[I->b].to_display_string()));
        VM_NEXT();
      VM_CASE(kNot)
        r[I->a] = Value(!r[I->b].truthy());
        VM_NEXT();
      VM_CASE(kNeg)
        r[I->a] = Value(-r[I->b].to_number());
        VM_NEXT();
      VM_CASE(kTypeofValue)
        r[I->a] = typeof_value(h, r[I->b]);
        VM_NEXT();
      VM_CASE(kTypeofVar) {
        // typeof tolerates unbound identifiers; the walker only burned
        // the operand's eval when the name was bound.
        VarIC& ic = var_ics[I->imm];
        if (ic.env_serial == env_serial) {
          in.burn_units(1);
          r[I->a] = typeof_value(h, env->slot_value(ic.slot));
          VM_NEXT();
        }
        Environment* e = env;
        std::uint32_t slot = PropertySlots::kMissSlot;
        for (; e != nullptr; e = e->parent()) {
          slot = e->own_slot(ic.atom);
          if (slot != PropertySlots::kMissSlot) break;
        }
        if (e == nullptr) {
          r[I->a] = Value("undefined");
          VM_NEXT();
        }
        in.burn_units(1);  // the bound identifier's eval
        if (e == env) {
          ic.env_serial = env_serial;
          ic.slot = slot;
        }
        r[I->a] = typeof_value(h, e->slot_value(slot));
        VM_NEXT();
      }
      VM_CASE(kIsObject)
        r[I->a] = Value(r[I->b].is_object());
        VM_NEXT();
      VM_CASE(kJump)
        VM_GOTO(I->imm);
      VM_CASE(kJumpIfFalse) {
        const Value& v = r[I->a];
        if (!(v.is_bool() ? v.as_bool() : v.truthy())) VM_GOTO(I->imm);
        VM_NEXT();
      }
      VM_CASE(kJumpIfTrue) {
        const Value& v = r[I->a];
        if (v.is_bool() ? v.as_bool() : v.truthy()) VM_GOTO(I->imm);
        VM_NEXT();
      }
      VM_CASE(kThrow)
        throw ScriptError(consts[I->imm].as_string());
      VM_CASE(kReturn)
        return std::move(r[I->a]);
      VM_CASE(kReturnUndefined)
        return Value();

#if !FU_VM_COMPUTED_GOTO
        }
        ++pc;
      }
#endif
    } catch (const ScriptError& err) {
      const Chunk::Handler* handler = nullptr;
      for (const Chunk::Handler& hd : chunk.handlers) {
        if (pc >= hd.start && pc < hd.end) {
          handler = &hd;
          break;
        }
      }
      if (handler == nullptr) throw;
      if (handler->binding != kNoAtom) {
        env->define(handler->binding, Value(err.what()));
      }
      pc = handler->target;
    }
  }
}

#undef VM_CASE
#undef VM_NEXT
#undef VM_GOTO
#if FU_VM_COMPUTED_GOTO
#undef VM_DISPATCH
#endif

}  // namespace fu::script
