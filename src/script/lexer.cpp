#include "script/lexer.h"

#include <array>
#include <cctype>
#include <cstdlib>

namespace fu::script {

namespace {

constexpr std::array<std::string_view, 12> kMultiCharPuncts = {
    "===", "!==", "==", "!=", "<=", ">=", "&&", "||", "++", "--", "+=", "-=",
};

}  // namespace

std::vector<Tok> tokenize(std::string_view src) {
  std::vector<Tok> out;
  std::size_t i = 0;
  std::size_t line = 1;

  const auto peek = [&](std::size_t off = 0) -> char {
    return i + off < src.size() ? src[i + off] : '\0';
  };

  while (i < src.size()) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '/' && peek(1) == '/') {
      while (i < src.size() && src[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      const std::size_t start = line;
      i += 2;
      for (;;) {
        if (i + 1 >= src.size()) throw SyntaxError("unterminated comment", start);
        if (src[i] == '\n') ++line;
        if (src[i] == '*' && src[i + 1] == '/') {
          i += 2;
          break;
        }
        ++i;
      }
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '$') {
      const std::size_t start = i;
      while (i < src.size() &&
             (std::isalnum(static_cast<unsigned char>(src[i])) ||
              src[i] == '_' || src[i] == '$')) {
        ++i;
      }
      out.push_back({TokKind::kIdentifier,
                     std::string(src.substr(start, i - start)), 0, line});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      const std::size_t start = i;
      while (i < src.size() &&
             (std::isalnum(static_cast<unsigned char>(src[i])) ||
              src[i] == '.' ||
              ((src[i] == '+' || src[i] == '-') && i > start &&
               (src[i - 1] == 'e' || src[i - 1] == 'E')))) {
        ++i;
      }
      const std::string text(src.substr(start, i - start));
      char* end = nullptr;
      const double value = std::strtod(text.c_str(), &end);
      if (end == nullptr || *end != '\0') {
        throw SyntaxError("bad numeric literal '" + text + "'", line);
      }
      out.push_back({TokKind::kNumber, text, value, line});
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      const std::size_t start = line;
      ++i;
      std::string text;
      for (;;) {
        if (i >= src.size()) throw SyntaxError("unterminated string", start);
        if (src[i] == quote) {
          ++i;
          break;
        }
        if (src[i] == '\\' && i + 1 < src.size()) {
          const char esc = src[i + 1];
          switch (esc) {
            case 'n': text.push_back('\n'); break;
            case 't': text.push_back('\t'); break;
            case 'r': text.push_back('\r'); break;
            case '\\': text.push_back('\\'); break;
            case '\'': text.push_back('\''); break;
            case '"': text.push_back('"'); break;
            default: text.push_back(esc);
          }
          i += 2;
          continue;
        }
        if (src[i] == '\n') ++line;
        text.push_back(src[i++]);
      }
      out.push_back({TokKind::kString, std::move(text), 0, line});
      continue;
    }
    // punctuation: longest match first
    bool matched = false;
    for (const auto p : kMultiCharPuncts) {
      if (src.substr(i, p.size()) == p) {
        out.push_back({TokKind::kPunct, std::string(p), 0, line});
        i += p.size();
        matched = true;
        break;
      }
    }
    if (matched) continue;
    constexpr std::string_view kSingles = "{}()[];,.<>=+-*/%!?:";
    if (kSingles.find(c) != std::string_view::npos) {
      out.push_back({TokKind::kPunct, std::string(1, c), 0, line});
      ++i;
      continue;
    }
    throw SyntaxError(std::string("unexpected character '") + c + "'", line);
  }
  out.push_back({TokKind::kEof, "", 0, line});
  return out;
}

}  // namespace fu::script
