#include "script/snapshot.h"

#include <stdexcept>

#include "obs/mem.h"
#include "obs/profiler.h"

namespace fu::script {

HeapSnapshot::HeapSnapshot(const Interpreter& source) {
  if (source.env_serial_counter_ != 1) {
    throw std::logic_error(
        "HeapSnapshot: source interpreter has activation environments; "
        "capture must happen before any script runs");
  }
  const Heap& src = source.heap_;
  for (std::uint32_t i = 1; i < src.size(); ++i) {
    const JsObject& obj = src.get(ObjectRef(i));
    if (obj.callable && obj.callable->script) {
      throw std::logic_error(
          "HeapSnapshot: source heap holds a script function; its closure "
          "environment cannot be shared across sessions");
    }
  }
  // The frozen image is long-lived residency of its own kind — account its
  // slabs to the snapshot domain, not to live session heaps.
  heap_.set_mem_domain(obs::mem::Domain::kSnapshot);
  heap_.clone_from(src);  // strips watch handlers; shares native Callables
  // Freeze one shared copy of the atom table for all clones to adopt as an
  // immutable base. Taken from heap_ (not src) so views/ids match the image.
  auto frozen = std::make_shared<AtomTable>();
  frozen->clone_from(heap_.atoms());
  frozen_atoms_ = std::move(frozen);
  globals_ = source.global_env_->bindings_;
  array_prototype_ = source.array_prototype_;
  string_prototype_ = source.string_prototype_;
}

void HeapSnapshot::instantiate(Interpreter& out) const {
  // Profiler attribution: cloning is the bulk of snapshot-based session
  // setup, and it runs from a constructor init-list where the caller cannot
  // scope a frame around it (see obs/folded.cpp for the stage's standards
  // attribution).
  obs::StageFrame clone_frame("session-clone");
  out.heap_.clone_from(heap_, frozen_atoms_);
  // Global env first (serial 1), exactly as the rebuild constructor does.
  out.global_env_ = out.make_environment(nullptr);
  out.global_env_->bindings_ = globals_;
  out.array_prototype_ = array_prototype_;
  out.string_prototype_ = string_prototype_;
}

}  // namespace fu::script
