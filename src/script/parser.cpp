#include "script/parser.h"

#include <utility>

#include "script/compiler.h"

namespace fu::script {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view source) : toks_(tokenize(source)) {}

  Program run() {
    Program prog;
    while (!at_eof()) prog.statements.push_back(statement());
    return prog;
  }

 private:
  // --- token helpers -----------------------------------------------------
  const Tok& peek(std::size_t off = 0) const {
    const std::size_t i = pos_ + off;
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  bool at_eof() const { return peek().kind == TokKind::kEof; }
  const Tok& advance() { return toks_[pos_++]; }

  bool is_punct(std::string_view p, std::size_t off = 0) const {
    return peek(off).kind == TokKind::kPunct && peek(off).text == p;
  }
  bool accept(std::string_view p) {
    if (is_punct(p)) {
      ++pos_;
      return true;
    }
    return false;
  }
  void expect(std::string_view p) {
    if (!accept(p)) {
      throw SyntaxError("expected '" + std::string(p) + "' but found '" +
                            peek().text + "'",
                        peek().line);
    }
  }
  bool is_keyword(std::string_view kw, std::size_t off = 0) const {
    return peek(off).kind == TokKind::kIdentifier && peek(off).text == kw;
  }
  bool accept_keyword(std::string_view kw) {
    if (is_keyword(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }
  std::string expect_identifier() {
    if (peek().kind != TokKind::kIdentifier) {
      throw SyntaxError("expected identifier, found '" + peek().text + "'",
                        peek().line);
    }
    return advance().text;
  }

  // --- statements -------------------------------------------------------
  StmtPtr statement() {
    if (accept(";")) return std::make_unique<Stmt>(Stmt::Kind::kEmpty);
    if (is_punct("{")) return block();
    if (is_keyword("var") || is_keyword("let") || is_keyword("const")) {
      StmtPtr s = var_declaration();
      expect(";");
      return s;
    }
    if (accept_keyword("if")) return if_statement();
    if (accept_keyword("while")) return while_statement();
    if (accept_keyword("do")) return do_while_statement();
    if (accept_keyword("for")) return for_statement();
    if (accept_keyword("switch")) return switch_statement();
    if (accept_keyword("return")) {
      auto s = std::make_unique<Stmt>(Stmt::Kind::kReturn);
      if (!is_punct(";")) s->expr = expression();
      expect(";");
      return s;
    }
    if (accept_keyword("break")) {
      expect(";");
      return std::make_unique<Stmt>(Stmt::Kind::kBreak);
    }
    if (accept_keyword("continue")) {
      expect(";");
      return std::make_unique<Stmt>(Stmt::Kind::kContinue);
    }
    if (is_keyword("function") && peek(1).kind == TokKind::kIdentifier) {
      ++pos_;
      auto s = std::make_unique<Stmt>(Stmt::Kind::kFunction);
      s->function = function_rest(/*named=*/true);
      return s;
    }
    if (accept_keyword("try")) return try_statement();
    auto s = std::make_unique<Stmt>(Stmt::Kind::kExpr);
    s->expr = expression();
    expect(";");
    return s;
  }

  StmtPtr block() {
    expect("{");
    auto s = std::make_unique<Stmt>(Stmt::Kind::kBlock);
    while (!is_punct("}")) {
      if (at_eof()) throw SyntaxError("unterminated block", peek().line);
      s->statements.push_back(statement());
    }
    expect("}");
    return s;
  }

  StmtPtr var_declaration() {
    advance();  // var/let/const
    auto s = std::make_unique<Stmt>(Stmt::Kind::kVar);
    s->name = expect_identifier();
    if (accept("=")) s->expr = assignment();
    // Additional declarators become nested var statements in a block.
    if (is_punct(",")) {
      auto blockStmt = std::make_unique<Stmt>(Stmt::Kind::kBlock);
      blockStmt->statements.push_back(std::move(s));
      while (accept(",")) {
        auto next = std::make_unique<Stmt>(Stmt::Kind::kVar);
        next->name = expect_identifier();
        if (accept("=")) next->expr = assignment();
        blockStmt->statements.push_back(std::move(next));
      }
      return blockStmt;
    }
    return s;
  }

  StmtPtr if_statement() {
    expect("(");
    auto s = std::make_unique<Stmt>(Stmt::Kind::kIf);
    s->expr = expression();
    expect(")");
    s->body = statement();
    if (accept_keyword("else")) s->else_body = statement();
    return s;
  }

  StmtPtr while_statement() {
    expect("(");
    auto s = std::make_unique<Stmt>(Stmt::Kind::kWhile);
    s->expr = expression();
    expect(")");
    s->body = statement();
    return s;
  }

  StmtPtr do_while_statement() {
    auto s = std::make_unique<Stmt>(Stmt::Kind::kDoWhile);
    s->body = statement();
    if (!accept_keyword("while")) {
      throw SyntaxError("do without while", peek().line);
    }
    expect("(");
    s->expr = expression();
    expect(")");
    expect(";");
    return s;
  }

  StmtPtr switch_statement() {
    auto s = std::make_unique<Stmt>(Stmt::Kind::kSwitch);
    expect("(");
    s->expr = expression();
    expect(")");
    expect("{");
    bool saw_default = false;
    while (!is_punct("}")) {
      if (at_eof()) throw SyntaxError("unterminated switch", peek().line);
      Stmt::SwitchClause clause;
      if (accept_keyword("case")) {
        clause.test = expression();
      } else if (accept_keyword("default")) {
        if (saw_default) {
          throw SyntaxError("duplicate default clause", peek().line);
        }
        saw_default = true;
      } else {
        throw SyntaxError("expected 'case' or 'default'", peek().line);
      }
      expect(":");
      while (!is_punct("}") && !is_keyword("case") && !is_keyword("default")) {
        clause.body.push_back(statement());
      }
      s->clauses.push_back(std::move(clause));
    }
    expect("}");
    return s;
  }

  StmtPtr for_statement() {
    expect("(");
    auto s = std::make_unique<Stmt>(Stmt::Kind::kFor);
    if (!accept(";")) {
      if (is_keyword("var") || is_keyword("let") || is_keyword("const")) {
        s->init_stmt = var_declaration();
      } else {
        s->init_expr = expression();
      }
      expect(";");
    }
    if (!is_punct(";")) s->expr = expression();  // condition
    expect(";");
    if (!is_punct(")")) s->step = expression();
    expect(")");
    s->body = statement();
    return s;
  }

  StmtPtr try_statement() {
    auto s = std::make_unique<Stmt>(Stmt::Kind::kTry);
    StmtPtr tryBlock = block();
    s->statements = std::move(tryBlock->statements);
    if (accept_keyword("catch")) {
      if (accept("(")) {
        s->name = expect_identifier();
        expect(")");
      }
      StmtPtr catchBlock = block();
      s->catch_body = std::move(catchBlock->statements);
    } else if (accept_keyword("finally")) {
      // modelled as unconditional code after the try
      StmtPtr finallyBlock = block();
      s->catch_body = std::move(finallyBlock->statements);
    } else {
      throw SyntaxError("try without catch/finally", peek().line);
    }
    return s;
  }

  std::shared_ptr<AstFunction> function_rest(bool named) {
    auto fn = std::make_shared<AstFunction>();
    if (named) fn->name = expect_identifier();
    expect("(");
    if (!is_punct(")")) {
      do {
        fn->params.push_back(expect_identifier());
      } while (accept(","));
    }
    expect(")");
    expect("{");
    while (!is_punct("}")) {
      if (at_eof()) throw SyntaxError("unterminated function body", peek().line);
      fn->body.push_back(statement());
    }
    expect("}");
    return fn;
  }

  // --- expressions -------------------------------------------------------
  ExprPtr expression() { return assignment(); }

  ExprPtr assignment() {
    ExprPtr lhs = conditional();
    if (is_punct("=") || is_punct("+=") || is_punct("-=")) {
      const std::string op = advance().text;
      if (lhs->kind != Expr::Kind::kIdentifier &&
          lhs->kind != Expr::Kind::kMember &&
          lhs->kind != Expr::Kind::kIndex) {
        throw SyntaxError("invalid assignment target", peek().line);
      }
      ExprPtr rhs = assignment();
      if (op != "=") {
        // desugar a += b into a = a + b (the target is re-evaluated; fine
        // for the code our generator emits)
        auto read = clone_target(*lhs);
        auto bin = std::make_unique<Expr>(Expr::Kind::kBinary);
        bin->binary_op = op == "+=" ? BinaryOp::kAdd : BinaryOp::kSub;
        bin->lhs = std::move(read);
        bin->rhs = std::move(rhs);
        rhs = std::move(bin);
      }
      auto assign = std::make_unique<Expr>(Expr::Kind::kAssign);
      assign->lhs = std::move(lhs);
      assign->rhs = std::move(rhs);
      return assign;
    }
    return lhs;
  }

  // Shallow structural clone of an assignment target for compound-assign
  // desugaring.
  ExprPtr clone_target(const Expr& e) {
    auto out = std::make_unique<Expr>(e.kind);
    out->text = e.text;
    if (e.object) out->object = clone_target(*e.object);
    if (e.index) out->index = clone_target(*e.index);
    out->number = e.number;
    out->boolean = e.boolean;
    return out;
  }

  ExprPtr conditional() {
    ExprPtr cond = binary_or();
    if (accept("?")) {
      auto e = std::make_unique<Expr>(Expr::Kind::kConditional);
      e->cond = std::move(cond);
      e->then_expr = assignment();
      expect(":");
      e->else_expr = assignment();
      return e;
    }
    return cond;
  }

  ExprPtr binary_or() {
    ExprPtr lhs = binary_and();
    while (is_punct("||")) {
      ++pos_;
      auto e = std::make_unique<Expr>(Expr::Kind::kBinary);
      e->binary_op = BinaryOp::kOr;
      e->lhs = std::move(lhs);
      e->rhs = binary_and();
      lhs = std::move(e);
    }
    return lhs;
  }

  ExprPtr binary_and() {
    ExprPtr lhs = equality();
    while (is_punct("&&")) {
      ++pos_;
      auto e = std::make_unique<Expr>(Expr::Kind::kBinary);
      e->binary_op = BinaryOp::kAnd;
      e->lhs = std::move(lhs);
      e->rhs = equality();
      lhs = std::move(e);
    }
    return lhs;
  }

  ExprPtr equality() {
    ExprPtr lhs = relational();
    for (;;) {
      BinaryOp op;
      if (is_punct("===")) op = BinaryOp::kStrictEq;
      else if (is_punct("!==")) op = BinaryOp::kStrictNe;
      else if (is_punct("==")) op = BinaryOp::kEq;
      else if (is_punct("!=")) op = BinaryOp::kNe;
      else break;
      ++pos_;
      auto e = std::make_unique<Expr>(Expr::Kind::kBinary);
      e->binary_op = op;
      e->lhs = std::move(lhs);
      e->rhs = relational();
      lhs = std::move(e);
    }
    return lhs;
  }

  ExprPtr relational() {
    ExprPtr lhs = additive();
    for (;;) {
      BinaryOp op;
      if (is_punct("<=")) op = BinaryOp::kLe;
      else if (is_punct(">=")) op = BinaryOp::kGe;
      else if (is_punct("<")) op = BinaryOp::kLt;
      else if (is_punct(">")) op = BinaryOp::kGt;
      else if (is_keyword("instanceof")) op = BinaryOp::kInstanceof;
      else if (is_keyword("in")) op = BinaryOp::kIn;
      else break;
      ++pos_;
      auto e = std::make_unique<Expr>(Expr::Kind::kBinary);
      e->binary_op = op;
      e->lhs = std::move(lhs);
      e->rhs = additive();
      lhs = std::move(e);
    }
    return lhs;
  }

  ExprPtr additive() {
    ExprPtr lhs = multiplicative();
    for (;;) {
      BinaryOp op;
      if (is_punct("+")) op = BinaryOp::kAdd;
      else if (is_punct("-")) op = BinaryOp::kSub;
      else break;
      ++pos_;
      auto e = std::make_unique<Expr>(Expr::Kind::kBinary);
      e->binary_op = op;
      e->lhs = std::move(lhs);
      e->rhs = multiplicative();
      lhs = std::move(e);
    }
    return lhs;
  }

  ExprPtr multiplicative() {
    ExprPtr lhs = unary();
    for (;;) {
      BinaryOp op;
      if (is_punct("*")) op = BinaryOp::kMul;
      else if (is_punct("/")) op = BinaryOp::kDiv;
      else if (is_punct("%")) op = BinaryOp::kMod;
      else break;
      ++pos_;
      auto e = std::make_unique<Expr>(Expr::Kind::kBinary);
      e->binary_op = op;
      e->lhs = std::move(lhs);
      e->rhs = unary();
      lhs = std::move(e);
    }
    return lhs;
  }

  ExprPtr unary() {
    if (accept("!")) {
      auto e = std::make_unique<Expr>(Expr::Kind::kUnary);
      e->unary_op = UnaryOp::kNot;
      e->lhs = unary();
      return e;
    }
    if (accept("-")) {
      auto e = std::make_unique<Expr>(Expr::Kind::kUnary);
      e->unary_op = UnaryOp::kNeg;
      e->lhs = unary();
      return e;
    }
    if (accept_keyword("typeof")) {
      auto e = std::make_unique<Expr>(Expr::Kind::kUnary);
      e->unary_op = UnaryOp::kTypeof;
      e->lhs = unary();
      return e;
    }
    if (accept_keyword("delete")) {
      auto e = std::make_unique<Expr>(Expr::Kind::kUnary);
      e->unary_op = UnaryOp::kDelete;
      e->lhs = unary();
      if (e->lhs->kind != Expr::Kind::kMember &&
          e->lhs->kind != Expr::Kind::kIndex) {
        throw SyntaxError("delete needs a property reference", peek().line);
      }
      return e;
    }
    if (is_punct("++") || is_punct("--")) {
      // prefix increment: desugar to assignment
      const bool inc = advance().text == "++";
      ExprPtr target = unary();
      auto bin = std::make_unique<Expr>(Expr::Kind::kBinary);
      bin->binary_op = inc ? BinaryOp::kAdd : BinaryOp::kSub;
      bin->lhs = clone_target(*target);
      auto one = std::make_unique<Expr>(Expr::Kind::kNumber);
      one->number = 1;
      bin->rhs = std::move(one);
      auto assign = std::make_unique<Expr>(Expr::Kind::kAssign);
      assign->lhs = std::move(target);
      assign->rhs = std::move(bin);
      return assign;
    }
    return postfix();
  }

  ExprPtr postfix() {
    ExprPtr e = call_member(primary());
    if (is_punct("++") || is_punct("--")) {
      // postfix increment: value semantics simplified to the updated value
      const bool inc = advance().text == "++";
      auto bin = std::make_unique<Expr>(Expr::Kind::kBinary);
      bin->binary_op = inc ? BinaryOp::kAdd : BinaryOp::kSub;
      bin->lhs = clone_target(*e);
      auto one = std::make_unique<Expr>(Expr::Kind::kNumber);
      one->number = 1;
      bin->rhs = std::move(one);
      auto assign = std::make_unique<Expr>(Expr::Kind::kAssign);
      assign->lhs = std::move(e);
      assign->rhs = std::move(bin);
      return assign;
    }
    return e;
  }

  ExprPtr call_member(ExprPtr base) {
    for (;;) {
      if (accept(".")) {
        auto e = std::make_unique<Expr>(Expr::Kind::kMember);
        e->object = std::move(base);
        e->text = expect_identifier();
        base = std::move(e);
      } else if (accept("[")) {
        auto e = std::make_unique<Expr>(Expr::Kind::kIndex);
        e->object = std::move(base);
        e->index = expression();
        expect("]");
        base = std::move(e);
      } else if (is_punct("(")) {
        auto e = std::make_unique<Expr>(Expr::Kind::kCall);
        e->callee = std::move(base);
        e->args = argument_list();
        base = std::move(e);
      } else {
        return base;
      }
    }
  }

  std::vector<ExprPtr> argument_list() {
    expect("(");
    std::vector<ExprPtr> args;
    if (!is_punct(")")) {
      do {
        args.push_back(assignment());
      } while (accept(","));
    }
    expect(")");
    return args;
  }

  ExprPtr primary() {
    const Tok& t = peek();
    if (t.kind == TokKind::kNumber) {
      auto e = std::make_unique<Expr>(Expr::Kind::kNumber);
      e->number = advance().number;
      return e;
    }
    if (t.kind == TokKind::kString) {
      auto e = std::make_unique<Expr>(Expr::Kind::kString);
      e->text = advance().text;
      return e;
    }
    if (accept("(")) {
      ExprPtr e = expression();
      expect(")");
      return e;
    }
    if (is_punct("{")) return object_literal();
    if (is_punct("[")) return array_literal();
    if (t.kind == TokKind::kIdentifier) {
      if (t.text == "true" || t.text == "false") {
        auto e = std::make_unique<Expr>(Expr::Kind::kBool);
        e->boolean = advance().text == "true";
        return e;
      }
      if (t.text == "null") {
        ++pos_;
        return std::make_unique<Expr>(Expr::Kind::kNull);
      }
      if (t.text == "undefined") {
        ++pos_;
        return std::make_unique<Expr>(Expr::Kind::kUndefined);
      }
      if (t.text == "function") {
        ++pos_;
        auto e = std::make_unique<Expr>(Expr::Kind::kFunction);
        const bool named = peek().kind == TokKind::kIdentifier;
        e->function = function_rest(named);
        return e;
      }
      if (t.text == "new") {
        ++pos_;
        auto e = std::make_unique<Expr>(Expr::Kind::kNew);
        ExprPtr ctor = primary();
        // allow member paths after new: new foo.Bar(...)
        while (accept(".")) {
          auto m = std::make_unique<Expr>(Expr::Kind::kMember);
          m->object = std::move(ctor);
          m->text = expect_identifier();
          ctor = std::move(m);
        }
        e->callee = std::move(ctor);
        if (is_punct("(")) e->args = argument_list();
        return e;
      }
      auto e = std::make_unique<Expr>(Expr::Kind::kIdentifier);
      e->text = advance().text;
      return e;
    }
    throw SyntaxError("unexpected token '" + t.text + "'", t.line);
  }

  ExprPtr object_literal() {
    expect("{");
    auto e = std::make_unique<Expr>(Expr::Kind::kObjectLiteral);
    while (!is_punct("}")) {
      std::string key;
      if (peek().kind == TokKind::kString) {
        key = advance().text;
      } else if (peek().kind == TokKind::kNumber) {
        key = advance().text;
      } else {
        key = expect_identifier();
      }
      expect(":");
      e->keys.push_back(std::move(key));
      e->args.push_back(assignment());
      if (!accept(",")) break;
    }
    expect("}");
    return e;
  }

  ExprPtr array_literal() {
    expect("[");
    auto e = std::make_unique<Expr>(Expr::Kind::kArrayLiteral);
    while (!is_punct("]")) {
      e->args.push_back(assignment());
      if (!accept(",")) break;
    }
    expect("]");
    return e;
  }

  std::vector<Tok> toks_;
  std::size_t pos_ = 0;
};

}  // namespace

Program parse_program(std::string_view source, AtomTable* atoms) {
  Program program = Parser(source).run();
  if (atoms != nullptr) {
    // Pre-compile for the given engine at parse time (the site-cache fill
    // path passes its interpreter's table here), so the first measurement
    // pass doesn't pay compilation inside the execution trace span. The
    // chunk travels with the Program: it holds no pointers into the
    // statement tree, only shared AstFunction ownership.
    chunk_for(program, *atoms);
  }
  return program;
}

}  // namespace fu::script
