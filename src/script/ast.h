// MiniJS abstract syntax tree. Owned as a Program of unique_ptrs; the
// interpreter walks it many times (the crawler re-runs the same page
// scripts on every measurement pass). The only mutation the walk performs
// is filling the `mutable` inline-cache fields below — site caches share
// one Program across every session visiting a site, and sites are
// single-threaded (the SiteCache contract), so unsynchronized IC state is
// safe; the caches self-invalidate across interpreters via engine_id.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "script/atoms.h"

namespace fu::script {

struct Expr;
struct Stmt;
using ExprPtr = std::unique_ptr<Expr>;
using StmtPtr = std::unique_ptr<Stmt>;

enum class BinaryOp {
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNe, kStrictEq, kStrictNe,
  kLt, kGt, kLe, kGe,
  kAnd, kOr,
  kInstanceof,  // prototype-chain test
  kIn,          // property-existence test
};

enum class UnaryOp { kNot, kNeg, kTypeof, kDelete };

struct AstFunction {
  std::string name;  // empty for anonymous
  std::vector<std::string> params;
  std::vector<StmtPtr> body;

  // Per-engine memo of the interned parameter atoms (call_function defines
  // params on every activation; interning once per engine keeps that off
  // the hot path).
  mutable std::uint64_t param_engine = 0;
  mutable std::vector<Atom> param_atoms;
  // Interned profiler frame label (see script/profhook.h); label ids are
  // process-stable, so unlike param_atoms this never needs an engine check.
  mutable std::uint32_t prof_label = 0;
};

struct Expr {
  enum class Kind {
    kNumber, kString, kBool, kNull, kUndefined,
    kIdentifier, kMember, kIndex, kCall, kNew,
    kAssign, kBinary, kUnary, kConditional,
    kFunction, kObjectLiteral, kArrayLiteral,
  };

  explicit Expr(Kind k) : kind(k) {}

  Kind kind;
  // literals
  double number = 0;
  std::string text;  // string literal / identifier / member name
  bool boolean = false;
  // composite
  ExprPtr object;               // member/index base, assign target base
  ExprPtr index;                // index expression
  ExprPtr callee;               // call/new target
  std::vector<ExprPtr> args;    // call/new arguments, array elements
  ExprPtr lhs, rhs;             // binary / assign
  ExprPtr cond, then_expr, else_expr;  // conditional
  BinaryOp binary_op = BinaryOp::kAdd;
  UnaryOp unary_op = UnaryOp::kNot;
  std::shared_ptr<AstFunction> function;  // function expressions
  // object literal: parallel vectors of keys and value expressions
  std::vector<std::string> keys;

  // --- inline caches (see atoms.h for validity rules) ---
  mutable VarIC var_ic;           // kIdentifier reads / assign targets
  mutable PropertyIC prop_ic;     // kMember reads
  mutable PropertyWriteIC write_ic;  // kMember assignment targets
  // object literal: per-engine memo of interned key atoms
  mutable std::uint64_t keys_engine = 0;
  mutable std::vector<Atom> key_atoms;
};

struct Stmt {
  enum class Kind {
    kExpr, kVar, kIf, kWhile, kDoWhile, kFor, kReturn, kBlock, kFunction,
    kTry, kBreak, kContinue, kEmpty, kSwitch,
  };

  explicit Stmt(Kind k) : kind(k) {}

  Kind kind;
  ExprPtr expr;              // expr stmt / var init / return value / conditions
  std::string name;          // var name / catch binding
  // per-engine memo of `name` interned (var statements in loops)
  mutable std::uint64_t name_engine = 0;
  mutable Atom name_atom = kNoAtom;
  StmtPtr body;              // loop body, if-then
  StmtPtr else_body;         // if-else
  ExprPtr init_expr;         // for-init expression (var handled via init_stmt)
  StmtPtr init_stmt;         // for-init var declaration
  ExprPtr step;              // for-step
  std::vector<StmtPtr> statements;  // block
  std::shared_ptr<AstFunction> function;  // function declarations
  std::vector<StmtPtr> catch_body;        // try/catch

  // switch: one entry per case clause; `expr` is the discriminant. A null
  // test marks the default clause. Each clause owns its statement list;
  // fallthrough runs until break.
  struct SwitchClause {
    ExprPtr test;  // null = default
    std::vector<StmtPtr> body;
  };
  std::vector<SwitchClause> clauses;
};

struct Program {
  std::vector<StmtPtr> statements;
};

}  // namespace fu::script
