// MiniJS abstract syntax tree. Owned as a Program of unique_ptrs; the
// engine compiles it to register bytecode (compiler.cpp) and executes the
// chunk in the VM (vm.cpp) — the crawler re-runs the same page scripts on
// every measurement pass, so compiled chunks are memoized here. A chunk
// bakes in atoms from the compiling engine's AtomTable, so the memo is
// tagged with the engine id and recompiles cleanly under a different
// interpreter. Site caches share one Program across every session visiting
// a site, and sites are single-threaded (the SiteCache contract), so the
// unsynchronized mutable memo — and the IC state inside the chunk — is
// safe.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "script/atoms.h"

namespace fu::script {

struct Expr;
struct Stmt;
struct Chunk;
using ExprPtr = std::unique_ptr<Expr>;
using StmtPtr = std::unique_ptr<Stmt>;

enum class BinaryOp {
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNe, kStrictEq, kStrictNe,
  kLt, kGt, kLe, kGe,
  kAnd, kOr,
  kInstanceof,  // prototype-chain test
  kIn,          // property-existence test
};

enum class UnaryOp { kNot, kNeg, kTypeof, kDelete };

struct AstFunction {
  std::string name;  // empty for anonymous
  std::vector<std::string> params;
  std::vector<StmtPtr> body;

  // Per-engine memo of the compiled body (see compiler.cpp::chunk_for).
  mutable std::uint64_t chunk_engine = 0;
  mutable std::shared_ptr<Chunk> chunk;
  // Interned profiler frame label (see script/profhook.h); label ids are
  // process-stable, so unlike the chunk this never needs an engine check.
  mutable std::uint32_t prof_label = 0;
};

struct Expr {
  enum class Kind {
    kNumber, kString, kBool, kNull, kUndefined,
    kIdentifier, kMember, kIndex, kCall, kNew,
    kAssign, kBinary, kUnary, kConditional,
    kFunction, kObjectLiteral, kArrayLiteral,
  };

  explicit Expr(Kind k) : kind(k) {}

  Kind kind;
  // literals
  double number = 0;
  std::string text;  // string literal / identifier / member name
  bool boolean = false;
  // composite
  ExprPtr object;               // member/index base, assign target base
  ExprPtr index;                // index expression
  ExprPtr callee;               // call/new target
  std::vector<ExprPtr> args;    // call/new arguments, array elements,
                                // object literal values
  ExprPtr lhs, rhs;             // binary / assign
  ExprPtr cond, then_expr, else_expr;  // conditional
  BinaryOp binary_op = BinaryOp::kAdd;
  UnaryOp unary_op = UnaryOp::kNot;
  std::shared_ptr<AstFunction> function;  // function expressions
  // object literal: parallel with args
  std::vector<std::string> keys;
};

struct Stmt {
  enum class Kind {
    kExpr, kVar, kIf, kWhile, kDoWhile, kFor, kReturn, kBlock, kFunction,
    kTry, kBreak, kContinue, kEmpty, kSwitch,
  };

  explicit Stmt(Kind k) : kind(k) {}

  Kind kind;
  ExprPtr expr;              // expr stmt / var init / return value / conditions
  std::string name;          // var name / catch binding
  StmtPtr body;              // loop body, if-then
  StmtPtr else_body;         // if-else
  ExprPtr init_expr;         // for-init expression (var handled via init_stmt)
  StmtPtr init_stmt;         // for-init var declaration
  ExprPtr step;              // for-step
  std::vector<StmtPtr> statements;  // block
  std::shared_ptr<AstFunction> function;  // function declarations
  std::vector<StmtPtr> catch_body;        // try/catch

  // switch: one entry per case clause; `expr` is the discriminant. A null
  // test marks the default clause. Each clause owns its statement list;
  // fallthrough runs until break.
  struct SwitchClause {
    ExprPtr test;  // null = default
    std::vector<StmtPtr> body;
  };
  std::vector<SwitchClause> clauses;
};

struct Program {
  std::vector<StmtPtr> statements;

  // Per-engine memo of the compiled top level (compiler.cpp::chunk_for).
  mutable std::uint64_t chunk_engine = 0;
  mutable std::shared_ptr<Chunk> chunk;
};

}  // namespace fu::script
