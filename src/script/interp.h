// MiniJS tree-walking interpreter.
//
// One Interpreter per page: it owns the heap, the scope arena and the global
// environment. The browser installs host bindings (window, document, the
// per-interface constructors and prototypes) before any page script runs,
// then the measuring extension rewrites those prototypes — the order matters
// and mirrors §4.2's "inject at the beginning of <head>".
//
// Execution is fuel-limited so pathological pages cannot hang the crawl;
// running out of fuel aborts the current script with a ScriptError, which
// the browser records the way it records other page script failures.
#pragma once

#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "script/ast.h"
#include "script/value.h"
#include "support/rng.h"

namespace fu::script {

// Runtime failure (TypeError-ish); distinct from SyntaxError at parse time.
class ScriptError : public std::runtime_error {
 public:
  explicit ScriptError(const std::string& message)
      : std::runtime_error(message) {}
};

class Environment {
 public:
  explicit Environment(Environment* parent) : parent_(parent) {}

  // Defines or overwrites in *this* scope.
  void define(std::string_view name, Value value);
  // Assignment: walks up to the defining scope; defines globally if unbound
  // (sloppy-mode JavaScript behaviour).
  void assign(std::string_view name, Value value);
  // nullptr when unbound.
  const Value* lookup(std::string_view name) const;

  Environment* parent() const noexcept { return parent_; }

 private:
  std::map<std::string, Value, std::less<>> bindings_;
  Environment* parent_;
};

class Interpreter {
 public:
  explicit Interpreter(std::uint64_t rng_seed = 0x5c71b7ULL);

  Heap& heap() noexcept { return heap_; }
  const Heap& heap() const noexcept { return heap_; }
  Environment& globals() noexcept { return *global_env_; }

  // Fuel budget for each top-level execute()/call_function() entry.
  void set_fuel_per_run(std::uint64_t fuel) noexcept { fuel_per_run_ = fuel; }

  // Run a whole program in the global scope. Statements own their AST;
  // the program must outlive any function values it created (the page keeps
  // parsed scripts alive for its lifetime).
  void execute(const Program& program);

  // Invoke a function value (native or script). Resets fuel if this is a
  // top-level entry (depth 0).
  Value call_function(const Value& fn, const Value& self,
                      std::span<const Value> args);

  // Convenience for hosts: allocate an environment in the interpreter's
  // arena (closures need stable addresses).
  Environment* make_environment(Environment* parent);

  // Instantiate `new ctor(...)` semantics from native code.
  Value construct(const Value& ctor, std::span<const Value> args);

  // Deterministic per-page RNG (drives Math.random).
  support::Rng& rng() noexcept { return rng_; }

  std::uint64_t steps_executed() const noexcept { return steps_; }

  // Prototype objects for primitive-adjacent builtins. Array literals are
  // created with array_prototype(); string member access falls back to
  // string_prototype() (the natives receive the string as `this`).
  ObjectRef array_prototype() const noexcept { return array_prototype_; }
  ObjectRef string_prototype() const noexcept { return string_prototype_; }

  // Create an Array object from values.
  Value make_array(std::span<const Value> elements);

 private:
  friend class Evaluator;

  void install_builtins();
  void install_extended_builtins();  // builtins.cpp

  // One unit of work; throws ScriptError when the per-run budget is gone.
  void burn_fuel() {
    ++steps_;
    if (fuel_ == 0) {
      throw ScriptError("script exceeded its execution budget");
    }
    --fuel_;
  }

  Heap heap_;
  std::vector<std::unique_ptr<Environment>> env_arena_;
  Environment* global_env_ = nullptr;
  ObjectRef array_prototype_;
  ObjectRef string_prototype_;
  support::Rng rng_;
  std::uint64_t fuel_per_run_ = 200'000;
  std::uint64_t fuel_ = 0;
  std::uint64_t steps_ = 0;
  int call_depth_ = 0;
};

}  // namespace fu::script
