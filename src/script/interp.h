// MiniJS interpreter front end: owns the engine state and drives the
// register-bytecode VM (ASTs are compiled per engine by compiler.cpp and
// executed by vm.cpp).
//
// One Interpreter per page: it owns the heap, the scope arena and the global
// environment. The browser installs host bindings (window, document, the
// per-interface constructors and prototypes) before any page script runs,
// then the measuring extension rewrites those prototypes — the order matters
// and mirrors §4.2's "inject at the beginning of <head>".
//
// Execution is fuel-limited so pathological pages cannot hang the crawl;
// running out of fuel aborts the current script with a ScriptError, which
// the browser records the way it records other page script failures.
//
// Name resolution is atom-based end to end: environment bindings live in
// the same insertion-ordered slot store as object properties, and every
// environment carries a serial number (unique within its interpreter) that
// identifier inline caches key on. Environments are arena-allocated and
// never freed mid-page, so slot indices and Environment pointers cached by
// an IC stay valid for the interpreter's lifetime; binding stores are
// append-only (no `delete` on scopes in JavaScript).
#pragma once

#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "script/ast.h"
#include "script/value.h"
#include "support/rng.h"

namespace fu::script {

class HeapSnapshot;  // snapshot.h
struct CallIC;       // bytecode.h

// Runtime failure (TypeError-ish); distinct from SyntaxError at parse time.
class ScriptError : public std::runtime_error {
 public:
  explicit ScriptError(const std::string& message)
      : std::runtime_error(message) {}
};

// Per-session host pointers that native bindings fetch at CALL time instead
// of capturing at build time. This indirection is what makes native closures
// session-agnostic: a frozen snapshot image and every clone share the same
// Callable objects, and each interpreter routes them to its own DOM bindings
// and usage recorder through this struct.
struct HostContext {
  void* bindings = nullptr;  // browser::DomBindings*
  void* recorder = nullptr;  // browser::UsageRecorder*
};

class Environment {
 public:
  Environment(Environment* parent, AtomTable* atoms, std::uint64_t serial)
      : parent_(parent), atoms_(atoms), serial_(serial) {}

  // Defines or overwrites in *this* scope. Overwrite reuses the existing
  // slot, so cached slot indices survive redefinition.
  void define(std::string_view name, Value value) {
    define(atoms_->intern(name), std::move(value));
  }
  void define(Atom atom, Value value) {
    bindings_.put(atom) = std::move(value);
  }

  // Assignment: walks up to the defining scope; defines globally if unbound
  // (sloppy-mode JavaScript behaviour).
  void assign(std::string_view name, Value value) {
    assign(atoms_->intern(name), std::move(value));
  }
  void assign(Atom atom, Value value);

  // nullptr when unbound. The string_view form cannot grow the atom table
  // (a name that was never interned is bound nowhere).
  const Value* lookup(std::string_view name) const {
    const Atom atom = atoms_->lookup(name);
    return atom == kNoAtom ? nullptr : lookup(atom);
  }
  const Value* lookup(Atom atom) const {
    for (const Environment* env = this; env != nullptr; env = env->parent_) {
      if (const Value* v = env->bindings_.find(atom)) return v;
    }
    return nullptr;
  }

  // Inline-cache hooks: resolution within this scope only.
  std::uint32_t own_slot(Atom atom) const {
    return bindings_.index_of(atom);
  }
  Value& slot_value(std::uint32_t slot) { return bindings_.value_at(slot); }
  const Value& slot_value(std::uint32_t slot) const {
    return bindings_.value_at(slot);
  }

  std::uint64_t serial() const noexcept { return serial_; }
  Environment* parent() const noexcept { return parent_; }

  // Pre-size the binding store (call activations know their slot count).
  void reserve(std::size_t n) { bindings_.reserve(n); }

 private:
  friend class HeapSnapshot;  // copies bindings_ wholesale on capture/clone

  PropertySlots bindings_;
  Environment* parent_;
  AtomTable* atoms_;
  std::uint64_t serial_;
};

class Interpreter {
 public:
  explicit Interpreter(std::uint64_t rng_seed = 0x5c71b7ULL)
      : Interpreter(nullptr, rng_seed) {}

  // When `snapshot` is non-null, the engine state (heap, atoms, shapes,
  // globals) is cloned from the frozen image instead of being rebuilt by
  // install_builtins() — same object indices, atoms and shape ids,
  // bit-for-bit. The snapshot must outlive this interpreter only for the
  // duration of the constructor (callables are shared by refcount).
  Interpreter(const HeapSnapshot* snapshot, std::uint64_t rng_seed);

  Heap& heap() noexcept { return heap_; }
  const Heap& heap() const noexcept { return heap_; }
  Environment& globals() noexcept { return *global_env_; }

  // Fuel budget for each top-level execute()/call_function() entry.
  void set_fuel_per_run(std::uint64_t fuel) noexcept { fuel_per_run_ = fuel; }

  // Run a whole program in the global scope. Statements own their AST;
  // the program must outlive any function values it created (the page keeps
  // parsed scripts alive for its lifetime).
  void execute(const Program& program);

  // Invoke a function value (native or script). Resets fuel if this is a
  // top-level entry (depth 0).
  Value call_function(const Value& fn, const Value& self,
                      std::span<const Value> args);

  // Per-session host pointers for natives (see HostContext above).
  HostContext& host() noexcept { return host_; }
  const HostContext& host() const noexcept { return host_; }

  // Convenience for hosts: allocate an environment in the interpreter's
  // arena (closures need stable addresses).
  Environment* make_environment(Environment* parent);

  // Instantiate `new ctor(...)` semantics from native code.
  Value construct(const Value& ctor, std::span<const Value> args);

  // Deterministic per-page RNG (drives Math.random).
  support::Rng& rng() noexcept { return rng_; }

  std::uint64_t steps_executed() const noexcept { return steps_; }

  // Prototype objects for primitive-adjacent builtins. Array literals are
  // created with array_prototype(); string member access falls back to
  // string_prototype() (the natives receive the string as `this`).
  ObjectRef array_prototype() const noexcept { return array_prototype_; }
  ObjectRef string_prototype() const noexcept { return string_prototype_; }

  // Create an Array object from values.
  Value make_array(std::span<const Value> elements);

 private:
  friend class Vm;
  friend class HeapSnapshot;

  void install_builtins();
  void install_extended_builtins();  // builtins.cpp

  // Resolve `fn` to its Callable, enforcing the call-depth/fuel prologue,
  // then dispatch. When `site` is non-null (kCall/kCallMethod with a cold
  // inline cache), the resolved callee is remembered so the next execution
  // of that site can skip straight to invoke().
  Value call_resolved(const Value& fn, const Value& self,
                      std::span<const Value> args, CallIC* site);

  // Dispatch an already-resolved callee. Replicates call_function's
  // observable prologue exactly (top-level fuel refill, depth limit,
  // profiler frame); the VM's call-site ICs land here on a cache hit.
  Value invoke(const Callable& callee, const Value& self,
               std::span<const Value> args);

  // One unit of work; throws ScriptError when the per-run budget is gone.
  void burn_fuel() {
    ++steps_;
    if (fuel_ == 0) {
      throw ScriptError("script exceeded its execution budget");
    }
    --fuel_;
  }

  // `k` units at once (the compiler merges adjacent entry burns into one
  // instruction's fuel field). Arithmetic matches `k` serial burn_fuel()
  // calls exactly, including the steps_ count at the exhaustion point —
  // steps_executed() is observable through Date.now.
  void burn_units(std::uint64_t k) {
    if (fuel_ >= k) {
      steps_ += k;
      fuel_ -= k;
      return;
    }
    steps_ += fuel_ + 1;
    fuel_ = 0;
    throw ScriptError("script exceeded its execution budget");
  }

  Heap heap_;
  HostContext host_;
  std::vector<std::unique_ptr<Environment>> env_arena_;
  Environment* global_env_ = nullptr;
  ObjectRef array_prototype_;
  ObjectRef string_prototype_;
  support::Rng rng_;
  std::uint64_t fuel_per_run_ = 200'000;
  std::uint64_t fuel_ = 0;
  std::uint64_t steps_ = 0;
  std::uint64_t env_serial_counter_ = 0;
  int call_depth_ = 0;
};

}  // namespace fu::script
