#include "script/printer.h"

#include <cmath>
#include <cstdio>

namespace fu::script {

namespace {

std::string escape_string(const std::string& text) {
  std::string out = "\"";
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out.push_back(c);
    }
  }
  out.push_back('"');
  return out;
}

std::string number_literal(double d) {
  if (d == static_cast<double>(static_cast<long long>(d)) &&
      std::abs(d) < 1e15) {
    return std::to_string(static_cast<long long>(d));
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  return buf;
}

const char* binary_op_text(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kMod: return "%";
    case BinaryOp::kEq: return "==";
    case BinaryOp::kNe: return "!=";
    case BinaryOp::kStrictEq: return "===";
    case BinaryOp::kStrictNe: return "!==";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kAnd: return "&&";
    case BinaryOp::kOr: return "||";
    case BinaryOp::kInstanceof: return "instanceof";
    case BinaryOp::kIn: return "in";
  }
  return "?";
}

std::string pad(int indent) { return std::string(static_cast<std::size_t>(indent) * 2, ' '); }

// Loop/if bodies are printed inside braces already; a Block body's own
// braces would nest one level deeper on every print-parse round, so its
// children are emitted directly.
std::string body_source(const Stmt& body, int indent) {
  if (body.kind == Stmt::Kind::kBlock) {
    std::string out;
    for (const StmtPtr& child : body.statements) {
      out += to_source(*child, indent);
    }
    return out;
  }
  return to_source(body, indent);
}

std::string function_source(const AstFunction& fn) {
  std::string out = "function ";
  out += fn.name;
  out += "(";
  for (std::size_t i = 0; i < fn.params.size(); ++i) {
    if (i) out += ", ";
    out += fn.params[i];
  }
  out += ") {\n";
  for (const StmtPtr& s : fn.body) out += to_source(*s, 1);
  out += "}";
  return out;
}

}  // namespace

std::string to_source(const Expr& e) {
  switch (e.kind) {
    case Expr::Kind::kNumber:
      return number_literal(e.number);
    case Expr::Kind::kString:
      return escape_string(e.text);
    case Expr::Kind::kBool:
      return e.boolean ? "true" : "false";
    case Expr::Kind::kNull:
      return "null";
    case Expr::Kind::kUndefined:
      return "undefined";
    case Expr::Kind::kIdentifier:
      return e.text;
    case Expr::Kind::kMember:
      return "(" + to_source(*e.object) + ")." + e.text;
    case Expr::Kind::kIndex:
      return "(" + to_source(*e.object) + ")[" + to_source(*e.index) + "]";
    case Expr::Kind::kCall: {
      std::string out = "(" + to_source(*e.callee) + ")(";
      for (std::size_t i = 0; i < e.args.size(); ++i) {
        if (i) out += ", ";
        out += to_source(*e.args[i]);
      }
      return out + ")";
    }
    case Expr::Kind::kNew: {
      std::string out = "new (" + to_source(*e.callee) + ")(";
      for (std::size_t i = 0; i < e.args.size(); ++i) {
        if (i) out += ", ";
        out += to_source(*e.args[i]);
      }
      return out + ")";
    }
    case Expr::Kind::kAssign:
      return "(" + to_source(*e.lhs) + " = " + to_source(*e.rhs) + ")";
    case Expr::Kind::kBinary:
      return "(" + to_source(*e.lhs) + " " + binary_op_text(e.binary_op) +
             " " + to_source(*e.rhs) + ")";
    case Expr::Kind::kUnary:
      switch (e.unary_op) {
        case UnaryOp::kNot: return "(!" + to_source(*e.lhs) + ")";
        case UnaryOp::kNeg: return "(-" + to_source(*e.lhs) + ")";
        case UnaryOp::kTypeof: return "(typeof " + to_source(*e.lhs) + ")";
        case UnaryOp::kDelete: return "(delete " + to_source(*e.lhs) + ")";
      }
      return "?";
    case Expr::Kind::kConditional:
      return "(" + to_source(*e.cond) + " ? " + to_source(*e.then_expr) +
             " : " + to_source(*e.else_expr) + ")";
    case Expr::Kind::kFunction:
      return "(" + function_source(*e.function) + ")";
    case Expr::Kind::kObjectLiteral: {
      std::string out = "{ ";
      for (std::size_t i = 0; i < e.keys.size(); ++i) {
        if (i) out += ", ";
        out += escape_string(e.keys[i]) + ": " + to_source(*e.args[i]);
      }
      return out + " }";
    }
    case Expr::Kind::kArrayLiteral: {
      std::string out = "[";
      for (std::size_t i = 0; i < e.args.size(); ++i) {
        if (i) out += ", ";
        out += to_source(*e.args[i]);
      }
      return out + "]";
    }
  }
  return "?";
}

std::string to_source(const Stmt& s, int indent) {
  const std::string lead = pad(indent);
  switch (s.kind) {
    case Stmt::Kind::kEmpty:
      return lead + ";\n";
    case Stmt::Kind::kExpr:
      return lead + to_source(*s.expr) + ";\n";
    case Stmt::Kind::kVar:
      return lead + "var " + s.name +
             (s.expr ? " = " + to_source(*s.expr) : "") + ";\n";
    case Stmt::Kind::kIf: {
      std::string out = lead + "if (" + to_source(*s.expr) + ") {\n";
      out += body_source(*s.body, indent + 1);
      out += lead + "}";
      if (s.else_body) {
        out += " else {\n" + body_source(*s.else_body, indent + 1) + lead + "}";
      }
      return out + "\n";
    }
    case Stmt::Kind::kWhile:
      return lead + "while (" + to_source(*s.expr) + ") {\n" +
             body_source(*s.body, indent + 1) + lead + "}\n";
    case Stmt::Kind::kDoWhile:
      return lead + "do {\n" + body_source(*s.body, indent + 1) + lead +
             "} while (" + to_source(*s.expr) + ");\n";
    case Stmt::Kind::kSwitch: {
      std::string out = lead + "switch (" + to_source(*s.expr) + ") {\n";
      for (const Stmt::SwitchClause& clause : s.clauses) {
        out += clause.test != nullptr
                   ? lead + "case " + to_source(*clause.test) + ":\n"
                   : lead + "default:\n";
        for (const StmtPtr& child : clause.body) {
          out += to_source(*child, indent + 1);
        }
      }
      return out + lead + "}\n";
    }
    case Stmt::Kind::kFor: {
      std::string out = lead + "for (";
      if (s.init_stmt) {
        // A multi-declarator init parses to a block of var statements;
        // reconstitute "var a = x, b = y" for valid for-init syntax.
        const auto strip = [](std::string text) {
          while (!text.empty() && (text.back() == '\n' || text.back() == ';')) {
            text.pop_back();
          }
          return text;
        };
        if (s.init_stmt->kind == Stmt::Kind::kBlock) {
          std::string init;
          for (std::size_t i = 0; i < s.init_stmt->statements.size(); ++i) {
            std::string piece = strip(to_source(*s.init_stmt->statements[i], 0));
            if (i > 0 && piece.rfind("var ", 0) == 0) piece = piece.substr(4);
            if (i) init += ", ";
            init += piece;
          }
          out += init;
        } else {
          out += strip(to_source(*s.init_stmt, 0));
        }
      } else if (s.init_expr) {
        out += to_source(*s.init_expr);
      }
      out += "; ";
      if (s.expr) out += to_source(*s.expr);
      out += "; ";
      if (s.step) out += to_source(*s.step);
      out += ") {\n" + body_source(*s.body, indent + 1) + lead + "}\n";
      return out;
    }
    case Stmt::Kind::kReturn:
      return lead + "return" + (s.expr ? " " + to_source(*s.expr) : "") +
             ";\n";
    case Stmt::Kind::kBreak:
      return lead + "break;\n";
    case Stmt::Kind::kContinue:
      return lead + "continue;\n";
    case Stmt::Kind::kBlock: {
      std::string out = lead + "{\n";
      for (const StmtPtr& child : s.statements) {
        out += to_source(*child, indent + 1);
      }
      return out + lead + "}\n";
    }
    case Stmt::Kind::kFunction:
      return lead + function_source(*s.function) + "\n";
    case Stmt::Kind::kTry: {
      std::string out = lead + "try {\n";
      for (const StmtPtr& child : s.statements) {
        out += to_source(*child, indent + 1);
      }
      out += lead + "} catch (" + (s.name.empty() ? "e" : s.name) + ") {\n";
      for (const StmtPtr& child : s.catch_body) {
        out += to_source(*child, indent + 1);
      }
      return out + lead + "}\n";
    }
  }
  return lead + "?;\n";
}

std::string to_source(const Program& program) {
  std::string out;
  for (const StmtPtr& s : program.statements) out += to_source(*s, 0);
  return out;
}

}  // namespace fu::script
