#include "script/profhook.h"

#include "script/ast.h"

namespace fu::script {

std::uint32_t prof_label_for(const AstFunction& fn) {
  if (fn.prof_label == 0) {
    fn.prof_label = obs::prof::intern_label(
        fn.name.empty() ? std::string("fn:(anonymous)") : "fn:" + fn.name);
  }
  return fn.prof_label;
}

}  // namespace fu::script
