#include "script/atoms.h"

#include <atomic>
#include <cstdio>

namespace fu::script {
namespace {

std::uint64_t next_table_id() {
  // Starts at 1: engine_id 0 marks an empty inline cache.
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

AtomTable::AtomTable() : id_(next_table_id()) {
  // A browser session interns the whole catalog (every interface, method and
  // property name) before the first page script runs; pre-sizing skips the
  // rehash cascade that would otherwise happen on each of the thousands of
  // engines a survey constructs.
  ids_.reserve(4096);
  well_known_.length = intern("length");
  well_known_.prototype = intern("prototype");
  well_known_.constructor = intern("constructor");
  well_known_.this_ = intern("this");
  well_known_.arguments = intern("arguments");
}

Atom AtomTable::intern(std::string_view name) {
  if (const auto it = ids_.find(name); it != ids_.end()) return it->second;
  const Atom atom = static_cast<Atom>(names_.size());
  names_.emplace_back(name);  // deque: no reallocation, views stay valid
  ids_.emplace(std::string_view(names_.back()), atom);
  return atom;
}

Atom AtomTable::lookup(std::string_view name) const {
  const auto it = ids_.find(name);
  return it == ids_.end() ? kNoAtom : it->second;
}

Atom AtomTable::intern_index(std::uint64_t index) {
  constexpr std::uint64_t kSmallLimit = 4096;
  if (index < kSmallLimit) {
    if (index >= small_indices_.size()) {
      small_indices_.resize(index + 1, kNoAtom);
    }
    Atom& cached = small_indices_[index];
    if (cached == kNoAtom) cached = intern(std::to_string(index));
    return cached;
  }
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(index));
  return intern(buf);
}

}  // namespace fu::script
