#include "script/atoms.h"

#include <atomic>
#include <cstdio>

#include "obs/mem.h"

namespace fu::script {
namespace {

std::uint64_t next_table_id() {
  // Starts at 1: engine_id 0 marks an empty inline cache.
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

// Estimated footprint of one interned name: the characters plus the string
// header and its ids_ hash entry (view + atom + bucket link).
std::size_t atom_cost(std::string_view name) {
  return name.size() + sizeof(std::string) + sizeof(std::string_view) +
         2 * sizeof(void*);
}

}  // namespace

AtomTable::AtomTable() : id_(next_table_id()) {
  // A browser session interns the whole catalog (every interface, method and
  // property name) before the first page script runs; pre-sizing skips the
  // rehash cascade that would otherwise happen on each of the thousands of
  // engines a survey constructs.
  ids_.reserve(4096);
  well_known_.length = intern("length");
  well_known_.prototype = intern("prototype");
  well_known_.constructor = intern("constructor");
  well_known_.this_ = intern("this");
  well_known_.arguments = intern("arguments");
}

AtomTable::~AtomTable() {
  obs::mem::sub(obs::mem::Domain::kAtoms, tracked_bytes_);
}

void AtomTable::clone_from(const AtomTable& other) {
  // id_ deliberately untouched (see header).
  base_.reset();
  base_count_ = 0;
  names_.clear();
  for (Atom atom = 0; atom < other.size(); ++atom) {
    names_.push_back(other.name(atom));  // flattens any base prefix
  }
  ids_.clear();
  ids_.reserve(names_.size());
  for (Atom atom = 0; atom < names_.size(); ++atom) {
    // Views must point into OUR deque, not the source's.
    ids_.emplace(std::string_view(names_[atom]), atom);
  }
  small_indices_ = other.small_indices_;
  well_known_ = other.well_known_;
  obs::mem::sub(obs::mem::Domain::kAtoms, tracked_bytes_);
  tracked_bytes_ = 0;
  for (const std::string& name : names_) tracked_bytes_ += atom_cost(name);
  obs::mem::add(obs::mem::Domain::kAtoms, tracked_bytes_);
}

void AtomTable::adopt_base(std::shared_ptr<const AtomTable> base) {
  // id_ deliberately untouched, as in clone_from. The base replaces all
  // existing contents (including the well-known prefix this table interned
  // at construction — the base interned the same names at the same ids).
  names_.clear();
  ids_.clear();
  obs::mem::sub(obs::mem::Domain::kAtoms, tracked_bytes_);
  tracked_bytes_ = 0;
  base_count_ = static_cast<Atom>(base->size());
  small_indices_ = base->small_indices_;
  well_known_ = base->well_known_;
  base_ = std::move(base);
}

Atom AtomTable::intern(std::string_view name) {
  if (base_ != nullptr) {
    const Atom atom = base_->lookup(name);
    if (atom != kNoAtom) return atom;
  }
  if (const auto it = ids_.find(name); it != ids_.end()) return it->second;
  const Atom atom = base_count_ + static_cast<Atom>(names_.size());
  names_.emplace_back(name);  // deque: no reallocation, views stay valid
  ids_.emplace(std::string_view(names_.back()), atom);
  const std::size_t cost = atom_cost(name);
  tracked_bytes_ += cost;
  obs::mem::add(obs::mem::Domain::kAtoms, cost);
  return atom;
}

Atom AtomTable::lookup(std::string_view name) const {
  if (base_ != nullptr) {
    const Atom atom = base_->lookup(name);
    if (atom != kNoAtom) return atom;
  }
  const auto it = ids_.find(name);
  return it == ids_.end() ? kNoAtom : it->second;
}

Atom AtomTable::intern_index(std::uint64_t index) {
  constexpr std::uint64_t kSmallLimit = 4096;
  if (index < kSmallLimit) {
    if (index >= small_indices_.size()) {
      small_indices_.resize(index + 1, kNoAtom);
    }
    Atom& cached = small_indices_[index];
    if (cached == kNoAtom) cached = intern(std::to_string(index));
    return cached;
  }
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(index));
  return intern(buf);
}

}  // namespace fu::script
