#include "script/interp.h"

#include <algorithm>
#include <cmath>

#include "script/profhook.h"

namespace fu::script {

namespace {

// Non-error control flow (return/break/continue) propagates as a status
// code, not an exception: function-call-heavy pages spent most of their
// time in the unwinder when every `return` threw. ScriptError remains an
// exception — it is the rare path and must cross native frames.
enum class Flow : std::uint8_t { kNormal, kReturn, kBreak, kContinue };

}  // namespace

void Environment::assign(Atom atom, Value value) {
  for (Environment* env = this; env != nullptr; env = env->parent_) {
    if (Value* v = env->bindings_.find(atom)) {
      *v = std::move(value);
      return;
    }
  }
  // sloppy mode: implicit global
  Environment* root = this;
  while (root->parent_ != nullptr) root = root->parent_;
  root->bindings_.put(atom) = std::move(value);
}

// Walks the AST. A member class so it can reach interpreter internals.
class Evaluator {
 public:
  Evaluator(Interpreter& interp, Environment* env)
      : interp_(interp), env_(env) {}

  Flow run_block(const std::vector<StmtPtr>& stmts) {
    for (const StmtPtr& s : stmts) {
      const Flow flow = exec(*s);
      if (flow != Flow::kNormal) return flow;
    }
    return Flow::kNormal;
  }

  // The value carried by the last Flow::kReturn.
  Value take_return_value() { return std::move(return_value_); }

  Flow exec(const Stmt& s) {
    interp_.burn_fuel();
    switch (s.kind) {
      case Stmt::Kind::kEmpty:
        return Flow::kNormal;
      case Stmt::Kind::kExpr:
        eval(*s.expr);
        return Flow::kNormal;
      case Stmt::Kind::kVar:
        env_->define(stmt_atom(s, s.name), s.expr ? eval(*s.expr) : Value());
        return Flow::kNormal;
      case Stmt::Kind::kIf:
        if (eval(*s.expr).truthy()) {
          return exec(*s.body);
        } else if (s.else_body) {
          return exec(*s.else_body);
        }
        return Flow::kNormal;
      case Stmt::Kind::kWhile:
        while (eval(*s.expr).truthy()) {
          const Flow flow = exec(*s.body);
          if (flow == Flow::kBreak) break;
          if (flow == Flow::kReturn) return flow;
        }
        return Flow::kNormal;
      case Stmt::Kind::kDoWhile:
        do {
          const Flow flow = exec(*s.body);
          if (flow == Flow::kBreak) break;
          if (flow == Flow::kReturn) return flow;
        } while (eval(*s.expr).truthy());
        return Flow::kNormal;
      case Stmt::Kind::kSwitch: {
        const Value discriminant = eval(*s.expr);
        // find the matching clause (=== semantics), else the default
        std::size_t start = s.clauses.size();
        for (std::size_t i = 0; i < s.clauses.size(); ++i) {
          if (s.clauses[i].test != nullptr &&
              eval(*s.clauses[i].test) == discriminant) {
            start = i;
            break;
          }
        }
        if (start == s.clauses.size()) {
          for (std::size_t i = 0; i < s.clauses.size(); ++i) {
            if (s.clauses[i].test == nullptr) {
              start = i;
              break;
            }
          }
        }
        // fallthrough: run from the matched clause to the end or a break
        for (std::size_t i = start; i < s.clauses.size(); ++i) {
          for (const StmtPtr& child : s.clauses[i].body) {
            const Flow flow = exec(*child);
            if (flow == Flow::kBreak) return Flow::kNormal;  // consumed
            if (flow != Flow::kNormal) return flow;
          }
        }
        return Flow::kNormal;
      }
      case Stmt::Kind::kFor: {
        if (s.init_stmt) exec(*s.init_stmt);
        if (s.init_expr) eval(*s.init_expr);
        while (s.expr == nullptr || eval(*s.expr).truthy()) {
          const Flow flow = exec(*s.body);
          if (flow == Flow::kBreak) break;
          if (flow == Flow::kReturn) return flow;
          if (s.step) eval(*s.step);
        }
        return Flow::kNormal;
      }
      case Stmt::Kind::kReturn:
        return_value_ = s.expr ? eval(*s.expr) : Value();
        return Flow::kReturn;
      case Stmt::Kind::kBreak:
        return Flow::kBreak;
      case Stmt::Kind::kContinue:
        return Flow::kContinue;
      case Stmt::Kind::kBlock: {
        // blocks share their enclosing function scope (var semantics)
        return run_block(s.statements);
      }
      case Stmt::Kind::kFunction:
        env_->define(stmt_atom(s, s.function->name),
                     interp_.heap_.make_script_function(s.function, env_));
        return Flow::kNormal;
      case Stmt::Kind::kTry:
        try {
          return run_block(s.statements);
        } catch (const ScriptError& err) {
          if (!s.name.empty()) env_->define(s.name, Value(err.what()));
          return run_block(s.catch_body);
        }
    }
    return Flow::kNormal;
  }

  Value eval(const Expr& e) {
    interp_.burn_fuel();
    switch (e.kind) {
      case Expr::Kind::kNumber:
        return Value(e.number);
      case Expr::Kind::kString:
        return Value(e.text);
      case Expr::Kind::kBool:
        return Value(e.boolean);
      case Expr::Kind::kNull:
        return Value(Null{});
      case Expr::Kind::kUndefined:
        return Value();
      case Expr::Kind::kIdentifier:
        return eval_identifier(e);
      case Expr::Kind::kMember: {
        const Value base = eval(*e.object);
        return member_with_ic(base, e);
      }
      case Expr::Kind::kIndex: {
        const Value base = eval(*e.object);
        const Value idx = eval(*e.index);
        if (base.is_object()) {
          if (const Atom atom = index_atom(idx); atom != kNoAtom) {
            return interp_.heap_.get_property(base.as_object(), atom);
          }
        }
        return member_of(base, idx.to_display_string());
      }
      case Expr::Kind::kCall:
        return eval_call(e);
      case Expr::Kind::kNew: {
        const Value ctor = eval(*e.callee);
        std::vector<Value> args = eval_args(e.args);
        return interp_.construct(ctor, args);
      }
      case Expr::Kind::kAssign:
        return eval_assign(e);
      case Expr::Kind::kBinary:
        return eval_binary(e);
      case Expr::Kind::kUnary:
        return eval_unary(e);
      case Expr::Kind::kConditional:
        return eval(*e.cond).truthy() ? eval(*e.then_expr) : eval(*e.else_expr);
      case Expr::Kind::kFunction:
        return interp_.heap_.make_script_function(e.function, env_);
      case Expr::Kind::kObjectLiteral: {
        Heap& h = interp_.heap_;
        if (e.keys_engine != h.atoms().id()) {
          e.key_atoms.clear();
          e.key_atoms.reserve(e.keys.size());
          for (const std::string& k : e.keys) {
            e.key_atoms.push_back(h.atoms().intern(k));
          }
          e.keys_engine = h.atoms().id();
        }
        const ObjectRef obj = h.make_object();
        for (std::size_t i = 0; i < e.key_atoms.size(); ++i) {
          h.define_property(obj, e.key_atoms[i], eval(*e.args[i]));
        }
        return Value(obj);
      }
      case Expr::Kind::kArrayLiteral: {
        std::vector<Value> elements;
        elements.reserve(e.args.size());
        for (const ExprPtr& arg : e.args) elements.push_back(eval(*arg));
        return interp_.make_array(elements);
      }
    }
    throw ScriptError("unknown expression kind");
  }

 private:
  // Per-engine memo of a statement's bound name (var / function decls).
  Atom stmt_atom(const Stmt& s, const std::string& name) {
    AtomTable& at = interp_.heap_.atoms();
    if (s.name_engine != at.id()) {
      s.name_atom = at.intern(name);
      s.name_engine = at.id();
    }
    return s.name_atom;
  }

  // Memoizes the site's name atom for the current engine; clears any stale
  // cached resolution from a previous engine.
  Atom site_atom(const Expr& e, VarIC& ic) {
    AtomTable& at = interp_.heap_.atoms();
    if (ic.engine_id != at.id()) {
      ic.engine_id = at.id();
      ic.atom = at.intern(e.text);
      ic.env_serial = 0;
    }
    return ic.atom;
  }

  Atom member_atom(const Expr& e, PropertyIC& ic) {
    AtomTable& at = interp_.heap_.atoms();
    if (ic.engine_id != at.id()) {
      ic.engine_id = at.id();
      ic.atom = at.intern(e.text);
      ic.chain_len = 0;
    }
    return ic.atom;
  }

  // Atom for a computed index when its canonical string form is a plain
  // decimal integer (the array hot path); kNoAtom otherwise. The guard
  // matches Value::to_display_string's integer formatting exactly, so the
  // atom names the same property the generic path would.
  Atom index_atom(const Value& idx) {
    if (!idx.is_number()) return kNoAtom;
    const double d = idx.as_number();
    if (!(d >= 0) || d >= 1e15 || d != std::trunc(d)) return kNoAtom;
    return interp_.heap_.atoms().intern_index(static_cast<std::uint64_t>(d));
  }

  Value eval_identifier(const Expr& e) {
    VarIC& ic = e.var_ic;
    const Atom atom = site_atom(e, ic);
    if (ic.env_serial == env_->serial()) {
      return env_->slot_value(ic.slot);
    }
    for (Environment* env = env_; env != nullptr; env = env->parent()) {
      const std::uint32_t slot = env->own_slot(atom);
      if (slot != PropertySlots::kMissSlot) {
        if (env == env_) {
          // Cacheable: resolved in the starting scope itself, where no
          // nearer binding can ever appear to shadow it.
          ic.env_serial = env_->serial();
          ic.slot = slot;
        }
        return env->slot_value(slot);
      }
    }
    throw ScriptError("ReferenceError: " + e.text + " is not defined");
  }

  // Property read with a shape-guarded prototype-chain cache. `e` is the
  // member expression owning the cache; base has already been evaluated.
  Value member_with_ic(const Value& base, const Expr& e) {
    Heap& h = interp_.heap_;
    PropertyIC& ic = e.prop_ic;
    const Atom atom = member_atom(e, ic);
    if (!base.is_object()) {
      if (base.is_string()) {
        if (atom == h.atoms().well_known().length) {
          return Value(static_cast<double>(base.as_string().size()));
        }
        // string methods live on the shared string prototype and receive
        // the string itself as `this`
        return h.get_property(interp_.string_prototype(), atom);
      }
      if (base.is_undefined() || base.is_null()) {
        throw ScriptError("TypeError: cannot read property '" + e.text +
                          "' of " + base.to_display_string());
      }
      return Value();  // other primitive members: undefined
    }

    const ObjectRef ref = base.as_object();
    if (ic.chain_len > 0 && ic.chain[0].object == ref.index()) {
      // Validate every recorded link: shape unchanged and still wired to
      // the next link (guards both new shadowing properties and prototype
      // re-pointing). A negative cache additionally requires the chain to
      // still terminate.
      bool valid = true;
      for (int i = 0; i < ic.chain_len; ++i) {
        const JsObject& o = h.get(ObjectRef(ic.chain[i].object));
        if (o.properties.shape() != ic.chain[i].shape) {
          valid = false;
          break;
        }
        const bool last = i + 1 == ic.chain_len;
        if (!last) {
          if (o.prototype.index() != ic.chain[i + 1].object) {
            valid = false;
            break;
          }
        } else if (ic.slot == PropertyIC::kMissSlot && !o.prototype.null()) {
          valid = false;
        }
      }
      if (valid) {
        if (ic.slot == PropertyIC::kMissSlot) return Value();
        return h.get(ObjectRef(ic.chain[ic.chain_len - 1].object))
            .properties.value_at(ic.slot);
      }
    }

    // Slow path: walk the chain, recording links for the next hit.
    PropertyIC::Link links[PropertyIC::kMaxChain];
    ObjectRef cursor = ref;
    int depth = 0;
    for (; depth < 32 && !cursor.null(); ++depth) {
      const JsObject& o = h.get(cursor);
      if (depth < PropertyIC::kMaxChain) {
        links[depth] = {cursor.index(), o.properties.shape()};
      }
      const std::uint32_t slot = o.properties.index_of(atom);
      if (slot != PropertySlots::kMissSlot) {
        if (depth < PropertyIC::kMaxChain) {
          std::copy(links, links + depth + 1, ic.chain);
          ic.chain_len = static_cast<std::uint8_t>(depth + 1);
          ic.slot = slot;
        } else {
          ic.chain_len = 0;  // holder too deep to guard; stay uncached
        }
        return o.properties.value_at(slot);
      }
      cursor = o.prototype;
    }
    if (cursor.null() && depth <= PropertyIC::kMaxChain) {
      // Whole (short) chain walked without a hit: negative-cache it.
      std::copy(links, links + depth, ic.chain);
      ic.chain_len = static_cast<std::uint8_t>(depth);
      ic.slot = PropertyIC::kMissSlot;
    } else {
      ic.chain_len = 0;
    }
    return Value();
  }

  // Uncached member access (computed names).
  Value member_of(const Value& base, std::string_view name) {
    if (!base.is_object()) {
      if (base.is_string()) {
        if (name == "length") {
          return Value(static_cast<double>(base.as_string().size()));
        }
        return interp_.heap_.get_property(interp_.string_prototype(), name);
      }
      if (base.is_undefined() || base.is_null()) {
        throw ScriptError("TypeError: cannot read property '" +
                          std::string(name) + "' of " +
                          base.to_display_string());
      }
      return Value();  // other primitive members: undefined
    }
    return interp_.heap_.get_property(base.as_object(), name);
  }

  std::vector<Value> eval_args(const std::vector<ExprPtr>& exprs) {
    std::vector<Value> out;
    out.reserve(exprs.size());
    for (const ExprPtr& a : exprs) out.push_back(eval(*a));
    return out;
  }

  Value eval_call(const Expr& e) {
    // Member calls bind `this` to the base object.
    Value self;
    Value fn;
    if (e.callee->kind == Expr::Kind::kMember) {
      self = eval(*e.callee->object);
      fn = member_with_ic(self, *e.callee);
      if (fn.is_undefined()) {
        throw ScriptError("TypeError: " + self.to_display_string() + "." +
                          e.callee->text + " is not a function");
      }
    } else if (e.callee->kind == Expr::Kind::kIndex) {
      self = eval(*e.callee->object);
      fn = member_of(self, eval(*e.callee->index).to_display_string());
    } else {
      fn = eval(*e.callee);
    }
    const std::vector<Value> args = eval_args(e.args);
    return interp_.call_function(fn, self, args);
  }

  Value eval_assign(const Expr& e) {
    Value value = eval(*e.rhs);
    const Expr& target = *e.lhs;
    switch (target.kind) {
      case Expr::Kind::kIdentifier: {
        VarIC& ic = target.var_ic;
        const Atom atom = site_atom(target, ic);
        if (ic.env_serial == env_->serial()) {
          env_->slot_value(ic.slot) = value;
          return value;
        }
        for (Environment* env = env_; env != nullptr; env = env->parent()) {
          const std::uint32_t slot = env->own_slot(atom);
          if (slot != PropertySlots::kMissSlot) {
            if (env == env_) {
              ic.env_serial = env_->serial();
              ic.slot = slot;
            }
            env->slot_value(slot) = value;
            return value;
          }
        }
        env_->assign(atom, value);  // unbound: sloppy-mode implicit global
        return value;
      }
      case Expr::Kind::kMember: {
        const Value base = eval(*target.object);
        if (!base.is_object()) {
          throw ScriptError("TypeError: cannot set property '" + target.text +
                            "' of " + base.to_display_string());
        }
        Heap& h = interp_.heap_;
        PropertyWriteIC& ic = target.write_ic;
        if (ic.engine_id != h.atoms().id()) {
          ic.engine_id = h.atoms().id();
          ic.atom = h.atoms().intern(target.text);
          ic.valid = false;
        }
        const ObjectRef ref = base.as_object();
        JsObject& obj = h.get(ref);
        if (ic.valid && ic.object == ref.index() &&
            ic.shape == obj.properties.shape()) {
          obj.properties.value_at(ic.slot) = value;
          if (obj.watch) {
            const Value written = obj.properties.value_at(ic.slot);
            (*obj.watch)(h.atoms().name(ic.atom), written);
          }
          return value;
        }
        h.set_property(ref, ic.atom, value);
        ic.object = ref.index();
        ic.shape = obj.properties.shape();
        ic.slot = obj.properties.index_of(ic.atom);
        ic.valid = ic.slot != PropertySlots::kMissSlot;
        return value;
      }
      case Expr::Kind::kIndex: {
        const Value base = eval(*target.object);
        const Value idx = eval(*target.index);
        if (!base.is_object()) {
          throw ScriptError("TypeError: cannot index " +
                            base.to_display_string());
        }
        if (const Atom atom = index_atom(idx); atom != kNoAtom) {
          interp_.heap_.set_property(base.as_object(), atom, value);
        } else {
          interp_.heap_.set_property(base.as_object(),
                                     idx.to_display_string(), value);
        }
        return value;
      }
      default:
        throw ScriptError("invalid assignment target");
    }
  }

  Value eval_binary(const Expr& e) {
    // short-circuit operators first
    if (e.binary_op == BinaryOp::kAnd) {
      Value lhs = eval(*e.lhs);
      return lhs.truthy() ? eval(*e.rhs) : lhs;
    }
    if (e.binary_op == BinaryOp::kOr) {
      Value lhs = eval(*e.lhs);
      return lhs.truthy() ? lhs : eval(*e.rhs);
    }
    const Value a = eval(*e.lhs);
    const Value b = eval(*e.rhs);
    switch (e.binary_op) {
      case BinaryOp::kAdd:
        if (a.is_string() || b.is_string()) {
          return Value(a.to_display_string() + b.to_display_string());
        }
        return Value(a.to_number() + b.to_number());
      case BinaryOp::kSub: return Value(a.to_number() - b.to_number());
      case BinaryOp::kMul: return Value(a.to_number() * b.to_number());
      case BinaryOp::kDiv: return Value(a.to_number() / b.to_number());
      case BinaryOp::kMod: return Value(std::fmod(a.to_number(), b.to_number()));
      case BinaryOp::kEq: return Value(a.loose_equals(b));
      case BinaryOp::kNe: return Value(!a.loose_equals(b));
      case BinaryOp::kStrictEq: return Value(a == b);
      case BinaryOp::kStrictNe: return Value(!(a == b));
      case BinaryOp::kLt: return compare(a, b, [](double x, double y) { return x < y; });
      case BinaryOp::kGt: return compare(a, b, [](double x, double y) { return x > y; });
      case BinaryOp::kLe: return compare(a, b, [](double x, double y) { return x <= y; });
      case BinaryOp::kGe: return compare(a, b, [](double x, double y) { return x >= y; });
      case BinaryOp::kInstanceof: {
        // walk a's prototype chain looking for b.prototype
        if (!b.is_object()) {
          throw ScriptError("TypeError: right side of instanceof is not an "
                            "object");
        }
        const Value proto = interp_.heap_.get_property(
            b.as_object(), interp_.heap_.atoms().well_known().prototype);
        if (!a.is_object() || !proto.is_object()) return Value(false);
        ObjectRef cursor = interp_.heap_.get(a.as_object()).prototype;
        for (int depth = 0; depth < 32 && !cursor.null(); ++depth) {
          if (cursor == proto.as_object()) return Value(true);
          cursor = interp_.heap_.get(cursor).prototype;
        }
        return Value(false);
      }
      case BinaryOp::kIn:
        if (!b.is_object()) {
          throw ScriptError("TypeError: right side of 'in' is not an object");
        }
        return Value(interp_.heap_.has_property(b.as_object(),
                                                a.to_display_string()));
      case BinaryOp::kAnd:
      case BinaryOp::kOr:
        break;  // handled above
    }
    throw ScriptError("unknown binary operator");
  }

  template <typename Cmp>
  static Value compare(const Value& a, const Value& b, Cmp cmp) {
    if (a.is_string() && b.is_string()) {
      return Value(cmp(a.as_string() < b.as_string() ? -1.0 : (a.as_string() == b.as_string() ? 0.0 : 1.0), 0.0));
    }
    const double x = a.to_number();
    const double y = b.to_number();
    if (std::isnan(x) || std::isnan(y)) return Value(false);
    return Value(cmp(x, y));
  }

  Value eval_unary(const Expr& e) {
    if (e.unary_op == UnaryOp::kTypeof) {
      // typeof tolerates unbound identifiers, per JavaScript
      if (e.lhs->kind == Expr::Kind::kIdentifier &&
          env_->lookup(e.lhs->text) == nullptr) {
        return Value("undefined");
      }
      const Value v = eval(*e.lhs);
      if (v.is_undefined()) return Value("undefined");
      if (v.is_null()) return Value("object");
      if (v.is_bool()) return Value("boolean");
      if (v.is_number()) return Value("number");
      if (v.is_string()) return Value("string");
      const JsObject& obj = interp_.heap_.get(v.as_object());
      return Value(obj.callable ? "function" : "object");
    }
    if (e.unary_op == UnaryOp::kDelete) {
      // delete obj.prop / obj[expr]: remove the own property; true if gone
      const Expr& target = *e.lhs;
      const Value base = eval(*target.object);
      if (!base.is_object()) return Value(true);
      const std::string name = target.kind == Expr::Kind::kMember
                                   ? target.text
                                   : eval(*target.index).to_display_string();
      interp_.heap_.delete_property(base.as_object(), name);
      return Value(true);
    }
    const Value v = eval(*e.lhs);
    if (e.unary_op == UnaryOp::kNot) return Value(!v.truthy());
    return Value(-v.to_number());
  }

  Interpreter& interp_;
  Environment* env_;
  Value return_value_;
};

Interpreter::Interpreter(std::uint64_t rng_seed) : rng_(rng_seed) {
  global_env_ = make_environment(nullptr);
  install_builtins();
  install_extended_builtins();
}

Environment* Interpreter::make_environment(Environment* parent) {
  env_arena_.push_back(std::make_unique<Environment>(
      parent, &heap_.atoms(), ++env_serial_counter_));
  return env_arena_.back().get();
}

void Interpreter::execute(const Program& program) {
  if (call_depth_ == 0) fuel_ = fuel_per_run_;
  Evaluator ev(*this, global_env_);
  ev.run_block(program.statements);
}

Value Interpreter::call_function(const Value& fn, const Value& self,
                                 std::span<const Value> args) {
  if (!fn.is_object()) {
    throw ScriptError("TypeError: " + fn.to_display_string() +
                      " is not a function");
  }
  JsObject& obj = heap_.get(fn.as_object());
  if (!obj.callable) {
    throw ScriptError("TypeError: object is not callable");
  }
  if (call_depth_ == 0) fuel_ = fuel_per_run_;
  if (call_depth_ > 64) throw ScriptError("RangeError: call stack exceeded");
  ++call_depth_;
  struct DepthGuard {
    int& depth;
    ~DepthGuard() { --depth; }
  } guard{call_depth_};

  if (obj.callable->native) {
    return obj.callable->native(*this, self, args);
  }

  const AstFunction& ast = *obj.callable->script;
  ScriptCallFrame prof_frame(ast);
  AtomTable& at = heap_.atoms();
  if (ast.param_engine != at.id()) {
    ast.param_atoms.clear();
    ast.param_atoms.reserve(ast.params.size());
    for (const std::string& p : ast.params) {
      ast.param_atoms.push_back(at.intern(p));
    }
    ast.param_engine = at.id();
  }
  Environment* env = make_environment(obj.callable->closure != nullptr
                                          ? obj.callable->closure
                                          : global_env_);
  env->reserve(ast.param_atoms.size() + 2);  // params + this + arguments
  for (std::size_t i = 0; i < ast.param_atoms.size(); ++i) {
    env->define(ast.param_atoms[i], i < args.size() ? args[i] : Value());
  }
  env->define(at.well_known().this_, self);
  env->define(at.well_known().arguments, [&] {
    const ObjectRef arr = heap_.make_object(ObjectRef(), "Arguments");
    for (std::size_t i = 0; i < args.size(); ++i) {
      heap_.define_property(arr, at.intern_index(i), args[i]);
    }
    heap_.define_property(arr, at.well_known().length,
                          Value(static_cast<double>(args.size())));
    return Value(arr);
  }());

  Evaluator ev(*this, env);
  if (ev.run_block(ast.body) == Flow::kReturn) {
    return ev.take_return_value();
  }
  return Value();
}

Value Interpreter::construct(const Value& ctor, std::span<const Value> args) {
  if (!ctor.is_object()) {
    throw ScriptError("TypeError: constructor is not an object");
  }
  JsObject& ctor_obj = heap_.get(ctor.as_object());
  if (!ctor_obj.callable) {
    throw ScriptError("TypeError: constructor is not callable");
  }
  ObjectRef proto;
  const Value* proto_v =
      ctor_obj.properties.find(heap_.atoms().well_known().prototype);
  if (proto_v != nullptr && proto_v->is_object()) {
    proto = proto_v->as_object();
  }
  const ObjectRef instance = heap_.make_object(proto, ctor_obj.callable->name);
  const Value result =
      call_function(ctor, Value(instance), args);
  // JS: if a constructor returns an object, that wins; else the instance.
  if (result.is_object()) return result;
  return Value(instance);
}

void Interpreter::install_builtins() {
  Heap& h = heap_;

  // Math
  const ObjectRef math = h.make_object(ObjectRef(), "Math");
  const auto def_math = [&](const char* name, double (*fn)(double)) {
    h.define_property(math, name, Value(h.make_function(
        [fn](Interpreter&, const Value&, std::span<const Value> args) {
          return Value(fn(args.empty() ? std::nan("") : args[0].to_number()));
        },
        name)));
  };
  def_math("floor", [](double x) { return std::floor(x); });
  def_math("ceil", [](double x) { return std::ceil(x); });
  def_math("abs", [](double x) { return std::fabs(x); });
  def_math("sqrt", [](double x) { return std::sqrt(x); });
  def_math("round", [](double x) { return std::round(x); });
  h.define_property(math, "random", Value(h.make_function(
      [](Interpreter& in, const Value&, std::span<const Value>) {
        return Value(in.rng().uniform());
      },
      "random")));
  h.define_property(math, "max", Value(h.make_function(
      [](Interpreter&, const Value&, std::span<const Value> args) {
        double best = -HUGE_VAL;
        for (const Value& v : args) best = std::max(best, v.to_number());
        return Value(best);
      },
      "max")));
  h.define_property(math, "min", Value(h.make_function(
      [](Interpreter&, const Value&, std::span<const Value> args) {
        double best = HUGE_VAL;
        for (const Value& v : args) best = std::min(best, v.to_number());
        return Value(best);
      },
      "min")));
  h.define_property(math, "pow", Value(h.make_function(
      [](Interpreter&, const Value&, std::span<const Value> args) {
        if (args.size() < 2) return Value(std::nan(""));
        return Value(std::pow(args[0].to_number(), args[1].to_number()));
      },
      "pow")));
  global_env_->define("Math", Value(math));

  // String(x), Number(x), parseInt
  global_env_->define(
      "String", Value(h.make_function(
                    [](Interpreter&, const Value&, std::span<const Value> a) {
                      return Value(a.empty() ? std::string()
                                             : a[0].to_display_string());
                    },
                    "String")));
  global_env_->define(
      "Number", Value(h.make_function(
                    [](Interpreter&, const Value&, std::span<const Value> a) {
                      return Value(a.empty() ? 0.0 : a[0].to_number());
                    },
                    "Number")));
  global_env_->define(
      "parseInt",
      Value(h.make_function(
          [](Interpreter&, const Value&, std::span<const Value> a) {
            if (a.empty()) return Value(std::nan(""));
            return Value(std::trunc(a[0].to_number()));
          },
          "parseInt")));

  // Date.now-alike counter so scripts can "time" things deterministically.
  const ObjectRef date = h.make_object(ObjectRef(), "Date");
  h.define_property(date, "now", Value(h.make_function(
      [](Interpreter& in, const Value&, std::span<const Value>) {
        return Value(1.4631e12 + static_cast<double>(in.steps_executed()));
      },
      "now")));
  global_env_->define("Date", Value(date));

  // isNaN
  global_env_->define(
      "isNaN", Value(h.make_function(
                   [](Interpreter&, const Value&, std::span<const Value> a) {
                     return Value(a.empty() || std::isnan(a[0].to_number()));
                   },
                   "isNaN")));
}

}  // namespace fu::script
