#include "script/interp.h"

#include <cmath>

namespace fu::script {

namespace {

// Non-error control-flow signals.
struct ReturnSignal {
  Value value;
};
struct BreakSignal {};
struct ContinueSignal {};

}  // namespace

void Environment::define(std::string_view name, Value value) {
  bindings_[std::string(name)] = std::move(value);
}

void Environment::assign(std::string_view name, Value value) {
  for (Environment* env = this; env != nullptr; env = env->parent_) {
    const auto it = env->bindings_.find(name);
    if (it != env->bindings_.end()) {
      it->second = std::move(value);
      return;
    }
  }
  // sloppy mode: implicit global
  Environment* root = this;
  while (root->parent_ != nullptr) root = root->parent_;
  root->bindings_[std::string(name)] = std::move(value);
}

const Value* Environment::lookup(std::string_view name) const {
  for (const Environment* env = this; env != nullptr; env = env->parent_) {
    const auto it = env->bindings_.find(name);
    if (it != env->bindings_.end()) return &it->second;
  }
  return nullptr;
}

// Walks the AST. A member class so it can reach interpreter internals.
class Evaluator {
 public:
  Evaluator(Interpreter& interp, Environment* env)
      : interp_(interp), env_(env) {}

  void run_block(const std::vector<StmtPtr>& stmts) {
    for (const StmtPtr& s : stmts) exec(*s);
  }

  void exec(const Stmt& s) {
    interp_.burn_fuel();
    switch (s.kind) {
      case Stmt::Kind::kEmpty:
        return;
      case Stmt::Kind::kExpr:
        eval(*s.expr);
        return;
      case Stmt::Kind::kVar:
        env_->define(s.name, s.expr ? eval(*s.expr) : Value());
        return;
      case Stmt::Kind::kIf:
        if (eval(*s.expr).truthy()) {
          exec(*s.body);
        } else if (s.else_body) {
          exec(*s.else_body);
        }
        return;
      case Stmt::Kind::kWhile:
        while (eval(*s.expr).truthy()) {
          try {
            exec(*s.body);
          } catch (const BreakSignal&) {
            break;
          } catch (const ContinueSignal&) {
          }
        }
        return;
      case Stmt::Kind::kDoWhile:
        do {
          try {
            exec(*s.body);
          } catch (const BreakSignal&) {
            break;
          } catch (const ContinueSignal&) {
          }
        } while (eval(*s.expr).truthy());
        return;
      case Stmt::Kind::kSwitch: {
        const Value discriminant = eval(*s.expr);
        // find the matching clause (=== semantics), else the default
        std::size_t start = s.clauses.size();
        for (std::size_t i = 0; i < s.clauses.size(); ++i) {
          if (s.clauses[i].test != nullptr &&
              eval(*s.clauses[i].test) == discriminant) {
            start = i;
            break;
          }
        }
        if (start == s.clauses.size()) {
          for (std::size_t i = 0; i < s.clauses.size(); ++i) {
            if (s.clauses[i].test == nullptr) {
              start = i;
              break;
            }
          }
        }
        try {
          // fallthrough: run from the matched clause to the end or a break
          for (std::size_t i = start; i < s.clauses.size(); ++i) {
            for (const StmtPtr& child : s.clauses[i].body) exec(*child);
          }
        } catch (const BreakSignal&) {
        }
        return;
      }
      case Stmt::Kind::kFor: {
        if (s.init_stmt) exec(*s.init_stmt);
        if (s.init_expr) eval(*s.init_expr);
        while (s.expr == nullptr || eval(*s.expr).truthy()) {
          try {
            exec(*s.body);
          } catch (const BreakSignal&) {
            break;
          } catch (const ContinueSignal&) {
          }
          if (s.step) eval(*s.step);
        }
        return;
      }
      case Stmt::Kind::kReturn:
        throw ReturnSignal{s.expr ? eval(*s.expr) : Value()};
      case Stmt::Kind::kBreak:
        throw BreakSignal{};
      case Stmt::Kind::kContinue:
        throw ContinueSignal{};
      case Stmt::Kind::kBlock: {
        // blocks share their enclosing function scope (var semantics)
        run_block(s.statements);
        return;
      }
      case Stmt::Kind::kFunction:
        env_->define(s.function->name,
                     interp_.heap_.make_script_function(s.function, env_));
        return;
      case Stmt::Kind::kTry:
        try {
          run_block(s.statements);
        } catch (const ScriptError& err) {
          if (!s.name.empty()) env_->define(s.name, Value(err.what()));
          run_block(s.catch_body);
        }
        return;
    }
  }

  Value eval(const Expr& e) {
    interp_.burn_fuel();
    switch (e.kind) {
      case Expr::Kind::kNumber:
        return Value(e.number);
      case Expr::Kind::kString:
        return Value(e.text);
      case Expr::Kind::kBool:
        return Value(e.boolean);
      case Expr::Kind::kNull:
        return Value(Null{});
      case Expr::Kind::kUndefined:
        return Value();
      case Expr::Kind::kIdentifier: {
        const Value* v = env_->lookup(e.text);
        if (v == nullptr) {
          throw ScriptError("ReferenceError: " + e.text + " is not defined");
        }
        return *v;
      }
      case Expr::Kind::kMember: {
        const Value base = eval(*e.object);
        return member_of(base, e.text);
      }
      case Expr::Kind::kIndex: {
        const Value base = eval(*e.object);
        const Value idx = eval(*e.index);
        return member_of(base, idx.to_display_string());
      }
      case Expr::Kind::kCall:
        return eval_call(e);
      case Expr::Kind::kNew: {
        const Value ctor = eval(*e.callee);
        std::vector<Value> args = eval_args(e.args);
        return interp_.construct(ctor, args);
      }
      case Expr::Kind::kAssign:
        return eval_assign(e);
      case Expr::Kind::kBinary:
        return eval_binary(e);
      case Expr::Kind::kUnary:
        return eval_unary(e);
      case Expr::Kind::kConditional:
        return eval(*e.cond).truthy() ? eval(*e.then_expr) : eval(*e.else_expr);
      case Expr::Kind::kFunction:
        return interp_.heap_.make_script_function(e.function, env_);
      case Expr::Kind::kObjectLiteral: {
        const ObjectRef obj = interp_.heap_.make_object();
        for (std::size_t i = 0; i < e.keys.size(); ++i) {
          interp_.heap_.get(obj).properties[e.keys[i]] = eval(*e.args[i]);
        }
        return Value(obj);
      }
      case Expr::Kind::kArrayLiteral: {
        std::vector<Value> elements;
        elements.reserve(e.args.size());
        for (const ExprPtr& arg : e.args) elements.push_back(eval(*arg));
        return interp_.make_array(elements);
      }
    }
    throw ScriptError("unknown expression kind");
  }

 private:
  Value member_of(const Value& base, std::string_view name) {
    if (!base.is_object()) {
      if (base.is_string()) {
        if (name == "length") {
          return Value(static_cast<double>(base.as_string().size()));
        }
        // string methods live on the shared string prototype and receive
        // the string itself as `this`
        return interp_.heap_.get_property(interp_.string_prototype(), name);
      }
      if (base.is_undefined() || base.is_null()) {
        throw ScriptError("TypeError: cannot read property '" +
                          std::string(name) + "' of " +
                          base.to_display_string());
      }
      return Value();  // other primitive members: undefined
    }
    return interp_.heap_.get_property(base.as_object(), name);
  }

  std::vector<Value> eval_args(const std::vector<ExprPtr>& exprs) {
    std::vector<Value> out;
    out.reserve(exprs.size());
    for (const ExprPtr& a : exprs) out.push_back(eval(*a));
    return out;
  }

  Value eval_call(const Expr& e) {
    // Member calls bind `this` to the base object.
    Value self;
    Value fn;
    if (e.callee->kind == Expr::Kind::kMember) {
      self = eval(*e.callee->object);
      fn = member_of(self, e.callee->text);
      if (fn.is_undefined()) {
        throw ScriptError("TypeError: " + self.to_display_string() + "." +
                          e.callee->text + " is not a function");
      }
    } else if (e.callee->kind == Expr::Kind::kIndex) {
      self = eval(*e.callee->object);
      fn = member_of(self, eval(*e.callee->index).to_display_string());
    } else {
      fn = eval(*e.callee);
    }
    const std::vector<Value> args = eval_args(e.args);
    return interp_.call_function(fn, self, args);
  }

  Value eval_assign(const Expr& e) {
    Value value = eval(*e.rhs);
    const Expr& target = *e.lhs;
    switch (target.kind) {
      case Expr::Kind::kIdentifier:
        env_->assign(target.text, value);
        return value;
      case Expr::Kind::kMember: {
        const Value base = eval(*target.object);
        if (!base.is_object()) {
          throw ScriptError("TypeError: cannot set property '" + target.text +
                            "' of " + base.to_display_string());
        }
        interp_.heap_.set_property(base.as_object(), target.text, value);
        return value;
      }
      case Expr::Kind::kIndex: {
        const Value base = eval(*target.object);
        const Value idx = eval(*target.index);
        if (!base.is_object()) {
          throw ScriptError("TypeError: cannot index " +
                            base.to_display_string());
        }
        interp_.heap_.set_property(base.as_object(), idx.to_display_string(),
                                   value);
        return value;
      }
      default:
        throw ScriptError("invalid assignment target");
    }
  }

  Value eval_binary(const Expr& e) {
    // short-circuit operators first
    if (e.binary_op == BinaryOp::kAnd) {
      Value lhs = eval(*e.lhs);
      return lhs.truthy() ? eval(*e.rhs) : lhs;
    }
    if (e.binary_op == BinaryOp::kOr) {
      Value lhs = eval(*e.lhs);
      return lhs.truthy() ? lhs : eval(*e.rhs);
    }
    const Value a = eval(*e.lhs);
    const Value b = eval(*e.rhs);
    switch (e.binary_op) {
      case BinaryOp::kAdd:
        if (a.is_string() || b.is_string()) {
          return Value(a.to_display_string() + b.to_display_string());
        }
        return Value(a.to_number() + b.to_number());
      case BinaryOp::kSub: return Value(a.to_number() - b.to_number());
      case BinaryOp::kMul: return Value(a.to_number() * b.to_number());
      case BinaryOp::kDiv: return Value(a.to_number() / b.to_number());
      case BinaryOp::kMod: return Value(std::fmod(a.to_number(), b.to_number()));
      case BinaryOp::kEq: return Value(a.loose_equals(b));
      case BinaryOp::kNe: return Value(!a.loose_equals(b));
      case BinaryOp::kStrictEq: return Value(a == b);
      case BinaryOp::kStrictNe: return Value(!(a == b));
      case BinaryOp::kLt: return compare(a, b, [](double x, double y) { return x < y; });
      case BinaryOp::kGt: return compare(a, b, [](double x, double y) { return x > y; });
      case BinaryOp::kLe: return compare(a, b, [](double x, double y) { return x <= y; });
      case BinaryOp::kGe: return compare(a, b, [](double x, double y) { return x >= y; });
      case BinaryOp::kInstanceof: {
        // walk a's prototype chain looking for b.prototype
        if (!b.is_object()) {
          throw ScriptError("TypeError: right side of instanceof is not an "
                            "object");
        }
        const Value proto =
            interp_.heap_.get_property(b.as_object(), "prototype");
        if (!a.is_object() || !proto.is_object()) return Value(false);
        ObjectRef cursor = interp_.heap_.get(a.as_object()).prototype;
        for (int depth = 0; depth < 32 && !cursor.null(); ++depth) {
          if (cursor == proto.as_object()) return Value(true);
          cursor = interp_.heap_.get(cursor).prototype;
        }
        return Value(false);
      }
      case BinaryOp::kIn:
        if (!b.is_object()) {
          throw ScriptError("TypeError: right side of 'in' is not an object");
        }
        return Value(interp_.heap_.has_property(b.as_object(),
                                                a.to_display_string()));
      case BinaryOp::kAnd:
      case BinaryOp::kOr:
        break;  // handled above
    }
    throw ScriptError("unknown binary operator");
  }

  template <typename Cmp>
  static Value compare(const Value& a, const Value& b, Cmp cmp) {
    if (a.is_string() && b.is_string()) {
      return Value(cmp(a.as_string() < b.as_string() ? -1.0 : (a.as_string() == b.as_string() ? 0.0 : 1.0), 0.0));
    }
    const double x = a.to_number();
    const double y = b.to_number();
    if (std::isnan(x) || std::isnan(y)) return Value(false);
    return Value(cmp(x, y));
  }

  Value eval_unary(const Expr& e) {
    if (e.unary_op == UnaryOp::kTypeof) {
      // typeof tolerates unbound identifiers, per JavaScript
      if (e.lhs->kind == Expr::Kind::kIdentifier &&
          env_->lookup(e.lhs->text) == nullptr) {
        return Value("undefined");
      }
      const Value v = eval(*e.lhs);
      if (v.is_undefined()) return Value("undefined");
      if (v.is_null()) return Value("object");
      if (v.is_bool()) return Value("boolean");
      if (v.is_number()) return Value("number");
      if (v.is_string()) return Value("string");
      const JsObject& obj = interp_.heap_.get(v.as_object());
      return Value(obj.callable ? "function" : "object");
    }
    if (e.unary_op == UnaryOp::kDelete) {
      // delete obj.prop / obj[expr]: remove the own property; true if gone
      const Expr& target = *e.lhs;
      const Value base = eval(*target.object);
      if (!base.is_object()) return Value(true);
      const std::string name = target.kind == Expr::Kind::kMember
                                   ? target.text
                                   : eval(*target.index).to_display_string();
      interp_.heap_.get(base.as_object()).properties.erase(name);
      return Value(true);
    }
    const Value v = eval(*e.lhs);
    if (e.unary_op == UnaryOp::kNot) return Value(!v.truthy());
    return Value(-v.to_number());
  }

  Interpreter& interp_;
  Environment* env_;
};

Interpreter::Interpreter(std::uint64_t rng_seed) : rng_(rng_seed) {
  env_arena_.push_back(std::make_unique<Environment>(nullptr));
  global_env_ = env_arena_.back().get();
  install_builtins();
  install_extended_builtins();
}

Environment* Interpreter::make_environment(Environment* parent) {
  env_arena_.push_back(std::make_unique<Environment>(parent));
  return env_arena_.back().get();
}

void Interpreter::execute(const Program& program) {
  if (call_depth_ == 0) fuel_ = fuel_per_run_;
  Evaluator ev(*this, global_env_);
  ev.run_block(program.statements);
}

Value Interpreter::call_function(const Value& fn, const Value& self,
                                 std::span<const Value> args) {
  if (!fn.is_object()) {
    throw ScriptError("TypeError: " + fn.to_display_string() +
                      " is not a function");
  }
  JsObject& obj = heap_.get(fn.as_object());
  if (!obj.callable) {
    throw ScriptError("TypeError: object is not callable");
  }
  if (call_depth_ == 0) fuel_ = fuel_per_run_;
  if (call_depth_ > 64) throw ScriptError("RangeError: call stack exceeded");
  ++call_depth_;
  struct DepthGuard {
    int& depth;
    ~DepthGuard() { --depth; }
  } guard{call_depth_};

  if (obj.callable->native) {
    return obj.callable->native(*this, self, args);
  }

  const AstFunction& ast = *obj.callable->script;
  Environment* env = make_environment(obj.callable->closure != nullptr
                                          ? obj.callable->closure
                                          : global_env_);
  for (std::size_t i = 0; i < ast.params.size(); ++i) {
    env->define(ast.params[i], i < args.size() ? args[i] : Value());
  }
  env->define("this", self);
  env->define("arguments", [&] {
    const ObjectRef arr = heap_.make_object(ObjectRef(), "Arguments");
    JsObject& a = heap_.get(arr);
    for (std::size_t i = 0; i < args.size(); ++i) {
      a.properties[std::to_string(i)] = args[i];
    }
    a.properties["length"] = Value(static_cast<double>(args.size()));
    return Value(arr);
  }());

  Evaluator ev(*this, env);
  try {
    ev.run_block(ast.body);
  } catch (ReturnSignal& ret) {
    return std::move(ret.value);
  }
  return Value();
}

Value Interpreter::construct(const Value& ctor, std::span<const Value> args) {
  if (!ctor.is_object()) {
    throw ScriptError("TypeError: constructor is not an object");
  }
  JsObject& ctor_obj = heap_.get(ctor.as_object());
  if (!ctor_obj.callable) {
    throw ScriptError("TypeError: constructor is not callable");
  }
  ObjectRef proto;
  const auto proto_it = ctor_obj.properties.find("prototype");
  if (proto_it != ctor_obj.properties.end() && proto_it->second.is_object()) {
    proto = proto_it->second.as_object();
  }
  const ObjectRef instance = heap_.make_object(proto, ctor_obj.callable->name);
  const Value result =
      call_function(ctor, Value(instance), args);
  // JS: if a constructor returns an object, that wins; else the instance.
  if (result.is_object()) return result;
  return Value(instance);
}

void Interpreter::install_builtins() {
  Heap& h = heap_;

  // Math
  const ObjectRef math = h.make_object(ObjectRef(), "Math");
  const auto def_math = [&](const char* name, double (*fn)(double)) {
    h.get(math).properties[name] = Value(h.make_function(
        [fn](Interpreter&, const Value&, std::span<const Value> args) {
          return Value(fn(args.empty() ? std::nan("") : args[0].to_number()));
        },
        name));
  };
  def_math("floor", [](double x) { return std::floor(x); });
  def_math("ceil", [](double x) { return std::ceil(x); });
  def_math("abs", [](double x) { return std::fabs(x); });
  def_math("sqrt", [](double x) { return std::sqrt(x); });
  def_math("round", [](double x) { return std::round(x); });
  h.get(math).properties["random"] = Value(h.make_function(
      [](Interpreter& in, const Value&, std::span<const Value>) {
        return Value(in.rng().uniform());
      },
      "random"));
  h.get(math).properties["max"] = Value(h.make_function(
      [](Interpreter&, const Value&, std::span<const Value> args) {
        double best = -HUGE_VAL;
        for (const Value& v : args) best = std::max(best, v.to_number());
        return Value(best);
      },
      "max"));
  h.get(math).properties["min"] = Value(h.make_function(
      [](Interpreter&, const Value&, std::span<const Value> args) {
        double best = HUGE_VAL;
        for (const Value& v : args) best = std::min(best, v.to_number());
        return Value(best);
      },
      "min"));
  h.get(math).properties["pow"] = Value(h.make_function(
      [](Interpreter&, const Value&, std::span<const Value> args) {
        if (args.size() < 2) return Value(std::nan(""));
        return Value(std::pow(args[0].to_number(), args[1].to_number()));
      },
      "pow"));
  global_env_->define("Math", Value(math));

  // String(x), Number(x), parseInt
  global_env_->define(
      "String", Value(h.make_function(
                    [](Interpreter&, const Value&, std::span<const Value> a) {
                      return Value(a.empty() ? std::string()
                                             : a[0].to_display_string());
                    },
                    "String")));
  global_env_->define(
      "Number", Value(h.make_function(
                    [](Interpreter&, const Value&, std::span<const Value> a) {
                      return Value(a.empty() ? 0.0 : a[0].to_number());
                    },
                    "Number")));
  global_env_->define(
      "parseInt",
      Value(h.make_function(
          [](Interpreter&, const Value&, std::span<const Value> a) {
            if (a.empty()) return Value(std::nan(""));
            return Value(std::trunc(a[0].to_number()));
          },
          "parseInt")));

  // Date.now-alike counter so scripts can "time" things deterministically.
  const ObjectRef date = h.make_object(ObjectRef(), "Date");
  h.get(date).properties["now"] = Value(h.make_function(
      [](Interpreter& in, const Value&, std::span<const Value>) {
        return Value(1.4631e12 + static_cast<double>(in.steps_executed()));
      },
      "now"));
  global_env_->define("Date", Value(date));

  // isNaN
  global_env_->define(
      "isNaN", Value(h.make_function(
                   [](Interpreter&, const Value&, std::span<const Value> a) {
                     return Value(a.empty() || std::isnan(a[0].to_number()));
                   },
                   "isNaN")));
}

}  // namespace fu::script
