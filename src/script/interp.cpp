#include "script/interp.h"

#include <algorithm>
#include <cmath>

#include "script/compiler.h"
#include "script/profhook.h"
#include "script/snapshot.h"
#include "script/vm.h"

namespace fu::script {

void Environment::assign(Atom atom, Value value) {
  for (Environment* env = this; env != nullptr; env = env->parent_) {
    if (Value* v = env->bindings_.find(atom)) {
      *v = std::move(value);
      return;
    }
  }
  // sloppy mode: implicit global
  Environment* root = this;
  while (root->parent_ != nullptr) root = root->parent_;
  root->bindings_.put(atom) = std::move(value);
}

Interpreter::Interpreter(const HeapSnapshot* snapshot, std::uint64_t rng_seed)
    : rng_(rng_seed) {
  if (snapshot != nullptr) {
    snapshot->instantiate(*this);
    return;
  }
  global_env_ = make_environment(nullptr);
  install_builtins();
  install_extended_builtins();
}

Environment* Interpreter::make_environment(Environment* parent) {
  env_arena_.push_back(std::make_unique<Environment>(
      parent, &heap_.atoms(), ++env_serial_counter_));
  return env_arena_.back().get();
}

void Interpreter::execute(const Program& program) {
  if (call_depth_ == 0) fuel_ = fuel_per_run_;
  Vm::run(*this, chunk_for(program, heap_.atoms()), global_env_);
}

Value Interpreter::call_function(const Value& fn, const Value& self,
                                 std::span<const Value> args) {
  return call_resolved(fn, self, args, nullptr);
}

Value Interpreter::call_resolved(const Value& fn, const Value& self,
                                 std::span<const Value> args, CallIC* site) {
  if (!fn.is_object()) {
    throw ScriptError("TypeError: " + fn.to_display_string() +
                      " is not a function");
  }
  JsObject& obj = heap_.get(fn.as_object());
  if (!obj.callable) {
    throw ScriptError("TypeError: object is not callable");
  }
  if (site != nullptr) {
    // Remember the callee for this bytecode site. Object slots are never
    // freed or reused and a function's Callable is never reassigned (shims
    // replace property *values*, not callables), so both keys stay valid
    // for the chunk's lifetime.
    site->callee = fn.as_object().index();
    site->target = obj.callable.get();
  }
  return invoke(*obj.callable, self, args);
}

Value Interpreter::invoke(const Callable& callee, const Value& self,
                          std::span<const Value> args) {
  if (call_depth_ == 0) fuel_ = fuel_per_run_;
  if (call_depth_ > 64) throw ScriptError("RangeError: call stack exceeded");
  ++call_depth_;
  struct DepthGuard {
    int& depth;
    ~DepthGuard() { --depth; }
  } guard{call_depth_};

  if (callee.native) {
    return callee.native(*this, self, args);
  }

  const AstFunction& ast = *callee.script;
  ScriptCallFrame prof_frame(ast);
  AtomTable& at = heap_.atoms();
  const Chunk& chunk = chunk_for(ast, at);
  Environment* env = make_environment(callee.closure != nullptr
                                          ? callee.closure
                                          : global_env_);
  env->reserve(chunk.param_atoms.size() + 2);  // params + this + arguments
  for (std::size_t i = 0; i < chunk.param_atoms.size(); ++i) {
    env->define(chunk.param_atoms[i], i < args.size() ? args[i] : Value());
  }
  env->define(at.well_known().this_, self);
  if (chunk.needs_arguments) {
    // Only built when the body can observe it (the compiler scanned for
    // `arguments`); the object itself is plain, so skipping it is invisible.
    const ObjectRef arr = heap_.make_object(ObjectRef(), "Arguments");
    for (std::size_t i = 0; i < args.size(); ++i) {
      heap_.define_property(arr, at.intern_index(i), args[i]);
    }
    heap_.define_property(arr, at.well_known().length,
                          Value(static_cast<double>(args.size())));
    env->define(at.well_known().arguments, Value(arr));
  }

  return Vm::run(*this, chunk, env);
}

Value Interpreter::construct(const Value& ctor, std::span<const Value> args) {
  if (!ctor.is_object()) {
    throw ScriptError("TypeError: constructor is not an object");
  }
  JsObject& ctor_obj = heap_.get(ctor.as_object());
  if (!ctor_obj.callable) {
    throw ScriptError("TypeError: constructor is not callable");
  }
  ObjectRef proto;
  const Value* proto_v =
      ctor_obj.properties.find(heap_.atoms().well_known().prototype);
  if (proto_v != nullptr && proto_v->is_object()) {
    proto = proto_v->as_object();
  }
  const ObjectRef instance = heap_.make_object(proto, ctor_obj.callable->name);
  const Value result =
      call_function(ctor, Value(instance), args);
  // JS: if a constructor returns an object, that wins; else the instance.
  if (result.is_object()) return result;
  return Value(instance);
}

void Interpreter::install_builtins() {
  Heap& h = heap_;

  // Math
  const ObjectRef math = h.make_object(ObjectRef(), "Math");
  const auto def_math = [&](const char* name, double (*fn)(double)) {
    h.define_property(math, name, Value(h.make_function(
        [fn](Interpreter&, const Value&, std::span<const Value> args) {
          return Value(fn(args.empty() ? std::nan("") : args[0].to_number()));
        },
        name)));
  };
  def_math("floor", [](double x) { return std::floor(x); });
  def_math("ceil", [](double x) { return std::ceil(x); });
  def_math("abs", [](double x) { return std::fabs(x); });
  def_math("sqrt", [](double x) { return std::sqrt(x); });
  def_math("round", [](double x) { return std::round(x); });
  h.define_property(math, "random", Value(h.make_function(
      [](Interpreter& in, const Value&, std::span<const Value>) {
        return Value(in.rng().uniform());
      },
      "random")));
  h.define_property(math, "max", Value(h.make_function(
      [](Interpreter&, const Value&, std::span<const Value> args) {
        double best = -HUGE_VAL;
        for (const Value& v : args) best = std::max(best, v.to_number());
        return Value(best);
      },
      "max")));
  h.define_property(math, "min", Value(h.make_function(
      [](Interpreter&, const Value&, std::span<const Value> args) {
        double best = HUGE_VAL;
        for (const Value& v : args) best = std::min(best, v.to_number());
        return Value(best);
      },
      "min")));
  h.define_property(math, "pow", Value(h.make_function(
      [](Interpreter&, const Value&, std::span<const Value> args) {
        if (args.size() < 2) return Value(std::nan(""));
        return Value(std::pow(args[0].to_number(), args[1].to_number()));
      },
      "pow")));
  global_env_->define("Math", Value(math));

  // String(x), Number(x), parseInt
  global_env_->define(
      "String", Value(h.make_function(
                    [](Interpreter&, const Value&, std::span<const Value> a) {
                      return Value(a.empty() ? std::string()
                                             : a[0].to_display_string());
                    },
                    "String")));
  global_env_->define(
      "Number", Value(h.make_function(
                    [](Interpreter&, const Value&, std::span<const Value> a) {
                      return Value(a.empty() ? 0.0 : a[0].to_number());
                    },
                    "Number")));
  global_env_->define(
      "parseInt",
      Value(h.make_function(
          [](Interpreter&, const Value&, std::span<const Value> a) {
            if (a.empty()) return Value(std::nan(""));
            return Value(std::trunc(a[0].to_number()));
          },
          "parseInt")));

  // Date.now-alike counter so scripts can "time" things deterministically.
  const ObjectRef date = h.make_object(ObjectRef(), "Date");
  h.define_property(date, "now", Value(h.make_function(
      [](Interpreter& in, const Value&, std::span<const Value>) {
        return Value(1.4631e12 + static_cast<double>(in.steps_executed()));
      },
      "now")));
  global_env_->define("Date", Value(date));

  // isNaN
  global_env_->define(
      "isNaN", Value(h.make_function(
                   [](Interpreter&, const Value&, std::span<const Value> a) {
                     return Value(a.empty() || std::isnan(a[0].to_number()));
                   },
                   "isNaN")));
}

}  // namespace fu::script
