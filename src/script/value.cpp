#include "script/value.h"

#include <cmath>
#include <cstdio>
#include <new>
#include <stdexcept>

#include "obs/mem.h"

namespace fu::script {

bool Value::truthy() const {
  if (is_undefined() || is_null()) return false;
  if (is_bool()) return as_bool();
  if (is_number()) {
    const double d = as_number();
    return d != 0 && !std::isnan(d);
  }
  if (is_string()) return !as_string().empty();
  return !as_object().null();
}

double Value::to_number() const {
  if (is_number()) return as_number();
  if (is_bool()) return as_bool() ? 1 : 0;
  if (is_null()) return 0;
  if (is_string()) {
    try {
      std::size_t used = 0;
      const double d = std::stod(as_string(), &used);
      if (used == as_string().size()) return d;
    } catch (const std::exception&) {
    }
    return std::nan("");
  }
  return std::nan("");
}

std::string Value::to_display_string() const {
  if (is_undefined()) return "undefined";
  if (is_null()) return "null";
  if (is_bool()) return as_bool() ? "true" : "false";
  if (is_string()) return as_string();
  if (is_number()) {
    const double d = as_number();
    if (std::isnan(d)) return "NaN";
    if (d == static_cast<double>(static_cast<long long>(d)) &&
        std::fabs(d) < 1e15) {
      return std::to_string(static_cast<long long>(d));
    }
    char buf[32];
    std::snprintf(buf, sizeof buf, "%g", d);
    return buf;
  }
  return "[object]";
}

bool Value::loose_equals(const Value& other) const {
  if (data_.index() == other.data_.index()) return *this == other;
  // cross-type: undefined == null, number-vs-string/bool coercion
  if ((is_undefined() || is_null()) && (other.is_undefined() || other.is_null())) {
    return true;
  }
  if (is_object() || other.is_object()) return false;
  if (is_undefined() || other.is_undefined()) return false;
  const double a = to_number();
  const double b = other.to_number();
  return !std::isnan(a) && !std::isnan(b) && a == b;
}

std::uint32_t ShapeTree::root_for(std::uint32_t proto_index) {
  // Heap object indices are small and dense, and this runs on every object
  // allocation — a direct-indexed table beats hashing. Node 0 is reserved,
  // so 0 doubles as the "no root yet" sentinel.
  if (proto_index >= roots_.size()) roots_.resize(proto_index + 1, 0);
  if (roots_[proto_index] != 0) return roots_[proto_index];
  nodes_.emplace_back();
  const auto id = static_cast<std::uint32_t>(nodes_.size() - 1);
  roots_[proto_index] = id;
  return id;
}

std::uint32_t ShapeTree::transition(std::uint32_t from, Atom atom) {
  {
    const Node& n = nodes_[from];
    if (n.first_atom == atom) return n.first_child;
    if (n.more) {
      for (const auto& [edge_atom, child] : *n.more) {
        if (edge_atom == atom) return child;
      }
    }
  }
  nodes_.emplace_back();  // may move nodes_: re-index `from` below
  const auto id = static_cast<std::uint32_t>(nodes_.size() - 1);
  Node& n = nodes_[from];
  if (n.first_atom == kNoAtom) {
    n.first_atom = atom;
    n.first_child = id;
  } else {
    if (!n.more) {
      n.more = std::make_unique<std::vector<std::pair<Atom, std::uint32_t>>>();
    }
    n.more->emplace_back(atom, id);
  }
  return id;
}

std::uint32_t ShapeTree::unique_shape() {
  nodes_.emplace_back();
  return static_cast<std::uint32_t>(nodes_.size() - 1);
}

void ShapeTree::clone_from(const ShapeTree& other) {
  nodes_.clear();
  nodes_.reserve(other.nodes_.size());
  for (const Node& n : other.nodes_) {
    Node copy;
    copy.first_atom = n.first_atom;
    copy.first_child = n.first_child;
    if (n.more) {
      copy.more =
          std::make_unique<std::vector<std::pair<Atom, std::uint32_t>>>(
              *n.more);
    }
    nodes_.push_back(std::move(copy));
  }
  roots_ = other.roots_;
}

Value& PropertySlots::put(Atom atom) {
  const std::uint32_t slot = index_of(atom);
  if (slot != kMissSlot) return slots_[slot].value;
  slots_.push_back(Slot{atom, Value()});
  shape_ = shapes_ ? shapes_->transition(shape_, atom) : shape_ + 1;
  if (index_) {
    index_->emplace(atom, static_cast<std::uint32_t>(slots_.size() - 1));
  } else if (slots_.size() > kIndexThreshold) {
    index_ = std::make_unique<std::unordered_map<Atom, std::uint32_t>>();
    index_->reserve(slots_.size() * 2);
    for (std::uint32_t i = 0; i < slots_.size(); ++i) {
      index_->emplace(slots_[i].atom, i);
    }
  }
  return slots_.back().value;
}

bool PropertySlots::erase(Atom atom) {
  const std::uint32_t slot = index_of(atom);
  if (slot == kMissSlot) return false;
  slots_.erase(slots_.begin() + slot);
  // Slot indices shifted: leave the shared transition path for a node no
  // other object can be on.
  shape_ = shapes_ ? shapes_->unique_shape() : shape_ + 1;
  if (index_) {
    // Deletes are rare (page scripts barely use `delete`); rebuild.
    index_->clear();
    for (std::uint32_t i = 0; i < slots_.size(); ++i) {
      index_->emplace(slots_[i].atom, i);
    }
  }
  return true;
}

Heap::Heap() : mem_domain_(obs::mem::Domain::kScriptHeap) {
  // DOM bindings alone allocate a few thousand objects per session (one
  // native function per catalog method, twice over once the measuring
  // extension shims them); start with room for them.
  objects_.reserve(8192);
  objects_.push_back(nullptr);  // index 0 reserved
}

Heap::~Heap() {
  destroy_objects();
  obs::mem::sub(mem_domain_, bytes_reserved());
}

std::size_t Heap::bytes_used() const noexcept {
  if (slabs_.empty()) return 0;
  return ((slabs_.size() - 1) * kSlabSize + slab_used_) * sizeof(JsObject);
}

std::size_t Heap::bytes_reserved() const noexcept {
  return slabs_.size() * kSlabSize * sizeof(JsObject);
}

void Heap::set_mem_domain(obs::mem::Domain domain) noexcept {
  if (domain == mem_domain_) return;
  const std::size_t reserved = bytes_reserved();
  obs::mem::sub(mem_domain_, reserved);
  obs::mem::add(domain, reserved);
  mem_domain_ = domain;
}

void* Heap::allocate_raw() {
  if (slab_used_ == kSlabSize) {
    // new std::byte[] storage is aligned for any ordinary type
    // (__STDCPP_DEFAULT_NEW_ALIGNMENT__ >= alignof(JsObject)).
    slabs_.push_back(
        std::make_unique<std::byte[]>(kSlabSize * sizeof(JsObject)));
    slab_used_ = 0;
    obs::mem::add(mem_domain_, kSlabSize * sizeof(JsObject));
  }
  return slabs_.back().get() + (slab_used_++) * sizeof(JsObject);
}

JsObject* Heap::allocate_object() { return new (allocate_raw()) JsObject(); }

void Heap::destroy_objects() {
  for (std::size_t i = 1; i < objects_.size(); ++i) {
    objects_[i]->~JsObject();
  }
}

void Heap::clone_from(const Heap& image,
                      std::shared_ptr<const AtomTable> frozen_atoms) {
  if (frozen_atoms != nullptr) {
    atoms_.adopt_base(std::move(frozen_atoms));
  } else {
    atoms_.clone_from(image.atoms_);
  }
  shapes_.clone_from(image.shapes_);
  destroy_objects();
  obs::mem::sub(mem_domain_, bytes_reserved());
  slabs_.clear();
  slab_used_ = kSlabSize;
  objects_.clear();
  objects_.reserve(image.objects_.size());
  objects_.push_back(nullptr);
  for (std::size_t i = 1; i < image.objects_.size(); ++i) {
    const JsObject& src = *image.objects_[i];
    // Copy-construct in place. src.watch intentionally left unattached:
    // handlers close over the image session's recorder and watched-name
    // table. Callables are shared, immutable (see JsObject::callable).
    JsObject* obj = new (allocate_raw())
        JsObject{src.properties, src.prototype, src.callable,
                 std::nullopt,   src.class_name, src.host};
    obj->properties.rebind_shapes(&shapes_);
    objects_.push_back(obj);
  }
}

ObjectRef Heap::make_object(ObjectRef prototype, std::string class_name) {
  JsObject* obj = allocate_object();
  obj->prototype = prototype;
  obj->class_name = std::move(class_name);
  // Same prototype => same shape root => same-layout objects share shape
  // ids (and therefore hit each other's inline-cache entries).
  obj->properties.attach(&shapes_, shapes_.root_for(prototype.index()));
  objects_.push_back(obj);
  return ObjectRef(static_cast<std::uint32_t>(objects_.size() - 1));
}

ObjectRef Heap::make_function(NativeFn fn, std::string name) {
  const ObjectRef ref = make_object(ObjectRef(), "Function");
  auto callable = std::make_shared<Callable>();
  callable->native = std::move(fn);
  callable->name = std::move(name);
  get(ref).callable = std::move(callable);
  return ref;
}

ObjectRef Heap::make_script_function(std::shared_ptr<const AstFunction> fn,
                                     Environment* closure) {
  const ObjectRef ref = make_object(ObjectRef(), "Function");
  auto callable = std::make_shared<Callable>();
  callable->script = std::move(fn);
  callable->closure = closure;
  get(ref).callable = std::move(callable);
  // Like JavaScript, every script function is a potential constructor and
  // carries a fresh .prototype object (new F() instances chain to it,
  // which is also what `instanceof` inspects).
  const ObjectRef proto = make_object(ObjectRef(), "Object");
  define_property(proto, atoms_.well_known().constructor, Value(ref));
  define_property(ref, atoms_.well_known().prototype, Value(proto));
  return ref;
}

JsObject& Heap::get(ObjectRef ref) {
  if (ref.null() || ref.index() >= objects_.size()) {
    throw std::out_of_range("Heap::get: bad object reference");
  }
  return *objects_[ref.index()];
}

const JsObject& Heap::get(ObjectRef ref) const {
  if (ref.null() || ref.index() >= objects_.size()) {
    throw std::out_of_range("Heap::get: bad object reference");
  }
  return *objects_[ref.index()];
}

Value Heap::get_property(ObjectRef ref, std::string_view name) const {
  const Atom atom = atoms_.lookup(name);
  if (atom == kNoAtom) return Value();  // never interned => nowhere defined
  return get_property(ref, atom);
}

Value Heap::get_property(ObjectRef ref, Atom atom) const {
  // bounded walk to survive accidental prototype cycles
  for (int depth = 0; depth < 32 && !ref.null(); ++depth) {
    const JsObject& obj = get(ref);
    if (const Value* v = obj.properties.find(atom)) return *v;
    ref = obj.prototype;
  }
  return Value();
}

bool Heap::has_property(ObjectRef ref, std::string_view name) const {
  const Atom atom = atoms_.lookup(name);
  return atom != kNoAtom && has_property(ref, atom);
}

bool Heap::has_property(ObjectRef ref, Atom atom) const {
  for (int depth = 0; depth < 32 && !ref.null(); ++depth) {
    const JsObject& obj = get(ref);
    if (obj.properties.find(atom)) return true;
    ref = obj.prototype;
  }
  return false;
}

void Heap::set_property(ObjectRef ref, std::string_view name, Value value) {
  set_property(ref, atoms_.intern(name), std::move(value));
}

void Heap::set_property(ObjectRef ref, Atom atom, Value value) {
  JsObject& obj = get(ref);
  Value& slot = obj.properties.put(atom);
  slot = std::move(value);
  if (obj.watch) {
    // Copy: a re-entrant write from the handler may grow the slot vector
    // and move `slot` out from under the callback.
    const Value written = slot;
    (*obj.watch)(atoms_.name(atom), written);
  }
}

Value& Heap::define_property(ObjectRef ref, std::string_view name,
                             Value value) {
  return define_property(ref, atoms_.intern(name), std::move(value));
}

Value& Heap::define_property(ObjectRef ref, Atom atom, Value value) {
  Value& slot = get(ref).properties.put(atom);
  slot = std::move(value);
  return slot;
}

Value* Heap::own_property(ObjectRef ref, std::string_view name) {
  const Atom atom = atoms_.lookup(name);
  return atom == kNoAtom ? nullptr : get(ref).properties.find(atom);
}

const Value* Heap::own_property(ObjectRef ref, std::string_view name) const {
  const Atom atom = atoms_.lookup(name);
  return atom == kNoAtom ? nullptr : get(ref).properties.find(atom);
}

Value* Heap::own_property(ObjectRef ref, Atom atom) {
  return get(ref).properties.find(atom);
}

bool Heap::delete_property(ObjectRef ref, std::string_view name) {
  const Atom atom = atoms_.lookup(name);
  return atom != kNoAtom && get(ref).properties.erase(atom);
}

}  // namespace fu::script
