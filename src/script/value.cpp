#include "script/value.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace fu::script {

bool Value::truthy() const {
  if (is_undefined() || is_null()) return false;
  if (is_bool()) return as_bool();
  if (is_number()) {
    const double d = as_number();
    return d != 0 && !std::isnan(d);
  }
  if (is_string()) return !as_string().empty();
  return !as_object().null();
}

double Value::to_number() const {
  if (is_number()) return as_number();
  if (is_bool()) return as_bool() ? 1 : 0;
  if (is_null()) return 0;
  if (is_string()) {
    try {
      std::size_t used = 0;
      const double d = std::stod(as_string(), &used);
      if (used == as_string().size()) return d;
    } catch (const std::exception&) {
    }
    return std::nan("");
  }
  return std::nan("");
}

std::string Value::to_display_string() const {
  if (is_undefined()) return "undefined";
  if (is_null()) return "null";
  if (is_bool()) return as_bool() ? "true" : "false";
  if (is_string()) return as_string();
  if (is_number()) {
    const double d = as_number();
    if (std::isnan(d)) return "NaN";
    if (d == static_cast<double>(static_cast<long long>(d)) &&
        std::fabs(d) < 1e15) {
      return std::to_string(static_cast<long long>(d));
    }
    char buf[32];
    std::snprintf(buf, sizeof buf, "%g", d);
    return buf;
  }
  return "[object]";
}

bool Value::loose_equals(const Value& other) const {
  if (data_.index() == other.data_.index()) return *this == other;
  // cross-type: undefined == null, number-vs-string/bool coercion
  if ((is_undefined() || is_null()) && (other.is_undefined() || other.is_null())) {
    return true;
  }
  if (is_object() || other.is_object()) return false;
  if (is_undefined() || other.is_undefined()) return false;
  const double a = to_number();
  const double b = other.to_number();
  return !std::isnan(a) && !std::isnan(b) && a == b;
}

Heap::Heap() {
  objects_.push_back(nullptr);  // index 0 reserved
}

ObjectRef Heap::make_object(ObjectRef prototype, std::string class_name) {
  auto obj = std::make_unique<JsObject>();
  obj->prototype = prototype;
  obj->class_name = std::move(class_name);
  objects_.push_back(std::move(obj));
  return ObjectRef(static_cast<std::uint32_t>(objects_.size() - 1));
}

ObjectRef Heap::make_function(NativeFn fn, std::string name) {
  const ObjectRef ref = make_object(ObjectRef(), "Function");
  auto callable = std::make_unique<Callable>();
  callable->native = std::move(fn);
  callable->name = std::move(name);
  get(ref).callable = std::move(callable);
  return ref;
}

ObjectRef Heap::make_script_function(std::shared_ptr<const AstFunction> fn,
                                     Environment* closure) {
  const ObjectRef ref = make_object(ObjectRef(), "Function");
  auto callable = std::make_unique<Callable>();
  callable->script = std::move(fn);
  callable->closure = closure;
  get(ref).callable = std::move(callable);
  // Like JavaScript, every script function is a potential constructor and
  // carries a fresh .prototype object (new F() instances chain to it,
  // which is also what `instanceof` inspects).
  const ObjectRef proto = make_object(ObjectRef(), "Object");
  get(proto).properties["constructor"] = Value(ref);
  get(ref).properties["prototype"] = Value(proto);
  return ref;
}

JsObject& Heap::get(ObjectRef ref) {
  if (ref.null() || ref.index() >= objects_.size()) {
    throw std::out_of_range("Heap::get: bad object reference");
  }
  return *objects_[ref.index()];
}

const JsObject& Heap::get(ObjectRef ref) const {
  if (ref.null() || ref.index() >= objects_.size()) {
    throw std::out_of_range("Heap::get: bad object reference");
  }
  return *objects_[ref.index()];
}

Value Heap::get_property(ObjectRef ref, std::string_view name) const {
  // bounded walk to survive accidental prototype cycles
  for (int depth = 0; depth < 32 && !ref.null(); ++depth) {
    const JsObject& obj = get(ref);
    const auto it = obj.properties.find(name);
    if (it != obj.properties.end()) return it->second;
    ref = obj.prototype;
  }
  return Value();
}

bool Heap::has_property(ObjectRef ref, std::string_view name) const {
  for (int depth = 0; depth < 32 && !ref.null(); ++depth) {
    const JsObject& obj = get(ref);
    if (obj.properties.find(name) != obj.properties.end()) return true;
    ref = obj.prototype;
  }
  return false;
}

void Heap::set_property(ObjectRef ref, std::string_view name, Value value) {
  JsObject& obj = get(ref);
  obj.properties[std::string(name)] = std::move(value);
  if (obj.watch) {
    (*obj.watch)(std::string(name), obj.properties[std::string(name)]);
  }
}

}  // namespace fu::script
