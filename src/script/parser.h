// MiniJS recursive-descent parser. Covers the JavaScript subset our
// synthetic pages use: var declarations, functions (declarations and
// expressions, with closures), if/while/for, try/catch, return/break/
// continue, the usual expression grammar with precedence, object/array
// literals, member/index access, calls, `new`, and compound assignment.
#pragma once

#include <string_view>

#include "script/ast.h"
#include "script/lexer.h"

namespace fu::script {

// Parse a full program. Throws SyntaxError on malformed input.
Program parse_program(std::string_view source);

}  // namespace fu::script
