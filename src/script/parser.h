// MiniJS recursive-descent parser. Covers the JavaScript subset our
// synthetic pages use: var declarations, functions (declarations and
// expressions, with closures), if/while/for, try/catch, return/break/
// continue, the usual expression grammar with precedence, object/array
// literals, member/index access, calls, `new`, and compound assignment.
#pragma once

#include <string_view>

#include "script/ast.h"
#include "script/lexer.h"

namespace fu::script {

// Parse a full program. Throws SyntaxError on malformed input.
//
// When `atoms` is given, every identifier, member name, object-literal key
// and parameter list in the tree is interned into it up front and the
// per-site caches are seeded with the atom ids — so an interpreter backed
// by that table never interns on the execution hot path. Pass the table of
// the interpreter that will run the program (sessions pass their
// interpreter's heap table through the site cache).
Program parse_program(std::string_view source, AtomTable* atoms = nullptr);

}  // namespace fu::script
