// MiniJS lexer.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace fu::script {

enum class TokKind {
  kNumber,
  kString,
  kIdentifier,  // includes keywords; parser distinguishes
  kPunct,
  kEof,
};

struct Tok {
  TokKind kind = TokKind::kEof;
  std::string text;
  double number = 0;
  std::size_t line = 1;
};

// Thrown for malformed source; the browser records the page as having a
// script syntax error (one of the §4.3.3 failure modes).
class SyntaxError : public std::runtime_error {
 public:
  SyntaxError(const std::string& message, std::size_t line)
      : std::runtime_error(message + " (line " + std::to_string(line) + ")") {}
};

std::vector<Tok> tokenize(std::string_view source);

}  // namespace fu::script
