// The MiniJS side of the sampling profiler (obs/profiler.h): a lightweight
// frame hook the interpreter enters on every script-function activation, so
// profile stacks continue from pipeline stages into the guest program:
//
//   worker-1;site-visit;execute;script:example0.com/app.js;fn:render
//
// The function's frame label ("fn:<name>", "fn:(anonymous)" when unnamed) is
// interned once and memoized on the AstFunction — label ids are stable for
// the process lifetime, so the memo follows the same single-threaded
// contract as the AST's other mutable caches (sites are the unit of
// parallelism). The source site comes from the enclosing "script:<site>/<js>"
// frame the browser session pushes around each program execution.
//
// With no profiler live, constructing a ScriptCallFrame is one relaxed
// atomic load and a branch (bench_prof_overhead holds this to the ~1 ns
// class of a disabled TraceSpan).
#pragma once

#include <cstdint>

#include "obs/profiler.h"

namespace fu::script {

struct AstFunction;

// Interned profiler label for `fn`, memoized in fn.prof_label.
std::uint32_t prof_label_for(const AstFunction& fn);

class ScriptCallFrame {
 public:
  explicit ScriptCallFrame(const AstFunction& fn) {
    if (obs::prof::enabled()) {
      pushed_ = true;
      obs::prof::push(obs::FrameKind::kScript, prof_label_for(fn));
    }
  }
  ~ScriptCallFrame() {
    if (pushed_) obs::prof::pop();
  }
  ScriptCallFrame(const ScriptCallFrame&) = delete;
  ScriptCallFrame& operator=(const ScriptCallFrame&) = delete;

 private:
  bool pushed_ = false;
};

}  // namespace fu::script
