#include "analysis/metrics.h"

namespace fu::analysis {

namespace {

support::DynamicBitset standards_bitset(const catalog::Catalog& cat,
                                        const support::DynamicBitset& features) {
  support::DynamicBitset out(cat.standard_count());
  for (std::size_t i = 0; i < features.size(); ++i) {
    if (features.test(i)) {
      out.set(cat.feature(static_cast<catalog::FeatureId>(i)).standard);
    }
  }
  return out;
}

}  // namespace

Analysis::Analysis(const crawler::SurveyResults& results)
    : results_(&results), catalog_(&results.web->feature_catalog()) {
  const std::size_t n_features = catalog_->features().size();
  const std::size_t n_standards = catalog_->standard_count();
  for (auto& v : feature_sites_) v.assign(n_features, 0);
  for (auto& v : standard_sites_) v.assign(n_standards, 0);

  for (std::size_t site = 0; site < results.sites.size(); ++site) {
    const crawler::SiteOutcome& outcome = results.sites[site];
    if (!outcome.measured) continue;
    ++measured_sites_;
    measured_indices_.push_back(site);

    for (const crawler::BrowsingConfig config : crawler::kAllConfigs) {
      const auto c = static_cast<std::size_t>(config);
      const support::DynamicBitset& bits = outcome.features[c];
      for (std::size_t f = 0; f < bits.size(); ++f) {
        if (bits.test(f)) ++feature_sites_[c][f];
      }
      const support::DynamicBitset stds = standards_bitset(*catalog_, bits);
      for (std::size_t s = 0; s < stds.size(); ++s) {
        if (stds.test(s)) ++standard_sites_[c][s];
      }
      switch (config) {
        case BrowsingConfig::kDefault:
          site_standards_default_.push_back(stds);
          break;
        case BrowsingConfig::kBlocking:
          site_standards_blocking_.push_back(stds);
          break;
        case BrowsingConfig::kAdOnly:
          site_standards_adonly_.push_back(stds);
          break;
        case BrowsingConfig::kTrackingOnly:
          site_standards_tronly_.push_back(stds);
          break;
      }
    }
  }
}

double Analysis::feature_block_rate(catalog::FeatureId id) const {
  const int by_default = feature_sites(id, BrowsingConfig::kDefault);
  if (by_default == 0) return 0;
  const int blocking = feature_sites(id, BrowsingConfig::kBlocking);
  return 1.0 - static_cast<double>(blocking) / static_cast<double>(by_default);
}

double Analysis::standard_block_rate(catalog::StandardId id,
                                     BrowsingConfig config) const {
  const std::vector<support::DynamicBitset>* with_blocker = nullptr;
  switch (config) {
    case BrowsingConfig::kBlocking: with_blocker = &site_standards_blocking_; break;
    case BrowsingConfig::kAdOnly: with_blocker = &site_standards_adonly_; break;
    case BrowsingConfig::kTrackingOnly: with_blocker = &site_standards_tronly_; break;
    case BrowsingConfig::kDefault: return 0;
  }
  int used_default = 0;
  int fully_blocked = 0;
  for (std::size_t i = 0; i < site_standards_default_.size(); ++i) {
    if (!site_standards_default_[i].test(id)) continue;
    ++used_default;
    if (!(*with_blocker)[i].test(id)) ++fully_blocked;
  }
  if (used_default == 0) return 0;
  return static_cast<double>(fully_blocked) / static_cast<double>(used_default);
}

std::vector<int> Analysis::standards_per_site(BrowsingConfig config) const {
  const std::vector<support::DynamicBitset>* sets = nullptr;
  switch (config) {
    case BrowsingConfig::kDefault: sets = &site_standards_default_; break;
    case BrowsingConfig::kBlocking: sets = &site_standards_blocking_; break;
    case BrowsingConfig::kAdOnly: sets = &site_standards_adonly_; break;
    case BrowsingConfig::kTrackingOnly: sets = &site_standards_tronly_; break;
  }
  std::vector<int> out;
  out.reserve(sets->size());
  for (const support::DynamicBitset& bits : *sets) {
    out.push_back(static_cast<int>(bits.count()));
  }
  return out;
}

double Analysis::standard_site_fraction(catalog::StandardId id) const {
  if (measured_sites_ == 0) return 0;
  return static_cast<double>(standard_sites(id, BrowsingConfig::kDefault)) /
         static_cast<double>(measured_sites_);
}

double Analysis::standard_visit_fraction(catalog::StandardId id) const {
  double used = 0;
  double total = 0;
  for (std::size_t i = 0; i < measured_indices_.size(); ++i) {
    const std::size_t site = measured_indices_[i];
    const double w = results_->web->sites()[site].visit_weight;
    total += w;
    if (site_standards_default_[i].test(id)) used += w;
  }
  return total > 0 ? used / total : 0;
}

Analysis::Headline Analysis::headline() const {
  Headline h;
  h.features_total = static_cast<int>(catalog_->features().size());
  h.standards_total = static_cast<int>(catalog_->standard_count());
  const double one_percent = 0.01 * measured_sites_;

  for (std::size_t f = 0; f < catalog_->features().size(); ++f) {
    const auto fid = static_cast<catalog::FeatureId>(f);
    const int by_default = feature_sites(fid, BrowsingConfig::kDefault);
    const int blocking = feature_sites(fid, BrowsingConfig::kBlocking);
    if (by_default == 0) ++h.features_never_used;
    if (by_default > 0 && by_default < one_percent) ++h.features_under_1pct;
    if (blocking < one_percent) ++h.features_under_1pct_blocking;
    if (by_default > 0 && feature_block_rate(fid) >= 0.9) {
      ++h.features_blocked_90;
    }
  }

  for (std::size_t s = 0; s < catalog_->standard_count(); ++s) {
    const auto sid = static_cast<catalog::StandardId>(s);
    const int by_default = standard_sites(sid, BrowsingConfig::kDefault);
    const int blocking = standard_sites(sid, BrowsingConfig::kBlocking);
    if (by_default == 0) ++h.standards_never_used;
    if (by_default <= one_percent) ++h.standards_under_1pct;
    if (by_default >= 0.9 * measured_sites_) ++h.standards_over_90pct;
    if (blocking == 0) ++h.standards_never_used_blocking;
    if (blocking <= one_percent) ++h.standards_under_1pct_blocking;
    if (by_default > 0 && standard_block_rate(sid) > 0.75) {
      ++h.standards_blocked_75;
    }
  }
  return h;
}

}  // namespace fu::analysis
