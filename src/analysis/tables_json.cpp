#include "analysis/tables_json.h"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "crawler/validate.h"
#include "obs/metrics.h"

namespace fu::analysis {

namespace {

std::string num(double value) {
  // Fixed precision keeps the document deterministic across platforms; six
  // decimals is far below measurement granularity (whole sites).
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6f", value);
  return buf;
}

}  // namespace

std::string tables_json(const Analysis& analysis,
                        const TableOptions& options) {
  const crawler::SurveyResults& results = analysis.results();
  const catalog::Catalog& cat = analysis.catalog();

  std::string out = "{\n";
  out += "  \"options\": {\"table2_min_site_pct\": " +
         num(options.table2_min_site_pct) +
         ", \"table2_min_cves\": " + std::to_string(options.table2_min_cves) +
         "},\n";

  // --- Table 1: crawl summary -------------------------------------------
  out += "  \"table1\": {";
  out += "\"domains_measured\": " + std::to_string(results.sites_measured());
  out += ", \"interaction_seconds\": " +
         std::to_string(results.interaction_seconds());
  out += ", \"pages_visited\": " +
         std::to_string(results.total_pages_visited());
  out += ", \"feature_invocations\": " +
         std::to_string(results.total_invocations());
  out += "},\n";

  // --- Table 2: per-standard popularity and block rate -------------------
  // Same cut and ordering as render_table2, with the cut parameterized.
  const double site_cut =
      options.table2_min_site_pct / 100.0 * analysis.measured_sites();
  struct Row {
    catalog::StandardId id;
    int cves;
    int sites;
  };
  std::vector<Row> rows;
  for (std::size_t s = 0; s < cat.standard_count(); ++s) {
    const auto sid = static_cast<catalog::StandardId>(s);
    const int sites = analysis.standard_sites(sid, BrowsingConfig::kDefault);
    const int cves = cat.cve_count(sid);
    if (sites < site_cut && cves < options.table2_min_cves) continue;
    rows.push_back({sid, cves, sites});
  }
  std::sort(rows.begin(), rows.end(), [&cat](const Row& a, const Row& b) {
    if (a.cves != b.cves) return a.cves > b.cves;
    return cat.standard(a.id).name < cat.standard(b.id).name;
  });

  out += "  \"table2\": {\"measured_sites\": " +
         std::to_string(analysis.measured_sites()) + ", \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const catalog::StandardSpec& spec = cat.standard(rows[i].id);
    out += "    {\"name\": " + obs::json_quote(spec.name) +
           ", \"abbrev\": " + obs::json_quote(spec.abbreviation) +
           ", \"features\": " + std::to_string(spec.feature_count) +
           ", \"sites\": " + std::to_string(rows[i].sites) +
           ", \"block_rate\": " +
           num(analysis.standard_block_rate(rows[i].id)) +
           ", \"cves\": " + std::to_string(rows[i].cves) + "}";
    out += i + 1 < rows.size() ? ",\n" : "\n";
  }
  out += "  ]},\n";

  // --- Table 3: new standards per crawl round ----------------------------
  const std::vector<double> rounds = crawler::new_standards_per_round(results);
  out += "  \"table3\": {\"rounds\": [";
  for (std::size_t r = 1; r < rounds.size(); ++r) {
    out += "{\"round\": " + std::to_string(r + 1) +
           ", \"avg_new_standards\": " + num(rounds[r]) + "}";
    if (r + 1 < rounds.size()) out += ", ";
  }
  out += "]}\n";
  out += "}\n";
  return out;
}

std::optional<std::string> tables_from_shards(
    const net::SyntheticWeb& web, const crawler::SurveyOptions& options,
    const std::string& dir, const TableOptions& tables) {
  const std::optional<crawler::SurveyResults> results =
      crawler::results_from_shards(web, options, dir);
  if (!results) return std::nullopt;
  const Analysis analysis(*results);
  return tables_json(analysis, tables);
}

}  // namespace fu::analysis
