// Report exporter: writes every regenerated artifact to a directory —
// the rendered tables/figures as text, the figure data as CSV (ready for a
// plotting tool), and the catalog as features.csv / standards.csv / cves.csv.
#pragma once

#include <string>

#include "analysis/metrics.h"
#include "crawler/validate.h"

namespace fu::analysis {

struct ReportOptions {
  bool include_external_validation = true;  // runs extra human-model crawls
};

// Writes the report into `directory` (created if needed). Returns the number
// of files written; throws std::runtime_error on I/O failure.
int write_report(const std::string& directory, const Analysis& analysis,
                 const ReportOptions& options = {});

// Individual CSV emitters (also used by the full report).
// One row per failed site: domain, attempts consumed, and the contained
// error — the survey completes despite them, so this is where an operator
// finds out which sites never contributed data and why.
std::string failures_csv(const crawler::SurveyResults& survey);
std::string features_csv(const Analysis& analysis);
std::string standards_csv(const Analysis& analysis);
std::string cves_csv(const catalog::Catalog& catalog);
std::string fig3_csv(const Analysis& analysis);
std::string fig4_csv(const Analysis& analysis);
std::string fig5_csv(const Analysis& analysis);
std::string fig6_csv(const Analysis& analysis);
std::string fig7_csv(const Analysis& analysis);
std::string fig8_csv(const Analysis& analysis);

}  // namespace fu::analysis
