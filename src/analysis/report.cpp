#include "analysis/report.h"

#include <algorithm>
#include <filesystem>
#include <functional>
#include <fstream>
#include <map>
#include <sstream>

#include "analysis/tables.h"
#include "catalog/growth.h"
#include "support/csv.h"

namespace fu::analysis {

namespace {

using support::CsvWriter;

std::string render_csv(
    const std::vector<std::string>& header,
    const std::function<void(CsvWriter&)>& body) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.write_row(header);
  body(writer);
  return out.str();
}

}  // namespace

std::string failures_csv(const crawler::SurveyResults& survey) {
  return render_csv({"domain", "attempts", "error"}, [&](CsvWriter& w) {
    for (std::size_t i = 0; i < survey.sites.size(); ++i) {
      const crawler::SiteOutcome& outcome = survey.sites[i];
      if (!outcome.failed) continue;
      w.row(survey.web->sites()[i].domain, outcome.attempts, outcome.error);
    }
  });
}

std::string features_csv(const Analysis& analysis) {
  const catalog::Catalog& cat = analysis.catalog();
  return render_csv(
      {"feature", "standard", "kind", "first_firefox_version",
       "implemented", "sites_default", "sites_blocking", "block_rate"},
      [&](CsvWriter& w) {
        for (const catalog::Feature& f : cat.features()) {
          w.row(f.full_name, cat.standard(f.standard).abbreviation,
                f.kind == catalog::FeatureKind::kMethod ? "method"
                                                        : "property",
                f.first_version, f.implemented.to_string(),
                analysis.feature_sites(f.id, BrowsingConfig::kDefault),
                analysis.feature_sites(f.id, BrowsingConfig::kBlocking),
                analysis.feature_block_rate(f.id));
        }
      });
}

std::string standards_csv(const Analysis& analysis) {
  const catalog::Catalog& cat = analysis.catalog();
  return render_csv(
      {"standard", "abbreviation", "features", "introduced", "sites_default",
       "sites_blocking", "block_rate", "ad_block_rate", "tracking_block_rate",
       "cves"},
      [&](CsvWriter& w) {
        for (std::size_t s = 0; s < cat.standard_count(); ++s) {
          const auto sid = static_cast<catalog::StandardId>(s);
          const catalog::StandardSpec& spec = cat.standard(sid);
          w.row(spec.name, spec.abbreviation, spec.feature_count,
                cat.standard_implementation_date(sid).to_string(),
                analysis.standard_sites(sid, BrowsingConfig::kDefault),
                analysis.standard_sites(sid, BrowsingConfig::kBlocking),
                analysis.standard_block_rate(sid),
                analysis.standard_block_rate(sid, BrowsingConfig::kAdOnly),
                analysis.standard_block_rate(sid,
                                             BrowsingConfig::kTrackingOnly),
                cat.cve_count(sid));
        }
      });
}

std::string cves_csv(const catalog::Catalog& cat) {
  return render_csv({"cve", "year", "standard", "summary"}, [&](CsvWriter& w) {
    for (const catalog::Cve& cve : cat.cves()) {
      w.row(cve.id, cve.year,
            cve.standard == catalog::kInvalidStandard
                ? std::string("unattributed")
                : cat.standard(cve.standard).abbreviation,
            cve.summary);
    }
  });
}

std::string fig3_csv(const Analysis& analysis) {
  const catalog::Catalog& cat = analysis.catalog();
  std::vector<int> counts;
  for (std::size_t s = 0; s < cat.standard_count(); ++s) {
    counts.push_back(analysis.standard_sites(
        static_cast<catalog::StandardId>(s), BrowsingConfig::kDefault));
  }
  std::sort(counts.begin(), counts.end());
  return render_csv({"sites_using_standard", "portion_of_standards"},
                    [&](CsvWriter& w) {
                      for (std::size_t i = 0; i < counts.size(); ++i) {
                        w.row(counts[i],
                              static_cast<double>(i + 1) /
                                  static_cast<double>(counts.size()));
                      }
                    });
}

std::string fig4_csv(const Analysis& analysis) {
  const catalog::Catalog& cat = analysis.catalog();
  return render_csv(
      {"abbreviation", "sites", "block_rate"}, [&](CsvWriter& w) {
        for (std::size_t s = 0; s < cat.standard_count(); ++s) {
          const auto sid = static_cast<catalog::StandardId>(s);
          const int sites =
              analysis.standard_sites(sid, BrowsingConfig::kDefault);
          if (sites == 0) continue;
          w.row(cat.standard(sid).abbreviation, sites,
                analysis.standard_block_rate(sid));
        }
      });
}

std::string fig5_csv(const Analysis& analysis) {
  const catalog::Catalog& cat = analysis.catalog();
  return render_csv(
      {"abbreviation", "portion_of_sites", "portion_of_visits"},
      [&](CsvWriter& w) {
        for (std::size_t s = 0; s < cat.standard_count(); ++s) {
          const auto sid = static_cast<catalog::StandardId>(s);
          if (analysis.standard_sites(sid, BrowsingConfig::kDefault) == 0) {
            continue;
          }
          w.row(cat.standard(sid).abbreviation,
                analysis.standard_site_fraction(sid),
                analysis.standard_visit_fraction(sid));
        }
      });
}

std::string fig6_csv(const Analysis& analysis) {
  const catalog::Catalog& cat = analysis.catalog();
  return render_csv(
      {"abbreviation", "introduced_year", "sites", "block_rate"},
      [&](CsvWriter& w) {
        for (std::size_t s = 0; s < cat.standard_count(); ++s) {
          const auto sid = static_cast<catalog::StandardId>(s);
          w.row(cat.standard(sid).abbreviation,
                cat.standard_implementation_date(sid).fractional_year(),
                analysis.standard_sites(sid, BrowsingConfig::kDefault),
                analysis.standard_block_rate(sid));
        }
      });
}

std::string fig7_csv(const Analysis& analysis) {
  const catalog::Catalog& cat = analysis.catalog();
  return render_csv(
      {"abbreviation", "sites", "ad_block_rate", "tracking_block_rate"},
      [&](CsvWriter& w) {
        for (std::size_t s = 0; s < cat.standard_count(); ++s) {
          const auto sid = static_cast<catalog::StandardId>(s);
          const int sites =
              analysis.standard_sites(sid, BrowsingConfig::kDefault);
          if (sites == 0) continue;
          w.row(cat.standard(sid).abbreviation, sites,
                analysis.standard_block_rate(sid, BrowsingConfig::kAdOnly),
                analysis.standard_block_rate(sid,
                                             BrowsingConfig::kTrackingOnly));
        }
      });
}

std::string fig8_csv(const Analysis& analysis) {
  std::map<int, int> histogram;
  const std::vector<int> complexity = analysis.standards_per_site();
  for (const int c : complexity) ++histogram[c];
  return render_csv({"standards_used", "portion_of_sites"},
                    [&](CsvWriter& w) {
                      for (const auto& [count, sites] : histogram) {
                        w.row(count, static_cast<double>(sites) /
                                         static_cast<double>(
                                             complexity.size()));
                      }
                    });
}

int write_report(const std::string& directory, const Analysis& analysis,
                 const ReportOptions& options) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(directory, ec);
  if (ec) throw std::runtime_error("write_report: cannot create " + directory);

  int written = 0;
  const auto emit = [&](const std::string& name, const std::string& body) {
    std::ofstream out(fs::path(directory) / name,
                      std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("write_report: cannot write " + name);
    out << body;
    ++written;
  };

  const crawler::SurveyResults& survey = analysis.results();
  emit("table1.txt", render_table1(survey));
  emit("table2.txt", render_table2(analysis));
  emit("table3.txt", render_table3(survey));
  emit("fig1.txt", render_fig1(analysis.catalog()));
  emit("fig3.txt", render_fig3(analysis));
  emit("fig4.txt", render_fig4(analysis));
  emit("fig5.txt", render_fig5(analysis));
  emit("fig6.txt", render_fig6(analysis));
  emit("fig7.txt", render_fig7(analysis));
  emit("fig8.txt", render_fig8(analysis));
  emit("headline.txt", render_headline(analysis));

  emit("failures.csv", failures_csv(survey));
  emit("features.csv", features_csv(analysis));
  emit("standards.csv", standards_csv(analysis));
  emit("cves.csv", cves_csv(analysis.catalog()));
  emit("fig3.csv", fig3_csv(analysis));
  emit("fig4.csv", fig4_csv(analysis));
  emit("fig5.csv", fig5_csv(analysis));
  emit("fig6.csv", fig6_csv(analysis));
  emit("fig7.csv", fig7_csv(analysis));
  emit("fig8.csv", fig8_csv(analysis));

  if (options.include_external_validation) {
    const crawler::ExternalValidation validation =
        crawler::run_external_validation(survey);
    emit("fig9.txt", render_fig9(validation));
  }
  return written;
}

}  // namespace fu::analysis
