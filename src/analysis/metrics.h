// Post-survey analysis: feature/standard popularity, block rates, site
// complexity, visit weighting — the quantities behind every table and figure
// in §5. All metrics are computed from the measured survey results; nothing
// is read back from the catalog's calibration targets.
#pragma once

#include <array>
#include <vector>

#include "catalog/catalog.h"
#include "crawler/survey.h"

namespace fu::analysis {

using crawler::BrowsingConfig;

class Analysis {
 public:
  explicit Analysis(const crawler::SurveyResults& results);

  const crawler::SurveyResults& results() const noexcept { return *results_; }
  const catalog::Catalog& catalog() const noexcept { return *catalog_; }
  int measured_sites() const noexcept { return measured_sites_; }

  // --- feature level ----------------------------------------------------
  int feature_sites(catalog::FeatureId id, BrowsingConfig config) const {
    return feature_sites_[static_cast<std::size_t>(config)][id];
  }
  // 1 - blocking/default over sites, the paper's "block rate" for features;
  // 0 when the feature is unused by default.
  double feature_block_rate(catalog::FeatureId id) const;

  // --- standard level -----------------------------------------------------
  int standard_sites(catalog::StandardId id, BrowsingConfig config) const {
    return standard_sites_[static_cast<std::size_t>(config)][id];
  }
  // Table 2 definition: of the sites that used the standard by default, the
  // fraction where *no* feature of it executed under the given blocking
  // configuration.
  double standard_block_rate(catalog::StandardId id,
                             BrowsingConfig config = BrowsingConfig::kBlocking)
      const;

  // --- distributions ------------------------------------------------------
  // Number of distinct standards used per measured site (Figure 8).
  std::vector<int> standards_per_site(
      BrowsingConfig config = BrowsingConfig::kDefault) const;

  // Fraction of measured sites using the standard (x-axis of Figure 5).
  double standard_site_fraction(catalog::StandardId id) const;
  // Fraction of *visits* (Alexa-weighted) using the standard (y-axis).
  double standard_visit_fraction(catalog::StandardId id) const;

  // --- headline numbers (§5.3, §7.1, §7.2) --------------------------------
  struct Headline {
    int features_total = 0;
    int features_never_used = 0;        // paper: 689
    int features_under_1pct = 0;        // used but <1% of sites (paper: 416)
    int features_under_1pct_blocking = 0;  // <1% with blockers (paper: 1,159)
    int features_blocked_90 = 0;        // block rate >= 90% (paper: ~10%)
    int standards_total = 0;
    int standards_over_90pct = 0;       // paper: 6
    int standards_under_1pct = 0;       // paper: 28
    int standards_never_used = 0;       // paper: 11
    int standards_never_used_blocking = 0;   // paper: 15
    int standards_under_1pct_blocking = 0;   // paper: 31
    int standards_blocked_75 = 0;            // paper: 16
  };
  Headline headline() const;

 private:
  const crawler::SurveyResults* results_;
  const catalog::Catalog* catalog_;
  int measured_sites_ = 0;
  // [config][feature] -> #measured sites using it
  std::array<std::vector<int>, 4> feature_sites_;
  // [config][standard] -> #measured sites using >=1 feature of it
  std::array<std::vector<int>, 4> standard_sites_;
  // per measured site: standards used by default / blocking (bitsets)
  std::vector<support::DynamicBitset> site_standards_default_;
  std::vector<support::DynamicBitset> site_standards_blocking_;
  std::vector<support::DynamicBitset> site_standards_adonly_;
  std::vector<support::DynamicBitset> site_standards_tronly_;
  std::vector<std::size_t> measured_indices_;  // into results_->sites
};

}  // namespace fu::analysis
