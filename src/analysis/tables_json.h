// Tables 1–3 as JSON — the survey daemon's answer format.
//
// The text renderers in tables.h stay exactly as they are (they regenerate
// the paper's artifacts); this module renders the same quantities as one
// machine-readable document, and — the daemon's warm path — can do so
// straight from a survey's checkpoint shards without recrawling.
//
// TableOptions are *analysis-layer* parameters: they shape which rows a
// table shows, never what was measured, so they are deliberately outside
// SurveyKey. Two requests differing only here share one crawl.
#pragma once

#include <optional>
#include <string>

#include "analysis/metrics.h"
#include "crawler/serialize.h"

namespace fu::analysis {

struct TableOptions {
  // Table 2's inclusion cut, the paper's "used on at least 1% of sites or
  // with >= 1 CVE in the last three years". Lowering the percentage widens
  // the table; raising min_cves narrows the CVE side of the OR.
  double table2_min_site_pct = 1.0;
  int table2_min_cves = 1;
};

// One JSON document holding tables 1–3 plus the options that shaped them:
//   {"options": {...}, "table1": {...}, "table2": {"rows": [...]},
//    "table3": {"rounds": [...]}}
// Table 2 rows carry name/abbrev/features/sites/block_rate/cves in the
// paper's ordering (CVEs descending, then name).
std::string tables_json(const Analysis& analysis,
                        const TableOptions& options = {});

// The warm-shard path: rebuild SurveyResults from the checkpoint shards in
// `dir` (crawler::results_from_shards) and render tables_json from them.
// nullopt when the shards do not fully cover the survey key_for(web,
// options) describes — the caller must crawl instead. Because shard decode
// reproduces SiteOutcomes bit-for-bit, the JSON is byte-identical to what a
// fresh crawl would have produced.
std::optional<std::string> tables_from_shards(
    const net::SyntheticWeb& web, const crawler::SurveyOptions& options,
    const std::string& dir, const TableOptions& tables = {});

}  // namespace fu::analysis
