// Text renderers: regenerate each of the paper's tables and figures as
// aligned text (figures become their underlying data series plus an ASCII
// sketch). One bench binary per artifact calls one renderer.
#pragma once

#include <string>

#include "analysis/metrics.h"
#include "crawler/validate.h"

namespace fu::analysis {

// Table 1: crawl summary (domains measured, interaction time, pages visited,
// feature invocations).
std::string render_table1(const crawler::SurveyResults& results);

// Table 2: per-standard features/sites/block-rate/CVEs, for standards used
// on >= 1% of sites or with >= 1 CVE, in the paper's ordering.
std::string render_table2(const Analysis& analysis);

// Table 3: average number of new standards per measurement round.
std::string render_table3(const crawler::SurveyResults& results);

// Figure 1: standards available and browser MLoC over time.
std::string render_fig1(const catalog::Catalog& catalog);

// Figure 3: cumulative distribution of standard popularity.
std::string render_fig3(const Analysis& analysis);

// Figure 4: standard popularity (log scale) vs block rate, labelled points.
std::string render_fig4(const Analysis& analysis);

// Figure 5: portion of sites vs portion of visits per standard.
std::string render_fig5(const Analysis& analysis);

// Figure 6: standard introduction date vs popularity, block-rate banded.
std::string render_fig6(const Analysis& analysis);

// Figure 7: ad-only vs tracking-only block rates per standard.
std::string render_fig7(const Analysis& analysis);

// Figure 8: probability density of standards-used-per-site.
std::string render_fig8(const Analysis& analysis);

// Figure 9: external-validation histogram (new standards seen by a human).
std::string render_fig9(const crawler::ExternalValidation& validation);

// §5.3 headline claims, paper vs measured.
std::string render_headline(const Analysis& analysis);

// Deep-dive for one standard: metadata, CVEs, and a per-feature table of
// measured popularity and block rates. Empty string when the abbreviation
// is unknown.
std::string render_standard_detail(const Analysis& analysis,
                                   std::string_view abbreviation);

}  // namespace fu::analysis
