#include "analysis/tables.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <numeric>

#include "catalog/growth.h"
#include "support/stats.h"
#include "support/strings.h"

namespace fu::analysis {

namespace {

using support::percent;
using support::with_commas;

std::string fmt(const char* format, ...) {
  char buf[512];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof buf, format, args);
  va_end(args);
  return buf;
}

}  // namespace

std::string render_table1(const crawler::SurveyResults& results) {
  std::string out;
  out += "Table 1: Amount of data gathered regarding JavaScript feature "
         "usage\n";
  out += "------------------------------------------------------------\n";
  const double days =
      static_cast<double>(results.interaction_seconds()) / 86400.0;
  out += fmt("%-34s %s\n", "Domains measured",
             with_commas(static_cast<unsigned long long>(
                 results.sites_measured())).c_str());
  out += fmt("%-34s %.0f days\n", "Total website interaction time", days);
  out += fmt("%-34s %s\n", "Web pages visited",
             with_commas(results.total_pages_visited()).c_str());
  out += fmt("%-34s %s\n", "Feature invocations recorded",
             with_commas(results.total_invocations()).c_str());
  return out;
}

std::string render_table2(const Analysis& analysis) {
  const catalog::Catalog& cat = analysis.catalog();
  const double one_percent = 0.01 * analysis.measured_sites();

  struct Row {
    catalog::StandardId id;
    int cves;
    int sites;
  };
  std::vector<Row> rows;
  for (std::size_t s = 0; s < cat.standard_count(); ++s) {
    const auto sid = static_cast<catalog::StandardId>(s);
    const int sites = analysis.standard_sites(sid, BrowsingConfig::kDefault);
    const int cves = cat.cve_count(sid);
    if (sites < one_percent && cves == 0) continue;  // the paper's cut
    rows.push_back({sid, cves, sites});
  }
  // The paper orders by CVE count (descending), then by standard name.
  std::sort(rows.begin(), rows.end(), [&cat](const Row& a, const Row& b) {
    if (a.cves != b.cves) return a.cves > b.cves;
    return cat.standard(a.id).name < cat.standard(b.id).name;
  });

  std::string out;
  out += "Table 2: Popularity and block rate for web standards used on at "
         "least 1%\nof sites or with >= 1 CVE in the last three years\n";
  out += fmt("%-52s %-8s %9s %8s %11s %6s\n", "Standard", "Abbrev",
             "#Features", "#Sites", "Block rate", "#CVEs");
  out += std::string(98, '-') + "\n";
  for (const Row& row : rows) {
    const catalog::StandardSpec& spec = cat.standard(row.id);
    out += fmt("%-52s %-8s %9d %8d %10s %6d\n", spec.name.c_str(),
               spec.abbreviation.c_str(), spec.feature_count, row.sites,
               percent(analysis.standard_block_rate(row.id)).c_str(),
               row.cves);
  }
  return out;
}

std::string render_table3(const crawler::SurveyResults& results) {
  const std::vector<double> rounds = crawler::new_standards_per_round(results);
  std::string out;
  out += "Table 3: Average number of new standards encountered on each\n"
         "subsequent automated crawl of a domain\n";
  out += fmt("%-10s %s\n", "Round #", "Avg. New Standards");
  out += std::string(32, '-') + "\n";
  for (std::size_t r = 1; r < rounds.size(); ++r) {
    out += fmt("%-10zu %.2f\n", r + 1, rounds[r]);
  }
  return out;
}

std::string render_fig1(const catalog::Catalog& catalog) {
  std::string out;
  out += "Figure 1: Feature families and lines of code in popular browsers "
         "over time\n\n";
  out += "Standards available in Firefox by year:\n";
  for (const auto& [year, count] : catalog::standards_by_year(catalog)) {
    out += fmt("  %d  %3d  |%s\n", year, count,
               std::string(static_cast<std::size_t>(count) / 2, '#').c_str());
  }
  out += "\nBrowser code size (million lines):\n";
  out += fmt("  %-8s", "year");
  const auto& series = catalog::browser_loc_history();
  for (const auto& browser : series) {
    out += fmt(" %8s", browser.browser.c_str());
  }
  out += "\n";
  for (std::size_t i = 0; i < series.front().samples.size(); ++i) {
    out += fmt("  %-8.2f", series.front().samples[i].year);
    for (const auto& browser : series) {
      out += fmt(" %8.1f", browser.samples[i].million_loc);
    }
    out += "\n";
  }
  out += "\n(Note the Chrome drop in mid-2013: the Blink fork removed ~8.8M "
         "lines of WebKit code.)\n";
  return out;
}

std::string render_fig3(const Analysis& analysis) {
  const catalog::Catalog& cat = analysis.catalog();
  std::vector<int> counts;
  for (std::size_t s = 0; s < cat.standard_count(); ++s) {
    counts.push_back(analysis.standard_sites(
        static_cast<catalog::StandardId>(s), BrowsingConfig::kDefault));
  }
  std::sort(counts.begin(), counts.end());

  std::string out;
  out += "Figure 3: Cumulative distribution of standard popularity\n";
  out += fmt("%-18s %-22s %s\n", "Sites using std", "Portion of standards",
             "");
  out += std::string(60, '-') + "\n";
  const int n = analysis.measured_sites();
  for (const double q : {0.0, 0.0001, 0.001, 0.01, 0.05, 0.10, 0.25, 0.50,
                         0.75, 0.90, 1.0}) {
    const double threshold = q * n;
    const auto below = static_cast<double>(std::count_if(
        counts.begin(), counts.end(),
        [threshold](int c) { return c <= threshold; }));
    const double portion = below / static_cast<double>(counts.size());
    out += fmt("%-18.0f %-10s |%s\n", threshold, percent(portion).c_str(),
               support::ascii_bar(portion, 36).c_str());
  }
  return out;
}

std::string render_fig4(const Analysis& analysis) {
  const catalog::Catalog& cat = analysis.catalog();
  struct Row {
    catalog::StandardId id;
    int sites;
    double block;
  };
  std::vector<Row> rows;
  for (std::size_t s = 0; s < cat.standard_count(); ++s) {
    const auto sid = static_cast<catalog::StandardId>(s);
    const int sites = analysis.standard_sites(sid, BrowsingConfig::kDefault);
    if (sites == 0) continue;  // log-scale plot cannot show zero
    rows.push_back({sid, sites, analysis.standard_block_rate(sid)});
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.sites > b.sites; });

  std::string out;
  out += "Figure 4: Popularity of standards versus their block rate (log "
         "scale)\n";
  out += fmt("%-9s %8s %11s  %s\n", "Standard", "Sites", "Block rate",
             "quadrant");
  out += std::string(64, '-') + "\n";
  const double mid_sites = 0.05 * analysis.measured_sites();
  for (const Row& row : rows) {
    const char* quadrant =
        row.sites >= mid_sites
            ? (row.block < 0.5 ? "popular, unblocked" : "popular, blocked")
            : (row.block < 0.5 ? "unpopular, unblocked"
                               : "unpopular, blocked");
    out += fmt("%-9s %8d %10s  %s\n",
               cat.standard(row.id).abbreviation.c_str(), row.sites,
               percent(row.block).c_str(), quadrant);
  }
  return out;
}

std::string render_fig5(const Analysis& analysis) {
  const catalog::Catalog& cat = analysis.catalog();
  std::string out;
  out += "Figure 5: Portion of all websites vs portion of all website "
         "visits using each standard\n";
  out += fmt("%-9s %12s %12s %10s\n", "Standard", "% of sites", "% of visits",
             "delta");
  out += std::string(48, '-') + "\n";

  struct Row {
    catalog::StandardId id;
    double sites;
    double visits;
  };
  std::vector<Row> rows;
  for (std::size_t s = 0; s < cat.standard_count(); ++s) {
    const auto sid = static_cast<catalog::StandardId>(s);
    const double site_frac = analysis.standard_site_fraction(sid);
    if (site_frac <= 0) continue;
    rows.push_back({sid, site_frac, analysis.standard_visit_fraction(sid)});
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.sites > b.sites; });
  for (const Row& row : rows) {
    out += fmt("%-9s %11s %11s %+9.1f%%\n",
               cat.standard(row.id).abbreviation.c_str(),
               percent(row.sites).c_str(), percent(row.visits).c_str(),
               (row.visits - row.sites) * 100.0);
  }
  return out;
}

std::string render_fig6(const Analysis& analysis) {
  const catalog::Catalog& cat = analysis.catalog();
  std::string out;
  out += "Figure 6: Standard availability date vs popularity, by block "
         "rate band\n";
  out += fmt("%-9s %-12s %8s  %s\n", "Standard", "Introduced", "Sites",
             "block-rate band");
  out += std::string(56, '-') + "\n";

  struct Row {
    catalog::StandardId id;
    support::Date date;
    int sites;
    double block;
  };
  std::vector<Row> rows;
  for (std::size_t s = 0; s < cat.standard_count(); ++s) {
    const auto sid = static_cast<catalog::StandardId>(s);
    rows.push_back({sid, cat.standard_implementation_date(sid),
                    analysis.standard_sites(sid, BrowsingConfig::kDefault),
                    analysis.standard_block_rate(sid)});
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.date < b.date; });
  for (const Row& row : rows) {
    const char* band = row.block < 1.0 / 3 ? "block rate < 33%"
                       : row.block < 2.0 / 3 ? "33% < block rate < 66%"
                                             : "66% < block rate";
    out += fmt("%-9s %-12s %8d  %s\n",
               cat.standard(row.id).abbreviation.c_str(),
               row.date.to_string().c_str(), row.sites, band);
  }
  return out;
}

std::string render_fig7(const Analysis& analysis) {
  const catalog::Catalog& cat = analysis.catalog();
  std::string out;
  out += "Figure 7: Block rate with only an ad blocker vs only a tracking "
         "blocker\n";
  out += fmt("%-9s %8s %15s %20s\n", "Standard", "Sites", "Ad block rate",
             "Tracking block rate");
  out += std::string(58, '-') + "\n";

  struct Row {
    catalog::StandardId id;
    int sites;
    double ad;
    double tracking;
  };
  std::vector<Row> rows;
  for (std::size_t s = 0; s < cat.standard_count(); ++s) {
    const auto sid = static_cast<catalog::StandardId>(s);
    const int sites = analysis.standard_sites(sid, BrowsingConfig::kDefault);
    if (sites == 0) continue;
    rows.push_back({sid, sites,
                    analysis.standard_block_rate(sid, BrowsingConfig::kAdOnly),
                    analysis.standard_block_rate(
                        sid, BrowsingConfig::kTrackingOnly)});
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.tracking - a.ad > b.tracking - b.ad;
  });
  for (const Row& row : rows) {
    out += fmt("%-9s %8d %14s %19s\n",
               cat.standard(row.id).abbreviation.c_str(), row.sites,
               percent(row.ad).c_str(), percent(row.tracking).c_str());
  }
  return out;
}

std::string render_fig8(const Analysis& analysis) {
  const std::vector<int> complexity = analysis.standards_per_site();
  std::map<int, int> histogram;
  for (const int c : complexity) ++histogram[c];

  std::string out;
  out += "Figure 8: Probability density of number of standards used per "
         "site\n";
  out += fmt("%-10s %-10s %s\n", "Standards", "Portion", "");
  out += std::string(60, '-') + "\n";
  const int max_used =
      histogram.empty() ? 0 : histogram.rbegin()->first;
  for (int bucket = 0; bucket <= max_used; ++bucket) {
    const auto it = histogram.find(bucket);
    const double portion =
        it == histogram.end()
            ? 0.0
            : static_cast<double>(it->second) /
                  static_cast<double>(complexity.size());
    out += fmt("%-10d %-9s |%s\n", bucket, percent(portion).c_str(),
               support::ascii_bar(portion * 10, 40).c_str());
  }
  if (!complexity.empty()) {
    std::vector<double> values(complexity.begin(), complexity.end());
    out += fmt("\nmedian %.0f, p10 %.0f, p90 %.0f, max %d\n",
               support::percentile(values, 50), support::percentile(values, 10),
               support::percentile(values, 90),
               *std::max_element(complexity.begin(), complexity.end()));
  }
  return out;
}

std::string render_fig9(const crawler::ExternalValidation& validation) {
  std::map<int, int> histogram;
  for (const int n : validation.new_standards_per_domain) ++histogram[n];

  std::string out;
  out += "Figure 9: Number of new standards observed during manual "
         "interaction\nthat automated crawling missed\n";
  out += fmt("%-22s %s\n", "New standards seen", "Number of domains");
  out += std::string(44, '-') + "\n";
  for (const auto& [count, domains] : histogram) {
    out += fmt("%-22d %d\n", count, domains);
  }
  out += fmt("\n%d domains evaluated; nothing new on %s of them (paper: "
             "83.7%%)\n",
             validation.domains_evaluated,
             percent(validation.fraction_nothing_new()).c_str());
  return out;
}

std::string render_standard_detail(const Analysis& analysis,
                                   std::string_view abbreviation) {
  const catalog::Catalog& cat = analysis.catalog();
  const catalog::StandardId sid = cat.standard_by_abbreviation(abbreviation);
  if (sid == catalog::kInvalidStandard) return "";
  const catalog::StandardSpec& spec = cat.standard(sid);

  std::string out;
  out += spec.name + " (" + spec.abbreviation + ")\n";
  out += std::string(spec.name.size() + spec.abbreviation.size() + 3, '=') +
         "\n";
  out += fmt("introduced:        %s (most popular feature's first release, "
             "§3.4)\n",
             cat.standard_implementation_date(sid).to_string().c_str());
  out += fmt("sites (default):   %d of %d measured (%s)\n",
             analysis.standard_sites(sid, BrowsingConfig::kDefault),
             analysis.measured_sites(),
             percent(analysis.standard_site_fraction(sid)).c_str());
  out += fmt("sites (blocking):  %d\n",
             analysis.standard_sites(sid, BrowsingConfig::kBlocking));
  out += fmt("block rate:        %s combined, %s ad-only, %s tracking-only\n",
             percent(analysis.standard_block_rate(sid)).c_str(),
             percent(analysis.standard_block_rate(sid,
                                                  BrowsingConfig::kAdOnly))
                 .c_str(),
             percent(analysis.standard_block_rate(
                         sid, BrowsingConfig::kTrackingOnly))
                 .c_str());
  out += fmt("visit share:       %s of Alexa-weighted page views\n",
             percent(analysis.standard_visit_fraction(sid)).c_str());

  out += fmt("CVEs (2013-2016):  %d\n", cat.cve_count(sid));
  for (const catalog::Cve& cve : cat.cves()) {
    if (cve.standard == sid) {
      out += "  " + cve.id + "  " + cve.summary + "\n";
    }
  }

  out += fmt("\n%-52s %8s %8s %11s\n", "feature", "default", "blocked",
             "block rate");
  out += std::string(84, '-') + "\n";
  for (const catalog::FeatureId fid : cat.features_of(sid)) {
    const catalog::Feature& f = cat.feature(fid);
    const int by_default = analysis.feature_sites(fid, BrowsingConfig::kDefault);
    out += fmt("%-52s %8d %8d %10s\n", f.full_name.c_str(), by_default,
               analysis.feature_sites(fid, BrowsingConfig::kBlocking),
               by_default == 0
                   ? "-"
                   : percent(analysis.feature_block_rate(fid)).c_str());
  }
  return out;
}

std::string render_headline(const Analysis& analysis) {
  const Analysis::Headline h = analysis.headline();
  std::string out;
  out += "Headline claims (§5.3 / §7.1 / §7.2), paper vs measured\n";
  out += std::string(72, '-') + "\n";
  const auto line = [&](const char* what, int paper, int measured) {
    out += fmt("%-52s %8d %8d\n", what, paper, measured);
  };
  out += fmt("%-52s %8s %8s\n", "", "paper", "ours");
  line("features in the browser", 1392, h.features_total);
  line("features never used", 689, h.features_never_used);
  line("features used on <1% of sites", 416, h.features_under_1pct);
  line("features <1% of sites under blocking", 1159,
       h.features_under_1pct_blocking);
  line("features blocked >=90% of the time", 139, h.features_blocked_90);
  line("standards measured", 75, h.standards_total);
  line("standards used on >90% of sites", 6, h.standards_over_90pct);
  line("standards used on <=1% of sites", 28, h.standards_under_1pct);
  line("standards never used", 11, h.standards_never_used);
  line("standards never used under blocking", 15,
       h.standards_never_used_blocking);
  line("standards <=1% of sites under blocking", 31,
       h.standards_under_1pct_blocking);
  line("standards blocked >75% of the time", 16, h.standards_blocked_75);
  return out;
}

}  // namespace fu::analysis
