// CSS selector engine (the subset real blocking lists and page scripts
// lean on):
//
//   tag            div
//   #id            #main
//   .class         .ad-slot
//   compound       div.ad-slot#main  [attr] a[href] input[type="text"]
//   attribute      [data-x] [type=text] [href^="http"] [class~="a"]
//   descendant     nav a
//   child          ul > li
//   selector list  a, button, .cta
//
// Used by Document.querySelector/querySelectorAll bindings and by the
// blockers' element-hiding rules.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "dom/node.h"

namespace fu::dom {

// One "[attr op value]" test.
struct AttributeTest {
  enum class Op {
    kPresent,    // [attr]
    kEquals,     // [attr=v]
    kPrefix,     // [attr^=v]
    kSuffix,     // [attr$=v]
    kContains,   // [attr*=v]
    kWord,       // [attr~=v] (whitespace-separated word)
  };
  std::string name;
  Op op = Op::kPresent;
  std::string value;
};

// One compound selector: tag?, #id?, .classes, [attr] tests.
struct CompoundSelector {
  std::string tag;  // empty or "*" = any
  std::string id;
  std::vector<std::string> classes;
  std::vector<AttributeTest> attributes;

  bool matches(const Element& element) const;
};

// A complex selector: compounds joined by combinators, right-to-left.
struct ComplexSelector {
  enum class Combinator { kDescendant, kChild };
  std::vector<CompoundSelector> compounds;  // left to right
  std::vector<Combinator> combinators;      // size = compounds.size() - 1

  bool matches(const Element& element) const;
};

// A full selector (comma-separated list of complex selectors).
class Selector {
 public:
  // Parse; nullopt on syntax errors (empty selector, bad attribute syntax).
  static std::optional<Selector> parse(std::string_view text);

  bool matches(const Element& element) const;

  // All matching elements under `root`, in document order.
  std::vector<Element*> select_all(Node& root) const;
  Element* select_first(Node& root) const;

  const std::vector<ComplexSelector>& alternatives() const {
    return alternatives_;
  }

 private:
  std::vector<ComplexSelector> alternatives_;
};

}  // namespace fu::dom
