#include "dom/html.h"

#include <array>
#include <cctype>
#include <vector>

#include "support/strings.h"

namespace fu::dom {

namespace {

constexpr std::array<std::string_view, 14> kVoidElements = {
    "area", "base", "br",    "col",  "embed",  "hr",    "img",
    "input", "link", "meta", "param", "source", "track", "wbr"};

constexpr std::array<std::string_view, 2> kRawTextElements = {"script",
                                                              "style"};

bool is_raw_text_element(std::string_view tag) {
  for (const auto t : kRawTextElements) {
    if (t == tag) return true;
  }
  return false;
}

class HtmlParser {
 public:
  explicit HtmlParser(std::string_view html) : src_(html) {}

  std::unique_ptr<Document> run() {
    auto doc = std::make_unique<Document>();
    doc_ = doc.get();
    stack_.push_back(doc_);
    while (pos_ < src_.size()) step();
    flush_text();
    doc->ensure_scaffold();
    return doc;
  }

 private:
  void step() {
    if (src_[pos_] != '<') {
      text_.push_back(src_[pos_++]);
      return;
    }
    // '<' — decide what kind of markup follows.
    if (lookahead("<!--")) {
      flush_text();
      parse_comment();
    } else if (lookahead("<!") || lookahead("<?")) {
      flush_text();
      skip_until('>');
    } else if (lookahead("</")) {
      flush_text();
      parse_close_tag();
    } else if (pos_ + 1 < src_.size() &&
               (std::isalpha(static_cast<unsigned char>(src_[pos_ + 1])))) {
      flush_text();
      parse_open_tag();
    } else {
      text_.push_back(src_[pos_++]);  // stray '<'
    }
  }

  bool lookahead(std::string_view prefix) const {
    return src_.substr(pos_, prefix.size()) == prefix;
  }

  void skip_until(char end) {
    while (pos_ < src_.size() && src_[pos_] != end) ++pos_;
    if (pos_ < src_.size()) ++pos_;  // consume end
  }

  void parse_comment() {
    pos_ += 4;  // "<!--"
    const std::size_t start = pos_;
    const std::size_t close = src_.find("-->", pos_);
    std::string data;
    if (close == std::string_view::npos) {
      data = std::string(src_.substr(start));
      pos_ = src_.size();
    } else {
      data = std::string(src_.substr(start, close - start));
      pos_ = close + 3;
    }
    top()->append_child(doc_->create_comment(std::move(data)));
  }

  std::string read_tag_name() {
    std::string name;
    while (pos_ < src_.size() &&
           (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
            src_[pos_] == '-' || src_[pos_] == '_')) {
      name.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(src_[pos_]))));
      ++pos_;
    }
    return name;
  }

  void skip_space() {
    while (pos_ < src_.size() &&
           std::isspace(static_cast<unsigned char>(src_[pos_]))) {
      ++pos_;
    }
  }

  void parse_open_tag() {
    ++pos_;  // '<'
    const std::string tag = read_tag_name();
    Element* el = doc_->create_element(tag);

    // attributes
    bool self_closing = false;
    for (;;) {
      skip_space();
      if (pos_ >= src_.size()) break;
      if (src_[pos_] == '>') {
        ++pos_;
        break;
      }
      if (src_[pos_] == '/') {
        ++pos_;
        self_closing = true;
        continue;
      }
      std::string name;
      while (pos_ < src_.size() && src_[pos_] != '=' && src_[pos_] != '>' &&
             src_[pos_] != '/' &&
             !std::isspace(static_cast<unsigned char>(src_[pos_]))) {
        name.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(src_[pos_]))));
        ++pos_;
      }
      if (name.empty()) {
        ++pos_;
        continue;
      }
      skip_space();
      std::string value;
      if (pos_ < src_.size() && src_[pos_] == '=') {
        ++pos_;
        skip_space();
        if (pos_ < src_.size() && (src_[pos_] == '"' || src_[pos_] == '\'')) {
          const char quote = src_[pos_++];
          while (pos_ < src_.size() && src_[pos_] != quote) {
            value.push_back(src_[pos_++]);
          }
          if (pos_ < src_.size()) ++pos_;
        } else {
          while (pos_ < src_.size() && src_[pos_] != '>' &&
                 !std::isspace(static_cast<unsigned char>(src_[pos_]))) {
            value.push_back(src_[pos_++]);
          }
        }
      }
      el->set_attribute(name, value);
    }

    top()->append_child(el);
    if (self_closing || is_void_element(tag)) return;

    if (is_raw_text_element(tag)) {
      // consume raw text until the matching close tag
      const std::string close = "</" + tag;
      std::size_t end = pos_;
      for (;;) {
        end = src_.find(close, end);
        if (end == std::string_view::npos) {
          end = src_.size();
          break;
        }
        const std::size_t after = end + close.size();
        if (after >= src_.size() || src_[after] == '>' ||
            std::isspace(static_cast<unsigned char>(src_[after]))) {
          break;
        }
        ++end;
      }
      if (end > pos_) {
        el->append_child(doc_->create_text(std::string(src_.substr(
            pos_, end - pos_))));
      }
      pos_ = end;
      if (pos_ < src_.size()) skip_until('>');  // consume the close tag
      return;
    }
    stack_.push_back(el);
  }

  void parse_close_tag() {
    pos_ += 2;  // "</"
    const std::string tag = read_tag_name();
    skip_until('>');
    // pop to the nearest matching open element, browser-style recovery
    for (std::size_t i = stack_.size(); i > 1; --i) {
      Node* node = stack_[i - 1];
      if (node->type() == NodeType::kElement &&
          static_cast<Element*>(node)->tag() == tag) {
        stack_.resize(i - 1);
        return;
      }
    }
    // no matching open tag: ignore
  }

  Node* top() const { return stack_.back(); }

  void flush_text() {
    if (text_.empty()) return;
    // drop whitespace-only runs to keep trees small
    if (text_.find_first_not_of(" \t\r\n") != std::string::npos) {
      top()->append_child(doc_->create_text(text_));
    }
    text_.clear();
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  Document* doc_ = nullptr;
  std::vector<Node*> stack_;
  std::string text_;
};

void escape_into(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '&': out += "&amp;"; break;
      case '"': out += "&quot;"; break;
      default: out.push_back(c);
    }
  }
}

void serialize_into(std::string& out, const Node& node) {
  switch (node.type()) {
    case NodeType::kDocument:
      for (const Node* child : node.children()) serialize_into(out, *child);
      return;
    case NodeType::kText: {
      const auto& text = static_cast<const Text&>(node);
      // raw-text parents keep their content verbatim
      const Node* parent = node.parent();
      if (parent != nullptr && parent->type() == NodeType::kElement &&
          is_raw_text_element(static_cast<const Element*>(parent)->tag())) {
        out += text.data();
      } else {
        escape_into(out, text.data());
      }
      return;
    }
    case NodeType::kComment:
      out += "<!--";
      out += static_cast<const Comment&>(node).data();
      out += "-->";
      return;
    case NodeType::kElement:
      break;
  }
  const auto& el = static_cast<const Element&>(node);
  out.push_back('<');
  out += el.tag();
  for (const auto& [name, value] : el.attributes()) {
    out.push_back(' ');
    out += name;
    out += "=\"";
    escape_into(out, value);
    out.push_back('"');
  }
  out.push_back('>');
  if (is_void_element(el.tag())) return;
  for (const Node* child : el.children()) serialize_into(out, *child);
  out += "</";
  out += el.tag();
  out.push_back('>');
}

}  // namespace

bool is_void_element(std::string_view tag) {
  for (const auto t : kVoidElements) {
    if (t == tag) return true;
  }
  return false;
}

std::unique_ptr<Document> parse_html(std::string_view html) {
  return HtmlParser(html).run();
}

std::string serialize(const Node& node) {
  std::string out;
  serialize_into(out, node);
  return out;
}

}  // namespace fu::dom
