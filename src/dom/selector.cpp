#include "dom/selector.h"

#include <cctype>

#include "support/strings.h"

namespace fu::dom {

namespace {

bool has_class(const Element& element, std::string_view cls) {
  const std::string& attr = element.attribute("class");
  std::size_t start = 0;
  while (start < attr.size()) {
    while (start < attr.size() &&
           std::isspace(static_cast<unsigned char>(attr[start]))) {
      ++start;
    }
    std::size_t end = start;
    while (end < attr.size() &&
           !std::isspace(static_cast<unsigned char>(attr[end]))) {
      ++end;
    }
    if (std::string_view(attr).substr(start, end - start) == cls) return true;
    start = end;
  }
  return false;
}

bool word_match(std::string_view attr, std::string_view word) {
  std::size_t start = 0;
  while (start < attr.size()) {
    while (start < attr.size() &&
           std::isspace(static_cast<unsigned char>(attr[start]))) {
      ++start;
    }
    std::size_t end = start;
    while (end < attr.size() &&
           !std::isspace(static_cast<unsigned char>(attr[end]))) {
      ++end;
    }
    if (attr.substr(start, end - start) == word) return true;
    start = end;
  }
  return false;
}

class SelectorParser {
 public:
  explicit SelectorParser(std::string_view text) : src_(text) {}

  std::optional<std::vector<ComplexSelector>> run() {
    std::vector<ComplexSelector> alternatives;
    for (;;) {
      auto complex = parse_complex();
      if (!complex) return std::nullopt;
      alternatives.push_back(std::move(*complex));
      skip_space();
      if (pos_ >= src_.size()) break;
      if (src_[pos_] != ',') return std::nullopt;
      ++pos_;
    }
    return alternatives;
  }

 private:
  void skip_space() {
    while (pos_ < src_.size() &&
           std::isspace(static_cast<unsigned char>(src_[pos_]))) {
      ++pos_;
    }
  }

  static bool ident_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '-' || c == '_';
  }

  std::string read_identifier() {
    std::string out;
    while (pos_ < src_.size() && ident_char(src_[pos_])) {
      out.push_back(src_[pos_++]);
    }
    return out;
  }

  std::optional<CompoundSelector> parse_compound() {
    CompoundSelector compound;
    bool any = false;
    if (pos_ < src_.size() && src_[pos_] == '*') {
      compound.tag = "*";
      ++pos_;
      any = true;
    } else if (pos_ < src_.size() &&
               std::isalpha(static_cast<unsigned char>(src_[pos_]))) {
      compound.tag = support::to_lower(read_identifier());
      any = true;
    }
    for (;;) {
      if (pos_ >= src_.size()) break;
      const char c = src_[pos_];
      if (c == '#') {
        ++pos_;
        compound.id = read_identifier();
        if (compound.id.empty()) return std::nullopt;
        any = true;
      } else if (c == '.') {
        ++pos_;
        std::string cls = read_identifier();
        if (cls.empty()) return std::nullopt;
        compound.classes.push_back(std::move(cls));
        any = true;
      } else if (c == '[') {
        ++pos_;
        auto test = parse_attribute();
        if (!test) return std::nullopt;
        compound.attributes.push_back(std::move(*test));
        any = true;
      } else {
        break;
      }
    }
    if (!any) return std::nullopt;
    return compound;
  }

  std::optional<AttributeTest> parse_attribute() {
    skip_space();
    AttributeTest test;
    test.name = support::to_lower(read_identifier());
    if (test.name.empty()) return std::nullopt;
    skip_space();
    if (pos_ < src_.size() && src_[pos_] == ']') {
      ++pos_;
      test.op = AttributeTest::Op::kPresent;
      return test;
    }
    // operator: '=' or one of "^= $= *= ~="
    if (pos_ >= src_.size()) return std::nullopt;
    if (src_[pos_] == '=') {
      test.op = AttributeTest::Op::kEquals;
      ++pos_;
    } else {
      switch (src_[pos_]) {
        case '^': test.op = AttributeTest::Op::kPrefix; break;
        case '$': test.op = AttributeTest::Op::kSuffix; break;
        case '*': test.op = AttributeTest::Op::kContains; break;
        case '~': test.op = AttributeTest::Op::kWord; break;
        default: return std::nullopt;
      }
      if (pos_ + 1 >= src_.size() || src_[pos_ + 1] != '=') {
        return std::nullopt;
      }
      pos_ += 2;
    }
    skip_space();
    // value: quoted or bare
    if (pos_ < src_.size() && (src_[pos_] == '"' || src_[pos_] == '\'')) {
      const char quote = src_[pos_++];
      while (pos_ < src_.size() && src_[pos_] != quote) {
        test.value.push_back(src_[pos_++]);
      }
      if (pos_ >= src_.size()) return std::nullopt;
      ++pos_;  // closing quote
    } else {
      while (pos_ < src_.size() && src_[pos_] != ']' &&
             !std::isspace(static_cast<unsigned char>(src_[pos_]))) {
        test.value.push_back(src_[pos_++]);
      }
    }
    skip_space();
    if (pos_ >= src_.size() || src_[pos_] != ']') return std::nullopt;
    ++pos_;
    return test;
  }

  std::optional<ComplexSelector> parse_complex() {
    ComplexSelector complex;
    skip_space();
    auto first = parse_compound();
    if (!first) return std::nullopt;
    complex.compounds.push_back(std::move(*first));
    for (;;) {
      const std::size_t before_space = pos_;
      skip_space();
      // end of this complex selector: input exhausted or a list separator
      if (pos_ >= src_.size() || src_[pos_] == ',') return complex;

      ComplexSelector::Combinator combinator =
          ComplexSelector::Combinator::kDescendant;
      if (src_[pos_] == '>') {
        combinator = ComplexSelector::Combinator::kChild;
        ++pos_;
        skip_space();
      } else if (before_space == pos_) {
        // no whitespace and no '>' — nothing more in this complex selector
        return complex;
      }
      auto next = parse_compound();
      if (!next) return std::nullopt;
      complex.combinators.push_back(combinator);
      complex.compounds.push_back(std::move(*next));
    }
  }

  std::string_view src_;
  std::size_t pos_ = 0;
};

}  // namespace

bool CompoundSelector::matches(const Element& element) const {
  if (!tag.empty() && tag != "*" && element.tag() != tag) return false;
  if (!id.empty() && element.id() != id) return false;
  for (const std::string& cls : classes) {
    if (!has_class(element, cls)) return false;
  }
  for (const AttributeTest& test : attributes) {
    if (!element.has_attribute(test.name)) return false;
    const std::string& value = element.attribute(test.name);
    switch (test.op) {
      case AttributeTest::Op::kPresent:
        break;
      case AttributeTest::Op::kEquals:
        if (value != test.value) return false;
        break;
      case AttributeTest::Op::kPrefix:
        if (!support::starts_with(value, test.value)) return false;
        break;
      case AttributeTest::Op::kSuffix:
        if (!support::ends_with(value, test.value)) return false;
        break;
      case AttributeTest::Op::kContains:
        if (!support::contains(value, test.value)) return false;
        break;
      case AttributeTest::Op::kWord:
        if (!word_match(value, test.value)) return false;
        break;
    }
  }
  return true;
}

bool ComplexSelector::matches(const Element& element) const {
  // Match right-to-left: the rightmost compound must match `element`, then
  // walk ancestors for the rest.
  if (compounds.empty()) return false;
  if (!compounds.back().matches(element)) return false;

  const Element* current = &element;
  for (std::size_t i = compounds.size() - 1; i-- > 0;) {
    const Combinator combinator = combinators[i];
    const Node* parent = current->parent();
    if (combinator == Combinator::kChild) {
      if (parent == nullptr || parent->type() != NodeType::kElement) {
        return false;
      }
      const auto* parent_el = static_cast<const Element*>(parent);
      if (!compounds[i].matches(*parent_el)) return false;
      current = parent_el;
    } else {
      // descendant: find any matching ancestor
      const Element* found = nullptr;
      for (const Node* n = parent; n != nullptr; n = n->parent()) {
        if (n->type() != NodeType::kElement) continue;
        const auto* candidate = static_cast<const Element*>(n);
        if (compounds[i].matches(*candidate)) {
          found = candidate;
          break;
        }
      }
      if (found == nullptr) return false;
      current = found;
    }
  }
  return true;
}

std::optional<Selector> Selector::parse(std::string_view text) {
  if (support::trim(text).empty()) return std::nullopt;
  auto alternatives = SelectorParser(support::trim(text)).run();
  if (!alternatives) return std::nullopt;
  Selector selector;
  selector.alternatives_ = std::move(*alternatives);
  return selector;
}

bool Selector::matches(const Element& element) const {
  for (const ComplexSelector& alt : alternatives_) {
    if (alt.matches(element)) return true;
  }
  return false;
}

std::vector<Element*> Selector::select_all(Node& root) const {
  std::vector<Element*> out;
  root.for_each([&](Node& node) {
    if (node.type() != NodeType::kElement) return;
    auto& el = static_cast<Element&>(node);
    if (matches(el)) out.push_back(&el);
  });
  return out;
}

Element* Selector::select_first(Node& root) const {
  // document order = for_each order; stop-early isn't supported by for_each,
  // so select_all and take the front (trees are small).
  const std::vector<Element*> all = select_all(root);
  return all.empty() ? nullptr : all.front();
}

}  // namespace fu::dom
