#include "dom/node.h"

#include <algorithm>
#include <stdexcept>

namespace fu::dom {

void Node::append_child(Node* child) {
  insert_before(child, nullptr);
}

void Node::insert_before(Node* child, Node* reference) {
  if (child == nullptr) throw std::invalid_argument("insert_before: null child");
  if (child == this) throw std::invalid_argument("insert_before: self-insert");
  // Guard against cycles: the new child must not be an ancestor of this.
  for (Node* n = this; n != nullptr; n = n->parent_) {
    if (n == child) throw std::invalid_argument("insert_before: cycle");
  }
  if (child->parent_ != nullptr) child->parent_->remove_child(child);
  child->parent_ = this;
  if (reference == nullptr) {
    children_.push_back(child);
    return;
  }
  const auto it = std::find(children_.begin(), children_.end(), reference);
  if (it == children_.end()) {
    throw std::invalid_argument("insert_before: reference not a child");
  }
  children_.insert(it, child);
}

void Node::remove_child(Node* child) {
  const auto it = std::find(children_.begin(), children_.end(), child);
  if (it == children_.end()) {
    throw std::invalid_argument("remove_child: not a child");
  }
  (*it)->parent_ = nullptr;
  children_.erase(it);
}

std::string Node::text_content() const {
  std::string out;
  if (type_ == NodeType::kText) {
    out += static_cast<const Text*>(this)->data();
  }
  for (const Node* child : children_) out += child->text_content();
  return out;
}

bool Element::has_attribute(std::string_view name) const {
  return attributes_.find(name) != attributes_.end();
}

const std::string& Element::attribute(std::string_view name) const {
  static const std::string kEmpty;
  const auto it = attributes_.find(name);
  return it == attributes_.end() ? kEmpty : it->second;
}

void Element::set_attribute(std::string_view name, std::string_view value) {
  attributes_[std::string(name)] = std::string(value);
}

Document::Document() : Node(NodeType::kDocument, this) {}

Element* Document::create_element(std::string tag) {
  auto node = std::make_unique<Element>(this, std::move(tag));
  Element* raw = node.get();
  owned_.push_back(std::move(node));
  return raw;
}

Text* Document::create_text(std::string data) {
  auto node = std::make_unique<Text>(this, std::move(data));
  Text* raw = node.get();
  owned_.push_back(std::move(node));
  return raw;
}

Comment* Document::create_comment(std::string data) {
  auto node = std::make_unique<Comment>(this, std::move(data));
  Comment* raw = node.get();
  owned_.push_back(std::move(node));
  return raw;
}

void Document::ensure_scaffold() {
  if (html_ == nullptr) {
    // adopt an existing <html> child if the parser built one
    for (Node* child : children()) {
      if (child->type() == NodeType::kElement &&
          static_cast<Element*>(child)->tag() == "html") {
        html_ = static_cast<Element*>(child);
        break;
      }
    }
    if (html_ == nullptr) {
      html_ = create_element("html");
      append_child(html_);
    }
  }
  for (Node* child : html_->children()) {
    if (child->type() != NodeType::kElement) continue;
    auto* el = static_cast<Element*>(child);
    if (el->tag() == "head" && head_ == nullptr) head_ = el;
    if (el->tag() == "body" && body_ == nullptr) body_ = el;
  }
  if (head_ == nullptr) {
    head_ = create_element("head");
    html_->insert_before(head_, html_->first_child());
  }
  if (body_ == nullptr) {
    body_ = create_element("body");
    html_->append_child(body_);
  }
}

Element* Document::get_element_by_id(std::string_view id) {
  Element* found = nullptr;
  for_each([&](Node& node) {
    if (found != nullptr || node.type() != NodeType::kElement) return;
    auto& el = static_cast<Element&>(node);
    if (el.id() == id) found = &el;
  });
  return found;
}

std::vector<Element*> Document::get_elements_by_tag(std::string_view tag) {
  std::vector<Element*> out;
  for_each([&](Node& node) {
    if (node.type() != NodeType::kElement) return;
    auto& el = static_cast<Element&>(node);
    if (el.tag() == tag) out.push_back(&el);
  });
  return out;
}

std::vector<Element*> Document::all_elements() {
  std::vector<Element*> out;
  for_each([&](Node& node) {
    if (node.type() == NodeType::kElement) {
      out.push_back(static_cast<Element*>(&node));
    }
  });
  return out;
}

}  // namespace fu::dom
