// DOM tree: Document/Element/Text nodes with attributes, queries and
// mutation. The browser builds one of these per page (via the HTML parser),
// the instrumentation extension is injected at the start of <head> (§4.2),
// and the monkey tester walks it looking for clickable/scrollable/typable
// elements.
//
// Ownership: the Document owns every node; nodes hold non-owning
// parent/child pointers. Nodes are never destroyed individually — removal
// unlinks them from the tree but the document keeps the storage alive until
// it dies (pages are short-lived, one crawl step each).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace fu::dom {

enum class NodeType { kDocument, kElement, kText, kComment };

class Document;

class Node {
 public:
  Node(NodeType type, Document* document) : type_(type), document_(document) {}
  virtual ~Node() = default;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeType type() const noexcept { return type_; }
  Document& document() const noexcept { return *document_; }
  Node* parent() const noexcept { return parent_; }
  const std::vector<Node*>& children() const noexcept { return children_; }

  // Tree mutation. A node is unlinked from its previous parent first.
  void append_child(Node* child);
  void insert_before(Node* child, Node* reference);
  void remove_child(Node* child);

  Node* first_child() const noexcept {
    return children_.empty() ? nullptr : children_.front();
  }

  // Depth-first traversal helper: invoke fn on this node and descendants.
  template <typename Fn>
  void for_each(Fn&& fn) {
    fn(*this);
    // children may be mutated by fn; iterate over a snapshot
    const std::vector<Node*> snapshot = children_;
    for (Node* child : snapshot) child->for_each(fn);
  }

  // Concatenated text content of this subtree.
  std::string text_content() const;

 private:
  NodeType type_;
  Document* document_;
  Node* parent_ = nullptr;
  std::vector<Node*> children_;
};

class Text final : public Node {
 public:
  Text(Document* document, std::string data)
      : Node(NodeType::kText, document), data_(std::move(data)) {}

  const std::string& data() const noexcept { return data_; }

 private:
  std::string data_;
};

class Comment final : public Node {
 public:
  Comment(Document* document, std::string data)
      : Node(NodeType::kComment, document), data_(std::move(data)) {}

  const std::string& data() const noexcept { return data_; }

 private:
  std::string data_;
};

class Element final : public Node {
 public:
  Element(Document* document, std::string tag)
      : Node(NodeType::kElement, document), tag_(std::move(tag)) {}

  const std::string& tag() const noexcept { return tag_; }

  bool has_attribute(std::string_view name) const;
  // Returns "" when absent; use has_attribute to distinguish.
  const std::string& attribute(std::string_view name) const;
  void set_attribute(std::string_view name, std::string_view value);
  const std::map<std::string, std::string, std::less<>>& attributes() const {
    return attributes_;
  }

  const std::string& id() const { return attribute("id"); }

 private:
  std::string tag_;
  std::map<std::string, std::string, std::less<>> attributes_;
};

class Document final : public Node {
 public:
  Document();

  // Node factories; the document owns the result.
  Element* create_element(std::string tag);
  Text* create_text(std::string data);
  Comment* create_comment(std::string data);

  // <html>, <head> and <body> are guaranteed to exist after ensure_scaffold.
  Element* html() const noexcept { return html_; }
  Element* head() const noexcept { return head_; }
  Element* body() const noexcept { return body_; }
  void ensure_scaffold();

  // Queries (case-sensitive tag names; our generator emits lowercase).
  Element* get_element_by_id(std::string_view id);
  std::vector<Element*> get_elements_by_tag(std::string_view tag);
  std::vector<Element*> all_elements();

  std::size_t node_count() const noexcept { return owned_.size(); }

 private:
  std::vector<std::unique_ptr<Node>> owned_;
  Element* html_ = nullptr;
  Element* head_ = nullptr;
  Element* body_ = nullptr;
};

}  // namespace fu::dom
