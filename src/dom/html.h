// Small HTML parser and serializer.
//
// Handles the subset our synthetic web emits plus the usual real-world mess:
// attributes with/without quotes, void elements, comments, doctype,
// mis-nested close tags (closed by popping to the nearest match), raw-text
// elements (<script>, <style>) whose content is not tokenized, and implicit
// html/head/body scaffolding.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "dom/node.h"

namespace fu::dom {

// Parse HTML text into a fresh document. Never throws on malformed input —
// real pages are malformed; the parser recovers like browsers do.
std::unique_ptr<Document> parse_html(std::string_view html);

// Serialize a subtree back to HTML (attributes sorted, text escaped).
std::string serialize(const Node& node);

// True for elements that never have children (<br>, <img>, <meta>, ...).
bool is_void_element(std::string_view tag);

}  // namespace fu::dom
