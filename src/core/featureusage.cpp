#include "core/featureusage.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>

#include "crawler/serialize.h"
#include "sched/progress.h"

namespace fu {

namespace {

long env_long(const char* name, long fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  try {
    return std::stol(value);
  } catch (const std::exception&) {
    return fallback;
  }
}

double env_double(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  try {
    return std::stod(value);
  } catch (const std::exception&) {
    return fallback;
  }
}

}  // namespace

ReproductionConfig ReproductionConfig::from_env() {
  ReproductionConfig config;
  config.sites = static_cast<int>(env_long("FU_SITES", config.sites));
  config.passes = static_cast<int>(env_long("FU_PASSES", config.passes));
  config.seed = static_cast<std::uint64_t>(
      env_long("FU_SEED", static_cast<long>(config.seed)));
  config.threads = static_cast<int>(env_long("FU_THREADS", config.threads));
  config.single_blocker_configs = env_long("FU_FIG7", 1) != 0;
  config.retries = static_cast<int>(env_long("FU_RETRIES", config.retries));
  const char* checkpoint_dir = std::getenv("FU_CHECKPOINT_DIR");
  if (checkpoint_dir != nullptr && *checkpoint_dir != '\0') {
    config.checkpoint_dir = checkpoint_dir;
  }
  config.checkpoint_secs =
      env_double("FU_CHECKPOINT_SECS", config.checkpoint_secs);
  config.trace_sample =
      static_cast<int>(env_long("FU_TRACE_SAMPLE", config.trace_sample));
  const auto env_path = [](const char* name, std::string& out) {
    const char* value = std::getenv(name);
    if (value != nullptr && *value != '\0') out = value;
  };
  env_path("FU_TRACE_OUT", config.trace_out);
  env_path("FU_TRACE_JSONL", config.trace_jsonl);
  env_path("FU_METRICS_OUT", config.metrics_out);
  config.profile_hz = env_double("FU_PROFILE_HZ", config.profile_hz);
  env_path("FU_PROFILE_OUT", config.profile_out);
  env_path("FU_MEMPROFILE_OUT", config.memprofile_out);
  config.memprofile_rate =
      static_cast<int>(env_long("FU_MEMPROFILE_RATE", config.memprofile_rate));
  config.serve_port =
      static_cast<int>(env_long("FU_SERVE_PORT", config.serve_port));
  config.stall_secs = env_double("FU_STALL_SECS", config.stall_secs);
  return config;
}

Reproduction::Reproduction(ReproductionConfig config)
    : config_(config) {}

const catalog::Catalog& Reproduction::catalog() {
  if (!catalog_) catalog_ = std::make_unique<catalog::Catalog>(config_.seed);
  return *catalog_;
}

const net::SyntheticWeb& Reproduction::web() {
  if (!web_) {
    net::SyntheticWeb::Config web_config;
    web_config.site_count = config_.sites;
    web_config.seed = config_.seed;
    web_ = std::make_unique<net::SyntheticWeb>(catalog(), web_config);
  }
  return *web_;
}

const crawler::SurveyResults& Reproduction::survey() {
  if (survey_) return *survey_;

  crawler::SurveyOptions options;
  options.passes = config_.passes;
  options.include_ad_only = config_.single_blocker_configs;
  options.include_tracking_only = config_.single_blocker_configs;
  options.threads = config_.threads;
  options.seed = config_.seed;
  options.max_attempts = 1 + std::max(0, config_.retries);
  options.checkpoint_dir = config_.checkpoint_dir;
  options.checkpoint_secs = config_.checkpoint_secs;
  options.resume = config_.resume;
  options.serve_port = config_.serve_port;
  options.serve_stall_secs = config_.stall_secs;

  // Survey runs are expensive and fully determined by their parameters, so
  // they are cached on disk (FU_CACHE_DIR, default "fu_cache"; FU_CACHE=0
  // disables). Every bench binary then shares one crawl.
  const bool use_cache = env_long("FU_CACHE", 1) != 0;
  std::string cache_path;
  if (use_cache) {
    const crawler::SurveyKey key = crawler::key_for(web(), options);

    const char* dir_env = std::getenv("FU_CACHE_DIR");
    const std::filesystem::path dir =
        dir_env != nullptr && *dir_env != '\0' ? dir_env : "fu_cache";
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    cache_path = (dir / crawler::cache_filename(key)).string();

    if (auto cached = crawler::load_survey(web(), key, cache_path)) {
      if (config_.serve_port >= 0) {
        std::cerr << "note: survey loaded from the on-disk cache — no crawl "
                     "to serve live (set FU_CACHE=0 to watch a real run)\n";
      }
      survey_ = std::make_unique<crawler::SurveyResults>(std::move(*cached));
      return *survey_;
    }
  }

  sched::ProgressMeter meter;
  std::unique_ptr<sched::ProgressPrinter> printer;
  if (config_.progress) {
    options.progress = &meter;
    printer = std::make_unique<sched::ProgressPrinter>(meter, std::cerr);
  }
  survey_ =
      std::make_unique<crawler::SurveyResults>(run_survey(web(), options));
  printer.reset();  // stop the printer before anything else writes stderr
  if (use_cache && !cache_path.empty()) {
    crawler::save_survey(*survey_, config_.seed, cache_path);
  }
  return *survey_;
}

const analysis::Analysis& Reproduction::analysis() {
  if (!analysis_) analysis_ = std::make_unique<analysis::Analysis>(survey());
  return *analysis_;
}

const crawler::ExternalValidation& Reproduction::external_validation() {
  if (!validation_) {
    validation_ = std::make_unique<crawler::ExternalValidation>(
        crawler::run_external_validation(survey()));
  }
  return *validation_;
}

}  // namespace fu
