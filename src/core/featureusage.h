// featureusage — public facade.
//
// One include gives a downstream user the whole reproduction pipeline:
//
//   #include "core/featureusage.h"
//
//   fu::Reproduction repro(fu::ReproductionConfig{.sites = 1000});
//   const auto& analysis = repro.analysis();
//   std::cout << fu::analysis::render_table2(analysis);
//
// The pieces are usable à la carte as well — catalog, synthetic web,
// instrumented browser sessions, blockers, crawler and analysis are all
// ordinary libraries with their own headers.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "analysis/metrics.h"
#include "analysis/tables.h"
#include "blocker/extensions.h"
#include "browser/session.h"
#include "catalog/catalog.h"
#include "catalog/growth.h"
#include "crawler/survey.h"
#include "crawler/validate.h"
#include "net/web.h"

namespace fu {

struct ReproductionConfig {
  // How much of the Alexa list to survey. The paper uses 10,000; smaller
  // values keep the percentages intact while shrinking runtime.
  int sites = catalog::kAlexaSites;
  int passes = 5;
  std::uint64_t seed = 0x10f3a7ULL;
  int threads = 0;  // 0 = hardware concurrency
  // The two extra single-blocker configurations behind Figure 7 double the
  // crawl; switch them off when only the main survey is needed.
  bool single_blocker_configs = true;

  // Extra attempts for a site whose crawl throws (0 = fail on first throw);
  // the failure is contained into its SiteOutcome either way.
  int retries = 0;
  // When set, completed site outcomes stream into checkpoint shards here
  // and `resume` picks an interrupted survey back up from them.
  std::string checkpoint_dir;
  // > 0: also cut a shard once this many seconds have passed since the
  // first unflushed outcome, bounding the crash-loss window of slow crawls.
  double checkpoint_secs = 0;
  bool resume = false;
  // Print live crawl progress (sites done, invocations/s, ETA) to stderr.
  bool progress = false;
  // >= 0: serve live metrics/progress over loopback HTTP on this port while
  // the survey runs (0 = ephemeral port, printed to stderr and written to
  // <checkpoint_dir>/serve.port). -1 = off. See `fu watch`.
  int serve_port = -1;
  // /healthz stall window in seconds (no site completed for this long =>
  // 503).
  double stall_secs = 30;

  // Observability outputs (empty = off). `trace_out` writes a Chrome
  // trace_event JSON file, `trace_jsonl` the compact one-object-per-line
  // stream, `metrics_out` the metrics-registry snapshot as JSON. Tracing is
  // enabled for the survey iff either trace path is set.
  std::string trace_out;
  std::string trace_jsonl;
  std::string metrics_out;
  // > 1: sample 1-in-N site-visit spans (suppressing the per-stage spans of
  // unsampled visits) while always keeping a visit slower than every visit
  // before it, so huge surveys produce bounded trace files that still show
  // the outliers.
  int trace_sample = 0;

  // Continuous profiling (off by default). Profiling runs iff `profile_out`
  // is set or `profile_hz` > 0: the survey executes under a sampling
  // obs::Profiler and the folded-stack profile lands in `profile_out`
  // (default "profile.folded" when only the rate was given), with the
  // flamegraph beside it as <out>.html and the per-standard CPU attribution
  // as <out>.standards.csv. `profile_hz` <= 0 means the 97 Hz default.
  double profile_hz = 0;
  std::string profile_out;

  // Allocation profiling (off by default; runs iff `memprofile_out` is
  // set). The survey executes under an obs::mem::MemProfiler sampling every
  // `memprofile_rate`th tracked allocation (<= 0 means the default period);
  // the folded BYTES profile lands in `memprofile_out` with the flamegraph
  // as <out>.html, per-standard bytes as <out>.standards.csv and the
  // domain peak report as <out>.domains.json.
  std::string memprofile_out;
  int memprofile_rate = 0;

  // Read overrides from the environment: FU_SITES, FU_PASSES, FU_SEED,
  // FU_THREADS, FU_FIG7 (0/1), FU_RETRIES, FU_CHECKPOINT_DIR,
  // FU_CHECKPOINT_SECS, FU_TRACE_OUT, FU_TRACE_JSONL, FU_TRACE_SAMPLE,
  // FU_METRICS_OUT, FU_SERVE_PORT, FU_STALL_SECS, FU_PROFILE_HZ,
  // FU_PROFILE_OUT, FU_MEMPROFILE_OUT, FU_MEMPROFILE_RATE.
  static ReproductionConfig from_env();
};

// Lazily builds catalog -> synthetic web -> survey -> analysis, caching each
// stage. Every bench binary and example drives this one class.
class Reproduction {
 public:
  explicit Reproduction(ReproductionConfig config = {});

  const ReproductionConfig& config() const noexcept { return config_; }
  const catalog::Catalog& catalog();
  const net::SyntheticWeb& web();
  const crawler::SurveyResults& survey();
  const analysis::Analysis& analysis();
  const crawler::ExternalValidation& external_validation();

 private:
  ReproductionConfig config_;
  std::unique_ptr<catalog::Catalog> catalog_;
  std::unique_ptr<net::SyntheticWeb> web_;
  std::unique_ptr<crawler::SurveyResults> survey_;
  std::unique_ptr<analysis::Analysis> analysis_;
  std::unique_ptr<crawler::ExternalValidation> validation_;
};

}  // namespace fu
