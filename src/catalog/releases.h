// The historical Firefox release timeline (§3.4). The paper examines the
// 186 releases shipped between Firefox 1.0 (November 2004) and 46.0.1
// (April 2016) to date each feature's first appearance. We reconstruct that
// timeline: the real major-release dates through the 6-week "rapid release"
// cadence, padded with point releases to exactly 186 entries.
#pragma once

#include <string_view>
#include <vector>

#include "catalog/standard.h"

namespace fu::catalog {

inline constexpr int kReleaseCount = 186;

// All releases, ascending by date. releases().back() is 46.0.1.
const std::vector<Release>& releases();

// The earliest release dated on/after `d` (clamped to the last release).
const Release& release_on_or_after(support::Date d);

// Lookup by version string; throws std::out_of_range if absent.
const Release& release_by_version(std::string_view version);

}  // namespace fu::catalog
