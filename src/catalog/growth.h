// Data behind Figure 1: the number of feature families (web standards)
// available in the browser over time, and lines-of-code history for the four
// major browsers. The standards series is derived from the catalog's intro
// dates; the LOC series reproduces the shape of the Black Duck / OpenHub data
// the paper cites [10], including Chrome's mid-2013 drop of ~8.8M lines when
// WebKit code was removed after the Blink fork [34].
#pragma once

#include <string>
#include <vector>

#include "catalog/catalog.h"

namespace fu::catalog {

struct LocSample {
  double year = 0;        // fractional year, e.g. 2013.5
  double million_loc = 0;
};

struct BrowserLocSeries {
  std::string browser;  // "Chrome", "Firefox", "Safari", "IE"
  std::vector<LocSample> samples;
};

// LOC-over-time for the four browsers in Figure 1 (2009–2015, quarterly).
const std::vector<BrowserLocSeries>& browser_loc_history();

// Number of standards implemented in Firefox on or before `year` (fractional
// years accepted), derived from the catalog's per-standard intro dates.
int standards_available_by(const Catalog& catalog, double year);

// The full yearly series 2004..2016 of standards available.
std::vector<std::pair<int, int>> standards_by_year(const Catalog& catalog);

}  // namespace fu::catalog
