#include "catalog/releases.h"

#include <algorithm>
#include <stdexcept>

namespace fu::catalog {

namespace {

using support::Date;

const Release& release_by_version_impl(const std::vector<Release>& all,
                                       std::string_view version);

std::vector<Release> build_releases() {
  std::vector<Release> out;

  // Pre-rapid-release majors (real ship dates).
  out.push_back({"1.0", Date(2004, 11, 9)});
  out.push_back({"1.5", Date(2005, 11, 29)});
  out.push_back({"2.0", Date(2006, 10, 24)});
  out.push_back({"3.0", Date(2008, 6, 17)});
  out.push_back({"3.5", Date(2009, 6, 30)});
  out.push_back({"3.6", Date(2010, 1, 21)});
  out.push_back({"4.0", Date(2011, 3, 22)});

  // Rapid release: 5.0 on 2011-06-21, then one major every 6 weeks up to
  // 46.0 (2016-04-26).
  Date date(2011, 6, 21);
  std::vector<std::size_t> major_indices;
  for (int major = 5; major <= 46; ++major) {
    major_indices.push_back(out.size());
    out.push_back({std::to_string(major) + ".0", date});
    date = date.plus_days(42);
  }

  // Point releases: chemspill/stability updates following each rapid-release
  // major, added round-robin until the historical total of 186 is reached.
  for (int point = 1; static_cast<int>(out.size()) < kReleaseCount; ++point) {
    for (const std::size_t idx : major_indices) {
      if (static_cast<int>(out.size()) >= kReleaseCount) break;
      const Release& major = out[idx];
      // skip "46.0.N" beyond .1 — the study's browser is 46.0.1
      if (major.version == "46.0" && point > 1) continue;
      out.push_back({major.version + "." + std::to_string(point),
                     major.date.plus_days(10 * point)});
    }
  }

  std::stable_sort(out.begin(), out.end(),
                   [](const Release& a, const Release& b) {
                     return a.date < b.date;
                   });

  // The survey browser, 46.0.1, must be last: drop anything dated after it.
  const Date cutoff = release_by_version_impl(out, "46.0.1").date;
  std::erase_if(out, [cutoff](const Release& r) { return r.date > cutoff; });
  while (static_cast<int>(out.size()) < kReleaseCount) {
    // Backfill early-era point releases if the cutoff trimmed too many.
    const auto n = out.size();
    out.push_back({"3.6." + std::to_string(n), Date(2010, 2, 1).plus_days(
                                                   static_cast<int>(n))});
    std::stable_sort(out.begin(), out.end(),
                     [](const Release& a, const Release& b) {
                       return a.date < b.date;
                     });
  }
  return out;
}

const Release& release_by_version_impl(const std::vector<Release>& all,
                                       std::string_view version) {
  for (const Release& r : all) {
    if (r.version == version) return r;
  }
  throw std::out_of_range("unknown Firefox version: " + std::string(version));
}

}  // namespace

const std::vector<Release>& releases() {
  static const std::vector<Release> kReleases = build_releases();
  return kReleases;
}

const Release& release_on_or_after(support::Date d) {
  const auto& all = releases();
  const auto it = std::lower_bound(
      all.begin(), all.end(), d,
      [](const Release& r, const support::Date& date) { return r.date < date; });
  return it == all.end() ? all.back() : *it;
}

const Release& release_by_version(std::string_view version) {
  return release_by_version_impl(releases(), version);
}

}  // namespace fu::catalog
