// Synthetic CVE database (§3.5). The paper manually associates 111 of the
// 456 Firefox CVEs from 2013–2016 with specific web standards; Table 2
// publishes the per-standard counts. We generate records with those exact
// counts — plus unattributed and non-Firefox filler so the filtering steps of
// §3.5 (470 candidates → 456 Firefox → 111 attributed) are executed for real
// by the analysis code.
#pragma once

#include <vector>

#include "catalog/standard.h"

namespace fu::catalog {

// Totals from §3.5 of the paper.
inline constexpr int kCveCandidates = 470;   // CVEs mentioning Firefox
inline constexpr int kCveNonFirefox = 14;    // false positives
inline constexpr int kCveFirefox = 456;      // actual Firefox issues

struct CveRecord {
  Cve cve;
  bool mentions_firefox_only = false;  // not actually a Firefox bug
};

// The raw, unfiltered feed of candidate records (470 entries).
std::vector<CveRecord> generate_cve_feed(
    const std::vector<StandardSpec>& specs);

// Filter the feed as in §3.5: drop non-Firefox records, keep the rest.
std::vector<Cve> firefox_cves(const std::vector<CveRecord>& feed);

// Of the Firefox CVEs, those attributed to a standard.
std::vector<Cve> attributed_cves(const std::vector<Cve>& cves);

}  // namespace fu::catalog
