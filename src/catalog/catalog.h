// The feature catalog: the reproduction's equivalent of "the 1,392 methods
// and properties extracted from Firefox 46.0.1's WebIDL files" (§3.2).
//
// Construction pipeline (all deterministic):
//   1. For each of the 75 StandardSpecs, synthesize interface member lists
//      (names.cpp) and emit them as WebIDL source text (one document per
//      standard, the stand-in for Firefox's .webidl files).
//   2. Parse that corpus back through fu_webidl and extract features — the
//      same text→features pipeline the paper runs on Firefox's tree.
//   3. Attach calibration: per-feature target popularity (geometric-tail
//      decay from the standard's Table-2 site count), blocked-only flags,
//      and implementation dates snapped to the 186-release timeline.
//   4. Generate the CVE feed and filter it per §3.5.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "catalog/standard.h"

namespace fu::catalog {

class Catalog {
 public:
  // Builds the full catalog. `seed` perturbs only the synthesized names'
  // tie-breaking and date jitter, not the calibration table.
  explicit Catalog(std::uint64_t seed = 0x10f3a7u);

  // --- standards ------------------------------------------------------
  const std::vector<StandardSpec>& standards() const { return specs_; }
  const StandardSpec& standard(StandardId id) const { return specs_.at(id); }
  std::size_t standard_count() const { return specs_.size(); }
  // Abbreviation lookup ("SVG" -> id); returns kInvalidStandard if unknown.
  StandardId standard_by_abbreviation(std::string_view abbrev) const;

  // The standard's implementation date per the paper's rule (§3.4): the
  // implementation date of its most popular feature; falls back to its
  // earliest feature when nothing in the standard is used.
  support::Date standard_implementation_date(StandardId id) const;

  // --- features ---------------------------------------------------------
  const std::vector<Feature>& features() const { return features_; }
  const Feature& feature(FeatureId id) const { return features_.at(id); }
  const std::vector<FeatureId>& features_of(StandardId id) const {
    return by_standard_.at(id);
  }
  // Full-name lookup ("Document.prototype.createElement"); nullptr if absent.
  const Feature* find_feature(std::string_view full_name) const;

  // --- WebIDL corpus ----------------------------------------------------
  // The generated WebIDL source documents, one per standard, in standard
  // order. Parsing document i yields exactly the members of standard i.
  const std::vector<std::string>& webidl_corpus() const { return corpus_; }

  // --- timeline & CVEs --------------------------------------------------
  const std::vector<Release>& release_timeline() const;
  const std::vector<Cve>& cves() const { return cves_; }  // Firefox, filtered
  int cve_count(StandardId id) const;

  // All interfaces that host at least one feature, with singleton flags —
  // the browser uses this to build prototypes.
  struct InterfaceInfo {
    std::string name;
    bool singleton = false;
  };
  const std::vector<InterfaceInfo>& interfaces() const { return interfaces_; }

 private:
  void build_features(std::uint64_t seed);
  void calibrate(std::uint64_t seed);

  std::vector<StandardSpec> specs_;
  std::vector<Feature> features_;
  std::vector<std::vector<FeatureId>> by_standard_;
  std::vector<std::string> corpus_;
  std::map<std::string, FeatureId, std::less<>> by_name_;
  std::vector<Cve> cves_;
  std::vector<int> cve_counts_;
  std::vector<InterfaceInfo> interfaces_;
};

}  // namespace fu::catalog
