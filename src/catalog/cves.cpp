#include "catalog/cves.h"

#include <array>
#include <cstdio>
#include <string_view>

#include "support/rng.h"

namespace fu::catalog {

namespace {

constexpr std::array<std::string_view, 8> kBugKinds = {
    "use-after-free",
    "out-of-bounds read",
    "out-of-bounds write",
    "memory corruption leading to remote code execution",
    "information disclosure",
    "same-origin policy bypass",
    "integer overflow",
    "type confusion",
};

std::string cve_id(int year, int number) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "CVE-%d-%04d", year, number);
  return buf;
}

}  // namespace

std::vector<CveRecord> generate_cve_feed(
    const std::vector<StandardSpec>& specs) {
  std::vector<CveRecord> feed;
  support::Rng rng(0xc7e5eedULL);
  int serial = 1000;

  // Attributed CVEs: exactly spec.cve_count per standard, spread over the
  // three-year window the paper studies.
  for (std::size_t sid = 0; sid < specs.size(); ++sid) {
    const StandardSpec& spec = specs[sid];
    for (int i = 0; i < spec.cve_count; ++i) {
      CveRecord rec;
      rec.cve.year = 2013 + static_cast<int>(rng.below(4));
      rec.cve.id = cve_id(rec.cve.year, serial++);
      rec.cve.standard = static_cast<StandardId>(sid);
      rec.cve.summary =
          std::string(kBugKinds[rng.below(kBugKinds.size())]) +
          " in Firefox's implementation of " + spec.name;
      feed.push_back(std::move(rec));
    }
  }

  // Unattributed Firefox CVEs (engine/GC/JIT bugs not tied to one standard)
  // up to the 456 total.
  while (static_cast<int>(feed.size()) < kCveFirefox) {
    CveRecord rec;
    rec.cve.year = 2013 + static_cast<int>(rng.below(4));
    rec.cve.id = cve_id(rec.cve.year, serial++);
    rec.cve.standard = kInvalidStandard;
    rec.cve.summary = std::string(kBugKinds[rng.below(kBugKinds.size())]) +
                      " in the JavaScript engine or layout code";
    feed.push_back(std::move(rec));
  }

  // Non-Firefox records that merely mention Firefox (the 14 false positives
  // §3.5 discards on manual inspection).
  for (int i = 0; i < kCveNonFirefox; ++i) {
    CveRecord rec;
    rec.cve.year = 2013 + static_cast<int>(rng.below(4));
    rec.cve.id = cve_id(rec.cve.year, serial++);
    rec.cve.standard = kInvalidStandard;
    rec.cve.summary =
        "issue in third-party web software, demonstrated using Firefox";
    rec.mentions_firefox_only = true;
    feed.push_back(std::move(rec));
  }
  return feed;
}

std::vector<Cve> firefox_cves(const std::vector<CveRecord>& feed) {
  std::vector<Cve> out;
  for (const CveRecord& rec : feed) {
    if (!rec.mentions_firefox_only) out.push_back(rec.cve);
  }
  return out;
}

std::vector<Cve> attributed_cves(const std::vector<Cve>& cves) {
  std::vector<Cve> out;
  for (const Cve& cve : cves) {
    if (cve.standard != kInvalidStandard) out.push_back(cve);
  }
  return out;
}

}  // namespace fu::catalog
