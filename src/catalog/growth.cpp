#include "catalog/growth.h"

#include <cmath>

namespace fu::catalog {

namespace {

// Piecewise-linear LOC models (million lines). Anchor points are eyeballed
// from the OpenHub series the paper plots; Chrome drops 8.8M in mid-2013
// (the Blink fork removing WebKit code).
std::vector<LocSample> sample_linear(
    const std::vector<LocSample>& anchors) {
  std::vector<LocSample> out;
  for (double year = 2009.0; year <= 2015.75; year += 0.25) {
    // find surrounding anchors
    const LocSample* lo = &anchors.front();
    const LocSample* hi = &anchors.back();
    for (std::size_t i = 0; i + 1 < anchors.size(); ++i) {
      if (anchors[i].year <= year && year <= anchors[i + 1].year) {
        lo = &anchors[i];
        hi = &anchors[i + 1];
        break;
      }
    }
    double v;
    if (hi->year == lo->year) {
      v = lo->million_loc;
    } else {
      const double t = (year - lo->year) / (hi->year - lo->year);
      v = lo->million_loc + t * (hi->million_loc - lo->million_loc);
    }
    out.push_back({year, v});
  }
  return out;
}

}  // namespace

const std::vector<BrowserLocSeries>& browser_loc_history() {
  static const std::vector<BrowserLocSeries> kSeries = [] {
    std::vector<BrowserLocSeries> series;
    series.push_back(
        {"Chrome", sample_linear({{2009.0, 3.5},
                                  {2011.0, 6.5},
                                  {2013.4, 17.1},
                                  {2013.6, 8.3},  // Blink fork: -8.8M WebKit
                                  {2015.75, 14.9}})});
    series.push_back({"Firefox", sample_linear({{2009.0, 5.5},
                                                {2011.0, 7.2},
                                                {2013.0, 9.8},
                                                {2015.75, 12.9}})});
    series.push_back({"Safari", sample_linear({{2009.0, 2.1},
                                               {2011.0, 3.4},
                                               {2013.0, 5.6},
                                               {2015.75, 7.6}})});
    series.push_back({"IE", sample_linear({{2009.0, 3.2},
                                           {2011.0, 4.1},
                                           {2013.0, 5.0},
                                           {2015.75, 5.6}})});
    return series;
  }();
  return kSeries;
}

int standards_available_by(const Catalog& catalog, double year) {
  int count = 0;
  for (std::size_t sid = 0; sid < catalog.standard_count(); ++sid) {
    const StandardSpec& spec = catalog.standard(static_cast<StandardId>(sid));
    const double intro = static_cast<double>(spec.intro_year) +
                         (static_cast<double>(spec.intro_month) - 1) / 12.0;
    if (intro <= year) ++count;
  }
  return count;
}

std::vector<std::pair<int, int>> standards_by_year(const Catalog& catalog) {
  std::vector<std::pair<int, int>> out;
  for (int year = 2004; year <= 2016; ++year) {
    out.emplace_back(year,
                     standards_available_by(catalog, year + 0.999));
  }
  return out;
}

}  // namespace fu::catalog
