// Catalog types: web standards, features and their calibration data.
//
// The original study extracts 1,392 JavaScript-exposed features from the 757
// WebIDL files in Firefox 46.0.1 and groups them into 74 standards plus a
// Non-Standard bucket (§3.2–3.3). We cannot ship Firefox's source, so the
// catalog carries a specification table for all 75 standards — Table 2 rows
// verbatim where the paper publishes them, best-effort values elsewhere —
// and *generates* WebIDL source text from it, which is then parsed back
// through fu_webidl to produce the feature set used everywhere downstream.
//
// The per-standard calibration fields (target_sites, block_rate, ad/tracker
// affinity) drive the synthetic web generator in fu_net. They are priors for
// *generation*; every reported number in the benches is measured end-to-end
// through the instrumented browser, never copied from this table.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/date.h"

namespace fu::catalog {

using StandardId = std::uint16_t;
using FeatureId = std::uint32_t;

inline constexpr StandardId kInvalidStandard = 0xffff;
inline constexpr FeatureId kInvalidFeature = 0xffffffff;

// Static description of one web standard (one row of the calibration table).
struct StandardSpec {
  std::string name;          // e.g. "Scalable Vector Graphics 1.1 (2nd Edition)"
  std::string abbreviation;  // e.g. "SVG"
  int intro_year = 2004;     // when Firefox support landed
  int intro_month = 1;
  int feature_count = 1;   // number of WebIDL endpoints in the standard
  int used_features = 0;   // how many of them appear anywhere in the Alexa 10k
  int target_sites = 0;    // sites (of 10,000) using >=1 feature, per Table 2
  double block_rate = 0;   // Table 2 column 5 (fraction, 0..1)
  double ad_affinity = 0;  // P(blockable usage sits in an ad-flagged script)
  double tracker_affinity = 0;  // P(... in a tracker-flagged script)
  int cve_count = 0;            // Table 2 column 6
};

enum class FeatureKind : std::uint8_t {
  kMethod,    // Interface.prototype.method() — instrumented by shimming
  kProperty,  // property write — instrumented via watch on singletons only
};

// One JavaScript-exposed feature with its calibration.
struct Feature {
  FeatureId id = kInvalidFeature;
  StandardId standard = kInvalidStandard;
  std::string interface_name;  // "Document"
  std::string member_name;     // "createElement"
  std::string full_name;       // "Document.prototype.createElement"
  FeatureKind kind = FeatureKind::kMethod;
  bool on_singleton = false;  // host object is window/document/navigator/...
  int rank_in_standard = 0;   // 0 = the standard's most popular feature

  // Calibration priors for the synthetic web generator:
  int target_sites = 0;        // expected number of sites using this feature
  double conditional_use = 0;  // P(site uses f | site uses f's standard)
  bool blocked_only = false;   // usage exists only inside ad/tracker scripts

  support::Date implemented;   // first Firefox release carrying the feature
  std::string first_version;   // e.g. "23.0"
};

// One release in the historical-builds timeline (§3.4).
struct Release {
  std::string version;
  support::Date date;
};

// One CVE record (§3.5).
struct Cve {
  std::string id;         // "CVE-2014-1577"
  int year = 2014;
  StandardId standard = kInvalidStandard;  // kInvalidStandard = unattributed
  std::string summary;
};

// The full 75-row specification table, in Table 2 order followed by the
// standards the paper shows only in figures, then the never-used tail.
const std::vector<StandardSpec>& standard_specs();

// Totals the table is calibrated to (asserted in tests).
inline constexpr int kStandardCount = 75;
inline constexpr int kFeatureTotal = 1392;
inline constexpr int kAlexaSites = 10000;

}  // namespace fu::catalog
