// The 75-standard calibration table.
//
// Rows 1–53 are Table 2 of the paper, verbatim: name, abbreviation, feature
// count, sites using the standard (of the Alexa 10k), block rate and CVE
// count. (The paper prints the abbreviation "H-WS" for both Web Sockets and
// Web Storage; we keep H-WS for Web Sockets and use H-WB — the label that
// appears in Figure 4 — for Web Storage.)
//
// Rows 54–64 are standards the paper shows only in figures or prose (e.g.
// Ambient Light Events at 14 sites / 100% block rate, Encoding at exactly one
// site, §5.4); their site counts are taken from the text where stated and
// chosen to be <1% otherwise, since Table 2's inclusion rule implies every
// absent standard is below 1% with zero CVEs.
//
// Rows 65–75 are the never-used tail: the paper reports eleven standards with
// zero observed use (§5.2/§7.1) without naming them; we pick eleven standards
// that were unshipped or vestigial in Firefox 46 (Shadow DOM, EME, Web MIDI,
// ...).
//
// `used_features` fixes how many of each standard's endpoints appear at all
// in the synthetic web; the column is calibrated so the catalog-wide total of
// never-used features is ~689 of 1,392 (§5.3). `intro_year/month` is when the
// standard's first support landed in Firefox (§3.4); per-feature dates are
// derived from it in catalog.cpp. Ad/tracker affinities steer which third-
// party script class carries a standard's blockable usage (Figure 7).
#include "catalog/standard.h"

namespace fu::catalog {

const std::vector<StandardSpec>& standard_specs() {
  static const std::vector<StandardSpec> kSpecs = {
      // --- Table 2, in the paper's order -------------------------------
      // name, abbrev, year, month, #feat, #used, sites, block, ad, tr, cve
      {"HTML: Canvas", "H-C", 2005, 11, 54, 38, 7061, 0.331, 0.60, 0.60, 15},
      {"Scalable Vector Graphics 1.1 (2nd Edition)", "SVG", 2005, 11, 138, 52,
       1554, 0.868, 0.75, 0.65, 14},
      {"WebGL", "WEBGL", 2011, 3, 136, 41, 913, 0.607, 0.60, 0.55, 13},
      {"HTML: Web Workers", "H-WW", 2009, 6, 2, 2, 952, 0.599, 0.60, 0.50, 11},
      {"HTML 5", "HTML5", 2009, 6, 69, 45, 7077, 0.262, 0.60, 0.45, 10},
      {"Web Audio API", "WEBA", 2013, 10, 52, 18, 157, 0.811, 0.55, 0.70, 10},
      {"WebRTC 1.0", "WRTC", 2013, 6, 28, 9, 30, 0.292, 0.15, 0.90, 8},
      {"XMLHttpRequest", "AJAX", 2004, 11, 13, 12, 7957, 0.139, 0.65, 0.50, 8},
      {"DOM", "DOM", 2004, 11, 36, 30, 9088, 0.020, 0.50, 0.40, 4},
      {"Indexed Database API", "IDB", 2011, 3, 48, 14, 302, 0.563, 0.50, 0.60,
       3},
      {"Beacon", "BE", 2014, 9, 1, 1, 2373, 0.836, 0.50, 0.85, 2},
      {"Media Capture and Streams", "MCS", 2013, 6, 4, 3, 54, 0.490, 0.45,
       0.55, 2},
      {"Web Cryptography API", "WCR", 2014, 12, 14, 6, 7113, 0.678, 0.30, 0.85,
       2},
      {"CSSOM View Module", "CSS-VM", 2007, 6, 28, 18, 4833, 0.190, 0.60, 0.45,
       1},
      {"Fetch", "F", 2015, 6, 21, 6, 77, 0.333, 0.50, 0.50, 1},
      {"Gamepad", "GP", 2014, 4, 1, 1, 3, 0.000, 0.00, 0.00, 1},
      {"High Resolution Time, Level 2", "HRT", 2012, 6, 1, 1, 5769, 0.502,
       0.45, 0.80, 1},
      {"HTML: Web Sockets", "H-WS", 2011, 3, 2, 2, 544, 0.646, 0.55, 0.60, 1},
      {"HTML: Plugins", "H-P", 2005, 6, 10, 5, 129, 0.293, 0.55, 0.50, 1},
      {"Web Notifications", "WN", 2013, 6, 5, 3, 16, 0.000, 0.00, 0.00, 1},
      {"Resource Timing", "RT", 2015, 1, 3, 3, 786, 0.575, 0.50, 0.70, 1},
      {"Vibration API", "V", 2012, 3, 1, 1, 1, 0.000, 0.00, 0.00, 1},
      {"Battery Status API", "BA", 2012, 6, 2, 2, 2579, 0.373, 0.30, 0.70, 0},
      {"CSS Conditional Rules Module, Level 3", "CSS-CR", 2013, 6, 1, 1, 449,
       0.365, 0.55, 0.45, 0},
      {"CSS Font Loading Module, Level 3", "CSS-FO", 2015, 1, 12, 6, 2560,
       0.335, 0.60, 0.50, 0},
      {"CSS Object Model (CSSOM)", "CSS-OM", 2006, 6, 15, 12, 8193, 0.126,
       0.60, 0.45, 0},
      {"DOM, Level 1 - Specification", "DOM1", 2004, 11, 47, 40, 9139, 0.018,
       0.50, 0.40, 0},
      {"DOM, Level 2 - Core Specification", "DOM2-C", 2004, 11, 31, 26, 8951,
       0.030, 0.50, 0.40, 0},
      {"DOM, Level 2 - Events Specification", "DOM2-E", 2004, 11, 7, 7, 9077,
       0.027, 0.50, 0.40, 0},
      {"DOM, Level 2 - HTML Specification", "DOM2-H", 2005, 3, 11, 10, 9003,
       0.045, 0.50, 0.40, 0},
      {"DOM, Level 2 - Style Specification", "DOM2-S", 2005, 3, 19, 15, 8835,
       0.043, 0.50, 0.40, 0},
      {"DOM, Level 2 - Traversal and Range Specification", "DOM2-T", 2005, 6,
       36, 17, 4590, 0.334, 0.60, 0.50, 0},
      {"DOM, Level 3 - Core Specification", "DOM3-C", 2006, 3, 10, 9, 8495,
       0.039, 0.50, 0.40, 0},
      {"DOM, Level 3 - XPath Specification", "DOM3-X", 2006, 6, 9, 4, 381,
       0.791, 0.60, 0.60, 0},
      {"DOM Parsing and Serialization", "DOM-PS", 2012, 6, 3, 3, 2922, 0.607,
       0.70, 0.50, 0},
      {"execCommand", "EC", 2005, 6, 12, 8, 2730, 0.240, 0.60, 0.40, 0},
      {"File API", "FA", 2010, 1, 9, 6, 1991, 0.580, 0.60, 0.55, 0},
      {"Fullscreen API", "FULL", 2012, 1, 9, 5, 383, 0.799, 0.65, 0.50, 0},
      {"Geolocation API", "GEO", 2009, 6, 4, 3, 174, 0.131, 0.35, 0.55, 0},
      {"HTML: Channel Messaging", "H-CM", 2011, 3, 4, 4, 5018, 0.774, 0.90,
       0.50, 0},
      {"HTML: Web Storage", "H-WB", 2009, 6, 8, 8, 7875, 0.292, 0.55, 0.65, 0},
      {"HTML", "HTML", 2004, 11, 195, 105, 8980, 0.043, 0.50, 0.40, 0},
      {"HTML: History Interface", "H-HI", 2011, 3, 6, 5, 1729, 0.187, 0.45,
       0.45, 0},
      {"Media Source Extensions", "MSE", 2015, 11, 8, 5, 1616, 0.375, 0.70,
       0.40, 0},
      {"Performance Timeline", "PT", 2012, 6, 2, 2, 4690, 0.758, 0.55, 0.80,
       0},
      {"Performance Timeline, Level 2", "PT2", 2015, 6, 1, 1, 1728, 0.937,
       0.75, 0.92, 0},
      {"Selection API", "SEL", 2010, 7, 14, 8, 2575, 0.366, 0.55, 0.50, 0},
      {"Selectors API, Level 1", "SLC", 2013, 1, 6, 6, 8674, 0.077, 0.55, 0.45,
       0},
      {"Timing control for script-based animations", "TC", 2011, 9, 1, 1, 3568,
       0.769, 0.80, 0.50, 0},
      {"UI Events Specification", "UIE", 2014, 6, 8, 5, 1137, 0.568, 0.80,
       0.35, 0},
      {"User Timing, Level 2", "UTL", 2015, 1, 4, 3, 3325, 0.337, 0.50, 0.60,
       0},
      {"DOM4", "DOM4", 2012, 6, 3, 3, 5747, 0.376, 0.60, 0.50, 0},
      {"Non-Standard", "NS", 2004, 11, 65, 30, 8669, 0.245, 0.60, 0.50, 0},

      // --- figure/prose-only standards (<1% of sites, zero CVEs) -------
      {"Ambient Light Events", "ALS", 2013, 6, 4, 2, 14, 1.000, 0.50, 0.95, 0},
      {"Clipboard API and events", "CO", 2015, 9, 6, 3, 25, 0.200, 0.50, 0.40,
       0},
      {"DeviceOrientation Event Specification", "DO", 2011, 8, 5, 3, 60, 0.760,
       0.50, 0.70, 0},
      {"Encoding", "E", 2013, 2, 8, 1, 1, 0.000, 0.00, 0.00, 0},
      {"HTML 5.1", "HTML51", 2015, 10, 12, 4, 40, 0.760, 0.60, 0.50, 0},
      {"MediaStream Recording", "MSR", 2013, 10, 6, 3, 20, 0.970, 0.50, 0.60,
       0},
      {"Navigation Timing", "NT", 2011, 9, 9, 5, 80, 0.780, 0.50, 0.80, 0},
      {"Pointer Events", "PE", 2016, 1, 10, 3, 30, 0.100, 0.40, 0.40, 0},
      {"Page Visibility, Level 2", "PV", 2013, 1, 4, 2, 70, 0.760, 0.60, 0.70,
       0},
      {"Service Workers", "SW", 2016, 1, 14, 4, 45, 0.150, 0.30, 0.40, 0},
      {"URL", "URL", 2013, 12, 14, 5, 90, 0.350, 0.50, 0.50, 0},

      // --- the never-used tail (11 standards, §5.2) ---------------------
      {"Directory Upload", "DU", 2016, 4, 3, 0, 0, 0, 0, 0, 0},
      {"Encrypted Media Extensions", "EME", 2015, 5, 14, 0, 0, 0, 0, 0, 0},
      {"HTML: Image Maps", "GIM", 2004, 11, 4, 0, 0, 0, 0, 0, 0},
      {"HTML: Broadcast Channel", "H-B", 2015, 5, 4, 0, 0, 0, 0, 0, 0},
      {"Media Capture Depth Stream Extensions", "MCD", 2016, 1, 3, 0, 0, 0, 0,
       0, 0},
      {"Pointer Lock", "PL", 2012, 8, 4, 0, 0, 0, 0, 0, 0},
      {"Shadow DOM", "SD", 2016, 4, 12, 0, 0, 0, 0, 0, 0},
      {"Screen Orientation", "SO", 2015, 12, 4, 0, 0, 0, 0, 0, 0},
      {"Tracking Preference Expression (DNT)", "TPE", 2011, 6, 2, 0, 0, 0, 0,
       0, 0},
      {"WebVTT: The Web Video Text Tracks Format", "WEBVTT", 2014, 7, 12, 0, 0,
       0, 0, 0, 0},
      {"Web MIDI API", "MIDI", 2016, 4, 9, 0, 0, 0, 0, 0, 0},
  };
  return kSpecs;
}

}  // namespace fu::catalog
