// Feature-name synthesis for the catalog.
//
// We cannot ship Firefox's WebIDL corpus, so each standard's endpoints get
// realistic names: the features the paper cites are pinned verbatim
// (Document.prototype.createElement, XMLHttpRequest.prototype.open,
// Navigator.prototype.vibrate, PluginArray.prototype.refresh,
// SVGTextContentElement.prototype.getComputedTextLength, ...), and the rest
// are synthesized deterministically from per-standard interface lists and
// verb/noun pools. Pinned features occupy the lowest ranks (rank 0 = the
// standard's most popular feature) in the order listed.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "catalog/standard.h"

namespace fu::catalog {

struct NamedMember {
  std::string interface_name;
  std::string member_name;
  FeatureKind kind = FeatureKind::kMethod;
};

// Interfaces that exist as singleton objects in a page's global environment
// (window, window.document, window.navigator, ...). Only property features
// hosted on these can be observed by the extension's Object.watch-style
// instrumentation (§4.2.2).
bool is_singleton_interface(const std::string& interface_name);

// The curated interface list for a standard (by abbreviation). Always
// non-empty; falls back to a name derived from the abbreviation.
std::vector<std::string> interfaces_for(const StandardSpec& spec);

// Produce exactly spec.feature_count uniquely named members for a standard,
// pinned features first. Deterministic. When `taken` is provided, names
// already present (keys "Interface#member") are never reused and every
// emitted name is added — interfaces like Document are shared by many
// standards, and feature names must be unique across the whole catalog.
std::vector<NamedMember> members_for(const StandardSpec& spec,
                                     std::set<std::string>* taken = nullptr);

// All pinned (paper-cited) member names, as "Interface#member" keys. The
// catalog reserves these before synthesizing names so that a synthesized
// member of an early standard can never squat a later standard's pin.
std::set<std::string> all_pinned_member_keys();

// JavaScript expression that reaches a live instance of the interface in a
// page's global environment ("navigator", "crypto.subtle",
// "navigator.plugins", ...). Empty when there is no ambient instance — the
// generator then writes `new Interface()` instead. The browser guarantees
// every non-empty path exists before page scripts run.
std::string global_access_path(const std::string& interface_name);

}  // namespace fu::catalog
