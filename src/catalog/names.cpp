#include "catalog/names.h"

#include <array>
#include <map>
#include <set>
#include <string_view>

#include "support/rng.h"

namespace fu::catalog {

namespace {

using Pinned = std::vector<NamedMember>;

constexpr auto kMethod = FeatureKind::kMethod;
constexpr auto kProperty = FeatureKind::kProperty;

// Interfaces exposed as page singletons.
const std::set<std::string>& singleton_interfaces() {
  static const std::set<std::string> kSingletons = {
      "Window",   "Document",  "Navigator", "Screen",
      "History",  "Location",  "Performance", "Crypto",
      "Console",  "LocalStorage",
  };
  return kSingletons;
}

// Curated interface lists. The first interface is the standard's flagship
// and hosts its most popular feature when no pin overrides that.
const std::map<std::string, std::vector<std::string>>& interface_table() {
  static const std::map<std::string, std::vector<std::string>> kTable = {
      {"H-C",
       {"CanvasRenderingContext2D", "HTMLCanvasElement", "CanvasGradient",
        "TextMetrics", "CanvasPattern", "ImageData"}},
      {"SVG",
       {"SVGElement", "SVGSVGElement", "SVGTextContentElement",
        "SVGPathElement", "SVGAnimationElement", "SVGTransform",
        "SVGMatrix", "SVGLength", "SVGGraphicsElement"}},
      {"WEBGL",
       {"WebGLRenderingContext", "WebGLTexture", "WebGLShader",
        "WebGLProgram", "WebGLBuffer", "WebGLFramebuffer"}},
      {"H-WW", {"Worker"}},
      {"HTML5",
       {"HTMLElement", "HTMLMediaElement", "HTMLVideoElement",
        "HTMLAudioElement", "HTMLTrackElement", "DataTransfer"}},
      {"WEBA",
       {"AudioContext", "AudioNode", "GainNode", "OscillatorNode",
        "AnalyserNode", "AudioBuffer", "BiquadFilterNode"}},
      {"WRTC",
       {"RTCPeerConnection", "RTCDataChannel", "RTCIceCandidate",
        "RTCSessionDescription"}},
      {"AJAX", {"XMLHttpRequest", "XMLHttpRequestUpload"}},
      {"DOM", {"Document", "Node", "Element", "Attr", "CharacterData"}},
      {"IDB",
       {"IDBDatabase", "IDBObjectStore", "IDBIndex", "IDBCursor",
        "IDBTransaction", "IDBFactory", "IDBKeyRange"}},
      {"BE", {"Navigator"}},
      {"MCS", {"MediaStream", "MediaStreamTrack", "Navigator"}},
      {"WCR", {"Crypto", "SubtleCrypto", "CryptoKey"}},
      {"CSS-VM", {"Window", "Element", "Screen", "MouseEvent"}},
      {"F", {"Request", "Response", "Headers", "Window"}},
      {"GP", {"Navigator"}},
      {"HRT", {"Performance"}},
      {"H-WS", {"WebSocket"}},
      {"H-P", {"PluginArray", "Plugin", "MimeTypeArray", "Navigator"}},
      {"WN", {"Notification"}},
      {"RT", {"Performance"}},
      {"V", {"Navigator"}},
      {"BA", {"Navigator", "BatteryManager"}},
      {"CSS-CR", {"CSS"}},
      {"CSS-FO", {"FontFace", "FontFaceSet", "Document"}},
      {"CSS-OM", {"CSSStyleSheet", "CSSStyleDeclaration", "Window",
                  "CSSRuleList"}},
      {"DOM1", {"Document", "Node", "Element", "NodeList", "NamedNodeMap"}},
      {"DOM2-C", {"Document", "Node", "Element", "DOMImplementation"}},
      {"DOM2-E", {"EventTarget", "Event", "Document", "MouseEvent"}},
      {"DOM2-H", {"Document", "HTMLCollection", "HTMLFormElement",
                  "HTMLSelectElement"}},
      {"DOM2-S", {"Document", "CSSStyleDeclaration", "StyleSheetList",
                  "HTMLLinkElement"}},
      {"DOM2-T", {"Document", "Range", "NodeIterator", "TreeWalker"}},
      {"DOM3-C", {"Document", "Node", "Element"}},
      {"DOM3-X", {"Document", "XPathResult", "XPathExpression",
                  "XPathEvaluator"}},
      {"DOM-PS", {"DOMParser", "XMLSerializer", "Element"}},
      {"EC", {"Document"}},
      {"FA", {"FileReader", "Blob", "File", "FileList"}},
      {"FULL", {"Element", "Document"}},
      {"GEO", {"Geolocation", "Navigator"}},
      {"H-CM", {"MessagePort", "Window", "MessageChannel"}},
      {"H-WB", {"Storage", "Window"}},
      {"HTML",
       {"HTMLElement", "HTMLInputElement", "HTMLFormElement",
        "HTMLAnchorElement", "HTMLImageElement", "HTMLIFrameElement",
        "HTMLTableElement", "HTMLSelectElement", "HTMLTextAreaElement",
        "HTMLButtonElement", "HTMLScriptElement", "HTMLDocument", "Window"}},
      {"H-HI", {"History", "Window"}},
      {"MSE", {"MediaSource", "SourceBuffer"}},
      {"PT", {"Performance"}},
      {"PT2", {"PerformanceObserver"}},
      {"SEL", {"Selection", "Window", "Document"}},
      {"SLC", {"Document", "Element"}},
      {"TC", {"Window"}},
      {"UIE", {"UIEvent", "KeyboardEvent", "WheelEvent", "InputEvent"}},
      {"UTL", {"Performance"}},
      {"DOM4", {"Document", "Element", "Node"}},
      {"NS",
       {"Window", "Document", "Navigator", "HTMLElement", "Event",
        "InstallTrigger"}},
      {"ALS", {"Window", "DeviceLightEvent"}},
      {"CO", {"ClipboardEvent", "DataTransfer", "Document"}},
      {"DO", {"Window", "DeviceOrientationEvent", "DeviceMotionEvent"}},
      {"E", {"TextDecoder", "TextEncoder"}},
      {"HTML51", {"HTMLElement", "HTMLPictureElement", "HTMLMenuItemElement",
                  "Document"}},
      {"MSR", {"MediaRecorder", "BlobEvent"}},
      {"NT", {"PerformanceTiming", "PerformanceNavigation", "Performance"}},
      {"PE", {"PointerEvent", "Element", "Navigator"}},
      {"PV", {"Document"}},
      {"SW", {"ServiceWorkerContainer", "ServiceWorkerRegistration",
              "ServiceWorker", "Cache", "CacheStorage"}},
      {"URL", {"URL", "URLSearchParams"}},
      {"DU", {"Directory", "HTMLInputElement"}},
      {"EME", {"MediaKeys", "MediaKeySession", "MediaKeySystemAccess",
               "Navigator"}},
      {"GIM", {"HTMLMapElement", "HTMLAreaElement"}},
      {"H-B", {"BroadcastChannel"}},
      {"MCD", {"MediaStreamTrack", "ImageCapture"}},
      {"PL", {"Element", "Document", "MouseEvent"}},
      {"SD", {"ShadowRoot", "Element", "HTMLSlotElement"}},
      {"SO", {"Screen", "ScreenOrientation"}},
      {"TPE", {"Navigator"}},
      {"WEBVTT", {"VTTCue", "TextTrack", "TextTrackList", "VTTRegion"}},
      {"MIDI", {"MIDIAccess", "MIDIInput", "MIDIOutput", "MIDIPort",
                "Navigator"}},
  };
  return kTable;
}

// Features the paper names explicitly, pinned at the top ranks of their
// standards so headline sentences (e.g. "XMLHttpRequest.prototype.open is
// used on 7,955 sites") reproduce with the right names attached.
const std::map<std::string, Pinned>& pinned_table() {
  static const std::map<std::string, Pinned> kTable = {
      {"DOM1",
       {{"Document", "createElement", kMethod},
        {"Node", "appendChild", kMethod},
        {"Node", "cloneNode", kMethod},
        {"Node", "insertBefore", kMethod},
        {"Document", "getElementById", kMethod},
        {"Document", "createTextNode", kMethod},
        {"Node", "removeChild", kMethod}}},
      {"AJAX",
       {{"XMLHttpRequest", "open", kMethod},
        {"XMLHttpRequest", "send", kMethod},
        {"XMLHttpRequest", "setRequestHeader", kMethod},
        {"XMLHttpRequest", "getResponseHeader", kMethod},
        {"XMLHttpRequest", "abort", kMethod}}},
      {"SLC",
       {{"Document", "querySelectorAll", kMethod},
        {"Document", "querySelector", kMethod},
        {"Element", "querySelectorAll", kMethod},
        {"Element", "querySelector", kMethod}}},
      {"V", {{"Navigator", "vibrate", kMethod}}},
      {"H-P",
       {{"PluginArray", "refresh", kMethod},
        {"PluginArray", "item", kMethod},
        {"Plugin", "namedItem", kMethod}}},
      {"SVG",
       {{"SVGSVGElement", "createSVGPoint", kMethod},
        {"SVGTextContentElement", "getComputedTextLength", kMethod},
        {"SVGElement", "getBBox", kMethod}}},
      {"WCR",
       {{"Crypto", "getRandomValues", kMethod},
        {"SubtleCrypto", "digest", kMethod},
        {"SubtleCrypto", "encrypt", kMethod}}},
      {"BE", {{"Navigator", "sendBeacon", kMethod}}},
      {"TC", {{"Window", "requestAnimationFrame", kMethod}}},
      {"HRT", {{"Performance", "now", kMethod}}},
      {"PT2", {{"PerformanceObserver", "observe", kMethod}}},
      {"GP", {{"Navigator", "getGamepads", kMethod}}},
      {"CSS-CR", {{"CSS", "supports", kMethod}}},
      {"EC",
       {{"Document", "execCommand", kMethod},
        {"Document", "queryCommandEnabled", kMethod},
        {"Document", "queryCommandState", kMethod}}},
      {"H-WW", {{"Worker", "postMessage", kMethod},
                {"Worker", "terminate", kMethod}}},
      {"H-WS", {{"WebSocket", "send", kMethod},
                {"WebSocket", "close", kMethod}}},
      {"H-CM",
       {{"Window", "postMessage", kMethod},
        {"MessagePort", "postMessage", kMethod},
        {"MessagePort", "start", kMethod},
        {"MessagePort", "close", kMethod}}},
      {"H-WB",
       {{"Storage", "getItem", kMethod},
        {"Storage", "setItem", kMethod},
        {"Storage", "removeItem", kMethod},
        {"Storage", "key", kMethod},
        {"Storage", "clear", kMethod}}},
      {"DOM2-E",
       {{"EventTarget", "addEventListener", kMethod},
        {"EventTarget", "removeEventListener", kMethod},
        {"EventTarget", "dispatchEvent", kMethod},
        {"Event", "preventDefault", kMethod},
        {"Event", "stopPropagation", kMethod},
        {"Document", "createEvent", kMethod},
        {"Event", "initEvent", kMethod}}},
      {"DOM2-T",
       {{"Document", "createRange", kMethod},
        {"Range", "selectNodeContents", kMethod},
        {"Range", "cloneContents", kMethod}}},
      {"DOM3-X",
       {{"Document", "evaluate", kMethod},
        {"XPathResult", "iterateNext", kMethod}}},
      {"CSS-OM",
       {{"CSSStyleSheet", "insertRule", kMethod},
        {"Window", "getComputedStyle", kMethod},
        {"CSSStyleSheet", "deleteRule", kMethod}}},
      {"GEO",
       {{"Geolocation", "getCurrentPosition", kMethod},
        {"Geolocation", "watchPosition", kMethod},
        {"Geolocation", "clearWatch", kMethod}}},
      {"FULL",
       {{"Element", "requestFullscreen", kMethod},
        {"Document", "exitFullscreen", kMethod}}},
      {"H-HI",
       {{"History", "pushState", kMethod},
        {"History", "replaceState", kMethod},
        {"History", "go", kMethod}}},
      {"DOM-PS",
       {{"DOMParser", "parseFromString", kMethod},
        {"XMLSerializer", "serializeToString", kMethod},
        {"Element", "insertAdjacentHTML", kMethod}}},
      {"F", {{"Window", "fetch", kMethod},
             {"Headers", "append", kMethod}}},
      {"BA", {{"Navigator", "getBattery", kMethod}}},
      {"DOM4",
       {{"Element", "matches", kMethod},
        {"Element", "closest", kMethod},
        {"Document", "adoptNode", kMethod}}},
      {"PT",
       {{"Performance", "getEntriesByType", kMethod},
        {"Performance", "getEntriesByName", kMethod}}},
      {"RT",
       {{"Performance", "clearResourceTimings", kMethod},
        {"Performance", "setResourceTimingBufferSize", kMethod}}},
      {"UTL",
       {{"Performance", "mark", kMethod},
        {"Performance", "measure", kMethod},
        {"Performance", "clearMarks", kMethod}}},
      {"ALS", {{"Window", "ondevicelight", kProperty}}},
      {"E", {{"TextDecoder", "decode", kMethod}}},
      {"SW", {{"ServiceWorkerContainer", "register", kMethod}}},
      {"URL", {{"URL", "createObjectURL", kMethod},
               {"URLSearchParams", "get", kMethod}}},
      {"MSR", {{"MediaRecorder", "start", kMethod},
               {"MediaRecorder", "stop", kMethod}}},
      {"NT", {{"PerformanceTiming", "toJSON", kMethod}}},
      {"PV", {{"Document", "onvisibilitychange", kProperty}}},
      {"MCS", {{"Navigator", "getUserMedia", kMethod},
               {"MediaStream", "getTracks", kMethod}}},
      {"WN", {{"Notification", "requestPermission", kMethod}}},
      {"DO", {{"Window", "ondeviceorientation", kProperty},
              {"Window", "ondevicemotion", kProperty}}},
  };
  return kTable;
}

constexpr std::array<std::string_view, 44> kVerbs = {
    "get",      "set",     "create",  "update",  "remove",   "add",
    "query",    "request", "cancel",  "init",    "load",     "save",
    "open",     "close",   "start",   "stop",    "register", "observe",
    "connect",  "send",    "parse",   "clone",   "append",   "insert",
    "replace",  "delete",  "enable",  "disable", "toggle",   "measure",
    "mark",     "clear",   "reset",   "resolve", "attach",   "detach",
    "begin",    "end",     "sync",    "flush",   "lock",     "scan",
    "validate", "refresh"};

constexpr std::array<std::string_view, 56> kNouns = {
    "Item",     "Entry",      "State",     "Value",     "Buffer",
    "Stream",   "Context",    "Frame",     "Rect",      "Point",
    "Range",    "Rule",       "Style",     "Track",     "Channel",
    "Key",      "Data",       "Source",    "Target",    "Texture",
    "Shader",   "Program",    "Sample",    "Gain",      "Filter",
    "Path",     "Segment",    "Transform", "Matrix",    "Record",
    "Cursor",   "Index",      "Store",     "Header",    "Credential",
    "Position", "Timestamp",  "Observer",  "Listener",  "Message",
    "Port",     "Attribute",  "Selector",  "Animation", "Gradient",
    "Pattern",  "Font",       "Glyph",     "Metric",    "Viewport",
    "Layer",    "Surface",    "Sensor",    "Session",   "Token",
    "Cache"};

constexpr std::array<std::string_view, 20> kPropertyStems = {
    "mode",     "hint",    "policy",  "quality", "ratio",
    "timeout",  "origin",  "label",   "variant", "profile",
    "priority", "channel", "preset",  "scale",   "offset",
    "budget",   "locale",  "theme",   "epoch",   "quota"};

std::string camel_concat(std::string_view verb, std::string_view noun) {
  std::string out(verb);
  out.append(noun);
  return out;
}

}  // namespace

bool is_singleton_interface(const std::string& interface_name) {
  return singleton_interfaces().count(interface_name) > 0;
}

std::string global_access_path(const std::string& interface_name) {
  static const std::map<std::string, std::string> kPaths = {
      {"Window", "window"},
      {"Document", "document"},
      {"Navigator", "navigator"},
      {"Screen", "screen"},
      {"History", "history"},
      {"Location", "location"},
      {"Performance", "performance"},
      {"Crypto", "crypto"},
      {"Console", "console"},
      {"Storage", "localStorage"},
      {"LocalStorage", "localStorage"},
      {"PluginArray", "navigator.plugins"},
      {"MimeTypeArray", "navigator.mimeTypes"},
      {"Geolocation", "navigator.geolocation"},
      {"SubtleCrypto", "crypto.subtle"},
      {"PerformanceTiming", "performance.timing"},
      {"PerformanceNavigation", "performance.navigation"},
      {"ServiceWorkerContainer", "navigator.serviceWorker"},
  };
  const auto it = kPaths.find(interface_name);
  return it == kPaths.end() ? std::string() : it->second;
}

std::vector<std::string> interfaces_for(const StandardSpec& spec) {
  const auto& table = interface_table();
  const auto it = table.find(spec.abbreviation);
  if (it != table.end()) return it->second;
  return {spec.abbreviation + "Interface"};
}

std::set<std::string> all_pinned_member_keys() {
  std::set<std::string> keys;
  for (const auto& [abbrev, pins] : pinned_table()) {
    for (const NamedMember& m : pins) {
      keys.insert(m.interface_name + "#" + m.member_name);
    }
  }
  return keys;
}

std::vector<NamedMember> members_for(const StandardSpec& spec,
                                     std::set<std::string>* taken) {
  std::vector<NamedMember> members;
  std::set<std::string> local;  // uniqueness within this standard
  const auto emit = [&](NamedMember m, bool pinned) {
    const std::string key = m.interface_name + "#" + m.member_name;
    if (!local.insert(key).second) return false;
    // Pins are pre-reserved in `taken`; synthesized names must dodge both
    // other standards' names and every pin.
    if (taken != nullptr) {
      if (pinned) {
        taken->insert(key);
      } else if (!taken->insert(key).second) {
        local.erase(key);
        return false;
      }
    }
    members.push_back(std::move(m));
    return true;
  };

  const auto& pins = pinned_table();
  if (const auto it = pins.find(spec.abbreviation); it != pins.end()) {
    for (const NamedMember& m : it->second) {
      if (static_cast<int>(members.size()) >= spec.feature_count) break;
      emit(m, /*pinned=*/true);
    }
  }

  const std::vector<std::string> interfaces = interfaces_for(spec);
  support::Rng rng(0x5eedc0deULL, spec.abbreviation);
  std::size_t iface_cursor = 0;
  while (static_cast<int>(members.size()) < spec.feature_count) {
    const std::string& iface = interfaces[iface_cursor % interfaces.size()];
    ++iface_cursor;
    NamedMember m;
    m.interface_name = iface;
    // Roughly a fifth of features are writable properties; the extension can
    // only watch them on singleton hosts, so we only mint them there.
    if (is_singleton_interface(iface) && rng.chance(0.22)) {
      m.kind = kProperty;
      const auto stem = kPropertyStems[rng.below(kPropertyStems.size())];
      const auto noun = kNouns[rng.below(kNouns.size())];
      std::string name(stem);
      name.append(noun);
      m.member_name = std::move(name);
    } else {
      m.kind = kMethod;
      const auto verb = kVerbs[rng.below(kVerbs.size())];
      const auto noun = kNouns[rng.below(kNouns.size())];
      m.member_name = camel_concat(verb, noun);
    }
    emit(std::move(m), /*pinned=*/false);
  }
  return members;
}

}  // namespace fu::catalog
