#include "catalog/catalog.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <stdexcept>

#include "catalog/cves.h"
#include "catalog/names.h"
#include "catalog/releases.h"
#include "support/rng.h"
#include "webidl/ast.h"
#include "webidl/parser.h"
#include "webidl/writer.h"

namespace fu::catalog {

namespace {

// Argument shapes for synthesized operations, cycled deterministically.
const std::vector<std::vector<webidl::Argument>>& argument_shapes() {
  static const std::vector<std::vector<webidl::Argument>> kShapes = {
      {},
      {{"DOMString", "name", false, false}},
      {{"long", "index", false, false}},
      {{"DOMString", "name", false, false}, {"any", "value", false, false}},
      {{"Node", "node", false, false},
       {"boolean", "deep", /*optional=*/true, false}},
      {{"double", "x", false, false}, {"double", "y", false, false}},
      {{"any", "options", /*optional=*/true, false}},
  };
  return kShapes;
}

}  // namespace

Catalog::Catalog(std::uint64_t seed) : specs_(standard_specs()) {
  build_features(seed);
  calibrate(seed);

  const std::vector<CveRecord> feed = generate_cve_feed(specs_);
  cves_ = firefox_cves(feed);
  cve_counts_.assign(specs_.size(), 0);
  for (const Cve& cve : cves_) {
    if (cve.standard != kInvalidStandard) ++cve_counts_[cve.standard];
  }
}

void Catalog::build_features(std::uint64_t seed) {
  (void)seed;  // member names are fixed by the calibration table
  by_standard_.resize(specs_.size());
  std::map<std::string, bool> interface_seen;

  // Feature names are unique catalog-wide; paper-cited names are reserved
  // up front so no synthesized member can take them first.
  std::set<std::string> taken = all_pinned_member_keys();

  for (std::size_t sid = 0; sid < specs_.size(); ++sid) {
    const StandardSpec& spec = specs_[sid];
    const std::vector<NamedMember> members = members_for(spec, &taken);

    // Emit the standard as a WebIDL document: one interface block per
    // distinct interface, members in synthesis order within each block.
    webidl::Document doc;
    std::map<std::string, std::size_t> iface_index;
    std::size_t shape_cursor = sid;  // vary arg shapes across standards
    for (const NamedMember& nm : members) {
      auto it = iface_index.find(nm.interface_name);
      if (it == iface_index.end()) {
        it = iface_index.emplace(nm.interface_name, doc.interfaces.size())
                 .first;
        webidl::Interface iface;
        iface.name = nm.interface_name;
        doc.interfaces.push_back(std::move(iface));
      }
      webidl::Member m;
      if (nm.kind == FeatureKind::kProperty) {
        m.kind = webidl::MemberKind::kAttribute;
        m.return_type = "DOMString";
      } else {
        m.kind = webidl::MemberKind::kOperation;
        m.return_type = "any";
        m.arguments = argument_shapes()[shape_cursor % argument_shapes().size()];
        ++shape_cursor;
      }
      m.name = nm.member_name;
      doc.interfaces[it->second].members.push_back(std::move(m));
    }

    // The corpus text is what downstream "sees" — parse it back and extract
    // features through the same path the paper uses on Firefox's tree.
    corpus_.push_back(webidl::write_document(doc));
    const webidl::Document parsed =
        webidl::merge_partials(webidl::parse(corpus_.back()));
    const std::vector<webidl::ExtractedFeature> extracted =
        webidl::extract_features(parsed);
    if (extracted.size() != members.size()) {
      throw std::logic_error("catalog: WebIDL round-trip lost members for " +
                             spec.name);
    }

    // Restore synthesis order (pins first) for rank assignment.
    std::map<std::string, std::size_t> synth_order;
    for (std::size_t i = 0; i < members.size(); ++i) {
      synth_order[members[i].interface_name + "#" + members[i].member_name] = i;
    }
    std::vector<const webidl::ExtractedFeature*> ordered(extracted.size());
    for (const webidl::ExtractedFeature& ef : extracted) {
      ordered[synth_order.at(ef.interface_name + "#" + ef.member_name)] = &ef;
    }

    for (std::size_t rank = 0; rank < ordered.size(); ++rank) {
      const webidl::ExtractedFeature& ef = *ordered[rank];
      Feature f;
      f.id = static_cast<FeatureId>(features_.size());
      f.standard = static_cast<StandardId>(sid);
      f.interface_name = ef.interface_name;
      f.member_name = ef.member_name;
      f.full_name = ef.full_name;
      f.kind = (ef.kind == webidl::MemberKind::kAttribute ||
                ef.kind == webidl::MemberKind::kReadonlyAttribute ||
                ef.kind == webidl::MemberKind::kStaticAttribute)
                   ? FeatureKind::kProperty
                   : FeatureKind::kMethod;
      f.on_singleton = is_singleton_interface(ef.interface_name);
      f.rank_in_standard = static_cast<int>(rank);
      by_standard_[sid].push_back(f.id);
      by_name_.emplace(f.full_name, f.id);
      if (!interface_seen.count(f.interface_name)) {
        interface_seen[f.interface_name] = true;
        interfaces_.push_back({f.interface_name, f.on_singleton});
      }
      features_.push_back(std::move(f));
    }
  }
}

void Catalog::calibrate(std::uint64_t seed) {
  const Release& last = release_by_version("46.0.1");
  for (std::size_t sid = 0; sid < specs_.size(); ++sid) {
    const StandardSpec& spec = specs_[sid];
    support::Rng rng(seed, spec.abbreviation);
    const support::Date intro(spec.intro_year, spec.intro_month, 1);
    const Release& base = release_on_or_after(intro);

    for (const FeatureId fid : by_standard_[sid]) {
      Feature& f = features_[fid];
      const int k = f.rank_in_standard;

      // Popularity: geometric/Zipf tail below the standard's headline count.
      if (k < spec.used_features && spec.target_sites > 0) {
        const double decayed =
            static_cast<double>(spec.target_sites) *
            std::pow(static_cast<double>(k + 1), -1.55);
        f.target_sites = std::max(1, static_cast<int>(std::lround(decayed)));
        f.conditional_use =
            static_cast<double>(f.target_sites) /
            static_cast<double>(std::max(1, spec.target_sites));
        // Some subordinate features are used exclusively by ad/tracker
        // scripts; these end up with ~100% block rates (§5.3's "10% of
        // features blocked more than 90% of the time").
        f.blocked_only = k > 0 && rng.chance(spec.block_rate * 0.65);
      } else {
        f.target_sites = 0;
        f.conditional_use = 0;
        f.blocked_only = false;
      }

      // Implementation date: the standard's flagship feature lands with the
      // standard; the rest trickle in over the following ~2.5 years, always
      // snapped to a real release and never after the survey browser.
      if (k == 0) {
        f.implemented = base.date;
        f.first_version = base.version;
      } else {
        const auto jitter = static_cast<std::int64_t>(rng.below(900));
        const Release& rel = release_on_or_after(base.date.plus_days(jitter));
        const Release& capped = rel.date > last.date ? last : rel;
        f.implemented = capped.date;
        f.first_version = capped.version;
      }
    }
  }
}

StandardId Catalog::standard_by_abbreviation(std::string_view abbrev) const {
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    if (specs_[i].abbreviation == abbrev) return static_cast<StandardId>(i);
  }
  return kInvalidStandard;
}

support::Date Catalog::standard_implementation_date(StandardId id) const {
  const std::vector<FeatureId>& fids = by_standard_.at(id);
  if (fids.empty()) throw std::logic_error("standard with no features");

  const Feature* most_popular = nullptr;
  for (const FeatureId fid : fids) {
    const Feature& f = features_[fid];
    if (f.target_sites <= 0) continue;
    if (most_popular == nullptr || f.target_sites > most_popular->target_sites ||
        (f.target_sites == most_popular->target_sites &&
         f.implemented < most_popular->implemented)) {
      most_popular = &f;
    }
  }
  if (most_popular != nullptr) return most_popular->implemented;

  // Nothing in the standard is used: default to the earliest feature (§3.4).
  support::Date earliest = features_[fids.front()].implemented;
  for (const FeatureId fid : fids) {
    earliest = std::min(earliest, features_[fid].implemented);
  }
  return earliest;
}

const Feature* Catalog::find_feature(std::string_view full_name) const {
  const auto it = by_name_.find(full_name);
  return it == by_name_.end() ? nullptr : &features_[it->second];
}

const std::vector<Release>& Catalog::release_timeline() const {
  return releases();
}

int Catalog::cve_count(StandardId id) const { return cve_counts_.at(id); }

}  // namespace fu::catalog
