// Lexer for the WebIDL subset. Produces a flat token stream; comments
// (// and /* */) and whitespace are skipped.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace fu::webidl {

enum class TokenKind {
  kIdentifier,
  kInteger,
  kFloat,
  kString,
  kPunct,  // single punctuation char or "..." / "?" etc.
  kEof,
};

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;
  std::size_t line = 0;
};

class LexError : public std::runtime_error {
 public:
  LexError(const std::string& message, std::size_t line)
      : std::runtime_error(message + " (line " + std::to_string(line) + ")"),
        line_(line) {}
  std::size_t line() const noexcept { return line_; }

 private:
  std::size_t line_;
};

// Tokenize a full WebIDL document. Throws LexError on malformed input
// (unterminated string/comment, stray byte).
std::vector<Token> lex(std::string_view source);

}  // namespace fu::webidl
