#include "webidl/ast.h"

namespace fu::webidl {

std::string feature_name(const std::string& interface_name,
                         const std::string& member_name, MemberKind kind) {
  switch (kind) {
    case MemberKind::kStaticOperation:
    case MemberKind::kStaticAttribute:
    case MemberKind::kConstant:
      return interface_name + "." + member_name;
    default:
      return interface_name + ".prototype." + member_name;
  }
}

std::vector<ExtractedFeature> extract_features(const Document& doc) {
  std::vector<ExtractedFeature> features;
  for (const Interface& iface : doc.interfaces) {
    for (const Member& m : iface.members) {
      if (m.kind == MemberKind::kConstant) continue;
      if (m.name.empty()) continue;
      features.push_back({iface.name, m.name, m.kind,
                          feature_name(iface.name, m.name, m.kind)});
    }
  }
  return features;
}

}  // namespace fu::webidl
