// Recursive-descent parser for the WebIDL subset used by the catalog:
//
//   [ExtendedAttrs] interface Name : Parent { members };
//   partial interface Name { members };
//   namespace Name { members };
//   enum Name { "a", "b" };
//   dictionary Name : Parent { required long x; DOMString y; };
//   typedef Type Name;
//   callback Name = Type (args);           // recorded as a typedef
//
// Members:
//   [Attrs] ReturnType name(Type a, optional Type b, Type... rest);
//   [Attrs] static ReturnType name(...);
//   [Attrs] attribute Type name;
//   [Attrs] readonly attribute Type name;
//   [Attrs] static attribute Type name;
//   const Type NAME = value;
//   getter/setter/deleter/stringifier are accepted and skipped when unnamed.
//
// Types cover the WebIDL forms that appear in practice: identifiers,
// sequence<T>, Promise<T>, record<K,V>, nullable (T?), unions
// ((A or B)), unsigned/long long/unrestricted double compounds, any, void.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "webidl/ast.h"
#include "webidl/lexer.h"

namespace fu::webidl {

class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& message, std::size_t line)
      : std::runtime_error(message + " (line " + std::to_string(line) + ")"),
        line_(line) {}
  std::size_t line() const noexcept { return line_; }

 private:
  std::size_t line_;
};

// Parse one WebIDL document. Throws ParseError / LexError on bad input.
Document parse(std::string_view source);

// Merge partial interfaces / repeated interface declarations into single
// interfaces (members concatenated, first parent wins). Order preserved by
// first appearance.
Document merge_partials(const Document& doc);

}  // namespace fu::webidl
