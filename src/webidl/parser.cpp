#include "webidl/parser.h"

#include <map>
#include <utility>

namespace fu::webidl {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view source) : tokens_(lex(source)) {}

  Document parse_document() {
    Document doc;
    while (!at_eof()) {
      std::vector<std::string> attrs = parse_extended_attributes();
      if (accept_ident("interface")) {
        doc.interfaces.push_back(parse_interface(false, std::move(attrs)));
      } else if (accept_ident("partial")) {
        expect_ident("interface");
        doc.interfaces.push_back(parse_interface(true, std::move(attrs)));
      } else if (accept_ident("namespace")) {
        doc.interfaces.push_back(parse_namespace(std::move(attrs)));
      } else if (accept_ident("enum")) {
        doc.enums.push_back(parse_enum());
      } else if (accept_ident("dictionary")) {
        doc.dictionaries.push_back(parse_dictionary());
      } else if (accept_ident("typedef")) {
        doc.typedefs.push_back(parse_typedef());
      } else if (accept_ident("callback")) {
        parse_callback(doc);
      } else {
        throw ParseError("expected a top-level definition, got '" +
                             peek().text + "'",
                         peek().line);
      }
    }
    return doc;
  }

 private:
  // --- token plumbing ------------------------------------------------
  const Token& peek(std::size_t off = 0) const {
    const std::size_t i = pos_ + off;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  bool at_eof() const { return peek().kind == TokenKind::kEof; }
  const Token& advance() { return tokens_[pos_++]; }

  bool accept_punct(std::string_view p) {
    if (peek().kind == TokenKind::kPunct && peek().text == p) {
      ++pos_;
      return true;
    }
    return false;
  }
  void expect_punct(std::string_view p) {
    if (!accept_punct(p)) {
      throw ParseError("expected '" + std::string(p) + "', got '" +
                           peek().text + "'",
                       peek().line);
    }
  }
  bool accept_ident(std::string_view name) {
    if (peek().kind == TokenKind::kIdentifier && peek().text == name) {
      ++pos_;
      return true;
    }
    return false;
  }
  void expect_ident(std::string_view name) {
    if (!accept_ident(name)) {
      throw ParseError("expected '" + std::string(name) + "', got '" +
                           peek().text + "'",
                       peek().line);
    }
  }
  std::string expect_any_ident() {
    if (peek().kind != TokenKind::kIdentifier) {
      throw ParseError("expected identifier, got '" + peek().text + "'",
                       peek().line);
    }
    return advance().text;
  }

  // --- grammar productions --------------------------------------------
  std::vector<std::string> parse_extended_attributes() {
    std::vector<std::string> attrs;
    if (!accept_punct("[")) return attrs;
    // Extended attributes can be arbitrarily shaped; we record each
    // top-level comma-separated item as flat text and otherwise skip.
    std::string current;
    int depth = 1;
    while (depth > 0) {
      if (at_eof()) throw ParseError("unterminated extended attribute list",
                                     peek().line);
      const Token& t = advance();
      if (t.kind == TokenKind::kPunct) {
        if (t.text == "[" || t.text == "(" || t.text == "<") ++depth;
        if (t.text == "]" || t.text == ")" || t.text == ">") --depth;
        if (depth == 0) break;
        if (t.text == "," && depth == 1) {
          attrs.push_back(std::move(current));
          current.clear();
          continue;
        }
      }
      if (!current.empty()) current.push_back(' ');
      current += t.text;
    }
    if (!current.empty()) attrs.push_back(std::move(current));
    return attrs;
  }

  // Type := single ('or' handled at union level); returns flat text.
  std::string parse_type() {
    std::string type;
    if (accept_punct("(")) {  // union type
      type = "(";
      type += parse_type();
      while (accept_ident("or")) {
        type += " or ";
        type += parse_type();
      }
      expect_punct(")");
      type += ")";
    } else {
      // leading modifiers
      while (peek().kind == TokenKind::kIdentifier &&
             (peek().text == "unsigned" || peek().text == "unrestricted")) {
        type += advance().text;
        type.push_back(' ');
      }
      std::string base = expect_any_ident();
      if (base == "long" && peek().kind == TokenKind::kIdentifier &&
          peek().text == "long") {
        base += " long";
        ++pos_;
      }
      type += base;
      if (accept_punct("<")) {  // sequence<T>, Promise<T>, record<K,V>
        type += "<";
        type += parse_type();
        while (accept_punct(",")) {
          type += ",";
          type += parse_type();
        }
        expect_punct(">");
        type += ">";
      }
    }
    if (accept_punct("?")) type += "?";
    return type;
  }

  std::vector<Argument> parse_argument_list() {
    std::vector<Argument> args;
    expect_punct("(");
    if (accept_punct(")")) return args;
    do {
      Argument arg;
      // per-argument extended attributes, skipped
      parse_extended_attributes();
      if (accept_ident("optional")) arg.optional = true;
      arg.type = parse_type();
      if (accept_punct("...")) arg.variadic = true;
      arg.name = expect_any_ident();
      if (accept_punct("=")) skip_default_value();
      args.push_back(std::move(arg));
    } while (accept_punct(","));
    expect_punct(")");
    return args;
  }

  void skip_default_value() {
    // default values: literal, identifier, [], {}, or negative numbers
    if (accept_punct("[")) {
      expect_punct("]");
      return;
    }
    if (accept_punct("{")) {
      expect_punct("}");
      return;
    }
    if (accept_punct("-")) { /* sign consumed; number follows */
    }
    advance();
  }

  Member parse_member(std::vector<std::string> attrs) {
    Member m;
    m.extended_attributes = std::move(attrs);
    bool is_static = false;
    if (accept_ident("static")) is_static = true;
    if (accept_ident("stringifier")) {
      // `stringifier;` alone defines toString; with a member it's a prefix.
      if (accept_punct(";")) {
        m.kind = MemberKind::kOperation;
        m.return_type = "DOMString";
        m.name = "toString";
        return m;
      }
    }
    if (accept_ident("const")) {
      m.kind = MemberKind::kConstant;
      m.return_type = parse_type();
      m.name = expect_any_ident();
      expect_punct("=");
      skip_default_value();
      expect_punct(";");
      return m;
    }
    bool readonly = false;
    if (accept_ident("readonly")) readonly = true;
    if (accept_ident("attribute")) {
      m.kind = is_static ? MemberKind::kStaticAttribute
               : readonly ? MemberKind::kReadonlyAttribute
                          : MemberKind::kAttribute;
      m.return_type = parse_type();
      m.name = expect_any_ident();
      expect_punct(";");
      return m;
    }
    if (readonly) {
      // `readonly maplike<K,V>` / `readonly setlike<T>` — skip to ';'
      skip_to_semicolon();
      m.kind = MemberKind::kOperation;
      m.name.clear();
      return m;
    }
    // special operations: getter/setter/deleter — may be unnamed
    bool special = false;
    while (peek().kind == TokenKind::kIdentifier &&
           (peek().text == "getter" || peek().text == "setter" ||
            peek().text == "deleter")) {
      ++pos_;
      special = true;
    }
    if (peek().kind == TokenKind::kIdentifier &&
        (peek().text == "iterable" || peek().text == "maplike" ||
         peek().text == "setlike")) {
      skip_to_semicolon();
      m.kind = MemberKind::kOperation;
      m.name.clear();
      return m;
    }
    m.kind = is_static ? MemberKind::kStaticOperation : MemberKind::kOperation;
    m.return_type = parse_type();
    if (peek().kind == TokenKind::kIdentifier) {
      m.name = expect_any_ident();
    } else if (!special) {
      throw ParseError("expected member name, got '" + peek().text + "'",
                       peek().line);
    }
    m.arguments = parse_argument_list();
    expect_punct(";");
    return m;
  }

  void skip_to_semicolon() {
    int depth = 0;
    while (!at_eof()) {
      const Token& t = advance();
      if (t.kind == TokenKind::kPunct) {
        if (t.text == "{" || t.text == "(" || t.text == "<") ++depth;
        if (t.text == "}" || t.text == ")" || t.text == ">") --depth;
        if (t.text == ";" && depth <= 0) return;
      }
    }
    throw ParseError("unterminated member", peek().line);
  }

  Interface parse_interface(bool partial, std::vector<std::string> attrs) {
    Interface iface;
    iface.partial = partial;
    iface.extended_attributes = std::move(attrs);
    accept_ident("mixin");  // `interface mixin Name` treated as interface
    iface.name = expect_any_ident();
    if (accept_punct(":")) iface.parent = expect_any_ident();
    expect_punct("{");
    while (!accept_punct("}")) {
      std::vector<std::string> member_attrs = parse_extended_attributes();
      Member m = parse_member(std::move(member_attrs));
      if (!m.name.empty()) iface.members.push_back(std::move(m));
    }
    expect_punct(";");
    return iface;
  }

  Interface parse_namespace(std::vector<std::string> attrs) {
    Interface iface;
    iface.is_namespace = true;
    iface.extended_attributes = std::move(attrs);
    iface.name = expect_any_ident();
    expect_punct("{");
    while (!accept_punct("}")) {
      std::vector<std::string> member_attrs = parse_extended_attributes();
      Member m = parse_member(std::move(member_attrs));
      // namespace members are implicitly static
      if (m.kind == MemberKind::kOperation) m.kind = MemberKind::kStaticOperation;
      if (m.kind == MemberKind::kAttribute ||
          m.kind == MemberKind::kReadonlyAttribute) {
        m.kind = MemberKind::kStaticAttribute;
      }
      if (!m.name.empty()) iface.members.push_back(std::move(m));
    }
    expect_punct(";");
    return iface;
  }

  EnumDef parse_enum() {
    EnumDef e;
    e.name = expect_any_ident();
    expect_punct("{");
    while (!accept_punct("}")) {
      if (peek().kind != TokenKind::kString) {
        throw ParseError("expected string enum value", peek().line);
      }
      e.values.push_back(advance().text);
      accept_punct(",");
    }
    expect_punct(";");
    return e;
  }

  Dictionary parse_dictionary() {
    Dictionary d;
    d.name = expect_any_ident();
    if (accept_punct(":")) d.parent = expect_any_ident();
    expect_punct("{");
    while (!accept_punct("}")) {
      parse_extended_attributes();
      DictionaryMember m;
      if (accept_ident("required")) m.required = true;
      m.type = parse_type();
      m.name = expect_any_ident();
      if (accept_punct("=")) skip_default_value();
      expect_punct(";");
      d.members.push_back(std::move(m));
    }
    expect_punct(";");
    return d;
  }

  Typedef parse_typedef() {
    Typedef t;
    t.type = parse_type();
    t.name = expect_any_ident();
    expect_punct(";");
    return t;
  }

  void parse_callback(Document& doc) {
    if (accept_ident("interface")) {
      doc.interfaces.push_back(parse_interface(false, {}));
      return;
    }
    Typedef t;
    t.name = expect_any_ident();
    expect_punct("=");
    t.type = parse_type();
    parse_argument_list();
    expect_punct(";");
    t.type += " callback";
    doc.typedefs.push_back(std::move(t));
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

Document parse(std::string_view source) {
  return Parser(source).parse_document();
}

Document merge_partials(const Document& doc) {
  Document out;
  out.enums = doc.enums;
  out.dictionaries = doc.dictionaries;
  out.typedefs = doc.typedefs;
  std::map<std::string, std::size_t> index;
  for (const Interface& iface : doc.interfaces) {
    const auto it = index.find(iface.name);
    if (it == index.end()) {
      index.emplace(iface.name, out.interfaces.size());
      Interface merged = iface;
      merged.partial = false;
      out.interfaces.push_back(std::move(merged));
    } else {
      Interface& target = out.interfaces[it->second];
      target.members.insert(target.members.end(), iface.members.begin(),
                            iface.members.end());
      if (!target.parent && iface.parent) target.parent = iface.parent;
    }
  }
  return out;
}

}  // namespace fu::webidl
