#include "webidl/lexer.h"

#include <cctype>

namespace fu::webidl {

namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-';
}

}  // namespace

std::vector<Token> lex(std::string_view src) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  std::size_t line = 1;

  const auto peek = [&](std::size_t off = 0) -> char {
    return i + off < src.size() ? src[i + off] : '\0';
  };

  while (i < src.size()) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '/' && peek(1) == '/') {
      while (i < src.size() && src[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      const std::size_t start_line = line;
      i += 2;
      for (;;) {
        if (i + 1 >= src.size()) {
          throw LexError("unterminated block comment", start_line);
        }
        if (src[i] == '\n') ++line;
        if (src[i] == '*' && src[i + 1] == '/') {
          i += 2;
          break;
        }
        ++i;
      }
      continue;
    }
    if (is_ident_start(c)) {
      const std::size_t start = i;
      while (i < src.size() && is_ident_char(src[i])) ++i;
      tokens.push_back(
          {TokenKind::kIdentifier, std::string(src.substr(start, i - start)),
           line});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      const std::size_t start = i;
      if (src[i] == '-') ++i;
      bool is_float = false;
      // hex literal
      if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
        i += 2;
        while (i < src.size() &&
               std::isxdigit(static_cast<unsigned char>(src[i]))) {
          ++i;
        }
      } else {
        while (i < src.size() &&
               (std::isdigit(static_cast<unsigned char>(src[i])) ||
                src[i] == '.' || src[i] == 'e' || src[i] == 'E' ||
                ((src[i] == '+' || src[i] == '-') &&
                 (src[i - 1] == 'e' || src[i - 1] == 'E')))) {
          if (src[i] == '.' || src[i] == 'e' || src[i] == 'E') is_float = true;
          ++i;
        }
      }
      tokens.push_back({is_float ? TokenKind::kFloat : TokenKind::kInteger,
                        std::string(src.substr(start, i - start)), line});
      continue;
    }
    if (c == '"') {
      const std::size_t start_line = line;
      ++i;
      std::string text;
      for (;;) {
        if (i >= src.size()) {
          throw LexError("unterminated string literal", start_line);
        }
        if (src[i] == '"') {
          ++i;
          break;
        }
        if (src[i] == '\n') ++line;
        text.push_back(src[i++]);
      }
      tokens.push_back({TokenKind::kString, std::move(text), line});
      continue;
    }
    if (c == '.' && peek(1) == '.' && peek(2) == '.') {
      tokens.push_back({TokenKind::kPunct, "...", line});
      i += 3;
      continue;
    }
    constexpr std::string_view punct = "{}[]();:,<>=?.-";
    if (punct.find(c) != std::string_view::npos) {
      tokens.push_back({TokenKind::kPunct, std::string(1, c), line});
      ++i;
      continue;
    }
    throw LexError(std::string("unexpected character '") + c + "'", line);
  }
  tokens.push_back({TokenKind::kEof, "", line});
  return tokens;
}

}  // namespace fu::webidl
