#include "webidl/writer.h"

namespace fu::webidl {

namespace {

void write_member(std::string& out, const Member& m) {
  out += "  ";
  switch (m.kind) {
    case MemberKind::kConstant:
      out += "const " + m.return_type + " " + m.name + " = 0;\n";
      return;
    case MemberKind::kStaticAttribute:
      out += "static attribute " + m.return_type + " " + m.name + ";\n";
      return;
    case MemberKind::kReadonlyAttribute:
      out += "readonly attribute " + m.return_type + " " + m.name + ";\n";
      return;
    case MemberKind::kAttribute:
      out += "attribute " + m.return_type + " " + m.name + ";\n";
      return;
    case MemberKind::kStaticOperation:
      out += "static ";
      break;
    case MemberKind::kOperation:
      break;
  }
  out += (m.return_type.empty() ? "void" : m.return_type) + " " + m.name + "(";
  for (std::size_t i = 0; i < m.arguments.size(); ++i) {
    const Argument& a = m.arguments[i];
    if (i) out += ", ";
    if (a.optional) out += "optional ";
    out += a.type;
    if (a.variadic) out += "...";
    out += " " + a.name;
  }
  out += ");\n";
}

}  // namespace

std::string write_interface(const Interface& iface) {
  std::string out;
  out += iface.partial ? "partial interface " : "interface ";
  out += iface.name;
  if (iface.parent) out += " : " + *iface.parent;
  out += " {\n";
  for (const Member& m : iface.members) write_member(out, m);
  out += "};\n";
  return out;
}

std::string write_document(const Document& doc) {
  std::string out;
  for (const EnumDef& e : doc.enums) {
    out += "enum " + e.name + " {";
    for (std::size_t i = 0; i < e.values.size(); ++i) {
      if (i) out += ",";
      out += " \"" + e.values[i] + "\"";
    }
    out += " };\n\n";
  }
  for (const Dictionary& d : doc.dictionaries) {
    out += "dictionary " + d.name;
    if (d.parent) out += " : " + *d.parent;
    out += " {\n";
    for (const DictionaryMember& m : d.members) {
      out += "  ";
      if (m.required) out += "required ";
      out += m.type + " " + m.name + ";\n";
    }
    out += "};\n\n";
  }
  for (const Typedef& t : doc.typedefs) {
    out += "typedef " + t.type + " " + t.name + ";\n";
  }
  for (const Interface& iface : doc.interfaces) {
    out += write_interface(iface);
    out += "\n";
  }
  return out;
}

}  // namespace fu::webidl
