// AST for the WebIDL subset we parse. Mirrors the way the paper extracts
// features from Firefox's .webidl files (§3.2): each interface member that is
// reachable from JavaScript becomes one "feature", named
//   Interface.prototype.member   for regular members,
//   Interface.member             for static members and constants.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace fu::webidl {

enum class MemberKind {
  kOperation,          // regular method
  kStaticOperation,    // static method
  kAttribute,          // read-write attribute
  kReadonlyAttribute,  // readonly attribute
  kStaticAttribute,    // static attribute
  kConstant,           // const member
};

struct Argument {
  std::string type;
  std::string name;
  bool optional = false;
  bool variadic = false;
};

struct Member {
  MemberKind kind = MemberKind::kOperation;
  std::string return_type;  // or attribute/constant type
  std::string name;
  std::vector<Argument> arguments;  // operations only
  std::vector<std::string> extended_attributes;
};

struct Interface {
  std::string name;
  std::optional<std::string> parent;  // ": Parent"
  bool partial = false;
  bool is_namespace = false;  // `namespace Foo {}` — members are static
  std::vector<Member> members;
  std::vector<std::string> extended_attributes;
};

struct EnumDef {
  std::string name;
  std::vector<std::string> values;
};

struct DictionaryMember {
  std::string type;
  std::string name;
  bool required = false;
};

struct Dictionary {
  std::string name;
  std::optional<std::string> parent;
  std::vector<DictionaryMember> members;
};

struct Typedef {
  std::string type;
  std::string name;
};

// One parsed .webidl file.
struct Document {
  std::vector<Interface> interfaces;
  std::vector<EnumDef> enums;
  std::vector<Dictionary> dictionaries;
  std::vector<Typedef> typedefs;
};

// A JavaScript-exposed feature extracted from parsed WebIDL.
struct ExtractedFeature {
  std::string interface_name;
  std::string member_name;
  MemberKind kind;
  // Canonical feature name, e.g. "Node.prototype.insertBefore".
  std::string full_name;
};

// Flatten a document into features. Dictionary members, enum values and
// typedefs are not JavaScript-callable endpoints and are skipped, as in the
// paper. Constants are also skipped (they are not functions or writable
// properties). Partial interfaces contribute members under their interface
// name; merging across files is the caller's concern.
std::vector<ExtractedFeature> extract_features(const Document& doc);

// Canonical feature name for an interface member.
std::string feature_name(const std::string& interface_name,
                         const std::string& member_name, MemberKind kind);

}  // namespace fu::webidl
