// WebIDL pretty-printer. The catalog uses this to materialize its feature
// tables as .webidl text (the stand-in for Firefox's 757 WebIDL source
// files); tests round-trip writer output through the parser.
#pragma once

#include <string>

#include "webidl/ast.h"

namespace fu::webidl {

std::string write_interface(const Interface& iface);
std::string write_document(const Document& doc);

}  // namespace fu::webidl
