// Work-stealing job scheduler.
//
// The survey fans one independent job per site across worker threads. The
// seed used a shared atomic counter, which kept every worker busy but gave
// long-tail sites no help near the end of a run and turned any worker
// exception into std::terminate. This pool fixes both:
//
//   * each worker owns a deque of jobs; when it runs dry it steals half of
//     a victim's remaining queue, so the tail of a run stays parallel;
//   * a job that throws is retried up to `max_attempts` times and its final
//     failure is captured into a JobReport instead of killing the process.
//
// Jobs are independent and identified by index, so scheduling order can
// never change results — determinism is the caller's seeding discipline,
// which the scheduler preserves by construction (each index runs exactly
// once per attempt, always on exactly one thread).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace fu::sched {

class ProgressMeter;

struct SchedulerOptions {
  int threads = 0;  // 0 = hardware concurrency
  // Attempts per job; a throw on the last attempt is recorded, not rethrown.
  int max_attempts = 1;
  // kStriped is the seed's shared-atomic-counter loop, kept as a reference
  // implementation for benchmarking scheduler overhead.
  enum class Policy { kWorkStealing, kStriped };
  Policy policy = Policy::kWorkStealing;
  // When set, the scheduler publishes per-worker queue depths and steal
  // counts into the meter (relaxed stores only — the worker loop stays
  // lock-free for stats). Job completions are still the Observer's job.
  ProgressMeter* progress = nullptr;
  // Cooperative cancellation: polled before every attempt. Once it flips,
  // jobs that have not started are reported failed with error "cancelled"
  // without running; run_jobs still returns only when every index is
  // accounted for.
  const std::atomic<bool>* cancel = nullptr;
};

// Outcome of one job after all its attempts.
struct JobReport {
  bool ok = false;
  int attempts = 0;     // attempts consumed (1 = first try succeeded)
  std::string error;    // what() of the last failure when !ok
};

struct RunReport {
  std::vector<JobReport> jobs;
  unsigned threads = 1;
  std::uint64_t steals = 0;        // successful steal operations
  std::uint64_t jobs_stolen = 0;   // jobs that changed owner
  std::uint64_t retries = 0;       // extra attempts across all jobs

  bool all_ok() const;
  std::size_t failed_count() const;
};

// Called from worker threads after each job's final attempt; implementations
// must be thread-safe. `attempts` is the count consumed, `error` is empty on
// success.
class Observer {
 public:
  virtual ~Observer() = default;
  virtual void on_job_done(std::size_t index, bool ok, int attempts,
                           const std::string& error) = 0;
};

// `attempt` is 0 on the first try and increments on every retry, so a job
// can reseed itself (or not) across attempts.
using Job = std::function<void(std::size_t index, int attempt)>;

// Run jobs [0, count) to completion. Never throws on job failure; only a
// job's own side effects and the returned reports tell them apart.
RunReport run_jobs(std::size_t count, const Job& job,
                   const SchedulerOptions& options = {},
                   Observer* observer = nullptr);

}  // namespace fu::sched
