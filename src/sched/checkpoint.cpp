#include "sched/checkpoint.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "obs/mem.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fu::sched {

namespace {

// Bumped 0001 -> 0002: per-record payload checksum.
constexpr char kMagic[8] = {'F', 'U', 'S', 'H', '0', '0', '0', '2'};
constexpr const char* kExtension = ".fush";

// Structural validation alone cannot catch a bit-flip *inside* a payload
// (same length, still parses); every record carries a checksum so content
// corruption rejects the shard like truncation does.
std::uint64_t fnv1a_bytes(const std::string& bytes) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

void put_u64(std::ostream& out, std::uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out.write(buf, 8);
}

bool get_u64(std::istream& in, std::uint64_t& v) {
  char buf[8];
  if (!in.read(buf, 8)) return false;
  v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(buf[i]))
         << (8 * i);
  }
  return true;
}

std::string shard_name(std::size_t sequence) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "shard-%06zu%s", sequence, kExtension);
  return buf;
}

// Parse "shard-NNNNNN.fush" -> NNNNNN; -1 for anything else.
long long sequence_of(const std::filesystem::path& path) {
  const std::string stem = path.stem().string();
  if (path.extension() != kExtension) return -1;
  if (stem.rfind("shard-", 0) != 0) return -1;
  const std::string digits = stem.substr(6);
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos) {
    return -1;
  }
  return std::stoll(digits);
}

// Read one shard file completely; any defect rejects the whole shard.
bool read_shard(const std::filesystem::path& path, const std::string& header,
                std::vector<ShardRecord>& out) {
  std::error_code ec;
  const std::uint64_t file_size = std::filesystem::file_size(path, ec);
  if (ec) return false;

  std::ifstream in(path, std::ios::binary);
  if (!in) return false;

  char magic[sizeof kMagic];
  if (!in.read(magic, sizeof magic) ||
      std::memcmp(magic, kMagic, sizeof magic) != 0) {
    return false;
  }
  std::uint64_t header_len = 0;
  if (!get_u64(in, header_len) || header_len != header.size()) return false;
  std::string file_header(header_len, '\0');
  if (header_len > 0 && !in.read(file_header.data(),
                                 static_cast<std::streamsize>(header_len))) {
    return false;
  }
  if (file_header != header) return false;

  std::uint64_t count = 0;
  if (!get_u64(in, count)) return false;
  if (count > file_size / 16) return false;  // each record is >= 16 bytes
  std::vector<ShardRecord> records;
  records.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    ShardRecord record;
    std::uint64_t payload_len = 0, checksum = 0;
    if (!get_u64(in, record.index) || !get_u64(in, payload_len)) return false;
    // A corrupt length field must not drive the allocation below; nothing
    // legitimate can claim more payload than the file holds.
    if (payload_len > file_size) return false;
    record.payload.resize(payload_len);
    if (payload_len > 0 &&
        !in.read(record.payload.data(),
                 static_cast<std::streamsize>(payload_len))) {
      return false;
    }
    if (!get_u64(in, checksum) || checksum != fnv1a_bytes(record.payload)) {
      return false;
    }
    records.push_back(std::move(record));
  }
  // Trailing bytes mean the file is not what the writer produced.
  if (in.peek() != std::ifstream::traits_type::eof()) return false;

  out.insert(out.end(), std::make_move_iterator(records.begin()),
             std::make_move_iterator(records.end()));
  return true;
}

}  // namespace

ShardWriter::ShardWriter(std::string dir, std::string header,
                         FlushCadence cadence)
    : dir_(std::move(dir)), header_(std::move(header)), cadence_(cadence) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    ok_ = false;
    return;
  }
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    const long long seq = sequence_of(entry.path());
    if (seq >= 0 && static_cast<std::size_t>(seq) >= next_sequence_) {
      next_sequence_ = static_cast<std::size_t>(seq) + 1;
    }
  }
}

ShardWriter::~ShardWriter() {
  flush();
  // A failed final flush leaves the buffer (and its accounting) behind;
  // the storage dies with this writer either way.
  std::lock_guard<std::mutex> lock(mutex_);
  obs::mem::sub(obs::mem::Domain::kShards, buffered_bytes_);
  buffered_bytes_ = 0;
}

void ShardWriter::add(std::uint64_t index, std::string payload) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (buffer_.empty()) first_buffered_ = std::chrono::steady_clock::now();
  buffered_bytes_ += payload.size();
  obs::mem::add(obs::mem::Domain::kShards, payload.size());
  buffer_.push_back(ShardRecord{index, std::move(payload)});
  if (flush_due_locked()) flush_locked();
}

bool ShardWriter::flush_due_locked() const {
  if (cadence_.records > 0 && buffer_.size() >= cadence_.records) return true;
  if (cadence_.bytes > 0 && buffered_bytes_ >= cadence_.bytes) return true;
  if (cadence_.seconds > 0) {
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - first_buffered_;
    if (elapsed.count() >= cadence_.seconds) return true;
  }
  // Every bound disabled: degenerate to one shard per record.
  return cadence_.records == 0 && cadence_.bytes == 0 &&
         cadence_.seconds <= 0;
}

bool ShardWriter::flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  return flush_locked();
}

bool ShardWriter::flush_locked() {
  if (buffer_.empty()) return ok_;

  obs::TraceSpan span("checkpoint-flush");
  static obs::Histogram& flush_us =
      obs::Registry::global().histogram("sched.checkpoint_flush_us");
  obs::ScopedLatency latency(flush_us);
  static obs::Counter& flushes =
      obs::Registry::global().counter("sched.checkpoint_flushes");
  static obs::Counter& records =
      obs::Registry::global().counter("sched.checkpoint_records");
  flushes.add();
  records.add(buffer_.size());

  const std::filesystem::path dir(dir_);
  const std::filesystem::path final_path = dir / shard_name(next_sequence_);
  const std::filesystem::path tmp_path =
      dir / (shard_name(next_sequence_) + ".tmp");
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      ok_ = false;
      return false;
    }
    out.write(kMagic, sizeof kMagic);
    put_u64(out, header_.size());
    out.write(header_.data(), static_cast<std::streamsize>(header_.size()));
    put_u64(out, buffer_.size());
    for (const ShardRecord& record : buffer_) {
      put_u64(out, record.index);
      put_u64(out, record.payload.size());
      out.write(record.payload.data(),
                static_cast<std::streamsize>(record.payload.size()));
      put_u64(out, fnv1a_bytes(record.payload));
    }
    out.flush();
    if (!out) {
      ok_ = false;
      return false;
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp_path, final_path, ec);
  if (ec) {
    std::filesystem::remove(tmp_path, ec);
    ok_ = false;
    return false;
  }
  buffer_.clear();
  obs::mem::sub(obs::mem::Domain::kShards, buffered_bytes_);
  buffered_bytes_ = 0;
  ++next_sequence_;
  ++shards_written_;
  return ok_;
}

std::vector<ShardRecord> load_shards(const std::string& dir,
                                     const std::string& header) {
  std::vector<std::filesystem::path> shards;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (sequence_of(entry.path()) >= 0) shards.push_back(entry.path());
  }
  // Shard order = write order (sequence numbers zero-padded to sort
  // lexically), so later shards override earlier ones on replay.
  std::sort(shards.begin(), shards.end());

  std::vector<ShardRecord> records;
  for (const std::filesystem::path& path : shards) {
    read_shard(path, header, records);  // invalid shards skipped whole
  }
  // Record the warm-read residency peak: the caller owns the records from
  // here (and usually folds them into tables immediately), so the bytes
  // count as a transient spike in the shards domain, not steady state.
  obs::mem::ScopedBytes loaded(obs::mem::Domain::kShards);
  for (const ShardRecord& record : records) loaded.grow(record.payload.size());
  return records;
}

std::vector<std::string> shard_headers(const std::string& dir) {
  std::vector<std::filesystem::path> shards;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (sequence_of(entry.path()) >= 0) shards.push_back(entry.path());
  }
  std::sort(shards.begin(), shards.end());

  std::vector<std::string> headers;
  for (const std::filesystem::path& path : shards) {
    const std::uint64_t file_size = std::filesystem::file_size(path, ec);
    if (ec) continue;
    std::ifstream in(path, std::ios::binary);
    if (!in) continue;
    char magic[sizeof kMagic];
    if (!in.read(magic, sizeof magic) ||
        std::memcmp(magic, kMagic, sizeof magic) != 0) {
      continue;
    }
    std::uint64_t header_len = 0;
    if (!get_u64(in, header_len) || header_len > file_size) continue;
    std::string header(header_len, '\0');
    if (header_len > 0 &&
        !in.read(header.data(), static_cast<std::streamsize>(header_len))) {
      continue;
    }
    if (std::find(headers.begin(), headers.end(), header) == headers.end()) {
      headers.push_back(std::move(header));
    }
  }
  return headers;
}

bool compact_shards(const std::vector<std::string>& dirs,
                    const std::string& out_dir, std::string* error) {
  const auto fail = [error](std::string message) {
    if (error != nullptr) *error = std::move(message);
    return false;
  };

  // Every source (and anything already compacted into out_dir) must agree
  // on one header — this is what makes "compact" incapable of fabricating a
  // survey that never ran.
  std::string header;
  bool have_header = false;
  for (const std::string& dir : dirs) {
    const std::vector<std::string> found = shard_headers(dir);
    if (found.empty()) return fail("no readable shards in " + dir);
    if (found.size() > 1) return fail("mixed shard headers within " + dir);
    if (!have_header) {
      header = found.front();
      have_header = true;
    } else if (found.front() != header) {
      return fail(dir + " holds shards of a different survey key");
    }
  }
  if (!have_header) return fail("no input shard directories");
  if (std::filesystem::exists(out_dir)) {
    for (const std::string& existing : shard_headers(out_dir)) {
      if (existing != header) {
        return fail(out_dir + " already holds shards of a different key");
      }
    }
  }

  // Later dirs / later shards win, as on resume replay; emit each index
  // once, ascending, so compaction is deterministic byte-for-byte.
  std::vector<ShardRecord> merged;
  for (const std::string& dir : dirs) {
    std::vector<ShardRecord> records = load_shards(dir, header);
    merged.insert(merged.end(), std::make_move_iterator(records.begin()),
                  std::make_move_iterator(records.end()));
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const ShardRecord& a, const ShardRecord& b) {
                     return a.index < b.index;
                   });
  std::vector<ShardRecord> unique;
  unique.reserve(merged.size());
  for (std::size_t i = 0; i < merged.size(); ++i) {
    if (i + 1 < merged.size() && merged[i + 1].index == merged[i].index) {
      continue;  // a later record for the same index follows
    }
    unique.push_back(std::move(merged[i]));
  }

  // One output shard: disable every cadence bound except the explicit
  // flush() below.
  FlushCadence cadence;
  cadence.records = unique.size() + 1;
  ShardWriter writer(out_dir, header, cadence);
  for (ShardRecord& record : unique) {
    writer.add(record.index, std::move(record.payload));
  }
  if (!writer.flush()) return fail("failed writing shards to " + out_dir);
  return true;
}

}  // namespace fu::sched
