#include "sched/progress.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "obs/metrics.h"

namespace fu::sched {

void ProgressMeter::reset(std::size_t total) {
  // An observer (ProgressPrinter, live endpoint) may already be snapshotting
  // when a run starts; the lock keeps it off the non-atomic fields and the
  // worker array while they are replaced.
  std::lock_guard<std::mutex> control(control_mutex_);
  done_.store(0, std::memory_order_relaxed);
  skipped_.store(0, std::memory_order_relaxed);
  failed_.store(0, std::memory_order_relaxed);
  units_.store(0, std::memory_order_relaxed);
  total_ = total;
  start_ = std::chrono::steady_clock::now();
  last_done_us_.store(0, std::memory_order_relaxed);
  in_stall_.store(false, std::memory_order_relaxed);
  stall_events_.store(0, std::memory_order_relaxed);
  workers_.reset();
  worker_count_ = 0;
  for (std::size_t s = 0; s < kInFlightSlots; ++s) {
    std::lock_guard<std::mutex> lock(in_flight_[s].mutex);
    in_flight_[s].used = false;
  }
}

void ProgressMeter::note_completion() {
  const auto now_us = std::chrono::duration_cast<std::chrono::microseconds>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
  last_done_us_.store(now_us, std::memory_order_relaxed);
  in_stall_.store(false, std::memory_order_relaxed);
}

void ProgressMeter::job_done(std::uint64_t units) {
  units_.fetch_add(units, std::memory_order_relaxed);
  done_.fetch_add(1, std::memory_order_relaxed);
  note_completion();
}

void ProgressMeter::job_skipped() {
  skipped_.fetch_add(1, std::memory_order_relaxed);
  done_.fetch_add(1, std::memory_order_relaxed);
  note_completion();
}

void ProgressMeter::job_failed() {
  failed_.fetch_add(1, std::memory_order_relaxed);
  done_.fetch_add(1, std::memory_order_relaxed);
  note_completion();
}

void ProgressMeter::set_stall_window(double seconds) {
  std::lock_guard<std::mutex> control(control_mutex_);
  stall_window_ = seconds > 0 ? seconds : 0;
}

void ProgressMeter::set_worker_count(std::size_t workers) {
  // The scheduler calls this while the --progress printer or the live
  // endpoint may be mid-snapshot; swapping the array under the lock keeps a
  // snapshot from indexing a freed (or not-yet-allocated) WorkerCell.
  std::lock_guard<std::mutex> control(control_mutex_);
  worker_count_ = workers;
  workers_ = workers > 0 ? std::make_unique<WorkerCell[]>(workers) : nullptr;
}

void ProgressMeter::worker_queue_depth(std::size_t worker, std::size_t depth) {
  if (worker >= worker_count_) return;
  workers_[worker].queue_depth.store(depth, std::memory_order_relaxed);
}

void ProgressMeter::worker_stole(std::size_t worker, std::size_t jobs) {
  if (worker >= worker_count_) return;
  workers_[worker].steals.fetch_add(1, std::memory_order_relaxed);
  workers_[worker].jobs_stolen.fetch_add(jobs, std::memory_order_relaxed);
}

int ProgressMeter::begin_job(const std::string& label) {
  for (std::size_t s = 0; s < kInFlightSlots; ++s) {
    InFlightSlot& slot = in_flight_[s];
    // try_lock keeps claiming wait-free against a concurrent snapshot.
    if (!slot.mutex.try_lock()) continue;
    if (slot.used) {
      slot.mutex.unlock();
      continue;
    }
    slot.used = true;
    slot.label = label;
    slot.start = std::chrono::steady_clock::now();
    slot.mutex.unlock();
    return static_cast<int>(s);
  }
  return -1;  // more workers than slots: tracking is best-effort
}

void ProgressMeter::end_job(int slot) {
  if (slot < 0 || slot >= static_cast<int>(kInFlightSlots)) return;
  std::lock_guard<std::mutex> lock(in_flight_[slot].mutex);
  in_flight_[slot].used = false;
}

ProgressMeter::Snapshot ProgressMeter::snapshot() const {
  // Held for the whole read so total_/start_/stall_window_ and the worker
  // array stay coherent against reset()/set_worker_count(). Observers only —
  // workers never contend for it. Nests over the in-flight slot locks in the
  // same order begin_job/end_job use them alone, so no inversion.
  std::lock_guard<std::mutex> control(control_mutex_);
  Snapshot snap;
  snap.done = done_.load(std::memory_order_relaxed);
  snap.skipped = skipped_.load(std::memory_order_relaxed);
  snap.failed = failed_.load(std::memory_order_relaxed);
  snap.total = total_;
  snap.units = units_.load(std::memory_order_relaxed);
  const auto now = std::chrono::steady_clock::now();
  snap.elapsed_seconds = std::chrono::duration<double>(now - start_).count();
  const std::size_t executed = snap.done - snap.skipped;
  if (snap.elapsed_seconds > 0 && executed > 0) {
    snap.jobs_per_second = static_cast<double>(executed) /
                           snap.elapsed_seconds;
    snap.units_per_second = static_cast<double>(snap.units) /
                            snap.elapsed_seconds;
    if (snap.done < snap.total) {
      snap.eta_seconds = static_cast<double>(snap.total - snap.done) /
                         snap.jobs_per_second;
    }
  }

  snap.seconds_since_last_done =
      snap.elapsed_seconds -
      static_cast<double>(last_done_us_.load(std::memory_order_relaxed)) / 1e6;
  snap.stall_window_seconds = stall_window_;
  if (stall_window_ > 0 && snap.total > 0 && snap.done < snap.total &&
      snap.seconds_since_last_done > stall_window_) {
    snap.stalled = true;
    // First snapshot to observe this episode records it; completions clear
    // in_stall_ so a later freeze counts again.
    if (!in_stall_.exchange(true, std::memory_order_relaxed)) {
      stall_events_.fetch_add(1, std::memory_order_relaxed);
      static obs::Counter& stalls =
          obs::Registry::global().counter("sched.stalls");
      stalls.add();
    }
  }
  snap.stall_events = stall_events_.load(std::memory_order_relaxed);

  snap.workers.reserve(worker_count_);
  for (std::size_t w = 0; w < worker_count_; ++w) {
    snap.workers.push_back(
        {workers_[w].queue_depth.load(std::memory_order_relaxed),
         workers_[w].steals.load(std::memory_order_relaxed),
         workers_[w].jobs_stolen.load(std::memory_order_relaxed)});
  }

  for (std::size_t s = 0; s < kInFlightSlots; ++s) {
    InFlightSlot& slot = in_flight_[s];
    std::lock_guard<std::mutex> lock(slot.mutex);
    if (!slot.used) continue;
    snap.in_flight.push_back(
        {slot.label, std::chrono::duration<double>(now - slot.start).count()});
  }
  std::sort(snap.in_flight.begin(), snap.in_flight.end(),
            [](const InFlightSite& a, const InFlightSite& b) {
              return a.seconds > b.seconds;
            });
  return snap;
}

namespace {

std::string human_count(double value) {
  char buf[32];
  if (value >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.1fM", value / 1e6);
  } else if (value >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.1fk", value / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.0f", value);
  }
  return buf;
}

std::string human_duration(double seconds) {
  char buf[32];
  if (seconds >= 3600) {
    std::snprintf(buf, sizeof buf, "%dh%02dm", static_cast<int>(seconds) / 3600,
                  (static_cast<int>(seconds) % 3600) / 60);
  } else if (seconds >= 60) {
    std::snprintf(buf, sizeof buf, "%dm%02ds", static_cast<int>(seconds) / 60,
                  static_cast<int>(seconds) % 60);
  } else {
    std::snprintf(buf, sizeof buf, "%.0fs", seconds);
  }
  return buf;
}

std::string json_number(double value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", value);
  return buf;
}

}  // namespace

std::string format_progress(const ProgressMeter::Snapshot& snapshot,
                            const char* noun) {
  std::string line = std::to_string(snapshot.done) + "/" +
                     std::to_string(snapshot.total) + " " + noun;
  if (snapshot.skipped > 0) {
    line += " (" + std::to_string(snapshot.skipped) + " resumed)";
  }
  if (snapshot.failed > 0) {
    line += " (" + std::to_string(snapshot.failed) + " failed)";
  }
  if (snapshot.units_per_second > 0) {
    line += "  " + human_count(snapshot.units_per_second) + " inv/s";
  }
  if (snapshot.eta_seconds > 0) {
    line += "  eta " + human_duration(snapshot.eta_seconds);
  }
  if (snapshot.stalled) {
    line += "  STALLED " + human_duration(snapshot.seconds_since_last_done);
  }
  return line;
}

std::string progress_json(const ProgressMeter::Snapshot& snapshot) {
  std::string out = "{\n";
  out += "  \"done\": " + std::to_string(snapshot.done) + ",\n";
  out += "  \"skipped\": " + std::to_string(snapshot.skipped) + ",\n";
  out += "  \"failed\": " + std::to_string(snapshot.failed) + ",\n";
  out += "  \"total\": " + std::to_string(snapshot.total) + ",\n";
  out += "  \"units\": " + std::to_string(snapshot.units) + ",\n";
  out += "  \"elapsed_seconds\": " + json_number(snapshot.elapsed_seconds) +
         ",\n";
  out += "  \"jobs_per_second\": " + json_number(snapshot.jobs_per_second) +
         ",\n";
  out += "  \"units_per_second\": " + json_number(snapshot.units_per_second) +
         ",\n";
  out += "  \"eta_seconds\": " + json_number(snapshot.eta_seconds) + ",\n";
  out += "  \"seconds_since_last_done\": " +
         json_number(snapshot.seconds_since_last_done) + ",\n";
  out += "  \"stall_window_seconds\": " +
         json_number(snapshot.stall_window_seconds) + ",\n";
  out += std::string("  \"stalled\": ") +
         (snapshot.stalled ? "true" : "false") + ",\n";
  out += "  \"stall_events\": " + std::to_string(snapshot.stall_events) +
         ",\n";
  out += "  \"workers\": [";
  for (std::size_t w = 0; w < snapshot.workers.size(); ++w) {
    const ProgressMeter::WorkerStat& worker = snapshot.workers[w];
    out += w > 0 ? ",\n    " : "\n    ";
    out += "{\"queue_depth\": " + std::to_string(worker.queue_depth) +
           ", \"steals\": " + std::to_string(worker.steals) +
           ", \"jobs_stolen\": " + std::to_string(worker.jobs_stolen) + "}";
  }
  out += snapshot.workers.empty() ? "],\n" : "\n  ],\n";
  out += "  \"in_flight\": [";
  for (std::size_t s = 0; s < snapshot.in_flight.size(); ++s) {
    const ProgressMeter::InFlightSite& site = snapshot.in_flight[s];
    out += s > 0 ? ",\n    " : "\n    ";
    out += "{\"site\": " + obs::json_quote(site.label) +
           ", \"seconds\": " + json_number(site.seconds) + "}";
  }
  out += snapshot.in_flight.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

std::string health_json(const ProgressMeter::Snapshot& snapshot) {
  std::string out = "{";
  out += std::string("\"ok\": ") + (snapshot.stalled ? "false" : "true");
  out += ", \"done\": " + std::to_string(snapshot.done);
  out += ", \"total\": " + std::to_string(snapshot.total);
  out += ", \"seconds_since_last_done\": " +
         json_number(snapshot.seconds_since_last_done);
  out += ", \"stall_window_seconds\": " +
         json_number(snapshot.stall_window_seconds);
  out += ", \"stall_events\": " + std::to_string(snapshot.stall_events);
  out += "}\n";
  return out;
}

ProgressPrinter::ProgressPrinter(const ProgressMeter& meter, std::ostream& out,
                                 std::chrono::milliseconds interval,
                                 const char* noun)
    : meter_(meter), out_(out), noun_(noun) {
  thread_ = std::thread([this, interval] {
    std::unique_lock<std::mutex> lock(mutex_);
    while (!cv_.wait_for(lock, interval, [this] { return stop_; })) {
      out_ << format_progress(meter_.snapshot(), noun_) << "\n";
      out_.flush();
    }
  });
}

ProgressPrinter::~ProgressPrinter() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  out_ << format_progress(meter_.snapshot(), noun_) << "\n";
  out_.flush();
}

}  // namespace fu::sched
