#include "sched/progress.h"

#include <cstdio>
#include <ostream>

namespace fu::sched {

void ProgressMeter::reset(std::size_t total) {
  done_.store(0, std::memory_order_relaxed);
  skipped_.store(0, std::memory_order_relaxed);
  failed_.store(0, std::memory_order_relaxed);
  units_.store(0, std::memory_order_relaxed);
  total_ = total;
  start_ = std::chrono::steady_clock::now();
}

void ProgressMeter::job_done(std::uint64_t units) {
  units_.fetch_add(units, std::memory_order_relaxed);
  done_.fetch_add(1, std::memory_order_relaxed);
}

void ProgressMeter::job_skipped() {
  skipped_.fetch_add(1, std::memory_order_relaxed);
  done_.fetch_add(1, std::memory_order_relaxed);
}

void ProgressMeter::job_failed() {
  failed_.fetch_add(1, std::memory_order_relaxed);
  done_.fetch_add(1, std::memory_order_relaxed);
}

ProgressMeter::Snapshot ProgressMeter::snapshot() const {
  Snapshot snap;
  snap.done = done_.load(std::memory_order_relaxed);
  snap.skipped = skipped_.load(std::memory_order_relaxed);
  snap.failed = failed_.load(std::memory_order_relaxed);
  snap.total = total_;
  snap.units = units_.load(std::memory_order_relaxed);
  snap.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  const std::size_t executed = snap.done - snap.skipped;
  if (snap.elapsed_seconds > 0 && executed > 0) {
    snap.jobs_per_second = static_cast<double>(executed) /
                           snap.elapsed_seconds;
    snap.units_per_second = static_cast<double>(snap.units) /
                            snap.elapsed_seconds;
    if (snap.done < snap.total) {
      snap.eta_seconds = static_cast<double>(snap.total - snap.done) /
                         snap.jobs_per_second;
    }
  }
  return snap;
}

namespace {

std::string human_count(double value) {
  char buf[32];
  if (value >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.1fM", value / 1e6);
  } else if (value >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.1fk", value / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.0f", value);
  }
  return buf;
}

std::string human_duration(double seconds) {
  char buf[32];
  if (seconds >= 3600) {
    std::snprintf(buf, sizeof buf, "%dh%02dm", static_cast<int>(seconds) / 3600,
                  (static_cast<int>(seconds) % 3600) / 60);
  } else if (seconds >= 60) {
    std::snprintf(buf, sizeof buf, "%dm%02ds", static_cast<int>(seconds) / 60,
                  static_cast<int>(seconds) % 60);
  } else {
    std::snprintf(buf, sizeof buf, "%.0fs", seconds);
  }
  return buf;
}

}  // namespace

std::string format_progress(const ProgressMeter::Snapshot& snapshot,
                            const char* noun) {
  std::string line = std::to_string(snapshot.done) + "/" +
                     std::to_string(snapshot.total) + " " + noun;
  if (snapshot.skipped > 0) {
    line += " (" + std::to_string(snapshot.skipped) + " resumed)";
  }
  if (snapshot.failed > 0) {
    line += " (" + std::to_string(snapshot.failed) + " failed)";
  }
  if (snapshot.units_per_second > 0) {
    line += "  " + human_count(snapshot.units_per_second) + " inv/s";
  }
  if (snapshot.eta_seconds > 0) {
    line += "  eta " + human_duration(snapshot.eta_seconds);
  }
  return line;
}

ProgressPrinter::ProgressPrinter(const ProgressMeter& meter, std::ostream& out,
                                 std::chrono::milliseconds interval,
                                 const char* noun)
    : meter_(meter), out_(out), noun_(noun) {
  thread_ = std::thread([this, interval] {
    std::unique_lock<std::mutex> lock(mutex_);
    while (!cv_.wait_for(lock, interval, [this] { return stop_; })) {
      out_ << format_progress(meter_.snapshot(), noun_) << "\n";
      out_.flush();
    }
  });
}

ProgressPrinter::~ProgressPrinter() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  out_ << format_progress(meter_.snapshot(), noun_) << "\n";
  out_.flush();
}

}  // namespace fu::sched
