// Checkpoint shards: crash-safe incremental persistence for long runs.
//
// A long survey must survive interruption without losing hours of crawl.
// Completed job results stream into a ShardWriter, which buffers them and
// periodically writes a *shard*: a small immutable file, written to a temp
// name and atomically renamed, so a crash can only lose the unflushed
// buffer — never corrupt what is already on disk.
//
// The store is byte-oriented: records are (index, payload) pairs and every
// shard carries an opaque `header` blob that must match byte-for-byte at
// load time. The survey layer serializes its SurveyKey into the header, so
// shards from a different seed, site count, catalog or code revision can
// never be merged into a resumed run. A shard that is truncated, corrupt,
// or carries the wrong header is rejected whole.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace fu::sched {

struct ShardRecord {
  std::uint64_t index = 0;
  std::string payload;
};

// When to cut a shard: whichever enabled bound trips first. Slow crawls
// (big sites, few threads) hit the time bound so a crash loses at most
// `seconds` of work; fast crawls hit the record/byte bounds so shards stay
// reasonably sized. A zero disables that bound; all-zero flushes on every
// add(). Bounds are evaluated at add() time — there is no timer thread, so
// an idle writer's remainder goes out at flush() or destruction.
struct FlushCadence {
  std::size_t records = 64;  // buffered record count
  double seconds = 0;        // elapsed since the first unflushed record
  std::size_t bytes = 0;     // accumulated payload bytes
};

class ShardWriter {
 public:
  // Shards go to directory `dir` (created if missing); every shard embeds
  // `header`; flushes happen automatically per `cadence`. The writer
  // continues numbering after any shards already in the directory, so a
  // resumed run never overwrites its predecessor's.
  ShardWriter(std::string dir, std::string header, FlushCadence cadence);
  ShardWriter(std::string dir, std::string header,
              std::size_t flush_every = 64)
      : ShardWriter(std::move(dir), std::move(header),
                    FlushCadence{flush_every, 0, 0}) {}
  ~ShardWriter();  // flushes the remainder

  ShardWriter(const ShardWriter&) = delete;
  ShardWriter& operator=(const ShardWriter&) = delete;

  // Buffer one record; thread-safe. May flush inline.
  void add(std::uint64_t index, std::string payload);

  // Write all buffered records as one new shard. No-op on an empty buffer.
  // Returns false if an I/O error occurred (also latched into ok()).
  bool flush();

  std::size_t shards_written() const { return shards_written_; }
  bool ok() const { return ok_; }

 private:
  bool flush_locked();
  bool flush_due_locked() const;

  std::string dir_;
  std::string header_;
  FlushCadence cadence_;
  std::mutex mutex_;
  std::vector<ShardRecord> buffer_;
  std::size_t buffered_bytes_ = 0;
  std::chrono::steady_clock::time_point first_buffered_{};
  std::size_t next_sequence_ = 0;
  std::size_t shards_written_ = 0;
  bool ok_ = true;
};

// Read every shard in `dir` whose header matches `header` exactly, in shard
// order. Invalid shards — bad magic, mismatched header, truncated or
// corrupt body — are skipped whole. On duplicate indices the later shard
// wins (callers see records in order, so last-write-wins on replay).
std::vector<ShardRecord> load_shards(const std::string& dir,
                                     const std::string& header);

// The distinct headers of the shards in `dir`, in shard order of first
// appearance. Only the prefix (magic + header) of each shard is read;
// unreadable or non-shard files are skipped. How `fu compact` and the
// daemon's shard cache identify which survey a directory belongs to without
// knowing its key in advance.
std::vector<std::string> shard_headers(const std::string& dir);

// Merge the shards of several directories into `out_dir` as one compact,
// freshly-numbered shard set. All involved shards (sources and any already
// in `out_dir`) must carry the same header — mixing SurveyKeys is refused
// with `error` set and nothing written. Later directories, and later shards
// within one, win on duplicate indices; the output holds each index once,
// ascending. Returns false on refusal or I/O failure.
bool compact_shards(const std::vector<std::string>& dirs,
                    const std::string& out_dir, std::string* error = nullptr);

}  // namespace fu::sched
