// Checkpoint shards: crash-safe incremental persistence for long runs.
//
// A long survey must survive interruption without losing hours of crawl.
// Completed job results stream into a ShardWriter, which buffers them and
// periodically writes a *shard*: a small immutable file, written to a temp
// name and atomically renamed, so a crash can only lose the unflushed
// buffer — never corrupt what is already on disk.
//
// The store is byte-oriented: records are (index, payload) pairs and every
// shard carries an opaque `header` blob that must match byte-for-byte at
// load time. The survey layer serializes its SurveyKey into the header, so
// shards from a different seed, site count, catalog or code revision can
// never be merged into a resumed run. A shard that is truncated, corrupt,
// or carries the wrong header is rejected whole.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace fu::sched {

struct ShardRecord {
  std::uint64_t index = 0;
  std::string payload;
};

class ShardWriter {
 public:
  // Shards go to directory `dir` (created if missing); every shard embeds
  // `header`; a flush happens automatically once `flush_every` records are
  // buffered. The writer continues numbering after any shards already in
  // the directory, so a resumed run never overwrites its predecessor's.
  ShardWriter(std::string dir, std::string header,
              std::size_t flush_every = 64);
  ~ShardWriter();  // flushes the remainder

  ShardWriter(const ShardWriter&) = delete;
  ShardWriter& operator=(const ShardWriter&) = delete;

  // Buffer one record; thread-safe. May flush inline.
  void add(std::uint64_t index, std::string payload);

  // Write all buffered records as one new shard. No-op on an empty buffer.
  // Returns false if an I/O error occurred (also latched into ok()).
  bool flush();

  std::size_t shards_written() const { return shards_written_; }
  bool ok() const { return ok_; }

 private:
  bool flush_locked();

  std::string dir_;
  std::string header_;
  std::size_t flush_every_;
  std::mutex mutex_;
  std::vector<ShardRecord> buffer_;
  std::size_t next_sequence_ = 0;
  std::size_t shards_written_ = 0;
  bool ok_ = true;
};

// Read every shard in `dir` whose header matches `header` exactly, in shard
// order. Invalid shards — bad magic, mismatched header, truncated or
// corrupt body — are skipped whole. On duplicate indices the later shard
// wins (callers see records in order, so last-write-wins on replay).
std::vector<ShardRecord> load_shards(const std::string& dir,
                                     const std::string& header);

}  // namespace fu::sched
