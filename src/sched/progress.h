// Survey progress/throughput observation.
//
// A full 10k-site crawl runs for minutes (the paper's original took 480
// machine-days), so the operator needs to see it moving: sites done,
// invocations per second, ETA. ProgressMeter is the thread-safe counter the
// workers feed; every rendering of it — the `--progress` stderr line, the
// live `/progress.json` endpoint, `fu watch`, `fu report` — goes through
// one Snapshot struct, so the ETA/rate math exists exactly once.
// ProgressPrinter renders snapshots to a stream from its own thread so
// observation never blocks the crawl.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace fu::sched {

class ProgressMeter {
 public:
  explicit ProgressMeter(std::size_t total = 0) { reset(total); }

  // Restart the clock for a run of `total` jobs. Worker stats, in-flight
  // slots and stall history reset with it; the stall window is kept.
  void reset(std::size_t total);

  // One job finished, contributing `units` of work (the survey reports
  // feature invocations). Thread-safe.
  void job_done(std::uint64_t units = 0);

  // One job satisfied without running (e.g. restored from a checkpoint).
  // Counts toward done/ETA but not toward throughput.
  void job_skipped();

  // One job that ran but exhausted its attempts. Counts toward done (the
  // scheduler will not run it again) and toward throughput — a failed crawl
  // still consumed a worker — and is surfaced in the progress line.
  void job_failed();

  // --- stall detection ---------------------------------------------------
  // A run "stalls" when no job has completed for `seconds` (0 = detection
  // off). Observed lazily: whoever takes a snapshot notices the gap, which
  // is exactly when anyone cares (/healthz, the printer). Each distinct
  // stall episode increments stall_events once.
  void set_stall_window(double seconds);

  // --- per-worker scheduler stats ----------------------------------------
  // Sized by the scheduler before workers start (safe against observer
  // threads snapshotting concurrently); updates are relaxed atomic
  // stores/adds so the worker loop never takes a lock for them.
  void set_worker_count(std::size_t workers);
  void worker_queue_depth(std::size_t worker, std::size_t depth);
  void worker_stole(std::size_t worker, std::size_t jobs);

  // --- in-flight sites ---------------------------------------------------
  // begin_job claims one of a fixed pool of slots (or -1 when all are busy
  // — tracking is best-effort by design); end_job releases it. Use the
  // InFlightScope RAII below. Cost per *job* (a whole-site crawl), not per
  // recorded event, so it is nowhere near the metrics hot path.
  int begin_job(const std::string& label);
  void end_job(int slot);

  struct WorkerStat {
    std::size_t queue_depth = 0;
    std::uint64_t steals = 0;
    std::uint64_t jobs_stolen = 0;
  };
  struct InFlightSite {
    std::string label;
    double seconds = 0;  // how long this site has been crawling
  };
  struct Snapshot {
    std::size_t done = 0;
    std::size_t skipped = 0;  // subset of done
    std::size_t failed = 0;   // subset of done
    std::size_t total = 0;
    std::uint64_t units = 0;
    double elapsed_seconds = 0;
    double jobs_per_second = 0;   // executed jobs only
    double units_per_second = 0;
    double eta_seconds = 0;       // 0 once done or before any job finishes
    // Stall state. seconds_since_last_done counts from run start until the
    // first completion.
    double seconds_since_last_done = 0;
    double stall_window_seconds = 0;
    bool stalled = false;
    std::uint64_t stall_events = 0;
    std::vector<WorkerStat> workers;
    std::vector<InFlightSite> in_flight;  // sorted slowest-first
  };
  Snapshot snapshot() const;

 private:
  static constexpr std::size_t kInFlightSlots = 64;
  struct WorkerCell {
    std::atomic<std::size_t> queue_depth{0};
    std::atomic<std::uint64_t> steals{0};
    std::atomic<std::uint64_t> jobs_stolen{0};
  };
  struct InFlightSlot {
    std::mutex mutex;
    bool used = false;
    std::string label;
    std::chrono::steady_clock::time_point start;
  };

  void note_completion();

  std::atomic<std::size_t> done_{0};
  std::atomic<std::size_t> skipped_{0};
  std::atomic<std::size_t> failed_{0};
  std::atomic<std::uint64_t> units_{0};
  std::size_t total_ = 0;
  std::chrono::steady_clock::time_point start_;

  std::atomic<std::int64_t> last_done_us_{0};  // µs since start_
  double stall_window_ = 0;
  mutable std::atomic<bool> in_stall_{false};
  mutable std::atomic<std::uint64_t> stall_events_{0};

  // Guards the fields reset()/set_stall_window()/set_worker_count() write
  // against a concurrent snapshot() — the printer/server threads may already
  // be polling when the scheduler (re)sizes the worker array. Never taken on
  // the worker hot path (job_done, worker_queue_depth, ...), whose accesses
  // are ordered by thread start/join instead.
  mutable std::mutex control_mutex_;
  std::unique_ptr<WorkerCell[]> workers_;
  std::size_t worker_count_ = 0;

  std::unique_ptr<InFlightSlot[]> in_flight_ =
      std::make_unique<InFlightSlot[]>(kInFlightSlots);
};

// RAII in-flight marker; tolerates a null meter (tracking off).
class InFlightScope {
 public:
  InFlightScope(ProgressMeter* meter, const std::string& label)
      : meter_(meter), slot_(meter != nullptr ? meter->begin_job(label) : -1) {}
  ~InFlightScope() {
    if (meter_ != nullptr) meter_->end_job(slot_);
  }
  InFlightScope(const InFlightScope&) = delete;
  InFlightScope& operator=(const InFlightScope&) = delete;

 private:
  ProgressMeter* meter_;
  int slot_;
};

// Render "247/10000 sites  1.2M inv/s  eta 3m12s". Exposed for tests.
std::string format_progress(const ProgressMeter::Snapshot& snapshot,
                            const char* noun = "sites");

// The `/progress.json` body (also `fu report`'s progress.json artifact):
// every Snapshot field, workers and in-flight lists included.
std::string progress_json(const ProgressMeter::Snapshot& snapshot);

// The `/healthz` body: ok flag plus the stall fields that justify it.
std::string health_json(const ProgressMeter::Snapshot& snapshot);

// Prints a progress line to `out` every `interval` until destroyed; the
// destructor emits one final line. Construction spawns the printer thread.
class ProgressPrinter {
 public:
  ProgressPrinter(const ProgressMeter& meter, std::ostream& out,
                  std::chrono::milliseconds interval =
                      std::chrono::milliseconds(500),
                  const char* noun = "sites");
  ~ProgressPrinter();

  ProgressPrinter(const ProgressPrinter&) = delete;
  ProgressPrinter& operator=(const ProgressPrinter&) = delete;

 private:
  const ProgressMeter& meter_;
  std::ostream& out_;
  const char* noun_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace fu::sched
